//! A small structured-programming DSL that compiles to Wasm bytecode.
//!
//! This is the repository's substitute for the paper's guest toolchain
//! (WASI-SDK clang + custom `mpi.h`, §3.2): the standardized HPC benchmarks
//! are authored as [`Stmt`]/[`Expr`] trees and compiled through
//! [`emit_block`] into real Wasm function bodies. Types are tracked per
//! expression, so the generated code always validates.
//!
//! ```
//! use wasm_engine::dsl::*;
//! use wasm_engine::{ModuleBuilder, ValType};
//!
//! let mut b = ModuleBuilder::new();
//! b.memory(1, None);
//! b.func("sum_to_n", vec![ValType::I32], vec![ValType::I32], |f| {
//!     let n = local(0, ValType::I32);
//!     let acc = Var::new(f, ValType::I32);
//!     let i = Var::new(f, ValType::I32);
//!     emit_block(f, &[
//!         for_range(i, int(0), n.get(), &[
//!             acc.set(acc.get() + i.get()),
//!         ]),
//!         ret(Some(acc.get())),
//!     ]);
//! });
//! let module = b.finish();
//! wasm_engine::validate_module(&module).unwrap();
//! ```

use crate::builder::FunctionBuilder;
use crate::instr::{Instr, MemArg};
use crate::types::{BlockType, ValType};
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};
use std::rc::Rc;

/// A typed expression tree.
#[derive(Debug, Clone)]
pub struct Expr {
    node: Rc<Node>,
    ty: ValType,
}

#[derive(Debug)]
enum Node {
    ConstI32(i32),
    ConstI64(i64),
    ConstF32(f32),
    ConstF64(f64),
    Local(u32),
    Global(u32),
    Load { addr: Expr, offset: u32, width: LoadWidth },
    Bin { op: BinOp, lhs: Expr, rhs: Expr },
    Cmp { op: CmpOp, lhs: Expr, rhs: Expr },
    Un { op: UnOp, arg: Expr },
    Call { func: u32, args: Vec<Expr> },
    Convert { to: ValType, signed: bool, arg: Expr },
    MemorySize,
    /// Ternary `cond ? a : b` via `select`.
    Select { cond: Expr, then: Expr, els: Expr },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadWidth {
    Full,
    U8,
    U16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Min,
    Max,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    LeS,
    GeS,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnOp {
    Neg,
    Sqrt,
    Abs,
    Eqz,
}

// --- constructors ---

/// i32 constant.
pub fn int(v: i32) -> Expr {
    Expr { node: Rc::new(Node::ConstI32(v)), ty: ValType::I32 }
}

/// i64 constant.
pub fn long(v: i64) -> Expr {
    Expr { node: Rc::new(Node::ConstI64(v)), ty: ValType::I64 }
}

/// f32 constant.
pub fn float(v: f32) -> Expr {
    Expr { node: Rc::new(Node::ConstF32(v)), ty: ValType::F32 }
}

/// f64 constant.
pub fn double(v: f64) -> Expr {
    Expr { node: Rc::new(Node::ConstF64(v)), ty: ValType::F64 }
}

/// Reference to a parameter or local by index.
pub fn local(idx: u32, ty: ValType) -> Var {
    Var { idx, ty }
}

/// Current memory size in pages.
pub fn memory_size() -> Expr {
    Expr { node: Rc::new(Node::MemorySize), ty: ValType::I32 }
}

/// Call a function; `ret_ty = None` for void functions (only usable as a
/// statement via [`call_stmt`]).
pub fn call(func: u32, args: Vec<Expr>, ret_ty: ValType) -> Expr {
    Expr { node: Rc::new(Node::Call { func, args }), ty: ret_ty }
}

/// `cond ? a : b`.
pub fn select(cond: Expr, then: Expr, els: Expr) -> Expr {
    assert_eq!(then.ty, els.ty, "select arms must agree");
    let ty = then.ty;
    Expr { node: Rc::new(Node::Select { cond, then, els }), ty }
}

impl Expr {
    pub fn ty(&self) -> ValType {
        self.ty
    }

    /// Load a value of type `ty` from `self + offset`.
    pub fn load(self, ty: ValType, offset: u32) -> Expr {
        assert_eq!(self.ty, ValType::I32, "addresses are i32");
        Expr {
            node: Rc::new(Node::Load { addr: self, offset, width: LoadWidth::Full }),
            ty,
        }
    }

    /// Load a zero-extended byte from `self + offset` (result i32).
    pub fn load_u8(self, offset: u32) -> Expr {
        Expr {
            node: Rc::new(Node::Load { addr: self, offset, width: LoadWidth::U8 }),
            ty: ValType::I32,
        }
    }

    /// Load a zero-extended u16 from `self + offset` (result i32).
    pub fn load_u16(self, offset: u32) -> Expr {
        Expr {
            node: Rc::new(Node::Load { addr: self, offset, width: LoadWidth::U16 }),
            ty: ValType::I32,
        }
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        assert_eq!(lhs.ty, rhs.ty, "binary operands must agree: {op:?}");
        let ty = lhs.ty;
        Expr { node: Rc::new(Node::Bin { op, lhs, rhs }), ty }
    }

    fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        assert_eq!(lhs.ty, rhs.ty, "comparison operands must agree: {op:?}");
        Expr { node: Rc::new(Node::Cmp { op, lhs, rhs }), ty: ValType::I32 }
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, self, rhs)
    }

    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, self, rhs)
    }

    /// Signed / ordered less-than.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::LtS, self, rhs)
    }

    /// Unsigned less-than (i32 only).
    pub fn lt_u(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::LtU, self, rhs)
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::GtS, self, rhs)
    }

    pub fn le(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::LeS, self, rhs)
    }

    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::GeS, self, rhs)
    }

    pub fn eqz(self) -> Expr {
        Expr { ty: ValType::I32, node: Rc::new(Node::Un { op: UnOp::Eqz, arg: self }) }
    }

    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }

    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Xor, self, rhs)
    }

    pub fn shl(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Shl, self, rhs)
    }

    pub fn shr_s(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::ShrS, self, rhs)
    }

    pub fn shr_u(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::ShrU, self, rhs)
    }

    pub fn div_u(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::DivU, self, rhs)
    }

    pub fn rem_u(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::RemU, self, rhs)
    }

    pub fn min(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Min, self, rhs)
    }

    pub fn max(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Max, self, rhs)
    }

    pub fn sqrt(self) -> Expr {
        let ty = self.ty;
        Expr { node: Rc::new(Node::Un { op: UnOp::Sqrt, arg: self }), ty }
    }

    pub fn abs(self) -> Expr {
        let ty = self.ty;
        Expr { node: Rc::new(Node::Un { op: UnOp::Abs, arg: self }), ty }
    }

    /// Numeric conversion to `to` (signed interpretation when relevant).
    pub fn to(self, to: ValType) -> Expr {
        Expr { node: Rc::new(Node::Convert { to, signed: true, arg: self }), ty: to }
    }

    /// Numeric conversion to `to`, unsigned interpretation.
    pub fn to_unsigned(self, to: ValType) -> Expr {
        Expr { node: Rc::new(Node::Convert { to, signed: false, arg: self }), ty: to }
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::DivS, self, rhs)
    }
}

impl Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::RemS, self, rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        let ty = self.ty;
        Expr { node: Rc::new(Node::Un { op: UnOp::Neg, arg: self }), ty }
    }
}

/// A mutable variable (parameter or declared local).
#[derive(Debug, Clone, Copy)]
pub struct Var {
    pub idx: u32,
    pub ty: ValType,
}

impl Var {
    /// Declare a fresh local in the function.
    pub fn new(f: &mut FunctionBuilder, ty: ValType) -> Var {
        Var { idx: f.local(ty), ty }
    }

    pub fn get(&self) -> Expr {
        Expr { node: Rc::new(Node::Local(self.idx)), ty: self.ty }
    }

    pub fn set(&self, value: Expr) -> Stmt {
        assert_eq!(self.ty, value.ty, "assignment type mismatch");
        Stmt::Set(self.idx, value)
    }

    /// `var += delta`.
    pub fn add_assign(&self, delta: Expr) -> Stmt {
        self.set(self.get() + delta)
    }
}

/// Reference to a mutable module global.
#[derive(Debug, Clone, Copy)]
pub struct GlobalVar {
    pub idx: u32,
    pub ty: ValType,
}

impl GlobalVar {
    pub fn get(&self) -> Expr {
        Expr { node: Rc::new(Node::Global(self.idx)), ty: self.ty }
    }

    pub fn set(&self, value: Expr) -> Stmt {
        Stmt::GlobalSet(self.idx, value)
    }
}

/// A statement tree.
#[derive(Debug, Clone)]
pub enum Stmt {
    Set(u32, Expr),
    GlobalSet(u32, Expr),
    Store { addr: Expr, value: Expr, offset: u32, narrow8: bool },
    /// Evaluate and drop `n` results (0 = plain call of a void function).
    CallVoid { func: u32, args: Vec<Expr>, drop_results: u32 },
    If { cond: Expr, then: Vec<Stmt>, els: Vec<Stmt> },
    While { cond: Expr, body: Vec<Stmt> },
    /// `for var in from..to` (step +1).
    ForRange { var: Var, from: Expr, to: Expr, body: Vec<Stmt> },
    Return(Option<Expr>),
    /// memory.copy(dst, src, len)
    MemCopy { dst: Expr, src: Expr, len: Expr },
    /// memory.fill(dst, byte, len)
    MemFill { dst: Expr, byte: Expr, len: Expr },
    /// Break out of the innermost `While`/`ForRange`.
    Break,
    /// Raw instructions escape hatch.
    Raw(Vec<Instr>),
}

/// Store `value` at `addr + offset` (width from the value's type).
pub fn store(addr: Expr, offset: u32, value: Expr) -> Stmt {
    Stmt::Store { addr, value, offset, narrow8: false }
}

/// Store the low byte of `value` (i32) at `addr + offset`.
pub fn store_u8(addr: Expr, offset: u32, value: Expr) -> Stmt {
    Stmt::Store { addr, value, offset, narrow8: true }
}

/// Call a function for effect, dropping `drop_results` results.
pub fn call_stmt(func: u32, args: Vec<Expr>) -> Stmt {
    Stmt::CallVoid { func, args, drop_results: 0 }
}

/// Call a function and drop its single result (the usual `MPI_*` pattern:
/// guests ignore the returned error code).
pub fn call_drop(func: u32, args: Vec<Expr>) -> Stmt {
    Stmt::CallVoid { func, args, drop_results: 1 }
}

pub fn if_then(cond: Expr, then: &[Stmt]) -> Stmt {
    Stmt::If { cond, then: then.to_vec(), els: vec![] }
}

pub fn if_else(cond: Expr, then: &[Stmt], els: &[Stmt]) -> Stmt {
    Stmt::If { cond, then: then.to_vec(), els: els.to_vec() }
}

pub fn while_loop(cond: Expr, body: &[Stmt]) -> Stmt {
    Stmt::While { cond, body: body.to_vec() }
}

pub fn for_range(var: Var, from: Expr, to: Expr, body: &[Stmt]) -> Stmt {
    Stmt::ForRange { var, from, to, body: body.to_vec() }
}

pub fn ret(value: Option<Expr>) -> Stmt {
    Stmt::Return(value)
}

// --- compilation ---

/// Compile a statement list into the function being built.
pub fn emit_block(f: &mut FunctionBuilder, stmts: &[Stmt]) {
    let mut cx = Cx { loop_depth: Vec::new() };
    for s in stmts {
        emit_stmt(f, &mut cx, s);
    }
}

struct Cx {
    /// Current structured nesting contributed by enclosing DSL loops, used
    /// to compute `br` depths for Break. Each entry is the depth (in
    /// blocks) at which the breakable block lives.
    loop_depth: Vec<u32>,
}

fn emit_stmt(f: &mut FunctionBuilder, cx: &mut Cx, s: &Stmt) {
    match s {
        Stmt::Set(idx, e) => {
            emit_expr(f, e);
            f.local_set(*idx);
        }
        Stmt::GlobalSet(idx, e) => {
            emit_expr(f, e);
            f.global_set(*idx);
        }
        Stmt::Store { addr, value, offset, narrow8 } => {
            emit_expr(f, addr);
            emit_expr(f, value);
            let instr = if *narrow8 {
                Instr::I32Store8(MemArg::offset(*offset))
            } else {
                match value.ty {
                    ValType::I32 => Instr::I32Store(MemArg::offset(*offset)),
                    ValType::I64 => Instr::I64Store(MemArg::offset(*offset)),
                    ValType::F32 => Instr::F32Store(MemArg::offset(*offset)),
                    ValType::F64 => Instr::F64Store(MemArg::offset(*offset)),
                    ValType::V128 => Instr::V128Store(MemArg::offset(*offset)),
                }
            };
            f.emit(instr);
        }
        Stmt::CallVoid { func, args, drop_results } => {
            for a in args {
                emit_expr(f, a);
            }
            f.call(*func);
            for _ in 0..*drop_results {
                f.drop();
            }
        }
        Stmt::If { cond, then, els } => {
            emit_expr(f, cond);
            f.if_(BlockType::Empty);
            bump_depths(cx, 1);
            for s in then {
                emit_stmt(f, cx, s);
            }
            if !els.is_empty() {
                f.else_();
                for s in els {
                    emit_stmt(f, cx, s);
                }
            }
            bump_depths(cx, -1);
            f.end();
        }
        Stmt::While { cond, body } => {
            // block { loop { br_if 1 (!cond); body; br 0 } }
            f.block(BlockType::Empty);
            f.loop_(BlockType::Empty);
            emit_expr(f, cond);
            f.i32_eqz().br_if(1);
            cx.loop_depth.push(0);
            for s in body {
                emit_stmt(f, cx, s);
            }
            cx.loop_depth.pop();
            f.br(0);
            f.end(); // loop
            f.end(); // block
        }
        Stmt::ForRange { var, from, to, body } => {
            assert_eq!(var.ty, ValType::I32, "for_range variable must be i32");
            emit_expr(f, from);
            f.local_set(var.idx);
            f.block(BlockType::Empty);
            f.loop_(BlockType::Empty);
            // exit when var >= to
            f.local_get(var.idx);
            emit_expr(f, to);
            f.i32_ge_s().br_if(1);
            cx.loop_depth.push(0);
            for s in body {
                emit_stmt(f, cx, s);
            }
            cx.loop_depth.pop();
            f.local_get(var.idx).i32_const(1).i32_add().local_set(var.idx);
            f.br(0);
            f.end();
            f.end();
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                emit_expr(f, e);
            }
            f.return_();
        }
        Stmt::MemCopy { dst, src, len } => {
            emit_expr(f, dst);
            emit_expr(f, src);
            emit_expr(f, len);
            f.memory_copy();
        }
        Stmt::MemFill { dst, byte, len } => {
            emit_expr(f, dst);
            emit_expr(f, byte);
            emit_expr(f, len);
            f.memory_fill();
        }
        Stmt::Break => {
            // br out of the enclosing block wrapping the loop: the loop body
            // sits directly inside `loop` inside `block`; any Ifs entered
            // since add to the depth.
            let extra = *cx.loop_depth.last().expect("Break outside of loop");
            // depth: innermost label is the loop (0) at body level, block is
            // 1; each enclosing If adds 1.
            f.br(1 + extra);
        }
        Stmt::Raw(instrs) => {
            f.emit_all(instrs.iter().cloned());
        }
    }
}

fn bump_depths(cx: &mut Cx, delta: i32) {
    for d in cx.loop_depth.iter_mut() {
        *d = (*d as i32 + delta) as u32;
    }
}

fn emit_expr(f: &mut FunctionBuilder, e: &Expr) {
    match &*e.node {
        Node::ConstI32(v) => {
            f.i32_const(*v);
        }
        Node::ConstI64(v) => {
            f.i64_const(*v);
        }
        Node::ConstF32(v) => {
            f.f32_const(*v);
        }
        Node::ConstF64(v) => {
            f.f64_const(*v);
        }
        Node::Local(i) => {
            f.local_get(*i);
        }
        Node::Global(i) => {
            f.global_get(*i);
        }
        Node::MemorySize => {
            f.memory_size();
        }
        Node::Load { addr, offset, width } => {
            emit_expr(f, addr);
            let instr = match (width, e.ty) {
                (LoadWidth::U8, ValType::I32) => Instr::I32Load8U(MemArg::offset(*offset)),
                (LoadWidth::U16, ValType::I32) => Instr::I32Load16U(MemArg::offset(*offset)),
                (_, ValType::I32) => Instr::I32Load(MemArg::offset(*offset)),
                (_, ValType::I64) => Instr::I64Load(MemArg::offset(*offset)),
                (_, ValType::F32) => Instr::F32Load(MemArg::offset(*offset)),
                (_, ValType::F64) => Instr::F64Load(MemArg::offset(*offset)),
                (_, ValType::V128) => Instr::V128Load(MemArg::offset(*offset)),
            };
            f.emit(instr);
        }
        Node::Bin { op, lhs, rhs } => {
            emit_expr(f, lhs);
            emit_expr(f, rhs);
            f.emit(bin_instr(*op, e.ty));
        }
        Node::Cmp { op, lhs, rhs } => {
            emit_expr(f, lhs);
            emit_expr(f, rhs);
            f.emit(cmp_instr(*op, lhs.ty));
        }
        Node::Un { op, arg } => {
            match op {
                UnOp::Neg => {
                    match arg.ty {
                        ValType::F32 | ValType::F64 => {
                            emit_expr(f, arg);
                            f.emit(if arg.ty == ValType::F64 {
                                Instr::F64Neg
                            } else {
                                Instr::F32Neg
                            });
                        }
                        ValType::I32 => {
                            f.i32_const(0);
                            emit_expr(f, arg);
                            f.i32_sub();
                        }
                        ValType::I64 => {
                            f.i64_const(0);
                            emit_expr(f, arg);
                            f.i64_sub();
                        }
                        ValType::V128 => panic!("neg of v128 unsupported"),
                    };
                }
                UnOp::Sqrt => {
                    emit_expr(f, arg);
                    f.emit(match arg.ty {
                        ValType::F64 => Instr::F64Sqrt,
                        ValType::F32 => Instr::F32Sqrt,
                        t => panic!("sqrt of {t}"),
                    });
                }
                UnOp::Abs => {
                    emit_expr(f, arg);
                    f.emit(match arg.ty {
                        ValType::F64 => Instr::F64Abs,
                        ValType::F32 => Instr::F32Abs,
                        t => panic!("abs of {t}"),
                    });
                }
                UnOp::Eqz => {
                    emit_expr(f, arg);
                    f.emit(match arg.ty {
                        ValType::I32 => Instr::I32Eqz,
                        ValType::I64 => Instr::I64Eqz,
                        t => panic!("eqz of {t}"),
                    });
                }
            }
        }
        Node::Call { func, args } => {
            for a in args {
                emit_expr(f, a);
            }
            f.call(*func);
        }
        Node::Convert { to, signed, arg } => {
            emit_expr(f, arg);
            f.emit(convert_instr(arg.ty, *to, *signed));
        }
        Node::Select { cond, then, els } => {
            emit_expr(f, then);
            emit_expr(f, els);
            emit_expr(f, cond);
            f.select();
        }
    }
}

fn bin_instr(op: BinOp, ty: ValType) -> Instr {
    use {BinOp::*, Instr as I, ValType::*};
    match (ty, op) {
        (I32, Add) => I::I32Add,
        (I32, Sub) => I::I32Sub,
        (I32, Mul) => I::I32Mul,
        (I32, DivS) => I::I32DivS,
        (I32, DivU) => I::I32DivU,
        (I32, RemS) => I::I32RemS,
        (I32, RemU) => I::I32RemU,
        (I32, And) => I::I32And,
        (I32, Or) => I::I32Or,
        (I32, Xor) => I::I32Xor,
        (I32, Shl) => I::I32Shl,
        (I32, ShrS) => I::I32ShrS,
        (I32, ShrU) => I::I32ShrU,
        (I64, Add) => I::I64Add,
        (I64, Sub) => I::I64Sub,
        (I64, Mul) => I::I64Mul,
        (I64, DivS) => I::I64DivS,
        (I64, DivU) => I::I64DivU,
        (I64, RemS) => I::I64RemS,
        (I64, RemU) => I::I64RemU,
        (I64, And) => I::I64And,
        (I64, Or) => I::I64Or,
        (I64, Xor) => I::I64Xor,
        (I64, Shl) => I::I64Shl,
        (I64, ShrU) => I::I64ShrU,
        (F32, Add) => I::F32Add,
        (F32, Sub) => I::F32Sub,
        (F32, Mul) => I::F32Mul,
        (F32, DivS) => I::F32Div,
        (F32, Min) => I::F32Min,
        (F32, Max) => I::F32Max,
        (F64, Add) => I::F64Add,
        (F64, Sub) => I::F64Sub,
        (F64, Mul) => I::F64Mul,
        (F64, DivS) => I::F64Div,
        (F64, Min) => I::F64Min,
        (F64, Max) => I::F64Max,
        (t, o) => panic!("unsupported binary op {o:?} on {t}"),
    }
}

fn cmp_instr(op: CmpOp, ty: ValType) -> Instr {
    use {CmpOp::*, Instr as I, ValType::*};
    match (ty, op) {
        (I32, Eq) => I::I32Eq,
        (I32, Ne) => I::I32Ne,
        (I32, LtS) => I::I32LtS,
        (I32, LtU) => I::I32LtU,
        (I32, GtS) => I::I32GtS,
        (I32, LeS) => I::I32LeS,
        (I32, GeS) => I::I32GeS,
        (I64, Eq) => I::I64Eq,
        (I64, Ne) => I::I64Ne,
        (I64, LtS) => I::I64LtS,
        (I64, GtS) => I::I64GtS,
        (I64, LeS) => I::I64LeS,
        (I64, GeS) => I::I64GeS,
        (F32, Eq) => I::F32Eq,
        (F32, LtS) => I::F32Lt,
        (F32, GtS) => I::F32Gt,
        (F64, Eq) => I::F64Eq,
        (F64, Ne) => I::F64Ne,
        (F64, LtS) => I::F64Lt,
        (F64, GtS) => I::F64Gt,
        (F64, LeS) => I::F64Le,
        (F64, GeS) => I::F64Ge,
        (t, o) => panic!("unsupported comparison {o:?} on {t}"),
    }
}

fn convert_instr(from: ValType, to: ValType, signed: bool) -> Instr {
    use {Instr as I, ValType::*};
    match (from, to, signed) {
        (I32, I64, true) => I::I64ExtendI32S,
        (I32, I64, false) => I::I64ExtendI32U,
        (I64, I32, _) => I::I32WrapI64,
        (I32, F64, true) => I::F64ConvertI32S,
        (I32, F64, false) => I::F64ConvertI32U,
        (I64, F64, true) => I::F64ConvertI64S,
        (I64, F64, false) => I::F64ConvertI64U,
        (I32, F32, true) => I::F32ConvertI32S,
        (F64, I32, true) => I::I32TruncF64S,
        (F64, I32, false) => I::I32TruncF64U,
        (F64, I64, true) => I::I64TruncF64S,
        (F32, F64, _) => I::F64PromoteF32,
        (F64, F32, _) => I::F32DemoteF64,
        (a, b, s) => panic!("unsupported conversion {a} -> {b} (signed={s})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::runtime::{CompiledModule, Linker, Value};
    use crate::tier::Tier;
    use crate::validate::validate_module;

    fn run1(module: crate::module::Module, name: &str, args: &[Value]) -> Value {
        validate_module(&module).unwrap();
        for tier in Tier::ALL {
            let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
            let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
            let out = inst.invoke(name, args).unwrap();
            assert_eq!(out.len(), 1, "{tier}");
            if tier == Tier::Max {
                return out[0];
            }
        }
        unreachable!()
    }

    #[test]
    fn sum_loop_all_tiers() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("sum", vec![ValType::I32], vec![ValType::I32], |f| {
            let n = local(0, ValType::I32);
            let acc = Var::new(f, ValType::I32);
            let i = Var::new(f, ValType::I32);
            emit_block(f, &[
                for_range(i, int(0), n.get(), &[acc.add_assign(i.get())]),
                ret(Some(acc.get())),
            ]);
        });
        assert_eq!(run1(b.finish(), "sum", &[Value::I32(10)]), Value::I32(45));
    }

    #[test]
    fn while_with_break() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("first_multiple", vec![ValType::I32], vec![ValType::I32], |f| {
            let n = local(0, ValType::I32);
            let i = Var::new(f, ValType::I32);
            emit_block(f, &[
                i.set(int(1)),
                while_loop(int(1), &[
                    if_then((i.get() % n.get()).eq(int(0)), &[Stmt::Break]),
                    i.add_assign(int(1)),
                ]),
                ret(Some(i.get())),
            ]);
        });
        assert_eq!(run1(b.finish(), "first_multiple", &[Value::I32(7)]), Value::I32(7));
    }

    #[test]
    fn memory_store_load_roundtrip() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("probe", vec![], vec![ValType::F64], |f| {
            emit_block(f, &[
                store(int(64), 0, double(2.5)),
                ret(Some(int(64).load(ValType::F64, 0) * double(2.0))),
            ]);
        });
        assert_eq!(run1(b.finish(), "probe", &[]), Value::F64(5.0));
    }

    #[test]
    fn select_and_compare() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("max3", vec![ValType::I32, ValType::I32], vec![ValType::I32], |f| {
            let a = local(0, ValType::I32);
            let b_ = local(1, ValType::I32);
            emit_block(f, &[ret(Some(select(
                a.get().gt(b_.get()),
                a.get(),
                b_.get(),
            )))]);
        });
        assert_eq!(run1(b.finish(), "max3", &[Value::I32(3), Value::I32(9)]), Value::I32(9));
    }

    #[test]
    fn conversions_and_float_math() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("hyp", vec![ValType::I32, ValType::I32], vec![ValType::F64], |f| {
            let a = local(0, ValType::I32).get().to(ValType::F64);
            let b_ = local(1, ValType::I32).get().to(ValType::F64);
            emit_block(f, &[ret(Some((a.clone() * a + b_.clone() * b_).sqrt()))]);
        });
        assert_eq!(run1(b.finish(), "hyp", &[Value::I32(3), Value::I32(4)]), Value::F64(5.0));
    }

    #[test]
    fn nested_if_inside_loop_break_depth() {
        // Break from inside two nested ifs inside a for loop.
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("findgt", vec![ValType::I32], vec![ValType::I32], |f| {
            let n = local(0, ValType::I32);
            let i = Var::new(f, ValType::I32);
            let found = Var::new(f, ValType::I32);
            emit_block(f, &[
                found.set(int(-1)),
                for_range(i, int(0), int(100), &[
                    if_then(i.get().gt(int(10)), &[
                        if_then(i.get().gt(n.get()), &[
                            found.set(i.get()),
                            Stmt::Break,
                        ]),
                    ]),
                ]),
                ret(Some(found.get())),
            ]);
        });
        assert_eq!(run1(b.finish(), "findgt", &[Value::I32(50)]), Value::I32(51));
    }
}

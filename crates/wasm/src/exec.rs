//! Shared execution semantics for straight-line (non-control)
//! instructions over the untyped slot stack, with spec-accurate numeric
//! behaviour: wrapping integer arithmetic, trapping division and
//! truncation, IEEE round-to-even `nearest`, NaN-propagating `min`/`max`,
//! and the 128-bit SIMD lane ops.
//!
//! Operands live on an untyped stack of 64-bit [`Slot`]s (v128 spans two
//! slots, low half first). Validation statically proves every operand's
//! type, so nothing here tags or checks values at run time. The baseline
//! tier dispatches through [`step`]; the flat-IR tiers run their own fused
//! dispatch loop in [`crate::ir`] and share the numeric helpers below.
//!
//! Control flow, calls, and the width-dependent `drop`/`select` are
//! handled by each tier's driver, never passed here.

use crate::error::Trap;
use crate::instr::{Instr, MemArg};
use crate::runtime::{Instance, Slot};

#[inline]
pub(crate) fn pop(stack: &mut Vec<Slot>) -> Slot {
    // Validation guarantees the stack never underflows on executed paths;
    // if an engine bug (miscompiled fusion, corrupt artifact) breaks that
    // invariant, fail loudly rather than computing with silent zeros.
    stack.pop().expect("validated: operand stack underflow")
}

#[inline]
pub(crate) fn pop_v128(stack: &mut Vec<Slot>) -> u128 {
    let hi = pop(stack).0 as u128;
    let lo = pop(stack).0 as u128;
    lo | (hi << 64)
}

#[inline]
pub(crate) fn push_v128(stack: &mut Vec<Slot>, v: u128) {
    stack.push(Slot(v as u64));
    stack.push(Slot((v >> 64) as u64));
}

// --- float helpers with Wasm semantics ---

#[inline]
pub(crate) fn fmin32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_negative() { a } else { b }
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
pub(crate) fn fmax32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() { a } else { b }
    } else if a > b {
        a
    } else {
        b
    }
}

#[inline]
pub(crate) fn fmin64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() { a } else { b }
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
pub(crate) fn fmax64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() { a } else { b }
    } else if a > b {
        a
    } else {
        b
    }
}

/// Round half to even, the Wasm `nearest` semantics.
#[inline]
pub(crate) fn nearest32(v: f32) -> f32 {
    let r = v.round();
    if (r - v).abs() == 0.5 && r % 2.0 != 0.0 {
        r - v.signum()
    } else {
        r
    }
}

#[inline]
pub(crate) fn nearest64(v: f64) -> f64 {
    let r = v.round();
    if (r - v).abs() == 0.5 && r % 2.0 != 0.0 {
        r - v.signum()
    } else {
        r
    }
}

// --- trapping truncations ---

pub(crate) fn trunc_f64_to_i32(v: f64) -> Result<i32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if !(-2147483648.0..=2147483647.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i32)
}

pub(crate) fn trunc_f64_to_u32(v: f64) -> Result<u32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if !(t >= 0.0 && t <= 4294967295.0) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u32)
}

pub(crate) fn trunc_f64_to_i64(v: f64) -> Result<i64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    // 2^63 is exactly representable; i64::MAX is not.
    if !(t >= -9223372036854775808.0 && t < 9223372036854775808.0) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i64)
}

pub(crate) fn trunc_f64_to_u64(v: f64) -> Result<u64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if !(t >= 0.0 && t < 18446744073709551616.0) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u64)
}

// --- integer ops with Wasm trap semantics ---

#[inline]
pub(crate) fn i32_div_s(a: i32, b: i32) -> Result<i32, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    if a == i32::MIN && b == -1 {
        return Err(Trap::IntegerOverflow);
    }
    Ok(a.wrapping_div(b))
}

#[inline]
pub(crate) fn i32_div_u(a: i32, b: i32) -> Result<i32, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    Ok(((a as u32) / (b as u32)) as i32)
}

#[inline]
pub(crate) fn i32_rem_s(a: i32, b: i32) -> Result<i32, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    Ok(a.wrapping_rem(b))
}

#[inline]
pub(crate) fn i32_rem_u(a: i32, b: i32) -> Result<i32, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    Ok(((a as u32) % (b as u32)) as i32)
}

#[inline]
pub(crate) fn i64_div_s(a: i64, b: i64) -> Result<i64, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    if a == i64::MIN && b == -1 {
        return Err(Trap::IntegerOverflow);
    }
    Ok(a.wrapping_div(b))
}

#[inline]
pub(crate) fn i64_div_u(a: i64, b: i64) -> Result<i64, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    Ok(((a as u64) / (b as u64)) as i64)
}

#[inline]
pub(crate) fn i64_rem_s(a: i64, b: i64) -> Result<i64, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    Ok(a.wrapping_rem(b))
}

#[inline]
pub(crate) fn i64_rem_u(a: i64, b: i64) -> Result<i64, Trap> {
    if b == 0 {
        return Err(Trap::IntegerDivideByZero);
    }
    Ok(((a as u64) % (b as u64)) as i64)
}

// --- v128 lane views ---

#[inline]
pub(crate) fn v_to_i32x4(v: u128) -> [i32; 4] {
    let b = v.to_le_bytes();
    [
        i32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        i32::from_le_bytes([b[8], b[9], b[10], b[11]]),
        i32::from_le_bytes([b[12], b[13], b[14], b[15]]),
    ]
}

#[inline]
pub(crate) fn i32x4_to_v(l: [i32; 4]) -> u128 {
    let mut b = [0u8; 16];
    for (i, v) in l.iter().enumerate() {
        b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    u128::from_le_bytes(b)
}

#[inline]
pub(crate) fn v_to_f32x4(v: u128) -> [f32; 4] {
    let b = v.to_le_bytes();
    [
        f32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        f32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        f32::from_le_bytes([b[8], b[9], b[10], b[11]]),
        f32::from_le_bytes([b[12], b[13], b[14], b[15]]),
    ]
}

#[inline]
pub(crate) fn f32x4_to_v(l: [f32; 4]) -> u128 {
    let mut b = [0u8; 16];
    for (i, v) in l.iter().enumerate() {
        b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    u128::from_le_bytes(b)
}

#[inline]
pub(crate) fn v_to_f64x2(v: u128) -> [f64; 2] {
    let b = v.to_le_bytes();
    [
        f64::from_le_bytes(b[0..8].try_into().unwrap()),
        f64::from_le_bytes(b[8..16].try_into().unwrap()),
    ]
}

#[inline]
pub(crate) fn f64x2_to_v(l: [f64; 2]) -> u128 {
    let mut b = [0u8; 16];
    b[0..8].copy_from_slice(&l[0].to_le_bytes());
    b[8..16].copy_from_slice(&l[1].to_le_bytes());
    u128::from_le_bytes(b)
}

#[inline]
pub(crate) fn f64x2_cmp(a: u128, b: u128, f: impl Fn(f64, f64) -> bool) -> u128 {
    let (x, y) = (v_to_f64x2(a), v_to_f64x2(b));
    let lane = |i: usize| if f(x[i], y[i]) { u64::MAX } else { 0 };
    (lane(0) as u128) | ((lane(1) as u128) << 64)
}

#[inline]
pub(crate) fn i32x4_bin(a: u128, b: u128, f: impl Fn(i32, i32) -> i32) -> u128 {
    let (x, y) = (v_to_i32x4(a), v_to_i32x4(b));
    i32x4_to_v([f(x[0], y[0]), f(x[1], y[1]), f(x[2], y[2]), f(x[3], y[3])])
}

#[inline]
pub(crate) fn f32x4_bin(a: u128, b: u128, f: impl Fn(f32, f32) -> f32) -> u128 {
    let (x, y) = (v_to_f32x4(a), v_to_f32x4(b));
    f32x4_to_v([f(x[0], y[0]), f(x[1], y[1]), f(x[2], y[2]), f(x[3], y[3])])
}

#[inline]
pub(crate) fn f64x2_bin(a: u128, b: u128, f: impl Fn(f64, f64) -> f64) -> u128 {
    let (x, y) = (v_to_f64x2(a), v_to_f64x2(b));
    f64x2_to_v([f(x[0], y[0]), f(x[1], y[1])])
}

macro_rules! load {
    ($inst:expr, $stack:expr, $m:expr, $n:expr, $raw:ty, $conv:ty, $wrap:path) => {{
        let addr = pop($stack).u32();
        let start = $inst.memory.effective(addr, $m.offset, $n)?;
        let raw = <$raw>::from_le_bytes($inst.memory.load::<{ $n as usize }>(start));
        $stack.push($wrap(raw as $conv));
    }};
}

macro_rules! store {
    ($inst:expr, $stack:expr, $m:expr, $n:expr, $read:ident, $cast:ty) => {{
        let val = pop($stack).$read();
        let addr = pop($stack).u32();
        let start = $inst.memory.effective(addr, $m.offset, $n)?;
        $inst.memory.store(start, &((val as $cast).to_le_bytes()));
    }};
}

macro_rules! binop {
    ($stack:expr, $read:ident, $wrap:path, $f:expr) => {{
        let b = pop($stack).$read();
        let a = pop($stack).$read();
        $stack.push($wrap($f(a, b)));
    }};
}

macro_rules! unop {
    ($stack:expr, $read:ident, $wrap:path, $f:expr) => {{
        let v = pop($stack).$read();
        $stack.push($wrap($f(v)));
    }};
}

/// Execute one straight-line instruction against the slot stack. The
/// current frame's locals live in the same stack buffer at
/// `locals_base`, mapped by `map` (packed `offset << 1 | is_v128` per
/// local index). Control instructions, calls, and `drop`/`select` must
/// not be passed here; each tier's driver handles them.
#[inline]
pub(crate) fn step(
    inst: &mut Instance,
    stack: &mut Vec<Slot>,
    locals_base: usize,
    map: &[u32],
    instr: &Instr,
) -> Result<(), Trap> {
    use Instr::*;
    match instr {
        LocalGet(i) => {
            let e = map[*i as usize];
            let at = locals_base + (e >> 1) as usize;
            let v = stack[at];
            stack.push(v);
            if e & 1 != 0 {
                let hi = stack[at + 1];
                stack.push(hi);
            }
        }
        LocalSet(i) => {
            let e = map[*i as usize];
            let at = locals_base + (e >> 1) as usize;
            if e & 1 != 0 {
                stack[at + 1] = pop(stack);
            }
            stack[at] = pop(stack);
        }
        LocalTee(i) => {
            let e = map[*i as usize];
            let at = locals_base + (e >> 1) as usize;
            let len = stack.len();
            if e & 1 != 0 {
                stack[at] = stack[len - 2];
                stack[at + 1] = stack[len - 1];
            } else {
                stack[at] = stack[len - 1];
            }
        }
        GlobalGet(i) => stack.push(inst.globals[*i as usize]),
        GlobalSet(i) => inst.globals[*i as usize] = pop(stack),

        I32Load(m) => load!(inst, stack, m, 4, u32, u32, Slot::from_u32),
        I64Load(m) => load!(inst, stack, m, 8, u64, u64, Slot::from_u64),
        F32Load(m) => {
            let addr = pop(stack).u32();
            let start = inst.memory.effective(addr, m.offset, 4)?;
            stack.push(Slot::from_u32(u32::from_le_bytes(inst.memory.load::<4>(start))));
        }
        F64Load(m) => {
            let addr = pop(stack).u32();
            let start = inst.memory.effective(addr, m.offset, 8)?;
            stack.push(Slot::from_u64(u64::from_le_bytes(inst.memory.load::<8>(start))));
        }
        I32Load8S(m) => load!(inst, stack, m, 1, i8, i32, Slot::from_i32),
        I32Load8U(m) => load!(inst, stack, m, 1, u8, i32, Slot::from_i32),
        I32Load16S(m) => load!(inst, stack, m, 2, i16, i32, Slot::from_i32),
        I32Load16U(m) => load!(inst, stack, m, 2, u16, i32, Slot::from_i32),
        I64Load8S(m) => load!(inst, stack, m, 1, i8, i64, Slot::from_i64),
        I64Load8U(m) => load!(inst, stack, m, 1, u8, i64, Slot::from_i64),
        I64Load16S(m) => load!(inst, stack, m, 2, i16, i64, Slot::from_i64),
        I64Load16U(m) => load!(inst, stack, m, 2, u16, i64, Slot::from_i64),
        I64Load32S(m) => load!(inst, stack, m, 4, i32, i64, Slot::from_i64),
        I64Load32U(m) => load!(inst, stack, m, 4, u32, i64, Slot::from_i64),
        V128Load(m) => {
            let addr = pop(stack).u32();
            let start = inst.memory.effective(addr, m.offset, 16)?;
            push_v128(stack, u128::from_le_bytes(inst.memory.load::<16>(start)));
        }

        I32Store(m) => store!(inst, stack, m, 4, i32, u32),
        I64Store(m) => store!(inst, stack, m, 8, i64, u64),
        F32Store(m) => store!(inst, stack, m, 4, u32, u32),
        F64Store(m) => store!(inst, stack, m, 8, u64, u64),
        I32Store8(m) => store!(inst, stack, m, 1, i32, u8),
        I32Store16(m) => store!(inst, stack, m, 2, i32, u16),
        I64Store8(m) => store!(inst, stack, m, 1, i64, u8),
        I64Store16(m) => store!(inst, stack, m, 2, i64, u16),
        I64Store32(m) => store!(inst, stack, m, 4, i64, u32),
        V128Store(m) => {
            let val = pop_v128(stack);
            let addr = pop(stack).u32();
            let start = inst.memory.effective(addr, m.offset, 16)?;
            inst.memory.store(start, &val.to_le_bytes());
        }

        MemorySize => stack.push(Slot::from_i32(inst.memory.size_pages() as i32)),
        MemoryGrow => {
            let delta = pop(stack).i32();
            let r = if delta < 0 { -1 } else { inst.memory.grow(delta as u32) };
            stack.push(Slot::from_i32(r));
        }
        MemoryCopy => {
            let len = pop(stack).u32();
            let src = pop(stack).u32();
            let dst = pop(stack).u32();
            inst.memory.copy_within(dst, src, len)?;
        }
        MemoryFill => {
            let len = pop(stack).u32();
            let val = pop(stack).i32() as u8;
            let dst = pop(stack).u32();
            inst.memory.fill(dst, val, len)?;
        }

        I32Const(v) => stack.push(Slot::from_i32(*v)),
        I64Const(v) => stack.push(Slot::from_i64(*v)),
        F32Const(v) => stack.push(Slot::from_f32(*v)),
        F64Const(v) => stack.push(Slot::from_f64(*v)),
        V128Const(b) => push_v128(stack, u128::from_le_bytes(*b)),

        I32Eqz => unop!(stack, i32, Slot::from_bool, |v| v == 0),
        I64Eqz => unop!(stack, i64, Slot::from_bool, |v| v == 0),

        I32Eq => binop!(stack, i32, Slot::from_bool, |a, b| a == b),
        I32Ne => binop!(stack, i32, Slot::from_bool, |a, b| a != b),
        I32LtS => binop!(stack, i32, Slot::from_bool, |a, b| a < b),
        I32LtU => binop!(stack, u32, Slot::from_bool, |a, b| a < b),
        I32GtS => binop!(stack, i32, Slot::from_bool, |a, b| a > b),
        I32GtU => binop!(stack, u32, Slot::from_bool, |a, b| a > b),
        I32LeS => binop!(stack, i32, Slot::from_bool, |a, b| a <= b),
        I32LeU => binop!(stack, u32, Slot::from_bool, |a, b| a <= b),
        I32GeS => binop!(stack, i32, Slot::from_bool, |a, b| a >= b),
        I32GeU => binop!(stack, u32, Slot::from_bool, |a, b| a >= b),
        I64Eq => binop!(stack, i64, Slot::from_bool, |a, b| a == b),
        I64Ne => binop!(stack, i64, Slot::from_bool, |a, b| a != b),
        I64LtS => binop!(stack, i64, Slot::from_bool, |a, b| a < b),
        I64LtU => binop!(stack, u64, Slot::from_bool, |a, b| a < b),
        I64GtS => binop!(stack, i64, Slot::from_bool, |a, b| a > b),
        I64GtU => binop!(stack, u64, Slot::from_bool, |a, b| a > b),
        I64LeS => binop!(stack, i64, Slot::from_bool, |a, b| a <= b),
        I64LeU => binop!(stack, u64, Slot::from_bool, |a, b| a <= b),
        I64GeS => binop!(stack, i64, Slot::from_bool, |a, b| a >= b),
        I64GeU => binop!(stack, u64, Slot::from_bool, |a, b| a >= b),
        F32Eq => binop!(stack, f32, Slot::from_bool, |a, b| a == b),
        F32Ne => binop!(stack, f32, Slot::from_bool, |a, b| a != b),
        F32Lt => binop!(stack, f32, Slot::from_bool, |a, b| a < b),
        F32Gt => binop!(stack, f32, Slot::from_bool, |a, b| a > b),
        F32Le => binop!(stack, f32, Slot::from_bool, |a, b| a <= b),
        F32Ge => binop!(stack, f32, Slot::from_bool, |a, b| a >= b),
        F64Eq => binop!(stack, f64, Slot::from_bool, |a, b| a == b),
        F64Ne => binop!(stack, f64, Slot::from_bool, |a, b| a != b),
        F64Lt => binop!(stack, f64, Slot::from_bool, |a, b| a < b),
        F64Gt => binop!(stack, f64, Slot::from_bool, |a, b| a > b),
        F64Le => binop!(stack, f64, Slot::from_bool, |a, b| a <= b),
        F64Ge => binop!(stack, f64, Slot::from_bool, |a, b| a >= b),

        I32Clz => unop!(stack, i32, Slot::from_i32, |v: i32| v.leading_zeros() as i32),
        I32Ctz => unop!(stack, i32, Slot::from_i32, |v: i32| v.trailing_zeros() as i32),
        I32Popcnt => unop!(stack, i32, Slot::from_i32, |v: i32| v.count_ones() as i32),
        I32Add => binop!(stack, i32, Slot::from_i32, i32::wrapping_add),
        I32Sub => binop!(stack, i32, Slot::from_i32, i32::wrapping_sub),
        I32Mul => binop!(stack, i32, Slot::from_i32, i32::wrapping_mul),
        I32And => binop!(stack, i32, Slot::from_i32, |a, b| a & b),
        I32Or => binop!(stack, i32, Slot::from_i32, |a, b| a | b),
        I32Xor => binop!(stack, i32, Slot::from_i32, |a, b| a ^ b),
        I32Shl => binop!(stack, i32, Slot::from_i32, |a: i32, b| a.wrapping_shl(b as u32)),
        I32ShrS => binop!(stack, i32, Slot::from_i32, |a: i32, b| a.wrapping_shr(b as u32)),
        I32ShrU => {
            binop!(stack, i32, Slot::from_i32, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32)
        }
        I32Rotl => binop!(stack, i32, Slot::from_i32, |a: i32, b| a.rotate_left((b as u32) & 31)),
        I32Rotr => binop!(stack, i32, Slot::from_i32, |a: i32, b| a.rotate_right((b as u32) & 31)),
        I32DivS => {
            let b = pop(stack).i32();
            let a = pop(stack).i32();
            stack.push(Slot::from_i32(i32_div_s(a, b)?));
        }
        I32DivU => {
            let b = pop(stack).i32();
            let a = pop(stack).i32();
            stack.push(Slot::from_i32(i32_div_u(a, b)?));
        }
        I32RemS => {
            let b = pop(stack).i32();
            let a = pop(stack).i32();
            stack.push(Slot::from_i32(i32_rem_s(a, b)?));
        }
        I32RemU => {
            let b = pop(stack).i32();
            let a = pop(stack).i32();
            stack.push(Slot::from_i32(i32_rem_u(a, b)?));
        }

        I64Clz => unop!(stack, i64, Slot::from_i64, |v: i64| v.leading_zeros() as i64),
        I64Ctz => unop!(stack, i64, Slot::from_i64, |v: i64| v.trailing_zeros() as i64),
        I64Popcnt => unop!(stack, i64, Slot::from_i64, |v: i64| v.count_ones() as i64),
        I64Add => binop!(stack, i64, Slot::from_i64, i64::wrapping_add),
        I64Sub => binop!(stack, i64, Slot::from_i64, i64::wrapping_sub),
        I64Mul => binop!(stack, i64, Slot::from_i64, i64::wrapping_mul),
        I64And => binop!(stack, i64, Slot::from_i64, |a, b| a & b),
        I64Or => binop!(stack, i64, Slot::from_i64, |a, b| a | b),
        I64Xor => binop!(stack, i64, Slot::from_i64, |a, b| a ^ b),
        I64Shl => binop!(stack, i64, Slot::from_i64, |a: i64, b| a.wrapping_shl(b as u32)),
        I64ShrS => binop!(stack, i64, Slot::from_i64, |a: i64, b| a.wrapping_shr(b as u32)),
        I64ShrU => {
            binop!(stack, i64, Slot::from_i64, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64)
        }
        I64Rotl => {
            binop!(stack, i64, Slot::from_i64, |a: i64, b| a.rotate_left((b as u64 & 63) as u32))
        }
        I64Rotr => {
            binop!(stack, i64, Slot::from_i64, |a: i64, b| a.rotate_right((b as u64 & 63) as u32))
        }
        I64DivS => {
            let b = pop(stack).i64();
            let a = pop(stack).i64();
            stack.push(Slot::from_i64(i64_div_s(a, b)?));
        }
        I64DivU => {
            let b = pop(stack).i64();
            let a = pop(stack).i64();
            stack.push(Slot::from_i64(i64_div_u(a, b)?));
        }
        I64RemS => {
            let b = pop(stack).i64();
            let a = pop(stack).i64();
            stack.push(Slot::from_i64(i64_rem_s(a, b)?));
        }
        I64RemU => {
            let b = pop(stack).i64();
            let a = pop(stack).i64();
            stack.push(Slot::from_i64(i64_rem_u(a, b)?));
        }

        F32Abs => unop!(stack, f32, Slot::from_f32, f32::abs),
        F32Neg => unop!(stack, f32, Slot::from_f32, |v: f32| -v),
        F32Ceil => unop!(stack, f32, Slot::from_f32, f32::ceil),
        F32Floor => unop!(stack, f32, Slot::from_f32, f32::floor),
        F32Trunc => unop!(stack, f32, Slot::from_f32, f32::trunc),
        F32Nearest => unop!(stack, f32, Slot::from_f32, nearest32),
        F32Sqrt => unop!(stack, f32, Slot::from_f32, f32::sqrt),
        F32Add => binop!(stack, f32, Slot::from_f32, |a, b| a + b),
        F32Sub => binop!(stack, f32, Slot::from_f32, |a, b| a - b),
        F32Mul => binop!(stack, f32, Slot::from_f32, |a, b| a * b),
        F32Div => binop!(stack, f32, Slot::from_f32, |a, b| a / b),
        F32Min => binop!(stack, f32, Slot::from_f32, fmin32),
        F32Max => binop!(stack, f32, Slot::from_f32, fmax32),
        F32Copysign => binop!(stack, f32, Slot::from_f32, f32::copysign),

        F64Abs => unop!(stack, f64, Slot::from_f64, f64::abs),
        F64Neg => unop!(stack, f64, Slot::from_f64, |v: f64| -v),
        F64Ceil => unop!(stack, f64, Slot::from_f64, f64::ceil),
        F64Floor => unop!(stack, f64, Slot::from_f64, f64::floor),
        F64Trunc => unop!(stack, f64, Slot::from_f64, f64::trunc),
        F64Nearest => unop!(stack, f64, Slot::from_f64, nearest64),
        F64Sqrt => unop!(stack, f64, Slot::from_f64, f64::sqrt),
        F64Add => binop!(stack, f64, Slot::from_f64, |a, b| a + b),
        F64Sub => binop!(stack, f64, Slot::from_f64, |a, b| a - b),
        F64Mul => binop!(stack, f64, Slot::from_f64, |a, b| a * b),
        F64Div => binop!(stack, f64, Slot::from_f64, |a, b| a / b),
        F64Min => binop!(stack, f64, Slot::from_f64, fmin64),
        F64Max => binop!(stack, f64, Slot::from_f64, fmax64),
        F64Copysign => binop!(stack, f64, Slot::from_f64, f64::copysign),

        I32WrapI64 => unop!(stack, i64, Slot::from_i32, |v| v as i32),
        I32TruncF32S => {
            let v = pop(stack).f32();
            stack.push(Slot::from_i32(trunc_f64_to_i32(v as f64)?));
        }
        I32TruncF32U => {
            let v = pop(stack).f32();
            stack.push(Slot::from_i32(trunc_f64_to_u32(v as f64)? as i32));
        }
        I32TruncF64S => {
            let v = pop(stack).f64();
            stack.push(Slot::from_i32(trunc_f64_to_i32(v)?));
        }
        I32TruncF64U => {
            let v = pop(stack).f64();
            stack.push(Slot::from_i32(trunc_f64_to_u32(v)? as i32));
        }
        I64ExtendI32S => unop!(stack, i32, Slot::from_i64, |v| v as i64),
        I64ExtendI32U => unop!(stack, i32, Slot::from_i64, |v| v as u32 as i64),
        I64TruncF32S => {
            let v = pop(stack).f32();
            stack.push(Slot::from_i64(trunc_f64_to_i64(v as f64)?));
        }
        I64TruncF32U => {
            let v = pop(stack).f32();
            stack.push(Slot::from_i64(trunc_f64_to_u64(v as f64)? as i64));
        }
        I64TruncF64S => {
            let v = pop(stack).f64();
            stack.push(Slot::from_i64(trunc_f64_to_i64(v)?));
        }
        I64TruncF64U => {
            let v = pop(stack).f64();
            stack.push(Slot::from_i64(trunc_f64_to_u64(v)? as i64));
        }
        F32ConvertI32S => unop!(stack, i32, Slot::from_f32, |v| v as f32),
        F32ConvertI32U => unop!(stack, i32, Slot::from_f32, |v| v as u32 as f32),
        F32ConvertI64S => unop!(stack, i64, Slot::from_f32, |v| v as f32),
        F32ConvertI64U => unop!(stack, i64, Slot::from_f32, |v| v as u64 as f32),
        F32DemoteF64 => unop!(stack, f64, Slot::from_f32, |v| v as f32),
        F64ConvertI32S => unop!(stack, i32, Slot::from_f64, |v| v as f64),
        F64ConvertI32U => unop!(stack, i32, Slot::from_f64, |v| v as u32 as f64),
        F64ConvertI64S => unop!(stack, i64, Slot::from_f64, |v| v as f64),
        F64ConvertI64U => unop!(stack, i64, Slot::from_f64, |v| v as u64 as f64),
        F64PromoteF32 => unop!(stack, f32, Slot::from_f64, |v| v as f64),
        // Reinterpretations are no-ops on raw slots.
        I32ReinterpretF32 | F32ReinterpretI32 => {}
        I64ReinterpretF64 | F64ReinterpretI64 => {}
        I32Extend8S => unop!(stack, i32, Slot::from_i32, |v| v as i8 as i32),
        I32Extend16S => unop!(stack, i32, Slot::from_i32, |v| v as i16 as i32),
        I64Extend8S => unop!(stack, i64, Slot::from_i64, |v| v as i8 as i64),
        I64Extend16S => unop!(stack, i64, Slot::from_i64, |v| v as i16 as i64),
        I64Extend32S => unop!(stack, i64, Slot::from_i64, |v| v as i32 as i64),

        // --- SIMD ---
        I32x4Splat => {
            let v = pop(stack).i32();
            push_v128(stack, i32x4_to_v([v; 4]));
        }
        I64x2Splat => {
            let v = pop(stack).u64();
            push_v128(stack, (v as u128) | ((v as u128) << 64));
        }
        F32x4Splat => {
            let v = pop(stack).f32();
            push_v128(stack, f32x4_to_v([v; 4]));
        }
        F64x2Splat => {
            let v = pop(stack).f64();
            push_v128(stack, f64x2_to_v([v; 2]));
        }
        I32x4ExtractLane(l) => {
            let v = pop_v128(stack);
            stack.push(Slot::from_i32(v_to_i32x4(v)[*l as usize]));
        }
        F32x4ExtractLane(l) => {
            let v = pop_v128(stack);
            stack.push(Slot::from_f32(v_to_f32x4(v)[*l as usize]));
        }
        F64x2ExtractLane(l) => {
            let v = pop_v128(stack);
            stack.push(Slot::from_f64(v_to_f64x2(v)[*l as usize]));
        }
        F64x2ReplaceLane(l) => {
            let x = pop(stack).f64();
            let v = pop_v128(stack);
            let mut lanes = v_to_f64x2(v);
            lanes[*l as usize] = x;
            push_v128(stack, f64x2_to_v(lanes));
        }
        I32x4Add => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, i32x4_bin(a, b, i32::wrapping_add));
        }
        I32x4Sub => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, i32x4_bin(a, b, i32::wrapping_sub));
        }
        I32x4Mul => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, i32x4_bin(a, b, i32::wrapping_mul));
        }
        F32x4Add => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f32x4_bin(a, b, |x, y| x + y));
        }
        F32x4Sub => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f32x4_bin(a, b, |x, y| x - y));
        }
        F32x4Mul => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f32x4_bin(a, b, |x, y| x * y));
        }
        F32x4Div => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f32x4_bin(a, b, |x, y| x / y));
        }
        F64x2Add => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_bin(a, b, |x, y| x + y));
        }
        F64x2Sub => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_bin(a, b, |x, y| x - y));
        }
        F64x2Mul => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_bin(a, b, |x, y| x * y));
        }
        F64x2Div => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_bin(a, b, |x, y| x / y));
        }
        F64x2Eq => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_cmp(a, b, |x, y| x == y));
        }
        F64x2Ne => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_cmp(a, b, |x, y| x != y));
        }
        F64x2Lt => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_cmp(a, b, |x, y| x < y));
        }
        F64x2Gt => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_cmp(a, b, |x, y| x > y));
        }
        F64x2Le => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_cmp(a, b, |x, y| x <= y));
        }
        F64x2Ge => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, f64x2_cmp(a, b, |x, y| x >= y));
        }
        V128And => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, a & b);
        }
        V128Or => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, a | b);
        }
        V128Xor => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            push_v128(stack, a ^ b);
        }
        V128Not => {
            let a = pop_v128(stack);
            push_v128(stack, !a);
        }
        V128AnyTrue => {
            let a = pop_v128(stack);
            stack.push(Slot::from_bool(a != 0));
        }
        I32x4AllTrue => {
            let a = v_to_i32x4(pop_v128(stack));
            stack.push(Slot::from_bool(a.iter().all(|&l| l != 0)));
        }
        I32x4Bitmask => {
            let a = v_to_i32x4(pop_v128(stack));
            let mut m = 0;
            for (i, l) in a.iter().enumerate() {
                if *l < 0 {
                    m |= 1 << i;
                }
            }
            stack.push(Slot::from_i32(m));
        }

        other => unreachable!("control/call/parametric instruction {other:?} in exec::step"),
    }
    Ok(())
}

/// Placeholder for memarg-free tests.
#[allow(dead_code)]
pub(crate) fn zero_memarg() -> MemArg {
    MemArg::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rounds_half_to_even() {
        assert_eq!(nearest64(2.5), 2.0);
        assert_eq!(nearest64(3.5), 4.0);
        assert_eq!(nearest64(-2.5), -2.0);
        assert_eq!(nearest64(0.4), 0.0);
        assert_eq!(nearest32(2.5), 2.0);
        assert_eq!(nearest32(-3.5), -4.0);
    }

    #[test]
    fn wasm_min_max_nan_and_zero() {
        assert!(fmin64(f64::NAN, 1.0).is_nan());
        assert!(fmax64(1.0, f64::NAN).is_nan());
        assert!(fmin64(-0.0, 0.0).is_sign_negative());
        assert!(fmax64(-0.0, 0.0).is_sign_positive());
        assert_eq!(fmin32(3.0, 2.0), 2.0);
        assert_eq!(fmax32(3.0, 2.0), 3.0);
    }

    #[test]
    fn trunc_traps() {
        assert!(matches!(trunc_f64_to_i32(f64::NAN), Err(Trap::InvalidConversionToInteger)));
        assert!(matches!(trunc_f64_to_i32(3e9), Err(Trap::IntegerOverflow)));
        assert!(matches!(trunc_f64_to_u32(-1.0), Err(Trap::IntegerOverflow)));
        assert_eq!(trunc_f64_to_i32(-1.9).unwrap(), -1);
        assert_eq!(trunc_f64_to_u64(1.5e18).unwrap(), 1_500_000_000_000_000_000);
        assert!(trunc_f64_to_i64(9.3e18).is_err());
    }

    #[test]
    fn lane_conversions_roundtrip() {
        let lanes = [1i32, -2, 3, -4];
        assert_eq!(v_to_i32x4(i32x4_to_v(lanes)), lanes);
        let flanes = [1.5f64, -2.25];
        assert_eq!(v_to_f64x2(f64x2_to_v(flanes)), flanes);
        let f32lanes = [0.5f32, 1.5, -2.5, 3.5];
        assert_eq!(v_to_f32x4(f32x4_to_v(f32lanes)), f32lanes);
    }

    #[test]
    fn f64x2_compare_lanes() {
        let a = f64x2_to_v([1.0, 5.0]);
        let b = f64x2_to_v([2.0, 5.0]);
        let lt = f64x2_cmp(a, b, |x, y| x < y);
        assert_eq!(lt & u64::MAX as u128, u64::MAX as u128);
        assert_eq!(lt >> 64, 0);
    }

    #[test]
    fn slot_stack_v128_roundtrip() {
        let mut stack = Vec::new();
        push_v128(&mut stack, 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128);
        assert_eq!(stack.len(), 2);
        assert_eq!(pop_v128(&mut stack), 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128);
        assert!(stack.is_empty());
    }

    #[test]
    fn div_traps() {
        assert!(matches!(i32_div_s(1, 0), Err(Trap::IntegerDivideByZero)));
        assert!(matches!(i32_div_s(i32::MIN, -1), Err(Trap::IntegerOverflow)));
        assert_eq!(i32_div_u(-2, 2).unwrap(), 0x7fff_ffff);
        assert!(matches!(i64_rem_u(1, 0), Err(Trap::IntegerDivideByZero)));
        assert_eq!(i64_rem_s(-7, 2).unwrap(), -1);
    }
}

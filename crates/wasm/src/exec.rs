//! Shared execution semantics for all straight-line (non-control)
//! instructions, with spec-accurate numeric behaviour: wrapping integer
//! arithmetic, trapping division and truncation, IEEE round-to-even
//! `nearest`, NaN-propagating `min`/`max`, and the 128-bit SIMD lane ops.
//!
//! Both execution tiers dispatch through [`step`]; control flow is the only
//! thing each tier implements differently.

use crate::error::Trap;
use crate::instr::{Instr, MemArg};
use crate::runtime::{Instance, Value};

#[inline]
pub(crate) fn pop(stack: &mut Vec<Value>) -> Value {
    // Validation guarantees the stack never underflows on executed paths.
    stack.pop().expect("validated: operand stack underflow")
}

#[inline]
fn pop_i32(stack: &mut Vec<Value>) -> i32 {
    match pop(stack) {
        Value::I32(v) => v,
        v => unreachable!("validated: expected i32, got {}", v.ty()),
    }
}

#[inline]
fn pop_i64(stack: &mut Vec<Value>) -> i64 {
    match pop(stack) {
        Value::I64(v) => v,
        v => unreachable!("validated: expected i64, got {}", v.ty()),
    }
}

#[inline]
fn pop_f32(stack: &mut Vec<Value>) -> f32 {
    match pop(stack) {
        Value::F32(v) => v,
        v => unreachable!("validated: expected f32, got {}", v.ty()),
    }
}

#[inline]
fn pop_f64(stack: &mut Vec<Value>) -> f64 {
    match pop(stack) {
        Value::F64(v) => v,
        v => unreachable!("validated: expected f64, got {}", v.ty()),
    }
}

#[inline]
fn pop_v128(stack: &mut Vec<Value>) -> u128 {
    match pop(stack) {
        Value::V128(v) => v,
        v => unreachable!("validated: expected v128, got {}", v.ty()),
    }
}

// --- float helpers with Wasm semantics ---

#[inline]
fn fmin32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_negative() { a } else { b }
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
fn fmax32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() { a } else { b }
    } else if a > b {
        a
    } else {
        b
    }
}

#[inline]
fn fmin64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() { a } else { b }
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
fn fmax64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() { a } else { b }
    } else if a > b {
        a
    } else {
        b
    }
}

/// Round half to even, the Wasm `nearest` semantics.
#[inline]
fn nearest32(v: f32) -> f32 {
    let r = v.round();
    if (r - v).abs() == 0.5 && r % 2.0 != 0.0 {
        r - v.signum()
    } else {
        r
    }
}

#[inline]
fn nearest64(v: f64) -> f64 {
    let r = v.round();
    if (r - v).abs() == 0.5 && r % 2.0 != 0.0 {
        r - v.signum()
    } else {
        r
    }
}

// --- trapping truncations ---

fn trunc_f64_to_i32(v: f64) -> Result<i32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if !(-2147483648.0..=2147483647.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i32)
}

fn trunc_f64_to_u32(v: f64) -> Result<u32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if !(t >= 0.0 && t <= 4294967295.0) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u32)
}

fn trunc_f64_to_i64(v: f64) -> Result<i64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    // 2^63 is exactly representable; i64::MAX is not.
    if !(t >= -9223372036854775808.0 && t < 9223372036854775808.0) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i64)
}

fn trunc_f64_to_u64(v: f64) -> Result<u64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if !(t >= 0.0 && t < 18446744073709551616.0) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u64)
}

// --- v128 lane views ---

#[inline]
fn v_to_i32x4(v: u128) -> [i32; 4] {
    let b = v.to_le_bytes();
    [
        i32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        i32::from_le_bytes([b[8], b[9], b[10], b[11]]),
        i32::from_le_bytes([b[12], b[13], b[14], b[15]]),
    ]
}

#[inline]
fn i32x4_to_v(l: [i32; 4]) -> u128 {
    let mut b = [0u8; 16];
    for (i, v) in l.iter().enumerate() {
        b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    u128::from_le_bytes(b)
}

#[inline]
fn v_to_f32x4(v: u128) -> [f32; 4] {
    let b = v.to_le_bytes();
    [
        f32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        f32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        f32::from_le_bytes([b[8], b[9], b[10], b[11]]),
        f32::from_le_bytes([b[12], b[13], b[14], b[15]]),
    ]
}

#[inline]
fn f32x4_to_v(l: [f32; 4]) -> u128 {
    let mut b = [0u8; 16];
    for (i, v) in l.iter().enumerate() {
        b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    u128::from_le_bytes(b)
}

#[inline]
pub(crate) fn v_to_f64x2(v: u128) -> [f64; 2] {
    let b = v.to_le_bytes();
    [
        f64::from_le_bytes(b[0..8].try_into().unwrap()),
        f64::from_le_bytes(b[8..16].try_into().unwrap()),
    ]
}

#[inline]
pub(crate) fn f64x2_to_v(l: [f64; 2]) -> u128 {
    let mut b = [0u8; 16];
    b[0..8].copy_from_slice(&l[0].to_le_bytes());
    b[8..16].copy_from_slice(&l[1].to_le_bytes());
    u128::from_le_bytes(b)
}

#[inline]
fn f64x2_cmp(a: u128, b: u128, f: impl Fn(f64, f64) -> bool) -> u128 {
    let (x, y) = (v_to_f64x2(a), v_to_f64x2(b));
    let lane = |i: usize| if f(x[i], y[i]) { u64::MAX } else { 0 };
    (lane(0) as u128) | ((lane(1) as u128) << 64)
}

macro_rules! load {
    ($inst:expr, $stack:expr, $m:expr, $n:expr, $raw:ty, $conv:ty, $wrap:path) => {{
        let addr = pop_i32($stack) as u32;
        let start = $inst.memory.effective(addr, $m.offset, $n)?;
        let raw = <$raw>::from_le_bytes($inst.memory.load::<{ $n as usize }>(start));
        $stack.push($wrap(raw as $conv));
    }};
}

macro_rules! store {
    ($inst:expr, $stack:expr, $m:expr, $n:expr, $popper:ident, $cast:ty) => {{
        let val = $popper($stack);
        let addr = pop_i32($stack) as u32;
        let start = $inst.memory.effective(addr, $m.offset, $n)?;
        $inst.memory.store(start, &((val as $cast).to_le_bytes()));
    }};
}

/// Execute one straight-line instruction. Control instructions must not be
/// passed here; each tier's driver handles them.
#[inline]
pub(crate) fn step(
    inst: &mut Instance,
    stack: &mut Vec<Value>,
    locals: &mut [Value],
    instr: &Instr,
) -> Result<(), Trap> {
    use Instr::*;
    match instr {
        Drop => {
            pop(stack);
        }
        Select => {
            let c = pop_i32(stack);
            let b = pop(stack);
            let a = pop(stack);
            stack.push(if c != 0 { a } else { b });
        }
        LocalGet(i) => stack.push(locals[*i as usize]),
        LocalSet(i) => locals[*i as usize] = pop(stack),
        LocalTee(i) => locals[*i as usize] = *stack.last().expect("validated"),
        GlobalGet(i) => stack.push(inst.globals[*i as usize]),
        GlobalSet(i) => inst.globals[*i as usize] = pop(stack),

        Call(f) => return call_push(inst, stack, *f),
        CallIndirect { type_idx, .. } => {
            let slot = pop_i32(stack) as u32;
            let func_idx = inst
                .table
                .get(slot as usize)
                .copied()
                .flatten()
                .ok_or(Trap::UndefinedTableElement { index: slot })?;
            let expected = &inst.module.types[*type_idx as usize];
            let actual = inst
                .func_type(func_idx)
                .ok_or(Trap::UndefinedTableElement { index: slot })?;
            if expected != actual {
                return Err(Trap::IndirectCallTypeMismatch);
            }
            return call_push(inst, stack, func_idx);
        }

        I32Load(m) => load!(inst, stack, m, 4, u32, i32, Value::I32),
        I64Load(m) => load!(inst, stack, m, 8, u64, i64, Value::I64),
        F32Load(m) => {
            let addr = pop_i32(stack) as u32;
            let start = inst.memory.effective(addr, m.offset, 4)?;
            stack.push(Value::F32(f32::from_le_bytes(inst.memory.load::<4>(start))));
        }
        F64Load(m) => {
            let addr = pop_i32(stack) as u32;
            let start = inst.memory.effective(addr, m.offset, 8)?;
            stack.push(Value::F64(f64::from_le_bytes(inst.memory.load::<8>(start))));
        }
        I32Load8S(m) => load!(inst, stack, m, 1, i8, i32, Value::I32),
        I32Load8U(m) => load!(inst, stack, m, 1, u8, i32, Value::I32),
        I32Load16S(m) => load!(inst, stack, m, 2, i16, i32, Value::I32),
        I32Load16U(m) => load!(inst, stack, m, 2, u16, i32, Value::I32),
        I64Load8S(m) => load!(inst, stack, m, 1, i8, i64, Value::I64),
        I64Load8U(m) => load!(inst, stack, m, 1, u8, i64, Value::I64),
        I64Load16S(m) => load!(inst, stack, m, 2, i16, i64, Value::I64),
        I64Load16U(m) => load!(inst, stack, m, 2, u16, i64, Value::I64),
        I64Load32S(m) => load!(inst, stack, m, 4, i32, i64, Value::I64),
        I64Load32U(m) => load!(inst, stack, m, 4, u32, i64, Value::I64),
        V128Load(m) => {
            let addr = pop_i32(stack) as u32;
            let start = inst.memory.effective(addr, m.offset, 16)?;
            stack.push(Value::V128(u128::from_le_bytes(inst.memory.load::<16>(start))));
        }

        I32Store(m) => store!(inst, stack, m, 4, pop_i32, u32),
        I64Store(m) => store!(inst, stack, m, 8, pop_i64, u64),
        F32Store(m) => {
            let val = pop_f32(stack);
            let addr = pop_i32(stack) as u32;
            let start = inst.memory.effective(addr, m.offset, 4)?;
            inst.memory.store(start, &val.to_le_bytes());
        }
        F64Store(m) => {
            let val = pop_f64(stack);
            let addr = pop_i32(stack) as u32;
            let start = inst.memory.effective(addr, m.offset, 8)?;
            inst.memory.store(start, &val.to_le_bytes());
        }
        I32Store8(m) => store!(inst, stack, m, 1, pop_i32, u8),
        I32Store16(m) => store!(inst, stack, m, 2, pop_i32, u16),
        I64Store8(m) => store!(inst, stack, m, 1, pop_i64, u8),
        I64Store16(m) => store!(inst, stack, m, 2, pop_i64, u16),
        I64Store32(m) => store!(inst, stack, m, 4, pop_i64, u32),
        V128Store(m) => {
            let val = pop_v128(stack);
            let addr = pop_i32(stack) as u32;
            let start = inst.memory.effective(addr, m.offset, 16)?;
            inst.memory.store(start, &val.to_le_bytes());
        }

        MemorySize => stack.push(Value::I32(inst.memory.size_pages() as i32)),
        MemoryGrow => {
            let delta = pop_i32(stack);
            let r = if delta < 0 { -1 } else { inst.memory.grow(delta as u32) };
            stack.push(Value::I32(r));
        }
        MemoryCopy => {
            let len = pop_i32(stack) as u32;
            let src = pop_i32(stack) as u32;
            let dst = pop_i32(stack) as u32;
            inst.memory.copy_within(dst, src, len)?;
        }
        MemoryFill => {
            let len = pop_i32(stack) as u32;
            let val = pop_i32(stack) as u8;
            let dst = pop_i32(stack) as u32;
            inst.memory.fill(dst, val, len)?;
        }

        I32Const(v) => stack.push(Value::I32(*v)),
        I64Const(v) => stack.push(Value::I64(*v)),
        F32Const(v) => stack.push(Value::F32(*v)),
        F64Const(v) => stack.push(Value::F64(*v)),
        V128Const(b) => stack.push(Value::V128(u128::from_le_bytes(*b))),

        I32Eqz => {
            let v = pop_i32(stack);
            stack.push(Value::I32((v == 0) as i32));
        }
        I64Eqz => {
            let v = pop_i64(stack);
            stack.push(Value::I32((v == 0) as i32));
        }

        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
        | I32GeU => {
            let b = pop_i32(stack);
            let a = pop_i32(stack);
            let r = match instr {
                I32Eq => a == b,
                I32Ne => a != b,
                I32LtS => a < b,
                I32LtU => (a as u32) < (b as u32),
                I32GtS => a > b,
                I32GtU => (a as u32) > (b as u32),
                I32LeS => a <= b,
                I32LeU => (a as u32) <= (b as u32),
                I32GeS => a >= b,
                _ => (a as u32) >= (b as u32),
            };
            stack.push(Value::I32(r as i32));
        }
        I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
        | I64GeU => {
            let b = pop_i64(stack);
            let a = pop_i64(stack);
            let r = match instr {
                I64Eq => a == b,
                I64Ne => a != b,
                I64LtS => a < b,
                I64LtU => (a as u64) < (b as u64),
                I64GtS => a > b,
                I64GtU => (a as u64) > (b as u64),
                I64LeS => a <= b,
                I64LeU => (a as u64) <= (b as u64),
                I64GeS => a >= b,
                _ => (a as u64) >= (b as u64),
            };
            stack.push(Value::I32(r as i32));
        }
        F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => {
            let b = pop_f32(stack);
            let a = pop_f32(stack);
            let r = match instr {
                F32Eq => a == b,
                F32Ne => a != b,
                F32Lt => a < b,
                F32Gt => a > b,
                F32Le => a <= b,
                _ => a >= b,
            };
            stack.push(Value::I32(r as i32));
        }
        F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => {
            let b = pop_f64(stack);
            let a = pop_f64(stack);
            let r = match instr {
                F64Eq => a == b,
                F64Ne => a != b,
                F64Lt => a < b,
                F64Gt => a > b,
                F64Le => a <= b,
                _ => a >= b,
            };
            stack.push(Value::I32(r as i32));
        }

        I32Clz => {
            let v = pop_i32(stack);
            stack.push(Value::I32(v.leading_zeros() as i32));
        }
        I32Ctz => {
            let v = pop_i32(stack);
            stack.push(Value::I32(v.trailing_zeros() as i32));
        }
        I32Popcnt => {
            let v = pop_i32(stack);
            stack.push(Value::I32(v.count_ones() as i32));
        }
        I32Add | I32Sub | I32Mul | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU
        | I32Rotl | I32Rotr => {
            let b = pop_i32(stack);
            let a = pop_i32(stack);
            let r = match instr {
                I32Add => a.wrapping_add(b),
                I32Sub => a.wrapping_sub(b),
                I32Mul => a.wrapping_mul(b),
                I32And => a & b,
                I32Or => a | b,
                I32Xor => a ^ b,
                I32Shl => a.wrapping_shl(b as u32),
                I32ShrS => a.wrapping_shr(b as u32),
                I32ShrU => ((a as u32).wrapping_shr(b as u32)) as i32,
                I32Rotl => a.rotate_left((b as u32) & 31),
                _ => a.rotate_right((b as u32) & 31),
            };
            stack.push(Value::I32(r));
        }
        I32DivS | I32DivU | I32RemS | I32RemU => {
            let b = pop_i32(stack);
            let a = pop_i32(stack);
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            let r = match instr {
                I32DivS => {
                    if a == i32::MIN && b == -1 {
                        return Err(Trap::IntegerOverflow);
                    }
                    a.wrapping_div(b)
                }
                I32DivU => ((a as u32) / (b as u32)) as i32,
                I32RemS => a.wrapping_rem(b),
                _ => ((a as u32) % (b as u32)) as i32,
            };
            stack.push(Value::I32(r));
        }

        I64Clz => {
            let v = pop_i64(stack);
            stack.push(Value::I64(v.leading_zeros() as i64));
        }
        I64Ctz => {
            let v = pop_i64(stack);
            stack.push(Value::I64(v.trailing_zeros() as i64));
        }
        I64Popcnt => {
            let v = pop_i64(stack);
            stack.push(Value::I64(v.count_ones() as i64));
        }
        I64Add | I64Sub | I64Mul | I64And | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU
        | I64Rotl | I64Rotr => {
            let b = pop_i64(stack);
            let a = pop_i64(stack);
            let r = match instr {
                I64Add => a.wrapping_add(b),
                I64Sub => a.wrapping_sub(b),
                I64Mul => a.wrapping_mul(b),
                I64And => a & b,
                I64Or => a | b,
                I64Xor => a ^ b,
                I64Shl => a.wrapping_shl(b as u32),
                I64ShrS => a.wrapping_shr(b as u32),
                I64ShrU => ((a as u64).wrapping_shr(b as u32)) as i64,
                I64Rotl => a.rotate_left((b as u64 & 63) as u32),
                _ => a.rotate_right((b as u64 & 63) as u32),
            };
            stack.push(Value::I64(r));
        }
        I64DivS | I64DivU | I64RemS | I64RemU => {
            let b = pop_i64(stack);
            let a = pop_i64(stack);
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            let r = match instr {
                I64DivS => {
                    if a == i64::MIN && b == -1 {
                        return Err(Trap::IntegerOverflow);
                    }
                    a.wrapping_div(b)
                }
                I64DivU => ((a as u64) / (b as u64)) as i64,
                I64RemS => a.wrapping_rem(b),
                _ => ((a as u64) % (b as u64)) as i64,
            };
            stack.push(Value::I64(r));
        }

        F32Abs => funop32(stack, f32::abs),
        F32Neg => funop32(stack, |v| -v),
        F32Ceil => funop32(stack, f32::ceil),
        F32Floor => funop32(stack, f32::floor),
        F32Trunc => funop32(stack, f32::trunc),
        F32Nearest => funop32(stack, nearest32),
        F32Sqrt => funop32(stack, f32::sqrt),
        F32Add => fbinop32(stack, |a, b| a + b),
        F32Sub => fbinop32(stack, |a, b| a - b),
        F32Mul => fbinop32(stack, |a, b| a * b),
        F32Div => fbinop32(stack, |a, b| a / b),
        F32Min => fbinop32(stack, fmin32),
        F32Max => fbinop32(stack, fmax32),
        F32Copysign => fbinop32(stack, f32::copysign),

        F64Abs => funop64(stack, f64::abs),
        F64Neg => funop64(stack, |v| -v),
        F64Ceil => funop64(stack, f64::ceil),
        F64Floor => funop64(stack, f64::floor),
        F64Trunc => funop64(stack, f64::trunc),
        F64Nearest => funop64(stack, nearest64),
        F64Sqrt => funop64(stack, f64::sqrt),
        F64Add => fbinop64(stack, |a, b| a + b),
        F64Sub => fbinop64(stack, |a, b| a - b),
        F64Mul => fbinop64(stack, |a, b| a * b),
        F64Div => fbinop64(stack, |a, b| a / b),
        F64Min => fbinop64(stack, fmin64),
        F64Max => fbinop64(stack, fmax64),
        F64Copysign => fbinop64(stack, f64::copysign),

        I32WrapI64 => {
            let v = pop_i64(stack);
            stack.push(Value::I32(v as i32));
        }
        I32TruncF32S => {
            let v = pop_f32(stack);
            stack.push(Value::I32(trunc_f64_to_i32(v as f64)?));
        }
        I32TruncF32U => {
            let v = pop_f32(stack);
            stack.push(Value::I32(trunc_f64_to_u32(v as f64)? as i32));
        }
        I32TruncF64S => {
            let v = pop_f64(stack);
            stack.push(Value::I32(trunc_f64_to_i32(v)?));
        }
        I32TruncF64U => {
            let v = pop_f64(stack);
            stack.push(Value::I32(trunc_f64_to_u32(v)? as i32));
        }
        I64ExtendI32S => {
            let v = pop_i32(stack);
            stack.push(Value::I64(v as i64));
        }
        I64ExtendI32U => {
            let v = pop_i32(stack);
            stack.push(Value::I64(v as u32 as i64));
        }
        I64TruncF32S => {
            let v = pop_f32(stack);
            stack.push(Value::I64(trunc_f64_to_i64(v as f64)?));
        }
        I64TruncF32U => {
            let v = pop_f32(stack);
            stack.push(Value::I64(trunc_f64_to_u64(v as f64)? as i64));
        }
        I64TruncF64S => {
            let v = pop_f64(stack);
            stack.push(Value::I64(trunc_f64_to_i64(v)?));
        }
        I64TruncF64U => {
            let v = pop_f64(stack);
            stack.push(Value::I64(trunc_f64_to_u64(v)? as i64));
        }
        F32ConvertI32S => {
            let v = pop_i32(stack);
            stack.push(Value::F32(v as f32));
        }
        F32ConvertI32U => {
            let v = pop_i32(stack);
            stack.push(Value::F32(v as u32 as f32));
        }
        F32ConvertI64S => {
            let v = pop_i64(stack);
            stack.push(Value::F32(v as f32));
        }
        F32ConvertI64U => {
            let v = pop_i64(stack);
            stack.push(Value::F32(v as u64 as f32));
        }
        F32DemoteF64 => {
            let v = pop_f64(stack);
            stack.push(Value::F32(v as f32));
        }
        F64ConvertI32S => {
            let v = pop_i32(stack);
            stack.push(Value::F64(v as f64));
        }
        F64ConvertI32U => {
            let v = pop_i32(stack);
            stack.push(Value::F64(v as u32 as f64));
        }
        F64ConvertI64S => {
            let v = pop_i64(stack);
            stack.push(Value::F64(v as f64));
        }
        F64ConvertI64U => {
            let v = pop_i64(stack);
            stack.push(Value::F64(v as u64 as f64));
        }
        F64PromoteF32 => {
            let v = pop_f32(stack);
            stack.push(Value::F64(v as f64));
        }
        I32ReinterpretF32 => {
            let v = pop_f32(stack);
            stack.push(Value::I32(v.to_bits() as i32));
        }
        I64ReinterpretF64 => {
            let v = pop_f64(stack);
            stack.push(Value::I64(v.to_bits() as i64));
        }
        F32ReinterpretI32 => {
            let v = pop_i32(stack);
            stack.push(Value::F32(f32::from_bits(v as u32)));
        }
        F64ReinterpretI64 => {
            let v = pop_i64(stack);
            stack.push(Value::F64(f64::from_bits(v as u64)));
        }
        I32Extend8S => {
            let v = pop_i32(stack);
            stack.push(Value::I32(v as i8 as i32));
        }
        I32Extend16S => {
            let v = pop_i32(stack);
            stack.push(Value::I32(v as i16 as i32));
        }
        I64Extend8S => {
            let v = pop_i64(stack);
            stack.push(Value::I64(v as i8 as i64));
        }
        I64Extend16S => {
            let v = pop_i64(stack);
            stack.push(Value::I64(v as i16 as i64));
        }
        I64Extend32S => {
            let v = pop_i64(stack);
            stack.push(Value::I64(v as i32 as i64));
        }

        // --- SIMD ---
        I32x4Splat => {
            let v = pop_i32(stack);
            stack.push(Value::V128(i32x4_to_v([v; 4])));
        }
        I64x2Splat => {
            let v = pop_i64(stack) as u64;
            stack.push(Value::V128((v as u128) | ((v as u128) << 64)));
        }
        F32x4Splat => {
            let v = pop_f32(stack);
            stack.push(Value::V128(f32x4_to_v([v; 4])));
        }
        F64x2Splat => {
            let v = pop_f64(stack);
            stack.push(Value::V128(f64x2_to_v([v; 2])));
        }
        I32x4ExtractLane(l) => {
            let v = pop_v128(stack);
            stack.push(Value::I32(v_to_i32x4(v)[*l as usize]));
        }
        F32x4ExtractLane(l) => {
            let v = pop_v128(stack);
            stack.push(Value::F32(v_to_f32x4(v)[*l as usize]));
        }
        F64x2ExtractLane(l) => {
            let v = pop_v128(stack);
            stack.push(Value::F64(v_to_f64x2(v)[*l as usize]));
        }
        F64x2ReplaceLane(l) => {
            let x = pop_f64(stack);
            let v = pop_v128(stack);
            let mut lanes = v_to_f64x2(v);
            lanes[*l as usize] = x;
            stack.push(Value::V128(f64x2_to_v(lanes)));
        }
        I32x4Add | I32x4Sub | I32x4Mul => {
            let b = v_to_i32x4(pop_v128(stack));
            let a = v_to_i32x4(pop_v128(stack));
            let mut out = [0i32; 4];
            for i in 0..4 {
                out[i] = match instr {
                    I32x4Add => a[i].wrapping_add(b[i]),
                    I32x4Sub => a[i].wrapping_sub(b[i]),
                    _ => a[i].wrapping_mul(b[i]),
                };
            }
            stack.push(Value::V128(i32x4_to_v(out)));
        }
        F32x4Add | F32x4Sub | F32x4Mul | F32x4Div => {
            let b = v_to_f32x4(pop_v128(stack));
            let a = v_to_f32x4(pop_v128(stack));
            let mut out = [0f32; 4];
            for i in 0..4 {
                out[i] = match instr {
                    F32x4Add => a[i] + b[i],
                    F32x4Sub => a[i] - b[i],
                    F32x4Mul => a[i] * b[i],
                    _ => a[i] / b[i],
                };
            }
            stack.push(Value::V128(f32x4_to_v(out)));
        }
        F64x2Add | F64x2Sub | F64x2Mul | F64x2Div => {
            let b = v_to_f64x2(pop_v128(stack));
            let a = v_to_f64x2(pop_v128(stack));
            let mut out = [0f64; 2];
            for i in 0..2 {
                out[i] = match instr {
                    F64x2Add => a[i] + b[i],
                    F64x2Sub => a[i] - b[i],
                    F64x2Mul => a[i] * b[i],
                    _ => a[i] / b[i],
                };
            }
            stack.push(Value::V128(f64x2_to_v(out)));
        }
        F64x2Eq => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(f64x2_cmp(a, b, |x, y| x == y)));
        }
        F64x2Ne => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(f64x2_cmp(a, b, |x, y| x != y)));
        }
        F64x2Lt => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(f64x2_cmp(a, b, |x, y| x < y)));
        }
        F64x2Gt => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(f64x2_cmp(a, b, |x, y| x > y)));
        }
        F64x2Le => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(f64x2_cmp(a, b, |x, y| x <= y)));
        }
        F64x2Ge => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(f64x2_cmp(a, b, |x, y| x >= y)));
        }
        V128And => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(a & b));
        }
        V128Or => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(a | b));
        }
        V128Xor => {
            let b = pop_v128(stack);
            let a = pop_v128(stack);
            stack.push(Value::V128(a ^ b));
        }
        V128Not => {
            let a = pop_v128(stack);
            stack.push(Value::V128(!a));
        }
        V128AnyTrue => {
            let a = pop_v128(stack);
            stack.push(Value::I32((a != 0) as i32));
        }
        I32x4AllTrue => {
            let a = v_to_i32x4(pop_v128(stack));
            stack.push(Value::I32(a.iter().all(|&l| l != 0) as i32));
        }
        I32x4Bitmask => {
            let a = v_to_i32x4(pop_v128(stack));
            let mut m = 0;
            for (i, l) in a.iter().enumerate() {
                if *l < 0 {
                    m |= 1 << i;
                }
            }
            stack.push(Value::I32(m));
        }

        other => unreachable!("control instruction {other:?} passed to exec::step"),
    }
    Ok(())
}

#[inline]
fn call_push(inst: &mut Instance, stack: &mut Vec<Value>, func_idx: u32) -> Result<(), Trap> {
    let n_params = inst.func_types[func_idx as usize].params.len();
    let at = stack.len() - n_params;
    let args: Vec<Value> = stack.split_off(at);
    let results = inst.call_func_unchecked(func_idx, &args)?;
    stack.extend(results);
    Ok(())
}

#[inline]
fn funop32(stack: &mut Vec<Value>, f: impl Fn(f32) -> f32) {
    let v = pop_f32(stack);
    stack.push(Value::F32(f(v)));
}

#[inline]
fn fbinop32(stack: &mut Vec<Value>, f: impl Fn(f32, f32) -> f32) {
    let b = pop_f32(stack);
    let a = pop_f32(stack);
    stack.push(Value::F32(f(a, b)));
}

#[inline]
fn funop64(stack: &mut Vec<Value>, f: impl Fn(f64) -> f64) {
    let v = pop_f64(stack);
    stack.push(Value::F64(f(v)));
}

#[inline]
fn fbinop64(stack: &mut Vec<Value>, f: impl Fn(f64, f64) -> f64) {
    let b = pop_f64(stack);
    let a = pop_f64(stack);
    stack.push(Value::F64(f(a, b)));
}

/// Placeholder for memarg-free tests.
#[allow(dead_code)]
pub(crate) fn zero_memarg() -> MemArg {
    MemArg::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rounds_half_to_even() {
        assert_eq!(nearest64(2.5), 2.0);
        assert_eq!(nearest64(3.5), 4.0);
        assert_eq!(nearest64(-2.5), -2.0);
        assert_eq!(nearest64(0.4), 0.0);
        assert_eq!(nearest32(2.5), 2.0);
        assert_eq!(nearest32(-3.5), -4.0);
    }

    #[test]
    fn wasm_min_max_nan_and_zero() {
        assert!(fmin64(f64::NAN, 1.0).is_nan());
        assert!(fmax64(1.0, f64::NAN).is_nan());
        assert!(fmin64(-0.0, 0.0).is_sign_negative());
        assert!(fmax64(-0.0, 0.0).is_sign_positive());
        assert_eq!(fmin32(3.0, 2.0), 2.0);
        assert_eq!(fmax32(3.0, 2.0), 3.0);
    }

    #[test]
    fn trunc_traps() {
        assert!(matches!(trunc_f64_to_i32(f64::NAN), Err(Trap::InvalidConversionToInteger)));
        assert!(matches!(trunc_f64_to_i32(3e9), Err(Trap::IntegerOverflow)));
        assert!(matches!(trunc_f64_to_u32(-1.0), Err(Trap::IntegerOverflow)));
        assert_eq!(trunc_f64_to_i32(-1.9).unwrap(), -1);
        assert_eq!(trunc_f64_to_u64(1.5e18).unwrap(), 1_500_000_000_000_000_000);
        assert!(trunc_f64_to_i64(9.3e18).is_err());
    }

    #[test]
    fn lane_conversions_roundtrip() {
        let lanes = [1i32, -2, 3, -4];
        assert_eq!(v_to_i32x4(i32x4_to_v(lanes)), lanes);
        let flanes = [1.5f64, -2.25];
        assert_eq!(v_to_f64x2(f64x2_to_v(flanes)), flanes);
        let f32lanes = [0.5f32, 1.5, -2.5, 3.5];
        assert_eq!(v_to_f32x4(f32x4_to_v(f32lanes)), f32lanes);
    }

    #[test]
    fn f64x2_compare_lanes() {
        let a = f64x2_to_v([1.0, 5.0]);
        let b = f64x2_to_v([2.0, 5.0]);
        let lt = f64x2_cmp(a, b, |x, y| x < y);
        assert_eq!(lt & u64::MAX as u128, u64::MAX as u128);
        assert_eq!(lt >> 64, 0);
    }
}

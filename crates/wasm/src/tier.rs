//! Execution tiers: the engine's analog of Wasmer's three compiler
//! backends (paper §3.3, Table 1).
//!
//! | Paper backend | Tier              | Strategy |
//! |---------------|-------------------|----------|
//! | Singlepass    | [`Tier::Baseline`]  | structured interpreter over the untyped slot stack; linear-time prepare (side table + width pass) |
//! | Cranelift     | [`Tier::Optimizing`]| flatten to flat IR with resolved jumps (width pass fused into the same walk), register-allocated to the stackless [`crate::regalloc::RegOp`] form |
//! | LLVM          | [`Tier::Max`]       | flat IR plus iterated optimization passes (constant folding, local/load/shift fusion, compare-and-branch fusion, jump threading), same register lowering plus register-level scaled load/store fusion |
//! | LLVM + hot-tier JIT | [`Tier::MaxJit`] | the Max pipeline plus a profile-guided top tier: hot functions (per-function execution counters in the dispatch loop) have superblocks discovered over their register stream and compiled into single closure-chain units with constants and register indices baked in, v128 ops mapped to native SIMD, and guard exits that fall back to the threaded interpreter at the recorded ip |
//!
//! All tiers share the untyped execution engine: operands are raw 64-bit
//! slots (f32/f64 bit-cast, v128 in two slots) with no runtime type tags —
//! validation proves the types statically — and activation frames live in
//! one per-instance slot arena, so guest→guest calls allocate nothing.
//! The tiers preserve the paper's ordering: compile time grows and run
//! time shrinks from Baseline to Max; MaxJit defers its extra compile
//! work to run time, paying it only for functions that prove hot.
//!
//! The superblock tier's artifacts are in-memory only: the module cache
//! stores a MaxJit module exactly like a Max module (same VERSION 2
//! format, different tier byte) and superblocks are re-derived from the
//! register form after load — see [`crate::superblock`] for formation
//! and [`crate::closures`] for the closure-chain contract.

use crate::interp::SideTable;
use crate::ir::FlatFunc;
use crate::module::{Function, Module};

/// Selects how module bodies are compiled and executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier {
    /// Structured interpreter; fastest to prepare, slowest to run
    /// (Singlepass analog).
    Baseline,
    /// Flat IR with resolved control flow (Cranelift analog).
    Optimizing,
    /// Flat IR plus iterated optimization passes (LLVM analog).
    #[default]
    Max,
    /// Max plus the profile-guided superblock top tier: hot functions are
    /// recompiled at run time into closure-chain units with native SIMD.
    MaxJit,
}

impl Tier {
    pub const ALL: [Tier; 4] = [Tier::Baseline, Tier::Optimizing, Tier::Max, Tier::MaxJit];

    /// The three paper-backend analogs (Table 1); excludes the superblock
    /// top tier, which has no Wasmer counterpart in the paper.
    pub const PAPER: [Tier; 3] = [Tier::Baseline, Tier::Optimizing, Tier::Max];

    /// Short display name matching the paper's backend names.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Baseline => "baseline (singlepass analog)",
            Tier::Optimizing => "optimizing (cranelift analog)",
            Tier::Max => "max (llvm analog)",
            Tier::MaxJit => "max+jit (superblock closure tier)",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A function body compiled for some tier.
pub enum CompiledBody {
    /// Baseline: the original structured body plus its control side table.
    Interp(SideTable),
    /// Optimizing / Max: flat IR.
    Flat(FlatFunc),
}

impl CompiledBody {
    /// Approximate in-memory size of the compiled artifact in bytes. Used
    /// by the binary-size experiment (Table 2 analog) as "native code size".
    pub fn size_bytes(&self) -> usize {
        match self {
            CompiledBody::Interp(side) => side.size_bytes(),
            CompiledBody::Flat(f) => f.size_bytes(),
        }
    }
}

/// Compile one function body for the given tier.
pub fn compile_body(module: &Module, func: &Function, tier: Tier) -> CompiledBody {
    match tier {
        Tier::Baseline => CompiledBody::Interp(SideTable::build(module, func)),
        Tier::Optimizing => CompiledBody::Flat(crate::ir::compile(module, func, 0)),
        // MaxJit shares the Max ahead-of-time pipeline; the superblock
        // compilation happens at run time, driven by hotness counters.
        Tier::Max | Tier::MaxJit => CompiledBody::Flat(crate::ir::compile(module, func, 2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_distinct() {
        let names: std::collections::HashSet<_> = Tier::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn default_tier_is_max() {
        assert_eq!(Tier::default(), Tier::Max);
    }
}

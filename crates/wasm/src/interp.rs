//! The baseline execution tier: a structured-bytecode interpreter.
//!
//! This is the engine's Singlepass analog (paper Table 1): "compilation"
//! only scans the body once to match each `block`/`loop`/`if` with its
//! `else`/`end`, and execution walks the structured instruction stream with
//! an explicit label stack. No optimization is performed.

use crate::error::Trap;
use crate::exec;
use crate::instr::Instr;
use crate::module::Function;
use crate::runtime::{Instance, Value};
use crate::tier::CompiledBody;
use crate::types::BlockType;

/// Per-function control-flow side table: for every structured instruction,
/// the indices of its matching `else` (if any) and `end`.
#[derive(Debug, Clone, Default)]
pub struct SideTable {
    /// Indexed by instruction position; `None` for non-block instructions.
    entries: Vec<Option<BlockInfo>>,
}

#[derive(Debug, Clone, Copy)]
pub struct BlockInfo {
    pub else_pc: Option<usize>,
    pub end_pc: usize,
}

impl SideTable {
    /// Build the side table with a single linear scan.
    pub fn build(body: &[Instr]) -> SideTable {
        let mut entries = vec![None; body.len()];
        let mut open: Vec<usize> = Vec::new();
        for (pc, instr) in body.iter().enumerate() {
            match instr {
                i if i.opens_block() => {
                    entries[pc] = Some(BlockInfo { else_pc: None, end_pc: usize::MAX });
                    open.push(pc);
                }
                Instr::Else => {
                    let &opener = open.last().expect("validated: else without if");
                    if let Some(info) = entries[opener].as_mut() {
                        info.else_pc = Some(pc);
                    }
                    // Map the Else itself to the matching end (filled below)
                    // so fallthrough of a then-arm can jump directly there.
                    entries[pc] = Some(BlockInfo { else_pc: None, end_pc: usize::MAX });
                }
                Instr::End => {
                    if let Some(opener) = open.pop() {
                        let else_pc = entries[opener].as_mut().map(|info| {
                            info.end_pc = pc;
                            info.else_pc
                        });
                        if let Some(Some(else_pc)) = else_pc {
                            if let Some(info) = entries[else_pc].as_mut() {
                                info.end_pc = pc;
                            }
                        }
                    }
                    // The function-level end has no opener; nothing to record.
                }
                _ => {}
            }
        }
        SideTable { entries }
    }

    #[inline]
    fn info(&self, pc: usize) -> BlockInfo {
        self.entries[pc].expect("validated: side table entry missing")
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Option<BlockInfo>>()
    }
}

struct Label {
    /// Continuation pc for a branch to this label.
    cont: usize,
    /// Operand stack height at entry.
    height: usize,
    /// Values carried by a branch (0 for loops, result count otherwise).
    br_arity: usize,
    is_loop: bool,
}

/// Execute defined function `defined_idx` with `args`. The function's body
/// must have been compiled for the baseline tier.
pub(crate) fn call(
    inst: &mut Instance,
    defined_idx: usize,
    args: &[Value],
) -> Result<Vec<Value>, Trap> {
    // Clone the Arc handles so we can keep borrowing `inst` mutably.
    let module = std::sync::Arc::clone(&inst.module);
    let bodies = std::sync::Arc::clone(&inst.bodies);
    let func: &Function = &module.functions[defined_idx];
    let side = match &bodies[defined_idx] {
        CompiledBody::Interp(side) => side,
        CompiledBody::Flat(_) => unreachable!("baseline tier expected"),
    };
    let fty = &module.types[func.type_idx as usize];
    let result_arity = fty.results.len();

    let mut locals: Vec<Value> = Vec::with_capacity(args.len() + func.locals.len());
    locals.extend_from_slice(args);
    locals.extend(func.locals.iter().map(|&t| Value::zero(t)));

    let mut stack: Vec<Value> = Vec::with_capacity(32);
    let mut labels: Vec<Label> = Vec::with_capacity(8);
    let body = &func.body;
    let mut pc = 0usize;
    let mut limit_check = 0u32;

    loop {
        // Amortized stack-limit check: growth per instruction is O(1).
        limit_check += 1;
        if limit_check >= 1024 {
            limit_check = 0;
            if stack.len() > inst.limits.max_value_stack {
                return Err(Trap::StackExhausted);
            }
        }
        let instr = &body[pc];
        match instr {
            Instr::Nop => {}
            Instr::Unreachable => return Err(Trap::Unreachable),
            Instr::Block(bt) => {
                let info = side.info(pc);
                labels.push(Label {
                    cont: info.end_pc + 1,
                    height: stack.len(),
                    br_arity: block_arity(&module, bt),
                    is_loop: false,
                });
            }
            Instr::Loop(_) => {
                labels.push(Label {
                    cont: pc + 1,
                    height: stack.len(),
                    br_arity: 0,
                    is_loop: true,
                });
            }
            Instr::If(bt) => {
                let cond = exec::pop(&mut stack).as_i32().expect("validated");
                let info = side.info(pc);
                labels.push(Label {
                    cont: info.end_pc + 1,
                    height: stack.len(),
                    br_arity: block_arity(&module, bt),
                    is_loop: false,
                });
                if cond == 0 {
                    // Jump into the else arm, or to the End (which pops the
                    // label) when there is none.
                    pc = match info.else_pc {
                        Some(e) => e,
                        None => info.end_pc - 1, // step below advances onto End
                    };
                }
            }
            Instr::Else => {
                // Fallthrough from a then-arm: skip to the matching End,
                // which pops the label and carries the results.
                pc = side.info(pc).end_pc - 1;
            }
            Instr::End => {
                match labels.pop() {
                    Some(_) => {}
                    None => {
                        // Function-level end: return the results.
                        let at = stack.len() - result_arity;
                        return Ok(stack.split_off(at));
                    }
                }
            }
            Instr::Br(depth) => {
                pc = branch(&mut stack, &mut labels, *depth as usize, result_arity, &mut |vals| {
                    vals
                });
                if pc == usize::MAX {
                    let at = stack.len() - result_arity;
                    return Ok(stack.split_off(at));
                }
                continue;
            }
            Instr::BrIf(depth) => {
                let cond = exec::pop(&mut stack).as_i32().expect("validated");
                if cond != 0 {
                    pc = branch(
                        &mut stack,
                        &mut labels,
                        *depth as usize,
                        result_arity,
                        &mut |vals| vals,
                    );
                    if pc == usize::MAX {
                        let at = stack.len() - result_arity;
                        return Ok(stack.split_off(at));
                    }
                    continue;
                }
            }
            Instr::BrTable { targets, default } => {
                let idx = exec::pop(&mut stack).as_i32().expect("validated") as usize;
                let depth = *targets.get(idx).unwrap_or(default) as usize;
                pc = branch(&mut stack, &mut labels, depth, result_arity, &mut |vals| vals);
                if pc == usize::MAX {
                    let at = stack.len() - result_arity;
                    return Ok(stack.split_off(at));
                }
                continue;
            }
            Instr::Return => {
                let at = stack.len() - result_arity;
                return Ok(stack.split_off(at));
            }
            other => exec::step(inst, &mut stack, &mut locals, other)?,
        }
        pc += 1;
    }
}

fn block_arity(module: &crate::module::Module, bt: &BlockType) -> usize {
    match bt {
        BlockType::Empty => 0,
        BlockType::Value(_) => 1,
        BlockType::Func(idx) => module.types[*idx as usize].results.len(),
    }
}

/// Perform a branch to `depth`. Returns the new pc, or `usize::MAX` to
/// signal a function-level return (branch past the outermost label).
fn branch(
    stack: &mut Vec<Value>,
    labels: &mut Vec<Label>,
    depth: usize,
    _result_arity: usize,
    _carry: &mut dyn FnMut(Vec<Value>) -> Vec<Value>,
) -> usize {
    if depth >= labels.len() {
        // Branch targeting the function frame: a return.
        return usize::MAX;
    }
    let idx = labels.len() - 1 - depth;
    let (cont, height, arity, is_loop) = {
        let l = &labels[idx];
        (l.cont, l.height, l.br_arity, l.is_loop)
    };
    // Carry the branch values over the unwound stack region, in place.
    if arity == 0 {
        stack.truncate(height);
    } else {
        let from = stack.len() - arity;
        if from != height {
            for i in 0..arity {
                stack[height + i] = stack[from + i];
            }
        }
        stack.truncate(height + arity);
    }
    if is_loop {
        labels.truncate(idx + 1);
    } else {
        labels.truncate(idx);
    }
    cont
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BlockType;

    #[test]
    fn side_table_matches_nested_blocks() {
        use Instr::*;
        // block ; loop ; if ; else ; end ; end ; end ; END(func)
        let body = vec![
            Block(BlockType::Empty), // 0
            Loop(BlockType::Empty),  // 1
            If(BlockType::Empty),    // 2  (needs an i32 in real code)
            Nop,                     // 3
            Else,                    // 4
            Nop,                     // 5
            End,                     // 6 closes if
            End,                     // 7 closes loop
            End,                     // 8 closes block
            End,                     // 9 function end
        ];
        let t = SideTable::build(&body);
        let blk = t.info(0);
        assert_eq!(blk.end_pc, 8);
        assert_eq!(blk.else_pc, None);
        let lp = t.info(1);
        assert_eq!(lp.end_pc, 7);
        let iff = t.info(2);
        assert_eq!(iff.end_pc, 6);
        assert_eq!(iff.else_pc, Some(4));
        // Else maps to the same end.
        assert_eq!(t.info(4).end_pc, 6);
    }
}

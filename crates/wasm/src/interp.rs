//! The baseline execution tier: a structured-bytecode interpreter.
//!
//! This is the engine's Singlepass analog (paper Table 1): "compilation"
//! only scans the body once to match each `block`/`loop`/`if` with its
//! `else`/`end` (plus one width pass for the untyped slot stack), and
//! execution walks the structured instruction stream with an explicit
//! label stack. No optimization is performed.
//!
//! Operands and locals live in one per-instance slot arena shared by all
//! activation frames: a guest→guest call pushes a frame whose locals are a
//! window into the same buffer (the caller's outgoing arguments become the
//! callee's first locals in place), so calls allocate nothing.

use std::sync::Arc;

use crate::error::Trap;
use crate::exec;
use crate::instr::Instr;
use crate::module::{Function, Module};
use crate::runtime::{Instance, Slot};
use crate::tier::CompiledBody;
use crate::types::BlockType;
use crate::widths;

/// Per-function control-flow side table: for every structured instruction,
/// the indices of its matching `else` (if any) and `end`, plus the
/// slot-layout metadata the untyped execution engine needs (local slot
/// offsets and the width of `drop`/`select` operands).
#[derive(Debug, Clone, Default)]
pub struct SideTable {
    /// Indexed by instruction position; `None` for non-block instructions.
    entries: Vec<Option<BlockInfo>>,
    /// Per-pc: the operand of a `Drop`/`Select` at this pc is v128.
    wide: Box<[bool]>,
    /// Per local index: `slot_offset << 1 | is_v128`.
    local_map: Box<[u32]>,
    n_local_slots: u32,
    param_slots: u32,
    result_slots: u32,
}

#[derive(Debug, Clone, Copy)]
pub struct BlockInfo {
    pub else_pc: Option<usize>,
    pub end_pc: usize,
}

impl SideTable {
    /// Build the side table: one linear scan for block matching plus the
    /// shared width pass for slot layout.
    pub fn build(module: &Module, func: &Function) -> SideTable {
        let body = &func.body;
        let mut entries = vec![None; body.len()];
        let mut open: Vec<usize> = Vec::new();
        for (pc, instr) in body.iter().enumerate() {
            match instr {
                i if i.opens_block() => {
                    entries[pc] = Some(BlockInfo { else_pc: None, end_pc: usize::MAX });
                    open.push(pc);
                }
                Instr::Else => {
                    let &opener = open.last().expect("validated: else without if");
                    if let Some(info) = entries[opener].as_mut() {
                        info.else_pc = Some(pc);
                    }
                    // Map the Else itself to the matching end (filled below)
                    // so fallthrough of a then-arm can jump directly there.
                    entries[pc] = Some(BlockInfo { else_pc: None, end_pc: usize::MAX });
                }
                Instr::End => {
                    if let Some(opener) = open.pop() {
                        let else_pc = entries[opener].as_mut().map(|info| {
                            info.end_pc = pc;
                            info.else_pc
                        });
                        if let Some(Some(else_pc)) = else_pc {
                            if let Some(info) = entries[else_pc].as_mut() {
                                info.end_pc = pc;
                            }
                        }
                    }
                    // The function-level end has no opener; nothing to record.
                }
                _ => {}
            }
        }
        let fty = &module.types[func.type_idx as usize];
        let (local_map, n_local_slots) = widths::local_map(&fty.params, &func.locals);
        let info = widths::analyze(module, func);
        SideTable {
            entries,
            wide: info.wide.into_boxed_slice(),
            local_map: local_map.into_boxed_slice(),
            n_local_slots,
            param_slots: widths::slot_count(&fty.params),
            result_slots: widths::slot_count(&fty.results),
        }
    }

    #[inline]
    fn info(&self, pc: usize) -> BlockInfo {
        self.entries[pc].expect("validated: side table entry missing")
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Option<BlockInfo>>()
            + self.wide.len()
            + self.local_map.len() * 4
    }
}

struct Label {
    /// Continuation pc for a branch to this label.
    cont: usize,
    /// Absolute slot-stack height at entry.
    height: usize,
    /// Slots carried by a branch (loop params for loops, results otherwise).
    br_arity: usize,
    is_loop: bool,
}

/// A suspended caller activation.
struct Frame {
    defined_idx: u32,
    /// pc to resume at (the instruction after the call).
    pc: usize,
    locals_base: usize,
    labels_base: usize,
}

/// Execute defined function `defined_idx` with `args` (already as slots).
/// The function's body must have been compiled for the baseline tier.
pub(crate) fn call(
    inst: &mut Instance,
    defined_idx: usize,
    args: &[Slot],
) -> Result<Vec<Slot>, Trap> {
    let mut stack = inst.take_stack();
    stack.extend_from_slice(args);
    let result = run(inst, &mut stack, defined_idx);
    let out = result.map(|result_slots| {
        let at = stack.len() - result_slots;
        stack.split_off(at)
    });
    inst.put_stack(stack);
    out
}

fn resolve<'a>(
    module: &'a Module,
    bodies: &'a [CompiledBody],
    defined_idx: usize,
) -> (&'a Function, &'a SideTable) {
    let func = &module.functions[defined_idx];
    match &bodies[defined_idx] {
        CompiledBody::Interp(side) => (func, side),
        CompiledBody::Flat(_) => unreachable!("baseline tier expected"),
    }
}

fn run(inst: &mut Instance, stack: &mut Vec<Slot>, defined_idx: usize) -> Result<usize, Trap> {
    // Clone the Arc handles so we can keep borrowing `inst` mutably.
    let module = Arc::clone(&inst.module);
    let bodies = Arc::clone(&inst.bodies);
    let imported = inst.host_funcs.len() as u32;

    let mut frames: Vec<Frame> = Vec::new();
    let mut labels: Vec<Label> = Vec::with_capacity(8);

    let (func, mut side) = resolve(&module, &bodies, defined_idx);
    // Hot-loop state, re-hoisted on every frame switch so the dispatch
    // loop reads straight from slices instead of chasing references.
    let mut body: &[Instr] = &func.body;
    let mut map: &[u32] = &side.local_map;
    let mut cur_idx = defined_idx as u32;
    let mut locals_base = stack.len() - side.param_slots as usize;
    stack.resize(locals_base + side.n_local_slots as usize, Slot::ZERO);
    let mut labels_base = 0usize;
    let mut pc = 0usize;
    let mut limit_check = 0u32;

    macro_rules! do_return {
        () => {{
            let result_slots = side.result_slots as usize;
            let at = stack.len() - result_slots;
            stack.copy_within(at.., locals_base);
            stack.truncate(locals_base + result_slots);
            labels.truncate(labels_base);
            match frames.pop() {
                None => return Ok(result_slots),
                Some(fr) => {
                    cur_idx = fr.defined_idx;
                    let (f, s) = resolve(&module, &bodies, fr.defined_idx as usize);
                    body = &f.body;
                    map = &s.local_map;
                    side = s;
                    locals_base = fr.locals_base;
                    labels_base = fr.labels_base;
                    pc = fr.pc;
                    continue;
                }
            }
        }};
    }

    macro_rules! do_call {
        ($func_idx:expr) => {{
            let func_idx: u32 = $func_idx;
            if frames.len() + inst.depth + 1 >= inst.limits.max_call_depth {
                return Err(Trap::StackExhausted);
            }
            if func_idx < imported {
                let n_args = inst.host_arg_slots[func_idx as usize] as usize;
                let at = stack.len() - n_args;
                let f = Arc::clone(&inst.host_funcs[func_idx as usize]);
                inst.depth += 1;
                let results = f(inst, &stack[at..]);
                inst.depth -= 1;
                let results = results?;
                stack.truncate(at);
                stack.extend_from_slice(&results);
            } else {
                let defined = (func_idx - imported) as usize;
                frames.push(Frame {
                    defined_idx: cur_idx,
                    pc: pc + 1,
                    locals_base,
                    labels_base,
                });
                let (f, s) = resolve(&module, &bodies, defined);
                body = &f.body;
                map = &s.local_map;
                side = s;
                cur_idx = defined as u32;
                locals_base = stack.len() - side.param_slots as usize;
                stack.resize(locals_base + side.n_local_slots as usize, Slot::ZERO);
                labels_base = labels.len();
                pc = 0;
                continue;
            }
        }};
    }

    loop {
        // Amortized stack-limit check: growth per instruction is O(1).
        // The same epoch doubles as the baseline tier's fuel/interrupt
        // guard point, so the hot path pays nothing new for limits.
        limit_check += 1;
        if limit_check >= 1024 {
            limit_check = 0;
            if stack.len() > inst.limits.max_value_stack {
                return Err(Trap::StackExhausted);
            }
            inst.fuel_step(1024)?;
        }
        let instr = &body[pc];
        match instr {
            Instr::Nop => {}
            // Hot straight-line ops dispatched directly (one match, not
            // two); everything else falls through to exec::step below.
            // These arms intentionally mirror exec::step — any semantics
            // change there must be applied here (and to the register-form
            // handlers in dispatch.rs); the differential tests are the
            // safety net.
            Instr::LocalGet(i) => {
                let e = map[*i as usize];
                let at = locals_base + (e >> 1) as usize;
                let v = stack[at];
                stack.push(v);
                if e & 1 != 0 {
                    let hi = stack[at + 1];
                    stack.push(hi);
                }
            }
            Instr::LocalSet(i) => {
                let e = map[*i as usize];
                let at = locals_base + (e >> 1) as usize;
                if e & 1 != 0 {
                    stack[at + 1] = exec::pop(stack);
                }
                stack[at] = exec::pop(stack);
            }
            Instr::I32Const(v) => stack.push(Slot::from_i32(*v)),
            Instr::F64Const(v) => stack.push(Slot::from_f64(*v)),
            Instr::I32Add => {
                let b = exec::pop(stack).i32();
                let a = exec::pop(stack).i32();
                stack.push(Slot::from_i32(a.wrapping_add(b)));
            }
            Instr::I32Shl => {
                let b = exec::pop(stack).i32();
                let a = exec::pop(stack).i32();
                stack.push(Slot::from_i32(a.wrapping_shl(b as u32)));
            }
            Instr::I32GeS => {
                let b = exec::pop(stack).i32();
                let a = exec::pop(stack).i32();
                stack.push(Slot::from_bool(a >= b));
            }
            Instr::I32LtS => {
                let b = exec::pop(stack).i32();
                let a = exec::pop(stack).i32();
                stack.push(Slot::from_bool(a < b));
            }
            Instr::F64Add => {
                let b = exec::pop(stack).f64();
                let a = exec::pop(stack).f64();
                stack.push(Slot::from_f64(a + b));
            }
            Instr::F64Mul => {
                let b = exec::pop(stack).f64();
                let a = exec::pop(stack).f64();
                stack.push(Slot::from_f64(a * b));
            }
            Instr::F64Load(m) => {
                let addr = exec::pop(stack).u32();
                let start = inst.memory.effective(addr, m.offset, 8)?;
                stack.push(Slot::from_u64(u64::from_le_bytes(inst.memory.load::<8>(start))));
            }
            Instr::I32Load(m) => {
                let addr = exec::pop(stack).u32();
                let start = inst.memory.effective(addr, m.offset, 4)?;
                stack.push(Slot::from_u32(u32::from_le_bytes(inst.memory.load::<4>(start))));
            }
            Instr::F64Store(m) => {
                let val = exec::pop(stack).u64();
                let addr = exec::pop(stack).u32();
                let start = inst.memory.effective(addr, m.offset, 8)?;
                inst.memory.store(start, &val.to_le_bytes());
            }
            Instr::I32Store(m) => {
                let val = exec::pop(stack).u32();
                let addr = exec::pop(stack).u32();
                let start = inst.memory.effective(addr, m.offset, 4)?;
                inst.memory.store(start, &val.to_le_bytes());
            }
            Instr::Unreachable => return Err(Trap::Unreachable),
            Instr::Block(bt) => {
                let info = side.info(pc);
                labels.push(Label {
                    cont: info.end_pc + 1,
                    // The label height excludes block params (they are
                    // "passed into" the block); branch values land there.
                    height: stack.len() - param_arity(&module, bt),
                    br_arity: block_arity(&module, bt),
                    is_loop: false,
                });
            }
            Instr::Loop(bt) => {
                labels.push(Label {
                    cont: pc + 1,
                    height: stack.len() - param_arity(&module, bt),
                    br_arity: loop_arity(&module, bt),
                    is_loop: true,
                });
            }
            Instr::If(bt) => {
                let cond = exec::pop(stack).i32();
                let info = side.info(pc);
                labels.push(Label {
                    cont: info.end_pc + 1,
                    height: stack.len() - param_arity(&module, bt),
                    br_arity: block_arity(&module, bt),
                    is_loop: false,
                });
                if cond == 0 {
                    // Jump into the else arm, or to the End (which pops the
                    // label) when there is none.
                    pc = match info.else_pc {
                        Some(e) => e,
                        None => info.end_pc - 1, // step below advances onto End
                    };
                }
            }
            Instr::Else => {
                // Fallthrough from a then-arm: skip to the matching End,
                // which pops the label and carries the results.
                pc = side.info(pc).end_pc - 1;
            }
            Instr::End => {
                if labels.len() > labels_base {
                    labels.pop();
                } else {
                    // Function-level end: return to the caller (or out).
                    do_return!();
                }
            }
            Instr::Br(depth) => {
                match branch(stack, &mut labels, labels_base, *depth as usize) {
                    Some(target) => {
                        pc = target;
                        continue;
                    }
                    None => do_return!(),
                }
            }
            Instr::BrIf(depth) => {
                let cond = exec::pop(stack).i32();
                if cond != 0 {
                    match branch(stack, &mut labels, labels_base, *depth as usize) {
                        Some(target) => {
                            pc = target;
                            continue;
                        }
                        None => do_return!(),
                    }
                }
            }
            Instr::BrTable { targets, default } => {
                let idx = exec::pop(stack).u32() as usize;
                let depth = *targets.get(idx).unwrap_or(default) as usize;
                match branch(stack, &mut labels, labels_base, depth) {
                    Some(target) => {
                        pc = target;
                        continue;
                    }
                    None => do_return!(),
                }
            }
            Instr::Return => do_return!(),
            Instr::Call(f) => do_call!(*f),
            Instr::CallIndirect { type_idx, .. } => {
                let slot = exec::pop(stack).u32();
                let func_idx = inst.resolve_indirect(slot, *type_idx)?;
                do_call!(func_idx)
            }
            Instr::Drop => {
                exec::pop(stack);
                if side.wide[pc] {
                    exec::pop(stack);
                }
            }
            Instr::Select => {
                let c = exec::pop(stack).i32();
                if side.wide[pc] {
                    let b = exec::pop_v128(stack);
                    let a = exec::pop_v128(stack);
                    exec::push_v128(stack, if c != 0 { a } else { b });
                } else {
                    let b = exec::pop(stack);
                    let a = exec::pop(stack);
                    stack.push(if c != 0 { a } else { b });
                }
            }
            other => exec::step(inst, stack, locals_base, map, other)?,
        }
        pc += 1;
    }
}

fn block_arity(module: &Module, bt: &BlockType) -> usize {
    match bt {
        BlockType::Empty => 0,
        BlockType::Value(t) => t.slot_width() as usize,
        BlockType::Func(idx) => {
            widths::slot_count(&module.types[*idx as usize].results) as usize
        }
    }
}

/// Branches to a loop label carry the loop's parameters.
fn loop_arity(module: &Module, bt: &BlockType) -> usize {
    match bt {
        BlockType::Empty | BlockType::Value(_) => 0,
        BlockType::Func(idx) => {
            widths::slot_count(&module.types[*idx as usize].params) as usize
        }
    }
}

/// Slots a block's parameters occupy (already on the stack at entry).
fn param_arity(module: &Module, bt: &BlockType) -> usize {
    loop_arity(module, bt)
}

/// Perform a branch to `depth` within the current frame's labels. Returns
/// the new pc, or `None` to signal a function-level return (branch past
/// the outermost label).
fn branch(
    stack: &mut Vec<Slot>,
    labels: &mut Vec<Label>,
    labels_base: usize,
    depth: usize,
) -> Option<usize> {
    let in_frame = labels.len() - labels_base;
    if depth >= in_frame {
        // Branch targeting the function frame: a return.
        return None;
    }
    let idx = labels.len() - 1 - depth;
    let (cont, height, arity, is_loop) = {
        let l = &labels[idx];
        (l.cont, l.height, l.br_arity, l.is_loop)
    };
    // Carry the branch values over the unwound stack region, in place.
    if arity == 0 {
        stack.truncate(height);
    } else {
        let from = stack.len() - arity;
        if from != height {
            stack.copy_within(from.., height);
        }
        stack.truncate(height + arity);
    }
    if is_loop {
        labels.truncate(idx + 1);
    } else {
        labels.truncate(idx);
    }
    Some(cont)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType;

    #[test]
    fn side_table_matches_nested_blocks() {
        use Instr::*;
        // block ; loop ; if ; else ; end ; end ; end ; END(func)
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("f", vec![], vec![], |f| {
            f.emit_all([
                Block(BlockType::Empty),   // 0
                Loop(BlockType::Empty),    // 1
                I32Const(0),               // 2
                If(BlockType::Empty),      // 3
                Nop,                       // 4
                Else,                      // 5
                Nop,                       // 6
                End,                       // 7 closes if
                End,                       // 8 closes loop
                End,                       // 9 closes block
            ]);
        });
        let module = b.finish();
        let t = SideTable::build(&module, &module.functions[0]);
        let blk = t.info(0);
        assert_eq!(blk.end_pc, 9);
        assert_eq!(blk.else_pc, None);
        let lp = t.info(1);
        assert_eq!(lp.end_pc, 8);
        let iff = t.info(3);
        assert_eq!(iff.end_pc, 7);
        assert_eq!(iff.else_pc, Some(5));
        // Else maps to the same end.
        assert_eq!(t.info(5).end_pc, 7);
    }

    #[test]
    fn param_carrying_loop_branches_correctly() {
        // A `loop (param i32) (result i32)` whose backedge carries the
        // value: label height must exclude the param slot already on the
        // stack, or the carry corrupts the operand stack. Counts x up
        // until >= 10 across every tier.
        use crate::runtime::{CompiledModule, Linker, Value};
        use crate::tier::Tier;
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let loop_ty = b.type_idx(crate::types::FuncType::new(
            vec![ValType::I32],
            vec![ValType::I32],
        ));
        b.func("count", vec![ValType::I32], vec![ValType::I32], |f| {
            f.emit_all([
                Instr::LocalGet(0),
                Instr::Loop(BlockType::Func(loop_ty)),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::LocalTee(0),
                Instr::LocalGet(0),
                Instr::I32Const(10),
                Instr::I32LtS,
                Instr::BrIf(0),
                Instr::End,
            ]);
        });
        let module = b.finish();
        crate::validate::validate_module(&module).unwrap();
        for tier in Tier::ALL {
            let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
            let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
            let out = inst.invoke("count", &[Value::I32(0)]).unwrap();
            assert_eq!(out, vec![Value::I32(10)], "tier {tier}");
        }
    }

    #[test]
    fn side_table_records_slot_layout() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("f", vec![ValType::I32, ValType::F64], vec![ValType::I32], |f| {
            let v = f.local(ValType::V128);
            let _ = v;
            f.local_get(0);
        });
        let module = b.finish();
        let t = SideTable::build(&module, &module.functions[0]);
        assert_eq!(t.param_slots, 2);
        assert_eq!(t.result_slots, 1);
        assert_eq!(t.n_local_slots, 4); // i32 + f64 + v128(2)
        assert_eq!(t.local_map[0], 0 << 1);
        assert_eq!(t.local_map[1], 1 << 1);
        assert_eq!(t.local_map[2], 2 << 1 | 1);
    }
}

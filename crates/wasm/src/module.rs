//! In-memory representation of a decoded (or built) Wasm module.

use crate::instr::Instr;
use crate::types::{ExternKind, FuncType, GlobalType, Limits, ValType};

/// An import required by the module, to be satisfied by the embedder.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Namespace, e.g. `env` for MPI functions or `wasi_snapshot_preview1`.
    pub module: String,
    /// Item name within the namespace, e.g. `MPI_Send` or `fd_write`.
    pub name: String,
    pub kind: ExternKind,
}

/// An export provided by the module to the embedder.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    pub name: String,
    pub kind: ExportKind,
    pub index: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    Func,
    Table,
    Memory,
    Global,
}

/// A function defined inside the module (imports are listed separately).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Index into [`Module::types`].
    pub type_idx: u32,
    /// Declared locals (beyond parameters), already expanded from the
    /// run-length binary encoding.
    pub locals: Vec<ValType>,
    /// The body, ending with an implicit function-level `End` which the
    /// decoder keeps in place (the last instruction is always `Instr::End`).
    pub body: Vec<Instr>,
}

/// A global variable definition: type plus constant initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    pub ty: GlobalType,
    /// The init expression; the validator restricts it to a single constant
    /// instruction (`iNN.const` / `fNN.const`), as in the MVP.
    pub init: Instr,
}

/// An active element segment populating the funcref table.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementSegment {
    pub table: u32,
    /// Constant i32 offset into the table.
    pub offset: i32,
    /// Function indices to place.
    pub funcs: Vec<u32>,
}

/// An active data segment initializing linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    pub memory: u32,
    /// Constant i32 offset into memory.
    pub offset: i32,
    pub bytes: Vec<u8>,
}

/// A complete module: mirror of the binary sections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    pub types: Vec<FuncType>,
    pub imports: Vec<Import>,
    pub functions: Vec<Function>,
    pub tables: Vec<Limits>,
    pub memories: Vec<Limits>,
    pub globals: Vec<Global>,
    pub exports: Vec<Export>,
    pub start: Option<u32>,
    pub elements: Vec<ElementSegment>,
    pub data: Vec<DataSegment>,
    /// Optional module name from the custom `name` section.
    pub name: Option<String>,
}

impl Module {
    /// Number of imported functions; defined functions are indexed after
    /// these in the function index space.
    pub fn num_imported_funcs(&self) -> usize {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ExternKind::Func(_)))
            .count()
    }

    /// The function type for an index in the *function index space*
    /// (imports first, then defined functions).
    pub fn func_type(&self, func_idx: u32) -> Option<&FuncType> {
        let mut seen = 0u32;
        for imp in &self.imports {
            if let ExternKind::Func(type_idx) = imp.kind {
                if seen == func_idx {
                    return self.types.get(type_idx as usize);
                }
                seen += 1;
            }
        }
        let defined_idx = (func_idx - seen) as usize;
        let f = self.functions.get(defined_idx)?;
        self.types.get(f.type_idx as usize)
    }

    /// Iterate over imported functions as `(module, name, type_idx)`.
    pub fn imported_funcs(&self) -> impl Iterator<Item = (&str, &str, u32)> {
        self.imports.iter().filter_map(|i| match i.kind {
            ExternKind::Func(t) => Some((i.module.as_str(), i.name.as_str(), t)),
            _ => None,
        })
    }

    /// Find an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Look up the type of a defined function by its index in the function
    /// index space. Returns `None` for imported indices.
    pub fn defined_func(&self, func_idx: u32) -> Option<&Function> {
        let imported = self.num_imported_funcs() as u32;
        if func_idx < imported {
            return None;
        }
        self.functions.get((func_idx - imported) as usize)
    }

    /// Total number of functions in the function index space.
    pub fn num_funcs(&self) -> usize {
        self.num_imported_funcs() + self.functions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ExternKind, FuncType, ValType};

    fn two_import_module() -> Module {
        let mut m = Module::default();
        m.types.push(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.types.push(FuncType::new(vec![], vec![]));
        m.imports.push(Import {
            module: "env".into(),
            name: "MPI_Init".into(),
            kind: ExternKind::Func(0),
        });
        m.imports.push(Import {
            module: "env".into(),
            name: "MPI_Finalize".into(),
            kind: ExternKind::Func(1),
        });
        m.functions.push(Function { type_idx: 1, locals: vec![], body: vec![Instr::End] });
        m
    }

    #[test]
    fn function_index_space_spans_imports_then_defined() {
        let m = two_import_module();
        assert_eq!(m.num_imported_funcs(), 2);
        assert_eq!(m.num_funcs(), 3);
        assert_eq!(m.func_type(0).unwrap().params, vec![ValType::I32]);
        assert_eq!(m.func_type(1).unwrap().params, Vec::<ValType>::new());
        assert_eq!(m.func_type(2).unwrap().results, Vec::<ValType>::new());
        assert!(m.func_type(3).is_none());
    }

    #[test]
    fn defined_func_skips_imports() {
        let m = two_import_module();
        assert!(m.defined_func(0).is_none());
        assert!(m.defined_func(1).is_none());
        assert!(m.defined_func(2).is_some());
    }

    #[test]
    fn export_lookup() {
        let mut m = two_import_module();
        m.exports.push(Export { name: "_start".into(), kind: ExportKind::Func, index: 2 });
        assert_eq!(m.export("_start").unwrap().index, 2);
        assert!(m.export("missing").is_none());
    }
}

//! Superblock discovery over the register-form op stream plus the
//! per-module promotion state — the analysis half of the profile-guided
//! top tier ([`crate::tier::Tier::MaxJit`]). The lowering half, which
//! turns each superblock into a chain of monomorphized closures, lives in
//! [`crate::closures`].
//!
//! # Superblock formation
//!
//! A superblock is a single-entry, multi-exit trace through a function's
//! [`RegOp`] stream: it starts at a *head* ip, follows straight-line ops
//! and the **likely** side of every branch, and records a guard exit for
//! each unlikely side. Heads are the ips control re-enters repeatedly —
//! ip 0 (function entry) and every backward-branch target (loop header).
//! The likely side of a conditional branch is the *taken* side when the
//! target is at or before the branch (a loop backedge, taken every
//! iteration but the last) and the *fallthrough* side otherwise (forward
//! branches are bail-outs: bounds checks, early exits).
//!
//! Trace growth stops at:
//! * ops that transfer control out of the frame (`Return`, calls,
//!   `BrTable`, `Unreachable`) — the interpreter resumes at exactly that
//!   ip and executes the op itself;
//! * a branch to an already-visited ip (a cycle): the chain ends and the
//!   dispatch loop re-enters it — except that a backedge to the trace's
//!   own head (conditional or unconditional) stays *in-chain*, so a loop
//!   iterates inside one chain call without returning to the dispatch
//!   loop at all;
//! * reaching a *different* head: that ip has its own chain, so the
//!   trace ends there instead of inlining the inner loop — the resume ip
//!   lands directly on the inner chain and outer-loop chains stay small;
//! * the [`MAX_TRACE`] op cap.
//!
//! # Interpreter-fallback invariant
//!
//! Every exit from a chain — guard bail, trace end, or cycle — resumes
//! the threaded interpreter at a *recorded ip of the unmodified op
//! stream*, with all effects of the chain's already-executed ops
//! committed to the frame exactly as the interpreter would have left
//! them. Chains add no speculative state: a mid-chain trap therefore
//! unwinds identically to an interpreted trap, and the differential
//! suite holds MaxJit to byte- and trap-kind-identical results.
//!
//! # Promotion heuristic
//!
//! [`JitState`] keeps one counter per defined function, bumped on every
//! function entry/resume and every backward control transfer inside the
//! function (so single-call hot-loop functions still promote). When a
//! counter reaches the threshold (default [`DEFAULT_HOT_THRESHOLD`];
//! tests lower it via `CompiledModule::set_jit_threshold`), the
//! function's superblocks are compiled once behind a `OnceLock` and
//! shared by every instance of the compiled module — repeated
//! invocations, e.g. benchmark reps, accumulate hotness instead of
//! rediscovering it.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::closures::{self, ChainTally, FnChains};
use crate::regalloc::{window_safe, Rc, RegFunc, RegOp};

/// Hard cap on ops folded into one chain: bounds compile time and
/// resident size per block. Chains execute as a flat loop over
/// pre-decoded steps, so the cap can afford whole unrolled loop bodies
/// (hpcg's 27-point stencil body alone is ~400 ops).
const MAX_TRACE: usize = 1024;

/// Hotness events before a function is superblock-compiled. High enough
/// that cold code never pays compile time, low enough that one benchmark
/// warmup rep promotes every loop that matters.
pub(crate) const DEFAULT_HOT_THRESHOLD: u32 = 64;

/// One step of a superblock trace, in execution order.
pub(crate) enum Step {
    /// A plain fallthrough op ([`window_safe`]) executed exactly as the
    /// interpreter would.
    Op { op: RegOp, ip: u32 },
    /// An unconditional `Br` taken in-chain: only its unwind copy runs
    /// (the control transfer is implicit in the trace).
    Unwind { imm: u64 },
    /// A conditional branch whose likely (taken, backward) side continues
    /// in-chain: the unwind copy runs and the trace proceeds at the
    /// target; when untaken the chain bails to `fall_ip`.
    GuardTaken { op: RegOp, fall_ip: u32 },
    /// A conditional branch whose likely side is the fallthrough: the
    /// trace proceeds past it; when taken the unwind copy runs and the
    /// chain bails to the branch target.
    GuardFall { op: RegOp },
    /// An unconditional branch back to the trace's own head (`Jump`/`Br`
    /// closing a while-shaped loop): the unwind copy runs and the chain
    /// re-enters at its first step, keeping the loop in-chain.
    Backedge { imm: u64 },
}

/// A discovered superblock: the trace plus where the interpreter resumes
/// when the chain runs off its end.
pub(crate) struct Superblock {
    pub head: u32,
    pub steps: Vec<Step>,
    pub resume: u32,
}

/// Collect superblock heads: function entry plus every backward branch
/// target (conditional, unconditional, and `br_table` entries).
fn heads(f: &RegFunc) -> Vec<u32> {
    let mut heads = vec![0u32];
    for (i, op) in f.code.iter().enumerate() {
        match op.code {
            Rc::Jump | Rc::Br | Rc::BrIf | Rc::BrIfZ | Rc::BrIfCmp32 | Rc::BrIfCmp32K => {
                if op.c as usize <= i {
                    heads.push(op.c);
                }
            }
            Rc::BrTable => {
                let start = op.b as usize;
                let end = (start + op.c as usize + 1).min(f.dest_pool.len());
                for d in &f.dest_pool[start.min(end)..end] {
                    if d.target as usize <= i {
                        heads.push(d.target);
                    }
                }
            }
            _ => {}
        }
    }
    heads.sort_unstable();
    heads.dedup();
    heads.retain(|&h| (h as usize) < f.code.len());
    heads
}

/// Grow one trace from `head`. Returns `None` for traces with no body
/// (e.g. a head sitting directly on a `Return`). `heads` holds every
/// discovered head in the function: a trace that reaches a *different*
/// head stops there instead of inlining that loop — the resume ip lands
/// exactly on the other head's own chain, so stopping costs nothing at
/// run time and keeps outer-loop chains from duplicating (and dwarfing)
/// every inner-loop body.
fn trace(f: &RegFunc, head: u32, heads: &[u32]) -> Option<Superblock> {
    let code = &f.code;
    let mut steps = Vec::new();
    // Branch targets already part of the trace; following one again would
    // loop discovery (and unroll the guest loop), so the trace ends there.
    let mut visited = vec![head];
    let follow = |t: u32, visited: &mut Vec<u32>| -> Option<usize> {
        if visited.contains(&t) {
            None
        } else {
            visited.push(t);
            Some(t as usize)
        }
    };
    let mut ip = head as usize;
    let resume = loop {
        if steps.len() >= MAX_TRACE || ip >= code.len() {
            break ip as u32;
        }
        if !steps.is_empty() && ip as u32 != head && heads.binary_search(&(ip as u32)).is_ok() {
            break ip as u32;
        }
        let op = code[ip];
        match op.code {
            Rc::Jump => {
                if op.c == head {
                    steps.push(Step::Backedge { imm: 0 });
                    break head;
                }
                match follow(op.c, &mut visited) {
                    Some(t) => ip = t,
                    None => break ip as u32,
                }
            }
            Rc::Br => {
                if op.c == head {
                    steps.push(Step::Backedge { imm: op.imm });
                    break head;
                }
                match follow(op.c, &mut visited) {
                    Some(t) => {
                        if op.imm != 0 {
                            steps.push(Step::Unwind { imm: op.imm });
                        }
                        ip = t;
                    }
                    None => break ip as u32,
                }
            }
            Rc::BrIf | Rc::BrIfZ | Rc::BrIfCmp32 | Rc::BrIfCmp32K => {
                let taken_likely = op.c as usize <= ip;
                if taken_likely && op.c == head {
                    // The trace's own loop backedge: guard it in-chain so
                    // an iteration is one chain call, and resume at the
                    // head — where the dispatch loop re-enters the chain.
                    steps.push(Step::GuardTaken { op, fall_ip: ip as u32 + 1 });
                    break head;
                }
                if taken_likely {
                    match follow(op.c, &mut visited) {
                        Some(t) => {
                            steps.push(Step::GuardTaken { op, fall_ip: ip as u32 + 1 });
                            ip = t;
                        }
                        None => break ip as u32,
                    }
                } else {
                    steps.push(Step::GuardFall { op });
                    ip += 1;
                }
            }
            _ if window_safe(&op) => {
                steps.push(Step::Op { op, ip: ip as u32 });
                ip += 1;
            }
            // Return / calls / BrTable / Unreachable: the interpreter
            // executes the op itself.
            _ => break ip as u32,
        }
    };
    if steps.is_empty() {
        return None;
    }
    Some(Superblock { head, steps, resume })
}

/// Discover every superblock of a function, longest-first per head.
pub(crate) fn discover(f: &RegFunc) -> Vec<Superblock> {
    let hs = heads(f);
    hs.iter().filter_map(|&h| trace(f, h, &hs)).collect()
}

/// Per-compiled-module promotion state for the superblock tier: hotness
/// counters and lazily compiled chains, one pair per defined function.
/// Shared (`Arc`) by the [`crate::runtime::CompiledModule`] and all its
/// instances; [`JitState::bump`] hands out chains as plain borrows so the
/// dispatch loop pays no refcount traffic on function transitions.
pub(crate) struct JitState {
    threshold: AtomicU32,
    funcs: Vec<FuncJit>,
    /// Whether [`crate::dispatch`] keeps per-call tallies and flushes them
    /// here. Read once per `run_jit` call — hot dispatch pays nothing
    /// beyond that single load when profiling is off.
    profiling: AtomicBool,
    promotions: AtomicU64,
    chains_entered: AtomicU64,
    guard_exits: AtomicU64,
    fallback_steps: AtomicU64,
    /// Called with the defined-function index each time a function is
    /// promoted (chains compiled). Set by the embedder; the wasm crate
    /// stays free of any tracing dependency.
    promotion_hook: Mutex<Option<Box<dyn Fn(u32) + Send + Sync>>>,
}

struct FuncJit {
    counter: AtomicU32,
    chains: OnceLock<FnChains>,
}

/// Point-in-time copy of the profiling counters
/// ([`crate::runtime::CompiledModule::jit_snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitSnapshot {
    /// Functions promoted to compiled superblock chains.
    pub promotions: u64,
    /// Chain executions entered from the dispatch loop.
    pub chains_entered: u64,
    /// Chain exits through a guard's unlikely side.
    pub guard_exits: u64,
    /// Fallback-closure steps executed inside chains.
    pub fallback_steps: u64,
}

impl JitSnapshot {
    /// The counters as named metric entries (`jit.*`).
    pub fn metric_entries(&self) -> [(&'static str, u64); 4] {
        [
            ("jit.promotions", self.promotions),
            ("jit.chains_entered", self.chains_entered),
            ("jit.guard_exits", self.guard_exits),
            ("jit.fallback_steps", self.fallback_steps),
        ]
    }
}

impl JitState {
    pub(crate) fn new(n_funcs: usize) -> Self {
        JitState {
            threshold: AtomicU32::new(DEFAULT_HOT_THRESHOLD),
            funcs: (0..n_funcs)
                .map(|_| FuncJit { counter: AtomicU32::new(0), chains: OnceLock::new() })
                .collect(),
            profiling: AtomicBool::new(false),
            promotions: AtomicU64::new(0),
            chains_entered: AtomicU64::new(0),
            guard_exits: AtomicU64::new(0),
            fallback_steps: AtomicU64::new(0),
            promotion_hook: Mutex::new(None),
        }
    }

    /// Lower the promotion threshold (test hook; also reachable through
    /// `CompiledModule::set_jit_threshold`).
    pub(crate) fn set_threshold(&self, n: u32) {
        self.threshold.store(n.max(1), Ordering::Relaxed);
    }

    pub(crate) fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn profiling(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    pub(crate) fn set_promotion_hook(&self, hook: Box<dyn Fn(u32) + Send + Sync>) {
        *self.promotion_hook.lock().unwrap() = Some(hook);
    }

    /// Fold one `run_jit` call's local tallies into the shared counters
    /// (only reached when profiling is on).
    pub(crate) fn flush(&self, chains_entered: u64, tally: &ChainTally) {
        self.chains_entered.fetch_add(chains_entered, Ordering::Relaxed);
        self.guard_exits.fetch_add(tally.guard_exits, Ordering::Relaxed);
        self.fallback_steps.fetch_add(tally.fallback_steps, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> JitSnapshot {
        JitSnapshot {
            promotions: self.promotions.load(Ordering::Relaxed),
            chains_entered: self.chains_entered.load(Ordering::Relaxed),
            guard_exits: self.guard_exits.load(Ordering::Relaxed),
            fallback_steps: self.fallback_steps.load(Ordering::Relaxed),
        }
    }

    /// Record one hotness event for defined function `idx` and return its
    /// chains if it is (or just became) hot. `f` must be that function's
    /// register form — chains are compiled from it on promotion.
    pub(crate) fn bump(&self, idx: u32, f: &RegFunc) -> Option<&FnChains> {
        let fj = &self.funcs[idx as usize];
        if let Some(c) = fj.chains.get() {
            return Some(c);
        }
        let n = fj.counter.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        if n < self.threshold.load(Ordering::Relaxed) {
            return None;
        }
        Some(fj.chains.get_or_init(|| {
            self.promotions.fetch_add(1, Ordering::Relaxed);
            if let Some(hook) = self.promotion_hook.lock().unwrap().as_ref() {
                hook(idx);
            }
            closures::compile_fn(f)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::tier::{CompiledBody, Tier};
    use crate::types::ValType;

    fn reg_of(build: impl Fn(&mut crate::builder::FunctionBuilder)) -> RegFunc {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("f", vec![ValType::I32, ValType::I32], vec![ValType::I32], build);
        let module = b.finish();
        crate::validate::validate_module(&module).unwrap();
        let compiled = crate::runtime::CompiledModule::compile(module, Tier::MaxJit).unwrap();
        match &compiled.bodies()[0] {
            CompiledBody::Flat(f) => f.reg.clone(),
            CompiledBody::Interp(_) => panic!("flat tier expected"),
        }
    }

    #[test]
    fn loop_body_forms_backedge_guarded_superblock() {
        // do { x += 1 } while (x < k): a head at the loop header, with
        // the conditional backedge guarded in-chain (resume == head).
        use crate::instr::Instr as I;
        use crate::types::BlockType;
        let rf = reg_of(|f| {
            f.emit_all([
                I::Loop(BlockType::Empty),
                I::LocalGet(0),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(0),
                I::LocalGet(0),
                I::LocalGet(1),
                I::I32LtS,
                I::BrIf(0),
                I::End,
                I::LocalGet(0),
                I::Return,
            ]);
        });
        let blocks = discover(&rf);
        let with_backedge: Vec<_> = blocks.iter().filter(|b| b.resume == b.head).collect();
        assert!(
            !with_backedge.is_empty(),
            "expected an in-chain backedge block, got {:?}",
            blocks.iter().map(|b| (b.head, b.resume, b.steps.len())).collect::<Vec<_>>()
        );
        assert!(with_backedge[0]
            .steps
            .iter()
            .any(|s| matches!(s, Step::GuardTaken { .. })));
    }

    #[test]
    fn traces_end_at_returns_and_respect_the_cap() {
        let rf = reg_of(|f| {
            use crate::instr::Instr as I;
            f.emit_all([I::LocalGet(0), I::LocalGet(1), I::I32Add, I::Return]);
        });
        for b in discover(&rf) {
            assert!(b.steps.len() <= MAX_TRACE);
            assert_eq!(rf.code[b.resume as usize].code, Rc::Return);
        }
    }
}

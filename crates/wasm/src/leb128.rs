//! LEB128 variable-length integer encoding, as used throughout the Wasm
//! binary format (unsigned for counts/indices, signed for constants).

use crate::error::DecodeError;

/// A cursor over a byte slice with LEB128 and fixed-width readers.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current byte offset from the start of the underlying slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError::new(self.pos, message)
    }

    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Peek the next byte without consuming it.
    pub fn peek_u8(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub fn read_bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < len {
            return Err(self.err(format!("need {len} bytes, only {} left", self.remaining())));
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Unsigned LEB128, at most 32 bits of payload.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        let mut result: u32 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            let low = (byte & 0x7f) as u32;
            if shift == 28 && (byte & 0x70) != 0 {
                return Err(self.err("u32 LEB128 overflows 32 bits"));
            }
            if shift >= 32 {
                return Err(self.err("u32 LEB128 too long"));
            }
            result |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Unsigned LEB128, at most 64 bits of payload.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= 64 {
                return Err(self.err("u64 LEB128 too long"));
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Signed LEB128, 33-bit range used for block types and i32 constants.
    pub fn read_i32(&mut self) -> Result<i32, DecodeError> {
        let v = self.read_i64_limited(32)?;
        Ok(v as i32)
    }

    /// Signed LEB128, 64-bit.
    pub fn read_i64(&mut self) -> Result<i64, DecodeError> {
        self.read_i64_limited(64)
    }

    /// Signed LEB128 with 33-bit payload (block types use this width).
    pub fn read_s33(&mut self) -> Result<i64, DecodeError> {
        self.read_i64_limited(33)
    }

    fn read_i64_limited(&mut self, bits: u32) -> Result<i64, DecodeError> {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= bits + 7 {
                return Err(self.err("signed LEB128 too long"));
            }
            result |= ((byte & 0x7f) as i64) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                // Sign-extend from the final group.
                if shift < 64 && (byte & 0x40) != 0 {
                    result |= -1i64 << shift;
                }
                return Ok(result);
            }
        }
    }

    pub fn read_f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.read_bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn read_f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.read_bytes(8)?;
        Ok(f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// A length-prefixed UTF-8 name.
    pub fn read_name(&mut self) -> Result<String, DecodeError> {
        let len = self.read_u32()? as usize;
        let start = self.pos;
        let bytes = self.read_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::new(start, "name is not valid UTF-8"))
    }

    /// Sub-reader over the next `len` bytes (used for section payloads).
    pub fn sub_reader(&mut self, len: usize) -> Result<Reader<'a>, DecodeError> {
        let bytes = self.read_bytes(len)?;
        Ok(Reader::new(bytes))
    }
}

/// Append an unsigned 32-bit LEB128 value.
pub fn write_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let mut byte = (value & 0x7f) as u8;
        value >>= 7;
        if value != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if value == 0 {
            break;
        }
    }
}

/// Append an unsigned 64-bit LEB128 value.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let mut byte = (value & 0x7f) as u8;
        value >>= 7;
        if value != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if value == 0 {
            break;
        }
    }
}

/// Append a signed 32-bit LEB128 value.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, value as i64)
}

/// Append a signed 64-bit LEB128 value.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_bit = byte & 0x40 != 0;
        let done = (value == 0 && !sign_bit) || (value == -1 && sign_bit);
        out.push(if done { byte } else { byte | 0x80 });
        if done {
            break;
        }
    }
}

/// Append a length-prefixed UTF-8 name.
pub fn write_name(out: &mut Vec<u8>, name: &str) {
    write_u32(out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u32(v: u32) -> u32 {
        let mut buf = Vec::new();
        write_u32(&mut buf, v);
        Reader::new(&buf).read_u32().unwrap()
    }

    fn roundtrip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        Reader::new(&buf).read_i64().unwrap()
    }

    #[test]
    fn u32_roundtrip_edge_cases() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX, u32::MAX - 1, 0x0808_0808] {
            assert_eq!(roundtrip_u32(v), v);
        }
    }

    #[test]
    fn i64_roundtrip_edge_cases() {
        for v in [0i64, 1, -1, 63, 64, -64, -65, i64::MAX, i64::MIN, 0x7fff_ffff, -0x8000_0000]
        {
            assert_eq!(roundtrip_i64(v), v);
        }
    }

    #[test]
    fn i32_roundtrip() {
        for v in [0i32, -1, i32::MIN, i32::MAX, 1234567, -7654321] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            assert_eq!(Reader::new(&buf).read_i32().unwrap(), v);
        }
    }

    #[test]
    fn u32_overflow_rejected() {
        // 5 continuation bytes with high payload bits set -> overflow.
        let buf = [0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(Reader::new(&buf).read_u32().is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let buf = [0x80, 0x80];
        assert!(Reader::new(&buf).read_u32().is_err());
        assert!(Reader::new(&[]).read_u8().is_err());
    }

    #[test]
    fn name_roundtrip_and_invalid_utf8() {
        let mut buf = Vec::new();
        write_name(&mut buf, "env");
        assert_eq!(Reader::new(&buf).read_name().unwrap(), "env");

        let bad = [2, 0xff, 0xfe];
        assert!(Reader::new(&bad).read_name().is_err());
    }

    #[test]
    fn floats_roundtrip() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_f32().unwrap(), 1.5);
        assert_eq!(r.read_f64().unwrap(), -2.25);
    }

    #[test]
    fn canonical_single_byte_encodings() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 5);
        assert_eq!(buf, [5]);
        buf.clear();
        write_i64(&mut buf, -1);
        assert_eq!(buf, [0x7f]);
    }
}

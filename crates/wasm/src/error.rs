//! Error types shared across the engine: decode failures, validation
//! failures, and runtime traps.

use std::fmt;

/// An error produced while parsing a Wasm binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset in the binary at which the error was detected.
    pub offset: usize,
    /// Human-readable description of the malformed construct.
    pub message: String,
}

impl DecodeError {
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        Self { offset, message: message.into() }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at offset {:#x}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// An error produced while validating a decoded module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Index of the function being validated, if the error is inside a body.
    pub func: Option<u32>,
    /// Human-readable description of the invalid construct.
    pub message: String,
}

impl ValidateError {
    pub fn module(message: impl Into<String>) -> Self {
        Self { func: None, message: message.into() }
    }

    pub fn in_func(func: u32, message: impl Into<String>) -> Self {
        Self { func: Some(func), message: message.into() }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(i) => write!(f, "validation error in function {}: {}", i, self.message),
            None => write!(f, "validation error: {}", self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

/// A runtime trap. Traps abort guest execution and unwind to the embedder;
/// they are the Wasm sandbox's answer to faults (out-of-bounds access,
/// division by zero, …) and to host-side policy violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The `unreachable` instruction was executed.
    Unreachable,
    /// A linear-memory access fell outside the module's memory.
    MemoryOutOfBounds { addr: u64, len: u64, memory_size: u64 },
    /// `call_indirect` through a null or out-of-range table slot.
    UndefinedTableElement { index: u32 },
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Integer division or remainder by zero.
    IntegerDivideByZero,
    /// `i32.div_s`/`i64.div_s` overflow (`INT_MIN / -1`).
    IntegerOverflow,
    /// Float-to-int truncation of NaN or out-of-range value.
    InvalidConversionToInteger,
    /// The value stack exceeded the engine limit (guards against runaway
    /// recursion; the spec calls this stack exhaustion).
    StackExhausted,
    /// `memory.grow` beyond the declared maximum (reported as -1 per spec
    /// in guest code; used as a trap only by embedder-internal helpers).
    MemoryGrowFailed,
    /// The guest ran out of execution fuel (see `Instance::set_fuel`).
    /// Fuel is consumed at guard points — backward branches, call sites,
    /// and the interpreter's instruction epochs — so a runaway guest is
    /// interrupted within a bounded number of steps.
    OutOfFuel,
    /// The embedder raised the instance's interrupt flag (deadline timer,
    /// job cancellation); execution stopped at the next guard point.
    Interrupted,
    /// A host function signalled an error. The string is the host's message
    /// (e.g. a WASI errno description or an MPI failure).
    Host(String),
    /// The guest called `proc_exit(code)`. Not an error per se; carries the
    /// exit code to the embedder.
    Exit(i32),
}

impl Trap {
    /// Convenience constructor for host-side failures.
    pub fn host(message: impl Into<String>) -> Self {
        Trap::Host(message.into())
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds { addr, len, memory_size } => write!(
                f,
                "out-of-bounds memory access: [{addr:#x}, {:#x}) outside memory of {memory_size:#x} bytes",
                addr + len
            ),
            Trap::UndefinedTableElement { index } => {
                write!(f, "undefined table element at index {index}")
            }
            Trap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::IntegerDivideByZero => write!(f, "integer divide by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversionToInteger => write!(f, "invalid conversion to integer"),
            Trap::StackExhausted => write!(f, "call stack exhausted"),
            Trap::MemoryGrowFailed => write!(f, "memory.grow failed"),
            Trap::OutOfFuel => write!(f, "execution fuel exhausted"),
            Trap::Interrupted => write!(f, "execution interrupted by the embedder"),
            Trap::Host(m) => write!(f, "host error: {m}"),
            Trap::Exit(code) => write!(f, "guest exited with code {code}"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_error_display_includes_offset() {
        let e = DecodeError::new(0x10, "bad section id");
        assert!(e.to_string().contains("0x10"));
        assert!(e.to_string().contains("bad section id"));
    }

    #[test]
    fn validate_error_display_includes_function() {
        let e = ValidateError::in_func(3, "type mismatch");
        assert!(e.to_string().contains("function 3"));
        let m = ValidateError::module("no memory");
        assert!(!m.to_string().contains("function"));
    }

    #[test]
    fn trap_display_oob_shows_range() {
        let t = Trap::MemoryOutOfBounds { addr: 0x100, len: 8, memory_size: 0x100 };
        let s = t.to_string();
        assert!(s.contains("0x100"), "{s}");
        assert!(s.contains("0x108"), "{s}");
    }

    #[test]
    fn trap_exit_is_distinguishable() {
        assert_eq!(Trap::Exit(0), Trap::Exit(0));
        assert_ne!(Trap::Exit(0), Trap::Exit(1));
        assert_ne!(Trap::Exit(0), Trap::Unreachable);
    }
}

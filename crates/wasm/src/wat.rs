//! A WebAssembly-text-format printer for debugging and documentation.
//!
//! Produces output in the spirit of the paper's Listings 1 and 3: type
//! declarations, imports with namespaces, exports, and function bodies with
//! indentation following the structured nesting. The output is meant for
//! humans (and tests); it is not a parseable round-trip format.

use crate::instr::Instr;
use crate::module::Module;
use crate::types::{BlockType, ExternKind};
use std::fmt::Write;

/// Render a module in WAT-like text.
pub fn to_wat(module: &Module) -> String {
    let mut out = String::new();
    let name = module.name.as_deref().unwrap_or("");
    let _ = writeln!(out, "(module {name}");

    for (i, ty) in module.types.iter().enumerate() {
        let params: Vec<String> = ty.params.iter().map(|t| t.to_string()).collect();
        let results: Vec<String> = ty.results.iter().map(|t| t.to_string()).collect();
        let _ = write!(out, "  (type (;{i};) (func");
        if !params.is_empty() {
            let _ = write!(out, " (param {})", params.join(" "));
        }
        if !results.is_empty() {
            let _ = write!(out, " (result {})", results.join(" "));
        }
        let _ = writeln!(out, "))");
    }

    for imp in &module.imports {
        let desc = match &imp.kind {
            ExternKind::Func(t) => format!("(func (type {t}))"),
            ExternKind::Table(l) => format!("(table {} funcref)", l.min),
            ExternKind::Memory(l) => format!("(memory {})", l.min),
            ExternKind::Global(g) => format!("(global {})", g.val_type),
        };
        let _ = writeln!(out, "  (import \"{}\" \"{}\" {desc})", imp.module, imp.name);
    }

    for (i, mem) in module.memories.iter().enumerate() {
        match mem.max {
            Some(max) => {
                let _ = writeln!(out, "  (memory (;{i};) {} {})", mem.min, max);
            }
            None => {
                let _ = writeln!(out, "  (memory (;{i};) {})", mem.min);
            }
        }
    }

    let imported = module.num_imported_funcs() as u32;
    for (i, func) in module.functions.iter().enumerate() {
        let idx = imported + i as u32;
        let _ = writeln!(out, "  (func (;{idx};) (type {})", func.type_idx);
        if !func.locals.is_empty() {
            let locals: Vec<String> = func.locals.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(out, "    (local {})", locals.join(" "));
        }
        let mut indent = 2usize;
        for instr in &func.body {
            if matches!(instr, Instr::End | Instr::Else) {
                indent = indent.saturating_sub(1);
            }
            let _ = writeln!(out, "{}{}", "  ".repeat(indent + 1), instr_text(instr));
            if instr.opens_block() || matches!(instr, Instr::Else) {
                indent += 1;
            }
        }
        let _ = writeln!(out, "  )");
    }

    for e in &module.exports {
        let kind = match e.kind {
            crate::module::ExportKind::Func => "func",
            crate::module::ExportKind::Table => "table",
            crate::module::ExportKind::Memory => "memory",
            crate::module::ExportKind::Global => "global",
        };
        let _ = writeln!(out, "  (export \"{}\" ({kind} {}))", e.name, e.index);
    }
    out.push_str(")\n");
    out
}

fn block_type_text(bt: &BlockType) -> String {
    match bt {
        BlockType::Empty => String::new(),
        BlockType::Value(t) => format!(" (result {t})"),
        BlockType::Func(i) => format!(" (type {i})"),
    }
}

fn instr_text(i: &Instr) -> String {
    use Instr::*;
    match i {
        Block(bt) => format!("block{}", block_type_text(bt)),
        Loop(bt) => format!("loop{}", block_type_text(bt)),
        If(bt) => format!("if{}", block_type_text(bt)),
        Else => "else".into(),
        End => "end".into(),
        Br(d) => format!("br {d}"),
        BrIf(d) => format!("br_if {d}"),
        BrTable { targets, default } => format!("br_table {targets:?} {default}"),
        Call(f) => format!("call {f}"),
        CallIndirect { type_idx, .. } => format!("call_indirect (type {type_idx})"),
        I32Const(v) => format!("i32.const {v}"),
        I64Const(v) => format!("i64.const {v}"),
        F32Const(v) => format!("f32.const {v}"),
        F64Const(v) => format!("f64.const {v}"),
        LocalGet(i) => format!("local.get {i}"),
        LocalSet(i) => format!("local.set {i}"),
        LocalTee(i) => format!("local.tee {i}"),
        GlobalGet(i) => format!("global.get {i}"),
        GlobalSet(i) => format!("global.set {i}"),
        I32Load(m) => format!("i32.load offset={}", m.offset),
        I64Load(m) => format!("i64.load offset={}", m.offset),
        F32Load(m) => format!("f32.load offset={}", m.offset),
        F64Load(m) => format!("f64.load offset={}", m.offset),
        I32Store(m) => format!("i32.store offset={}", m.offset),
        I64Store(m) => format!("i64.store offset={}", m.offset),
        F32Store(m) => format!("f32.store offset={}", m.offset),
        F64Store(m) => format!("f64.store offset={}", m.offset),
        other => format!("{other:?}").to_lowercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType;

    #[test]
    fn wat_output_mentions_imports_and_exports() {
        let mut b = ModuleBuilder::new();
        b.name("watdemo");
        b.memory(1, Some(2));
        let init = b.import_func(
            "env",
            "MPI_Init",
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
        );
        b.func("_start", vec![], vec![], |f| {
            f.i32_const(0).i32_const(0).call(init).drop();
        });
        let wat = to_wat(&b.finish());
        assert!(wat.contains("(import \"env\" \"MPI_Init\""), "{wat}");
        assert!(wat.contains("(export \"_start\""), "{wat}");
        assert!(wat.contains("(export \"memory\""), "{wat}");
        assert!(wat.contains("i32.const 0"), "{wat}");
    }

    #[test]
    fn wat_indents_blocks() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("f", vec![], vec![], |f| {
            f.block(crate::types::BlockType::Empty);
            f.i32_const(1).drop();
            f.end();
        });
        let wat = to_wat(&b.finish());
        let lines: Vec<&str> = wat.lines().collect();
        let block_line = lines.iter().position(|l| l.trim_start() == "block").unwrap();
        let const_line = lines.iter().position(|l| l.contains("i32.const 1")).unwrap();
        let block_ws = lines[block_line].len() - lines[block_line].trim_start().len();
        let const_ws = lines[const_line].len() - lines[const_line].trim_start().len();
        assert!(const_ws > block_ws);
    }
}

//! Programmatic module construction: the repository's stand-in for the
//! paper's WASI-SDK toolchain. Guest benchmarks are authored against
//! [`ModuleBuilder`] / [`FunctionBuilder`] (usually through the higher
//! level [`crate::dsl`]), producing real Wasm binaries via
//! [`crate::encode_module`].

use crate::instr::{Instr, MemArg};
use crate::module::{
    DataSegment, ElementSegment, Export, ExportKind, Function, Global, Import, Module,
};
use crate::types::{BlockType, ExternKind, FuncType, GlobalType, Limits, Mutability, ValType};

/// Builds a [`Module`] incrementally. Imported functions must be declared
/// before defined functions (they occupy the front of the function index
/// space, as in the binary format).
#[derive(Default)]
pub struct ModuleBuilder {
    module: Module,
    defined_started: bool,
    /// Function-index placeholders reserved for forward references.
    reserved: Vec<bool>,
}

impl ModuleBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the module name (emitted as a custom `name` section).
    pub fn name(&mut self, name: &str) -> &mut Self {
        self.module.name = Some(name.to_string());
        self
    }

    /// Intern a function type, deduplicating.
    pub fn type_idx(&mut self, ty: FuncType) -> u32 {
        if let Some(i) = self.module.types.iter().position(|t| *t == ty) {
            return i as u32;
        }
        self.module.types.push(ty);
        (self.module.types.len() - 1) as u32
    }

    /// Declare a linear memory (min/max pages) and export it as `"memory"`,
    /// the convention the embedder expects (paper Listing 1).
    pub fn memory(&mut self, min: u32, max: Option<u32>) -> &mut Self {
        assert!(self.module.memories.is_empty(), "only one memory is supported");
        self.module.memories.push(Limits::new(min, max));
        self.module.exports.push(Export {
            name: "memory".into(),
            kind: ExportKind::Memory,
            index: 0,
        });
        self
    }

    /// Import a function from `(module, name)`; returns its index in the
    /// function index space.
    pub fn import_func(
        &mut self,
        module: &str,
        name: &str,
        params: Vec<ValType>,
        results: Vec<ValType>,
    ) -> u32 {
        assert!(
            !self.defined_started,
            "imports must be declared before defined functions"
        );
        let type_idx = self.type_idx(FuncType::new(params, results));
        self.module.imports.push(Import {
            module: module.into(),
            name: name.into(),
            kind: ExternKind::Func(type_idx),
        });
        (self.module.num_imported_funcs() - 1) as u32
    }

    /// Define an exported function; the closure fills in the body. Returns
    /// the function index.
    pub fn func(
        &mut self,
        export_name: &str,
        params: Vec<ValType>,
        results: Vec<ValType>,
        body: impl FnOnce(&mut FunctionBuilder),
    ) -> u32 {
        let idx = self.func_private(params, results, body);
        self.module.exports.push(Export {
            name: export_name.into(),
            kind: ExportKind::Func,
            index: idx,
        });
        idx
    }

    /// Define a private (non-exported) function.
    pub fn func_private(
        &mut self,
        params: Vec<ValType>,
        results: Vec<ValType>,
        body: impl FnOnce(&mut FunctionBuilder),
    ) -> u32 {
        self.defined_started = true;
        let type_idx = self.type_idx(FuncType::new(params.clone(), results));
        let mut fb = FunctionBuilder::new(params.len() as u32);
        body(&mut fb);
        let (locals, mut instrs) = fb.finish();
        instrs.push(Instr::End);
        self.module.functions.push(Function { type_idx, locals, body: instrs });
        self.reserved.push(false);
        (self.module.num_imported_funcs() + self.module.functions.len() - 1) as u32
    }

    /// Reserve a function index for a forward reference (e.g. mutual
    /// recursion or tables built before bodies). Fill it in with
    /// [`ModuleBuilder::define_reserved`].
    pub fn reserve_func(&mut self, params: Vec<ValType>, results: Vec<ValType>) -> u32 {
        self.defined_started = true;
        let type_idx = self.type_idx(FuncType::new(params, results));
        self.module.functions.push(Function {
            type_idx,
            locals: vec![],
            body: vec![Instr::Unreachable, Instr::End],
        });
        self.reserved.push(true);
        (self.module.num_imported_funcs() + self.module.functions.len() - 1) as u32
    }

    /// Define the body of a previously reserved function.
    pub fn define_reserved(&mut self, func_idx: u32, body: impl FnOnce(&mut FunctionBuilder)) {
        let defined_idx = (func_idx as usize)
            .checked_sub(self.module.num_imported_funcs())
            .expect("reserved index refers to an import");
        assert!(self.reserved[defined_idx], "function {func_idx} was not reserved");
        let ty = self.module.functions[defined_idx].type_idx;
        let n_params = self.module.types[ty as usize].params.len() as u32;
        let mut fb = FunctionBuilder::new(n_params);
        body(&mut fb);
        let (locals, mut instrs) = fb.finish();
        instrs.push(Instr::End);
        self.module.functions[defined_idx] = Function { type_idx: ty, locals, body: instrs };
        self.reserved[defined_idx] = false;
    }

    /// Export an already-defined function under an additional name.
    pub fn export_func(&mut self, name: &str, func_idx: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.into(),
            kind: ExportKind::Func,
            index: func_idx,
        });
        self
    }

    /// Define a global; returns its index.
    pub fn global(&mut self, ty: ValType, mutable: bool, init: Instr) -> u32 {
        self.module.globals.push(Global {
            ty: GlobalType {
                val_type: ty,
                mutability: if mutable { Mutability::Var } else { Mutability::Const },
            },
            init,
        });
        (self.module.globals.len() - 1) as u32
    }

    /// Add an active data segment.
    pub fn data(&mut self, offset: i32, bytes: Vec<u8>) -> &mut Self {
        self.module.data.push(DataSegment { memory: 0, offset, bytes });
        self
    }

    /// Create the funcref table populated with `funcs` starting at slot 0.
    pub fn table(&mut self, funcs: Vec<u32>) -> &mut Self {
        assert!(self.module.tables.is_empty(), "only one table is supported");
        self.module.tables.push(Limits::new(funcs.len() as u32, Some(funcs.len() as u32)));
        self.module.elements.push(ElementSegment { table: 0, offset: 0, funcs });
        self
    }

    /// Set the start function.
    pub fn start(&mut self, func_idx: u32) -> &mut Self {
        self.module.start = Some(func_idx);
        self
    }

    /// Finalize and return the module.
    pub fn finish(self) -> Module {
        assert!(
            self.reserved.iter().all(|r| !r),
            "reserved function(s) were never defined"
        );
        self.module
    }
}

/// Builds one function body with a fluent instruction API.
pub struct FunctionBuilder {
    n_params: u32,
    locals: Vec<ValType>,
    instrs: Vec<Instr>,
}

macro_rules! simple_ops {
    ($($method:ident => $instr:ident),* $(,)?) => {
        $(
            pub fn $method(&mut self) -> &mut Self {
                self.instrs.push(Instr::$instr);
                self
            }
        )*
    };
}

macro_rules! mem_ops {
    ($($method:ident => $instr:ident),* $(,)?) => {
        $(
            /// Memory access with a constant byte offset.
            pub fn $method(&mut self, offset: u32) -> &mut Self {
                self.instrs.push(Instr::$instr(MemArg::offset(offset)));
                self
            }
        )*
    };
}

impl FunctionBuilder {
    fn new(n_params: u32) -> Self {
        Self { n_params, locals: Vec::new(), instrs: Vec::new() }
    }

    fn finish(self) -> (Vec<ValType>, Vec<Instr>) {
        (self.locals, self.instrs)
    }

    /// Declare a new local of type `ty`; returns its index (after params).
    pub fn local(&mut self, ty: ValType) -> u32 {
        self.locals.push(ty);
        self.n_params + self.locals.len() as u32 - 1
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Append many raw instructions.
    pub fn emit_all(&mut self, instrs: impl IntoIterator<Item = Instr>) -> &mut Self {
        self.instrs.extend(instrs);
        self
    }

    pub fn i32_const(&mut self, v: i32) -> &mut Self {
        self.instrs.push(Instr::I32Const(v));
        self
    }

    pub fn i64_const(&mut self, v: i64) -> &mut Self {
        self.instrs.push(Instr::I64Const(v));
        self
    }

    pub fn f32_const(&mut self, v: f32) -> &mut Self {
        self.instrs.push(Instr::F32Const(v));
        self
    }

    pub fn f64_const(&mut self, v: f64) -> &mut Self {
        self.instrs.push(Instr::F64Const(v));
        self
    }

    pub fn local_get(&mut self, i: u32) -> &mut Self {
        self.instrs.push(Instr::LocalGet(i));
        self
    }

    pub fn local_set(&mut self, i: u32) -> &mut Self {
        self.instrs.push(Instr::LocalSet(i));
        self
    }

    pub fn local_tee(&mut self, i: u32) -> &mut Self {
        self.instrs.push(Instr::LocalTee(i));
        self
    }

    pub fn global_get(&mut self, i: u32) -> &mut Self {
        self.instrs.push(Instr::GlobalGet(i));
        self
    }

    pub fn global_set(&mut self, i: u32) -> &mut Self {
        self.instrs.push(Instr::GlobalSet(i));
        self
    }

    pub fn call(&mut self, func_idx: u32) -> &mut Self {
        self.instrs.push(Instr::Call(func_idx));
        self
    }

    pub fn call_indirect(&mut self, type_idx: u32) -> &mut Self {
        self.instrs.push(Instr::CallIndirect { type_idx, table: 0 });
        self
    }

    pub fn block(&mut self, bt: BlockType) -> &mut Self {
        self.instrs.push(Instr::Block(bt));
        self
    }

    pub fn loop_(&mut self, bt: BlockType) -> &mut Self {
        self.instrs.push(Instr::Loop(bt));
        self
    }

    pub fn if_(&mut self, bt: BlockType) -> &mut Self {
        self.instrs.push(Instr::If(bt));
        self
    }

    pub fn else_(&mut self) -> &mut Self {
        self.instrs.push(Instr::Else);
        self
    }

    pub fn end(&mut self) -> &mut Self {
        self.instrs.push(Instr::End);
        self
    }

    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.instrs.push(Instr::Br(depth));
        self
    }

    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.instrs.push(Instr::BrIf(depth));
        self
    }

    pub fn br_table(&mut self, targets: Vec<u32>, default: u32) -> &mut Self {
        self.instrs.push(Instr::BrTable { targets, default });
        self
    }

    pub fn return_(&mut self) -> &mut Self {
        self.instrs.push(Instr::Return);
        self
    }

    simple_ops! {
        unreachable => Unreachable,
        nop => Nop,
        drop => Drop,
        select => Select,
        memory_size => MemorySize,
        memory_grow => MemoryGrow,
        memory_copy => MemoryCopy,
        memory_fill => MemoryFill,
        i32_eqz => I32Eqz,
        i32_eq => I32Eq,
        i32_ne => I32Ne,
        i32_lt_s => I32LtS,
        i32_lt_u => I32LtU,
        i32_gt_s => I32GtS,
        i32_gt_u => I32GtU,
        i32_le_s => I32LeS,
        i32_ge_s => I32GeS,
        i32_ge_u => I32GeU,
        i32_add => I32Add,
        i32_sub => I32Sub,
        i32_mul => I32Mul,
        i32_div_s => I32DivS,
        i32_div_u => I32DivU,
        i32_rem_s => I32RemS,
        i32_rem_u => I32RemU,
        i32_and => I32And,
        i32_or => I32Or,
        i32_xor => I32Xor,
        i32_shl => I32Shl,
        i32_shr_s => I32ShrS,
        i32_shr_u => I32ShrU,
        i64_eqz => I64Eqz,
        i64_eq => I64Eq,
        i64_lt_s => I64LtS,
        i64_add => I64Add,
        i64_sub => I64Sub,
        i64_mul => I64Mul,
        i64_div_s => I64DivS,
        i64_and => I64And,
        i64_or => I64Or,
        i64_xor => I64Xor,
        i64_shl => I64Shl,
        i64_shr_u => I64ShrU,
        f64_eq => F64Eq,
        f64_ne => F64Ne,
        f64_lt => F64Lt,
        f64_gt => F64Gt,
        f64_le => F64Le,
        f64_ge => F64Ge,
        f64_abs => F64Abs,
        f64_neg => F64Neg,
        f64_sqrt => F64Sqrt,
        f64_add => F64Add,
        f64_sub => F64Sub,
        f64_mul => F64Mul,
        f64_div => F64Div,
        f64_min => F64Min,
        f64_max => F64Max,
        f32_add => F32Add,
        f32_mul => F32Mul,
        i32_wrap_i64 => I32WrapI64,
        i64_extend_i32_s => I64ExtendI32S,
        i64_extend_i32_u => I64ExtendI32U,
        i32_trunc_f64_s => I32TruncF64S,
        i64_trunc_f64_s => I64TruncF64S,
        f64_convert_i32_s => F64ConvertI32S,
        f64_convert_i32_u => F64ConvertI32U,
        f64_convert_i64_s => F64ConvertI64S,
        f64_convert_i64_u => F64ConvertI64U,
        f64_promote_f32 => F64PromoteF32,
        f32_demote_f64 => F32DemoteF64,
        i64_reinterpret_f64 => I64ReinterpretF64,
        f64_reinterpret_i64 => F64ReinterpretI64,
        f64x2_splat => F64x2Splat,
        f64x2_add => F64x2Add,
        f64x2_mul => F64x2Mul,
        f64x2_sub => F64x2Sub,
        v128_xor => V128Xor,
        v128_any_true => V128AnyTrue,
    }

    mem_ops! {
        i32_load => I32Load,
        i64_load => I64Load,
        f32_load => F32Load,
        f64_load => F64Load,
        i32_load8_u => I32Load8U,
        i32_load16_u => I32Load16U,
        i32_store => I32Store,
        i64_store => I64Store,
        f32_store => F32Store,
        f64_store => F64Store,
        i32_store8 => I32Store8,
        v128_load => V128Load,
        v128_store => V128Store,
    }

    pub fn f64x2_extract_lane(&mut self, lane: u8) -> &mut Self {
        self.instrs.push(Instr::F64x2ExtractLane(lane));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_module;

    #[test]
    fn builder_produces_valid_module() {
        let mut b = ModuleBuilder::new();
        b.name("test");
        b.memory(1, Some(16));
        let imp = b.import_func("env", "host", vec![ValType::I32], vec![ValType::I32]);
        b.func("run", vec![ValType::I32], vec![ValType::I32], |f| {
            let tmp = f.local(ValType::I32);
            f.local_get(0).call(imp).local_set(tmp);
            f.local_get(tmp).i32_const(1).i32_add();
        });
        let m = b.finish();
        validate_module(&m).unwrap();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.export("run").unwrap().index, 1);
        // Round-trips through the binary format.
        let bytes = crate::encode_module(&m);
        let decoded = crate::decode_module(&bytes).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn reserved_functions_support_forward_calls() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let later = b.reserve_func(vec![], vec![ValType::I32]);
        b.func("first", vec![], vec![ValType::I32], |f| {
            f.call(later);
        });
        b.define_reserved(later, |f| {
            f.i32_const(11);
        });
        let m = b.finish();
        validate_module(&m).unwrap();
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_reserved_function_panics() {
        let mut b = ModuleBuilder::new();
        b.reserve_func(vec![], vec![]);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "imports must be declared")]
    fn import_after_define_panics() {
        let mut b = ModuleBuilder::new();
        b.func("f", vec![], vec![], |_| {});
        b.import_func("env", "x", vec![], vec![]);
    }

    #[test]
    fn table_and_call_indirect_validate() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f0 = b.func("ten", vec![], vec![ValType::I32], |f| {
            f.i32_const(10);
        });
        let f1 = b.func("twenty", vec![], vec![ValType::I32], |f| {
            f.i32_const(20);
        });
        let ty = b.type_idx(FuncType::new(vec![], vec![ValType::I32]));
        b.table(vec![f0, f1]);
        b.func("dispatch", vec![ValType::I32], vec![ValType::I32], move |f| {
            f.local_get(0).call_indirect(ty);
        });
        validate_module(&b.finish()).unwrap();
    }
}

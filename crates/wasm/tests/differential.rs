//! Differential testing of the execution tiers on random *structured*
//! programs: loops, branches, and local mutation — the constructs the
//! expression-level property tests (workspace `tests/proptests.rs`) do
//! not cover. Every generated program is evaluated by a reference
//! interpreter in plain Rust and must produce identical results on the
//! Baseline, Optimizing, and Max tiers.

use proptest::prelude::*;

use wasm_engine::dsl::{self, Var};
use wasm_engine::runtime::{CompiledModule, Linker, Value};
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder, Tier};

const N_VARS: usize = 4;

#[derive(Debug, Clone)]
enum E {
    Var(usize),
    Const(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    LtS(Box<E>, Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    If(E, Vec<S>, Vec<S>),
    /// Bounded counted loop: `for _ in 0..n { body }`.
    Repeat(u8, Vec<S>),
    /// Store var to memory then reload it through linear memory.
    StoreLoad(usize, u32),
}

fn eval_e(e: &E, vars: &[i32; N_VARS]) -> i32 {
    match e {
        E::Var(i) => vars[*i],
        E::Const(c) => *c,
        E::Add(a, b) => eval_e(a, vars).wrapping_add(eval_e(b, vars)),
        E::Sub(a, b) => eval_e(a, vars).wrapping_sub(eval_e(b, vars)),
        E::Mul(a, b) => eval_e(a, vars).wrapping_mul(eval_e(b, vars)),
        E::Xor(a, b) => eval_e(a, vars) ^ eval_e(b, vars),
        E::LtS(a, b) => (eval_e(a, vars) < eval_e(b, vars)) as i32,
    }
}

fn eval_s(stmts: &[S], vars: &mut [i32; N_VARS], mem: &mut [i32; 16]) {
    for s in stmts {
        match s {
            S::Assign(i, e) => vars[*i] = eval_e(e, vars),
            S::If(c, t, f) => {
                if eval_e(c, vars) != 0 {
                    eval_s(t, vars, mem);
                } else {
                    eval_s(f, vars, mem);
                }
            }
            S::Repeat(n, body) => {
                for _ in 0..*n {
                    eval_s(body, vars, mem);
                }
            }
            S::StoreLoad(i, slot) => {
                mem[*slot as usize] = vars[*i];
                vars[*i] = mem[*slot as usize];
            }
        }
    }
}

fn e_to_dsl(e: &E, vars: &[Var; N_VARS]) -> dsl::Expr {
    match e {
        E::Var(i) => vars[*i].get(),
        E::Const(c) => dsl::int(*c),
        E::Add(a, b) => e_to_dsl(a, vars) + e_to_dsl(b, vars),
        E::Sub(a, b) => e_to_dsl(a, vars) - e_to_dsl(b, vars),
        E::Mul(a, b) => e_to_dsl(a, vars) * e_to_dsl(b, vars),
        E::Xor(a, b) => e_to_dsl(a, vars).xor(e_to_dsl(b, vars)),
        E::LtS(a, b) => e_to_dsl(a, vars).lt(e_to_dsl(b, vars)),
    }
}

fn s_to_dsl(
    stmts: &[S],
    vars: &[Var; N_VARS],
    counters: &mut Vec<Var>,
    depth: usize,
    f: &mut wasm_engine::FunctionBuilder,
) -> Vec<dsl::Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            S::Assign(i, e) => vars[*i].set(e_to_dsl(e, vars)),
            S::If(c, t, els) => dsl::if_else(
                e_to_dsl(c, vars).ne(dsl::int(0)),
                &s_to_dsl(t, vars, counters, depth, f),
                &s_to_dsl(els, vars, counters, depth, f),
            ),
            S::Repeat(n, body) => {
                if counters.len() <= depth {
                    counters.push(Var::new(f, ValType::I32));
                }
                let counter = counters[depth];
                dsl::for_range(
                    counter,
                    dsl::int(0),
                    dsl::int(*n as i32),
                    &s_to_dsl(body, vars, counters, depth + 1, f),
                )
            }
            S::StoreLoad(i, slot) => {
                let addr = dsl::int((*slot as i32) * 4);
                dsl::Stmt::Raw(vec![])
                    .clone_into_store(vars[*i], addr)
            }
        })
        .collect()
}

// Small helper because StoreLoad expands to two statements.
trait StoreLoadExt {
    fn clone_into_store(self, var: Var, addr: dsl::Expr) -> dsl::Stmt;
}

impl StoreLoadExt for dsl::Stmt {
    fn clone_into_store(self, var: Var, addr: dsl::Expr) -> dsl::Stmt {
        // store var; reload var — expressed as an If(true) block holding
        // both statements so a single Stmt can carry the pair.
        dsl::if_then(
            dsl::int(1),
            &[
                dsl::store(addr.clone(), 0, var.get()),
                var.set(addr.load(ValType::I32, 0)),
            ],
        )
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0..N_VARS).prop_map(E::Var),
        (-100i32..100).prop_map(E::Const),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::LtS(a.into(), b.into())),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        (0..N_VARS, expr_strategy()).prop_map(|(i, e)| S::Assign(i, e)),
        (0..N_VARS, 0u32..16).prop_map(|(i, s)| S::StoreLoad(i, s)),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, f)| S::If(c, t, f)),
            (0u8..5, proptest::collection::vec(inner, 1..3))
                .prop_map(|(n, b)| S::Repeat(n, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structured_programs_agree_across_tiers(
        program in proptest::collection::vec(stmt_strategy(), 1..6),
        inits in proptest::array::uniform4(-50i32..50),
    ) {
        // Reference execution.
        let mut ref_vars = inits;
        let mut ref_mem = [0i32; 16];
        eval_s(&program, &mut ref_vars, &mut ref_mem);

        // Build the module: params are the four initial values; the
        // function returns x0 ^ x1 ^ x2 ^ x3 after running the program.
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let prog = program.clone();
        b.func(
            "run",
            vec![ValType::I32; N_VARS],
            vec![ValType::I32],
            move |f| {
                let vars = [
                    dsl::local(0, ValType::I32),
                    dsl::local(1, ValType::I32),
                    dsl::local(2, ValType::I32),
                    dsl::local(3, ValType::I32),
                ];
                let mut counters = Vec::new();
                let mut stmts = s_to_dsl(&prog, &vars, &mut counters, 0, f);
                stmts.push(dsl::ret(Some(
                    vars[0]
                        .get()
                        .xor(vars[1].get())
                        .xor(vars[2].get())
                        .xor(vars[3].get()),
                )));
                dsl::emit_block(f, &stmts);
            },
        );
        let module = b.finish();
        wasm_engine::validate_module(&module).unwrap();
        let wasm = encode_module(&module);
        let decoded = wasm_engine::decode_module(&wasm).unwrap();

        let expected = ref_vars[0] ^ ref_vars[1] ^ ref_vars[2] ^ ref_vars[3];
        for tier in Tier::ALL {
            let compiled = CompiledModule::compile(decoded.clone(), tier).unwrap();
            // Promote on first entry so single-invocation programs still
            // exercise the superblock chains and their guard exits.
            compiled.set_jit_threshold(1);
            let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
            let args: Vec<Value> = inits.iter().map(|&v| Value::I32(v)).collect();
            let out = inst.invoke("run", &args).unwrap();
            prop_assert_eq!(out[0], Value::I32(expected), "tier {} disagrees", tier);
        }
    }
}

// --- register-form coverage: v128 two-slot operands and trap paths ---
//
// The second generator targets what the first cannot express: wide
// (two-slot) operands flowing through copies, select, drop and lane ops,
// plus the trapping instructions (integer division, out-of-bounds
// memory). Every tier must produce the identical value *or* the identical
// trap as the plain-Rust reference — this is the conformance gate for the
// register-form executor, which maps all of these onto fixed frame slots.

use wasm_engine::error::Trap;
use wasm_engine::instr::{Instr, MemArg};

#[derive(Debug, Clone, Copy, PartialEq)]
enum RefTrap {
    DivZero,
    Overflow,
    Oob,
}

#[derive(Debug, Clone)]
enum XS {
    Assign(usize, E),
    /// `dst = a / b` (signed; traps on zero and INT_MIN / -1).
    DivS(usize, usize, usize),
    /// `dst = a %u b` (traps on zero).
    RemU(usize, usize, usize),
    /// `dst = lane0(splat(dst) +i32x4 splat(src))` — wide temporaries.
    V128Mix(usize, usize),
    /// `dst = lane1(select(splat(dst), splat(src), cond))` — Select2.
    V128Select(usize, usize, usize),
    /// Round-trip through a v128 local with a dropped wide temp;
    /// net effect `dst = !dst` (bitwise).
    V128TeeDrop(usize),
    /// `mem[addr] = var; var = mem[addr]` — traps when addr is OOB.
    StoreAt(usize, u32),
    If(E, Vec<XS>, Vec<XS>),
    Repeat(u8, Vec<XS>),
}

const XPAGE: u32 = 65536;

fn xeval(stmts: &[XS], vars: &mut [i32; N_VARS], mem: &mut Vec<u8>) -> Result<(), RefTrap> {
    for s in stmts {
        match s {
            XS::Assign(i, e) => vars[*i] = eval_e(e, vars),
            XS::DivS(d, a, b) => {
                let (x, y) = (vars[*a], vars[*b]);
                if y == 0 {
                    return Err(RefTrap::DivZero);
                }
                if x == i32::MIN && y == -1 {
                    return Err(RefTrap::Overflow);
                }
                vars[*d] = x.wrapping_div(y);
            }
            XS::RemU(d, a, b) => {
                let (x, y) = (vars[*a] as u32, vars[*b] as u32);
                if y == 0 {
                    return Err(RefTrap::DivZero);
                }
                vars[*d] = (x % y) as i32;
            }
            XS::V128Mix(d, s) => vars[*d] = vars[*d].wrapping_add(vars[*s]),
            XS::V128Select(d, s, c) => {
                if vars[*c] == 0 {
                    vars[*d] = vars[*s];
                }
            }
            XS::V128TeeDrop(d) => vars[*d] = !vars[*d],
            XS::StoreAt(i, addr) => {
                if *addr > XPAGE - 4 {
                    return Err(RefTrap::Oob);
                }
                let at = *addr as usize;
                mem[at..at + 4].copy_from_slice(&vars[*i].to_le_bytes());
                vars[*i] = i32::from_le_bytes(mem[at..at + 4].try_into().unwrap());
            }
            XS::If(c, t, e) => {
                if eval_e(c, vars) != 0 {
                    xeval(t, vars, mem)?;
                } else {
                    xeval(e, vars, mem)?;
                }
            }
            XS::Repeat(n, body) => {
                for _ in 0..*n {
                    xeval(body, vars, mem)?;
                }
            }
        }
    }
    Ok(())
}

fn xs_to_dsl(
    stmts: &[XS],
    vars: &[Var; N_VARS],
    v128_tmp: u32,
    counters: &mut Vec<Var>,
    depth: usize,
    f: &mut wasm_engine::FunctionBuilder,
) -> Vec<dsl::Stmt> {
    let lg = |i: usize| Instr::LocalGet(vars[i].idx);
    let ls = |i: usize| Instr::LocalSet(vars[i].idx);
    stmts
        .iter()
        .map(|s| match s {
            XS::Assign(i, e) => vars[*i].set(e_to_dsl(e, vars)),
            XS::DivS(d, a, b) => {
                dsl::Stmt::Raw(vec![lg(*a), lg(*b), Instr::I32DivS, ls(*d)])
            }
            XS::RemU(d, a, b) => {
                dsl::Stmt::Raw(vec![lg(*a), lg(*b), Instr::I32RemU, ls(*d)])
            }
            XS::V128Mix(d, s) => dsl::Stmt::Raw(vec![
                lg(*d),
                Instr::I32x4Splat,
                lg(*s),
                Instr::I32x4Splat,
                Instr::I32x4Add,
                Instr::I32x4ExtractLane(0),
                ls(*d),
            ]),
            XS::V128Select(d, s, c) => dsl::Stmt::Raw(vec![
                lg(*d),
                Instr::I32x4Splat,
                lg(*s),
                Instr::I32x4Splat,
                lg(*c),
                Instr::Select,
                Instr::I32x4ExtractLane(1),
                ls(*d),
            ]),
            XS::V128TeeDrop(d) => dsl::Stmt::Raw(vec![
                // vl = splat(d); drop a wide temp; d = lane2(vl) ^ -1.
                lg(*d),
                Instr::I32x4Splat,
                Instr::LocalSet(v128_tmp),
                Instr::LocalGet(v128_tmp),
                Instr::Drop,
                Instr::LocalGet(v128_tmp),
                Instr::I32x4ExtractLane(2),
                Instr::I32Const(-1),
                Instr::I32Xor,
                ls(*d),
            ]),
            XS::StoreAt(i, addr) => dsl::Stmt::Raw(vec![
                Instr::I32Const(*addr as i32),
                lg(*i),
                Instr::I32Store(MemArg::offset(0)),
                Instr::I32Const(*addr as i32),
                Instr::I32Load(MemArg::offset(0)),
                ls(*i),
            ]),
            XS::If(c, t, e) => dsl::if_else(
                e_to_dsl(c, vars).ne(dsl::int(0)),
                &xs_to_dsl(t, vars, v128_tmp, counters, depth, f),
                &xs_to_dsl(e, vars, v128_tmp, counters, depth, f),
            ),
            XS::Repeat(n, body) => {
                if counters.len() <= depth {
                    counters.push(Var::new(f, ValType::I32));
                }
                let counter = counters[depth];
                dsl::for_range(
                    counter,
                    dsl::int(0),
                    dsl::int(*n as i32),
                    &xs_to_dsl(body, vars, v128_tmp, counters, depth + 1, f),
                )
            }
        })
        .collect()
}

fn xstmt_strategy() -> impl Strategy<Value = XS> {
    let leaf = prop_oneof![
        (0..N_VARS, expr_strategy()).prop_map(|(i, e)| XS::Assign(i, e)),
        (0..N_VARS, 0..N_VARS, 0..N_VARS).prop_map(|(d, a, b)| XS::DivS(d, a, b)),
        (0..N_VARS, 0..N_VARS, 0..N_VARS).prop_map(|(d, a, b)| XS::RemU(d, a, b)),
        (0..N_VARS, 0..N_VARS).prop_map(|(d, s)| XS::V128Mix(d, s)),
        (0..N_VARS, 0..N_VARS, 0..N_VARS).prop_map(|(d, s, c)| XS::V128Select(d, s, c)),
        (0..N_VARS).prop_map(XS::V128TeeDrop),
        // In-bounds addresses plus an out-of-bounds tail so both the
        // success and the trap path are exercised.
        (0..N_VARS, prop_oneof![0u32..65532, 65520u32..65600])
            .prop_map(|(i, a)| XS::StoreAt(i, a)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, f)| XS::If(c, t, f)),
            (0u8..4, proptest::collection::vec(inner, 1..3))
                .prop_map(|(n, b)| XS::Repeat(n, b)),
        ]
    })
}

fn trap_matches(expected: RefTrap, got: &Trap) -> bool {
    matches!(
        (expected, got),
        (RefTrap::DivZero, Trap::IntegerDivideByZero)
            | (RefTrap::Overflow, Trap::IntegerOverflow)
            | (RefTrap::Oob, Trap::MemoryOutOfBounds { .. })
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wide_and_trapping_programs_agree_across_tiers(
        program in proptest::collection::vec(xstmt_strategy(), 1..6),
        inits in proptest::array::uniform4(-50i32..50),
    ) {
        // Reference execution (plain Rust).
        let mut ref_vars = inits;
        let mut ref_mem = vec![0u8; XPAGE as usize];
        let ref_result = xeval(&program, &mut ref_vars, &mut ref_mem);

        let mut b = ModuleBuilder::new();
        b.memory(1, Some(1)); // fixed one page so OOB is deterministic
        let prog = program.clone();
        b.func(
            "run",
            vec![ValType::I32; N_VARS],
            vec![ValType::I32],
            move |f| {
                let vars = [
                    dsl::local(0, ValType::I32),
                    dsl::local(1, ValType::I32),
                    dsl::local(2, ValType::I32),
                    dsl::local(3, ValType::I32),
                ];
                let v128_tmp = f.local(ValType::V128);
                let mut counters = Vec::new();
                let mut stmts =
                    xs_to_dsl(&prog, &vars, v128_tmp, &mut counters, 0, f);
                stmts.push(dsl::ret(Some(
                    vars[0]
                        .get()
                        .xor(vars[1].get())
                        .xor(vars[2].get())
                        .xor(vars[3].get()),
                )));
                dsl::emit_block(f, &stmts);
            },
        );
        let module = b.finish();
        wasm_engine::validate_module(&module).unwrap();
        let wasm = encode_module(&module);
        let decoded = wasm_engine::decode_module(&wasm).unwrap();

        for tier in Tier::ALL {
            let compiled = CompiledModule::compile(decoded.clone(), tier).unwrap();
            // Promote on first entry so single-invocation programs still
            // exercise the superblock chains and their guard exits.
            compiled.set_jit_threshold(1);
            let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
            let args: Vec<Value> = inits.iter().map(|&v| Value::I32(v)).collect();
            let out = inst.invoke("run", &args);
            match (&ref_result, out) {
                (Ok(()), Ok(vals)) => {
                    let expected = ref_vars[0] ^ ref_vars[1] ^ ref_vars[2] ^ ref_vars[3];
                    prop_assert_eq!(vals[0], Value::I32(expected), "tier {} value", tier);
                }
                (Err(kind), Err(trap)) => {
                    prop_assert!(
                        trap_matches(*kind, &trap),
                        "tier {}: expected {:?}, trapped with {:?}",
                        tier, kind, trap
                    );
                }
                (expected, got) => {
                    return Err(TestCaseError::fail(format!(
                        "tier {tier}: reference {expected:?} but engine returned {got:?}"
                    )));
                }
            }
        }
    }
}

/// Pinned regression for the PROPTEST_SEED=1785324144484992370 case-38
/// miscompile, delta-minimized to a single statement:
///
/// ```text
/// x0 = ((-4 ^ x2) <s ((-78) - (-79))) + 4 * (x1 - x3)
/// ```
///
/// The flat tiers lowered `4 * (x1 - x3)` to `Sub32; ShlK32` and the
/// register peephole fused `[ShlK32 → t][Add32 cmp + t]` into `AddShl32`
/// — moving the read of the `Sub32` result down to the `Add32` position,
/// whose recorded entry stack height is one lower. The height-based
/// liveness oracle then declared the subtraction's destination register
/// dead there, dead-code elimination deleted the `Sub32`, and the fused
/// add-shift read an uninitialized stack temp. The fix patches the height
/// annotations at every fusion site and makes `value_live` trust a direct
/// read over the oracle.
#[test]
fn pinned_addshl_fusion_keeps_scaled_operand_alive() {
    let inits = [-36i32, 34, 11, -42];
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(1));
    b.func("run", vec![ValType::I32; N_VARS], vec![ValType::I32], move |f| {
        let vars = [
            dsl::local(0, ValType::I32),
            dsl::local(1, ValType::I32),
            dsl::local(2, ValType::I32),
            dsl::local(3, ValType::I32),
        ];
        let stmts = vec![
            vars[0].set(
                dsl::int(-4)
                    .xor(vars[2].get())
                    .lt(dsl::int(-78) - dsl::int(-79))
                    + dsl::int(4) * (vars[1].get() - vars[3].get()),
            ),
            dsl::ret(Some(
                vars[0].get().xor(vars[1].get()).xor(vars[2].get()).xor(vars[3].get()),
            )),
        ];
        dsl::emit_block(f, &stmts);
    });
    let module = b.finish();
    wasm_engine::validate_module(&module).unwrap();
    let decoded = wasm_engine::decode_module(&encode_module(&module)).unwrap();

    let x0 = ((((-4 ^ inits[2]) < (-78i32).wrapping_sub(-79)) as i32)
        .wrapping_add(4i32.wrapping_mul(inits[1].wrapping_sub(inits[3]))))
        ^ inits[1]
        ^ inits[2]
        ^ inits[3];

    for tier in Tier::ALL {
        let compiled = CompiledModule::compile(decoded.clone(), tier).unwrap();
        compiled.set_jit_threshold(1);
        let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        let args: Vec<Value> = inits.iter().map(|&v| Value::I32(v)).collect();
        let out = inst.invoke("run", &args).unwrap();
        assert_eq!(out[0], Value::I32(x0), "tier {tier}");
    }
}

/// JIT profiling counters observe promotions and chain executions on a
/// hot loop, and leave the program's results untouched.
#[test]
fn jit_profiling_counters_track_a_hot_loop() {
    use wasm_engine::instr::Instr as I;
    use wasm_engine::types::BlockType;
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    // sum = 0; do { sum += n; n -= 1 } while (n > 0); return sum
    b.func("run", vec![ValType::I32], vec![ValType::I32], |f| {
        f.local(ValType::I32);
        f.emit_all([
            I::Loop(BlockType::Empty),
            I::LocalGet(1),
            I::LocalGet(0),
            I::I32Add,
            I::LocalSet(1),
            I::LocalGet(0),
            I::I32Const(1),
            I::I32Sub,
            I::LocalTee(0),
            I::I32Const(0),
            I::I32GtS,
            I::BrIf(0),
            I::End,
            I::LocalGet(1),
            I::Return,
        ]);
    });
    let module = b.finish();
    let compiled = CompiledModule::compile(module, Tier::MaxJit).unwrap();
    compiled.set_jit_threshold(1);

    let hits = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let h = hits.clone();
    compiled.set_promotion_hook(Box::new(move |_idx| {
        h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }));
    compiled.set_jit_profiling(true);

    let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
    let out = inst.invoke("run", &[Value::I32(100)]).unwrap();
    assert_eq!(out[0], Value::I32(5050));

    let snap = compiled.jit_snapshot().expect("MaxJit exposes a snapshot");
    assert_eq!(snap.promotions, 1, "one defined function promoted");
    assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert!(snap.chains_entered > 0, "loop iterations entered chains: {snap:?}");
    assert!(snap.guard_exits >= 1, "final loop exit is a guard bail: {snap:?}");
    assert_eq!(
        snap.metric_entries()[0],
        ("jit.promotions", 1),
        "metric entries expose the named counters"
    );

    // Disabled profiling freezes the counters.
    compiled.set_jit_profiling(false);
    inst.invoke("run", &[Value::I32(50)]).unwrap();
    assert_eq!(compiled.jit_snapshot().unwrap().chains_entered, snap.chains_entered);
}

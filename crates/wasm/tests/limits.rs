//! Guest resource limits: fuel, embedder interruption, and the linear
//! memory growth cap — exercised on every execution tier, since each
//! tier has its own guard points (interpreter instruction epochs, flat
//! dispatch backward branches, superblock chain backedges).

use std::sync::atomic::Ordering;
use std::time::Duration;

use wasm_engine::error::Trap;
use wasm_engine::runtime::{CompiledModule, Instance, Linker};
use wasm_engine::types::BlockType;
use wasm_engine::{ModuleBuilder, Tier, Value, PAGE_SIZE};

/// A module whose `spin` export loops forever.
fn spin_module() -> wasm_engine::Module {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    b.func("spin", vec![], vec![], |f| {
        f.loop_(BlockType::Empty).br(0).end();
    });
    b.finish()
}

fn instantiate(tier: Tier) -> Instance {
    let compiled = CompiledModule::compile(spin_module(), tier).unwrap();
    // Force the superblock tier to compile chains immediately so the
    // in-chain backedge guard (not just the dispatch-loop guard) runs.
    compiled.set_jit_threshold(1);
    Linker::new().instantiate(&compiled, Box::new(())).unwrap()
}

#[test]
fn out_of_fuel_stops_an_infinite_loop_on_every_tier() {
    for tier in Tier::ALL {
        let mut inst = instantiate(tier);
        inst.set_fuel(50_000);
        let err = inst.invoke("spin", &[]).unwrap_err();
        assert_eq!(err, Trap::OutOfFuel, "tier {tier}");
        assert_eq!(inst.fuel_left(), 0, "tier {tier}");
    }
}

#[test]
fn interrupt_flag_stops_an_infinite_loop_on_every_tier() {
    for tier in Tier::ALL {
        let mut inst = instantiate(tier);
        let flag = inst.interrupt_handle();
        let timer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            flag.store(true, Ordering::Relaxed);
        });
        let err = inst.invoke("spin", &[]).unwrap_err();
        assert_eq!(err, Trap::Interrupted, "tier {tier}");
        timer.join().unwrap();
    }
}

#[test]
fn unlimited_fuel_charges_nothing() {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    b.func("answer", vec![], vec![wasm_engine::types::ValType::I32], |f| {
        f.i32_const(42);
    });
    let compiled = CompiledModule::compile(b.finish(), Tier::Max).unwrap();
    let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
    assert_eq!(inst.invoke("answer", &[]).unwrap(), vec![Value::I32(42)]);
    assert_eq!(inst.fuel_left(), u64::MAX);
}

#[test]
fn fuel_persists_across_invocations_until_exhausted() {
    let mut inst = instantiate(Tier::Baseline);
    inst.set_fuel(200_000);
    assert_eq!(inst.invoke("spin", &[]).unwrap_err(), Trap::OutOfFuel);
    // The budget is spent; a fresh invocation fails immediately.
    assert_eq!(inst.invoke("spin", &[]).unwrap_err(), Trap::OutOfFuel);
    // Refueling makes the instance runnable again.
    inst.set_fuel(10_000);
    assert_eq!(inst.invoke("spin", &[]).unwrap_err(), Trap::OutOfFuel);
}

#[test]
fn memory_cap_converts_grow_into_failure() {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(64));
    b.func("grow_one", vec![], vec![wasm_engine::types::ValType::I32], |f| {
        f.i32_const(1).memory_grow();
    });
    let compiled = CompiledModule::compile(b.finish(), Tier::Max).unwrap();
    let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
    inst.cap_memory(2 * PAGE_SIZE as u64);
    // 1 -> 2 pages fits under the cap; the next grow fails with -1
    // exactly like exceeding the declared maximum.
    assert_eq!(inst.invoke("grow_one", &[]).unwrap(), vec![Value::I32(1)]);
    assert_eq!(inst.invoke("grow_one", &[]).unwrap(), vec![Value::I32(-1)]);
    assert_eq!(inst.memory.size_pages(), 2);
}

#[test]
fn memory_cap_never_shrinks_below_current_size() {
    let mut b = ModuleBuilder::new();
    b.memory(4, Some(64));
    b.func("noop", vec![], vec![], |_| {});
    let compiled = CompiledModule::compile(b.finish(), Tier::Max).unwrap();
    let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
    inst.cap_memory(PAGE_SIZE as u64); // below the current 4 pages
    assert_eq!(inst.memory.size_pages(), 4);
    assert_eq!(inst.memory.max_pages(), 4);
}

//! Systematic opcode conformance tests: every numeric instruction is
//! exercised with spec edge cases (wrapping, trapping division,
//! out-of-range truncation, shift masking, NaN propagation) on all three
//! execution tiers.

use wasm_engine::instr::Instr;
use wasm_engine::runtime::{CompiledModule, Linker, Value};
use wasm_engine::types::ValType;
use wasm_engine::{error::Trap, ModuleBuilder, Tier};

/// Build a module exposing one function per instruction under test:
/// params are pushed, the instruction applied, the result returned.
fn run_op(
    params: Vec<ValType>,
    result: ValType,
    instr: Instr,
    args: &[Value],
) -> Vec<Result<Value, Trap>> {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    let instr2 = instr.clone();
    b.func("op", params.clone(), vec![result], move |f| {
        for i in 0..params.len() as u32 {
            f.local_get(i);
        }
        f.emit(instr2.clone());
    });
    let module = b.finish();
    wasm_engine::validate_module(&module).unwrap();
    Tier::ALL
        .iter()
        .map(|&tier| {
            let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
            let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
            inst.invoke("op", args).map(|mut v| v.remove(0))
        })
        .collect()
}

fn assert_all(results: Vec<Result<Value, Trap>>, expected: Result<Value, Trap>) {
    for (tier, r) in Tier::ALL.iter().zip(results) {
        match (&r, &expected) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "tier {tier}"),
            (Err(a), Err(b)) => assert_eq!(a, b, "tier {tier}"),
            _ => panic!("tier {tier}: got {r:?}, expected {expected:?}"),
        }
    }
}

fn i32_bin(instr: Instr, a: i32, b: i32) -> Vec<Result<Value, Trap>> {
    run_op(
        vec![ValType::I32, ValType::I32],
        ValType::I32,
        instr,
        &[Value::I32(a), Value::I32(b)],
    )
}

fn i64_bin(instr: Instr, a: i64, b: i64) -> Vec<Result<Value, Trap>> {
    run_op(
        vec![ValType::I64, ValType::I64],
        ValType::I64,
        instr,
        &[Value::I64(a), Value::I64(b)],
    )
}

#[test]
fn i32_arithmetic_wraps() {
    assert_all(i32_bin(Instr::I32Add, i32::MAX, 1), Ok(Value::I32(i32::MIN)));
    assert_all(i32_bin(Instr::I32Sub, i32::MIN, 1), Ok(Value::I32(i32::MAX)));
    assert_all(i32_bin(Instr::I32Mul, 0x4000_0000, 4), Ok(Value::I32(0)));
}

#[test]
fn i32_division_edge_cases() {
    assert_all(i32_bin(Instr::I32DivS, 7, -2), Ok(Value::I32(-3)));
    assert_all(i32_bin(Instr::I32DivS, 1, 0), Err(Trap::IntegerDivideByZero));
    assert_all(i32_bin(Instr::I32DivS, i32::MIN, -1), Err(Trap::IntegerOverflow));
    assert_all(i32_bin(Instr::I32RemS, i32::MIN, -1), Ok(Value::I32(0)));
    assert_all(i32_bin(Instr::I32DivU, -2, 3), Ok(Value::I32(((u32::MAX - 1) / 3) as i32)));
    assert_all(i32_bin(Instr::I32RemU, 10, 0), Err(Trap::IntegerDivideByZero));
}

#[test]
fn i64_division_edge_cases() {
    assert_all(i64_bin(Instr::I64DivS, i64::MIN, -1), Err(Trap::IntegerOverflow));
    assert_all(i64_bin(Instr::I64RemS, i64::MIN, -1), Ok(Value::I64(0)));
    assert_all(i64_bin(Instr::I64DivU, -1, 2), Ok(Value::I64((u64::MAX / 2) as i64)));
}

#[test]
fn shifts_mask_their_count() {
    assert_all(i32_bin(Instr::I32Shl, 1, 33), Ok(Value::I32(2)));
    assert_all(i32_bin(Instr::I32ShrU, i32::MIN, 31), Ok(Value::I32(1)));
    assert_all(i32_bin(Instr::I32ShrS, i32::MIN, 31), Ok(Value::I32(-1)));
    assert_all(i64_bin(Instr::I64Shl, 1, 65), Ok(Value::I64(2)));
    assert_all(i32_bin(Instr::I32Rotl, 0x8000_0001u32 as i32, 1), Ok(Value::I32(3)));
    assert_all(i32_bin(Instr::I32Rotr, 3, 1), Ok(Value::I32(0x8000_0001u32 as i32)));
}

#[test]
fn count_instructions() {
    let unop = |instr: Instr, v: i32| {
        run_op(vec![ValType::I32], ValType::I32, instr, &[Value::I32(v)])
    };
    assert_all(unop(Instr::I32Clz, 1), Ok(Value::I32(31)));
    assert_all(unop(Instr::I32Clz, 0), Ok(Value::I32(32)));
    assert_all(unop(Instr::I32Ctz, 0x10), Ok(Value::I32(4)));
    assert_all(unop(Instr::I32Popcnt, -1), Ok(Value::I32(32)));
}

#[test]
fn float_min_max_nan_semantics() {
    let f64_bin = |instr: Instr, a: f64, b: f64| {
        run_op(
            vec![ValType::F64, ValType::F64],
            ValType::F64,
            instr,
            &[Value::F64(a), Value::F64(b)],
        )
    };
    for r in f64_bin(Instr::F64Min, f64::NAN, 1.0) {
        assert!(r.unwrap().as_f64().unwrap().is_nan());
    }
    for r in f64_bin(Instr::F64Min, -0.0, 0.0) {
        assert!(r.unwrap().as_f64().unwrap().is_sign_negative());
    }
    for r in f64_bin(Instr::F64Max, -0.0, 0.0) {
        assert!(r.unwrap().as_f64().unwrap().is_sign_positive());
    }
    assert_all(f64_bin(Instr::F64Copysign, 3.0, -1.0), Ok(Value::F64(-3.0)));
}

#[test]
fn float_nearest_rounds_to_even() {
    let unop = |v: f64| {
        run_op(vec![ValType::F64], ValType::F64, Instr::F64Nearest, &[Value::F64(v)])
    };
    assert_all(unop(2.5), Ok(Value::F64(2.0)));
    assert_all(unop(3.5), Ok(Value::F64(4.0)));
    assert_all(unop(-0.5), Ok(Value::F64(-0.0)));
}

#[test]
fn truncation_traps_on_nan_and_overflow() {
    let t = |v: f64| {
        run_op(vec![ValType::F64], ValType::I32, Instr::I32TruncF64S, &[Value::F64(v)])
    };
    assert_all(t(3.99), Ok(Value::I32(3)));
    assert_all(t(-3.99), Ok(Value::I32(-3)));
    assert_all(t(f64::NAN), Err(Trap::InvalidConversionToInteger));
    assert_all(t(3e9), Err(Trap::IntegerOverflow));
    assert_all(t(-2147483648.9), Ok(Value::I32(i32::MIN)));

    let tu = |v: f64| {
        run_op(vec![ValType::F64], ValType::I32, Instr::I32TruncF64U, &[Value::F64(v)])
    };
    assert_all(tu(4294967295.0), Ok(Value::I32(-1)));
    assert_all(tu(-0.5), Ok(Value::I32(0)));
    assert_all(tu(-1.0), Err(Trap::IntegerOverflow));
}

#[test]
fn conversions_and_reinterpretations() {
    let conv = |instr: Instr, arg: Value, from: ValType, to: ValType| {
        run_op(vec![from], to, instr, &[arg])
    };
    assert_all(
        conv(Instr::I64ExtendI32U, Value::I32(-1), ValType::I32, ValType::I64),
        Ok(Value::I64(0xFFFF_FFFF)),
    );
    assert_all(
        conv(Instr::I64ExtendI32S, Value::I32(-1), ValType::I32, ValType::I64),
        Ok(Value::I64(-1)),
    );
    assert_all(
        conv(Instr::F64ConvertI32U, Value::I32(-1), ValType::I32, ValType::F64),
        Ok(Value::F64(4294967295.0)),
    );
    assert_all(
        conv(Instr::I32ReinterpretF32, Value::F32(1.0), ValType::F32, ValType::I32),
        Ok(Value::I32(0x3f80_0000)),
    );
    assert_all(
        conv(Instr::F64ReinterpretI64, Value::I64(0), ValType::I64, ValType::F64),
        Ok(Value::F64(0.0)),
    );
    assert_all(
        conv(Instr::I32Extend8S, Value::I32(0x80), ValType::I32, ValType::I32),
        Ok(Value::I32(-128)),
    );
    assert_all(
        conv(Instr::I64Extend32S, Value::I64(0x8000_0000), ValType::I64, ValType::I64),
        Ok(Value::I64(i64::from(i32::MIN))),
    );
}

#[test]
fn simd_lane_arithmetic() {
    // (a + b) with f64x2 splats, extracting both lanes.
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    b.func("lanes", vec![ValType::F64, ValType::F64], vec![ValType::F64], |f| {
        f.local_get(0).f64x2_splat();
        f.local_get(1).f64x2_splat();
        f.f64x2_mul();
        f.f64x2_extract_lane(1);
    });
    let module = b.finish();
    for tier in Tier::ALL {
        let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
        let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        let out = inst.invoke("lanes", &[Value::F64(3.0), Value::F64(4.0)]).unwrap();
        assert_eq!(out, vec![Value::F64(12.0)], "tier {tier}");
    }
}

#[test]
fn memory_grow_and_size_through_tiers() {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(3));
    b.func("grow", vec![ValType::I32], vec![ValType::I32], |f| {
        f.local_get(0).memory_grow().drop().memory_size();
    });
    let module = b.finish();
    for tier in Tier::ALL {
        let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
        let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        assert_eq!(inst.invoke("grow", &[Value::I32(1)]).unwrap(), vec![Value::I32(2)]);
        // Past the max: grow fails (-1) and size is unchanged.
        assert_eq!(inst.invoke("grow", &[Value::I32(9)]).unwrap(), vec![Value::I32(2)]);
    }
}

#[test]
fn call_indirect_dispatch_and_type_mismatch() {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    let f0 = b.func("ten", vec![], vec![ValType::I32], |f| {
        f.i32_const(10);
    });
    let f1 = b.func("double_it", vec![], vec![ValType::F64], |f| {
        f.f64_const(1.5);
    });
    let sig_i32 = b.type_idx(wasm_engine::FuncType::new(vec![], vec![ValType::I32]));
    b.table(vec![f0, f1]);
    b.func("dispatch", vec![ValType::I32], vec![ValType::I32], move |f| {
        f.local_get(0).call_indirect(sig_i32);
    });
    let module = b.finish();
    for tier in Tier::ALL {
        let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
        let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        assert_eq!(inst.invoke("dispatch", &[Value::I32(0)]).unwrap(), vec![Value::I32(10)]);
        // Slot 1 holds a () -> f64 function: signature mismatch traps.
        assert_eq!(
            inst.invoke("dispatch", &[Value::I32(1)]).unwrap_err(),
            Trap::IndirectCallTypeMismatch,
            "tier {tier}"
        );
        // Out-of-range slot.
        assert_eq!(
            inst.invoke("dispatch", &[Value::I32(7)]).unwrap_err(),
            Trap::UndefinedTableElement { index: 7 }
        );
    }
}

#[test]
fn recursion_exhausts_call_depth_cleanly() {
    // Debug-build interpreter frames are large; give the guest room so
    // the engine's own depth limit fires first.
    let handle = std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(recursion_body)
        .unwrap();
    handle.join().unwrap();
}

fn recursion_body() {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    let rec = b.reserve_func(vec![ValType::I32], vec![ValType::I32]);
    b.define_reserved(rec, |f| {
        // Unconditional self-recursion.
        f.local_get(0).i32_const(1).i32_add().call(rec);
    });
    b.export_func("rec", rec);
    let module = b.finish();
    for tier in Tier::ALL {
        let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
        let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        assert_eq!(
            inst.invoke("rec", &[Value::I32(0)]).unwrap_err(),
            Trap::StackExhausted,
            "tier {tier}"
        );
    }
}

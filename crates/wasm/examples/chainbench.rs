//! Quick microbenchmark comparing Max vs MaxJit on small hot loops.
//! Not part of the test suite — a development aid for tuning the
//! superblock tier. Run with:
//! `cargo run --release -p wasm-engine --example chainbench`

use std::time::Instant;

use wasm_engine::runtime::{CompiledModule, Linker, Value};
use wasm_engine::{dsl, ModuleBuilder, Tier, ValType};

fn time_invoke(module: &wasm_engine::Module, tier: Tier, arg: i32) -> (i64, f64) {
    let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
    compiled.set_jit_threshold(1);
    let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
    // Warmup promotes + compiles chains.
    inst.invoke("run", &[Value::I32(1000)]).unwrap();
    let mut best = f64::MAX;
    let mut out = 0i64;
    for _ in 0..5 {
        let t0 = Instant::now();
        let r = inst.invoke("run", &[Value::I32(arg)]).unwrap();
        best = best.min(t0.elapsed().as_secs_f64());
        out = match r[0] {
            Value::I32(v) => v as i64,
            Value::I64(v) => v,
            _ => 0,
        };
    }
    (out, best)
}

fn bench(name: &str, module: &wasm_engine::Module, arg: i32) {
    wasm_engine::validate_module(module).unwrap();
    let (vmax, tmax) = time_invoke(module, Tier::Max, arg);
    let (vjit, tjit) = time_invoke(module, Tier::MaxJit, arg);
    assert_eq!(vmax, vjit, "{name} mismatch");
    println!(
        "{name:14} max {:>9.3} ms   max+jit {:>9.3} ms   ratio {:.2}x",
        tmax * 1e3,
        tjit * 1e3,
        tmax / tjit
    );
}

/// Pure i32 arithmetic loop: acc += i*i ^ (i >> 3).
fn arith_module() -> wasm_engine::Module {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(1));
    b.func("run", vec![ValType::I32], vec![ValType::I32], |f| {
        let n = dsl::local(0, ValType::I32);
        let i = dsl::Var::new(f, ValType::I32);
        let acc = dsl::Var::new(f, ValType::I32);
        let stmts = vec![
            dsl::for_range(i, dsl::int(0), n.get(), &[
                acc.set(acc.get() + i.get() * i.get()),
                acc.set(acc.get().xor(i.get().shr_s(dsl::int(3)))),
            ]),
            dsl::ret(Some(acc.get())),
        ];
        dsl::emit_block(f, &stmts);
    });
    b.finish()
}

/// Memory-heavy loop: histogram over a rolling key (npb_is-shaped).
fn mem_module() -> wasm_engine::Module {
    let mut b = ModuleBuilder::new();
    b.memory(4, Some(4));
    b.func("run", vec![ValType::I32], vec![ValType::I32], |f| {
        let n = dsl::local(0, ValType::I32);
        let i = dsl::Var::new(f, ValType::I32);
        let k = dsl::Var::new(f, ValType::I32);
        let addr = dsl::Var::new(f, ValType::I32);
        let stmts = vec![
            dsl::for_range(i, dsl::int(0), n.get(), &[
                k.set((k.get() * dsl::int(1103515245) + dsl::int(12345)).and(dsl::int(0xffff))),
                addr.set(k.get().and(dsl::int(0x3ff)).shl(dsl::int(2))),
                dsl::store(
                    addr.get(),
                    0,
                    addr.get().load(ValType::I32, 0) + dsl::int(1),
                ),
            ]),
            dsl::ret(Some(dsl::int(0).load(ValType::I32, 0))),
        ];
        dsl::emit_block(f, &stmts);
    });
    b.finish()
}

/// f64 FMA loop (hpcg-shaped dot product over memory).
fn fma_module() -> wasm_engine::Module {
    let mut b = ModuleBuilder::new();
    b.memory(4, Some(4));
    b.func("run", vec![ValType::I32], vec![ValType::I32], |f| {
        let n = dsl::local(0, ValType::I32);
        let i = dsl::Var::new(f, ValType::I32);
        let acc = dsl::Var::new(f, ValType::F64);
        let a = dsl::Var::new(f, ValType::F64);
        let stmts = vec![
            dsl::for_range(i, dsl::int(0), n.get(), &[
                a.set(i.get().and(dsl::int(0xfff)).shl(dsl::int(3)).load(ValType::F64, 0)),
                acc.set(acc.get() + a.get() * a.get()),
            ]),
            dsl::ret(Some(acc.get().to(ValType::I32))),
        ];
        dsl::emit_block(f, &stmts);
    });
    b.finish()
}

fn main() {
    let n = 20_000_000;
    bench("arith", &arith_module(), n);
    bench("mem", &mem_module(), n);
    bench("fma", &fma_module(), n);
}

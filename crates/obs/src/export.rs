//! Chrome trace-event JSON exporter (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Layout: one process (`mpiwasm`), one thread track per rank plus an
//! `engine` track for tier promotions. P2p activity exports as `X`
//! (complete) slices; each send/recv pair shares a flow id emitted as
//! `s`/`f` events, which Perfetto renders as an arrow from the send slice
//! on the sender's track to the recv slice on the receiver's track.
//! Collectives export as async `b`/`e` spans keyed by their instance id so
//! overlapping nonblocking collectives stay distinct. Dropped-event counts
//! appear both in `otherData` and as instant events on the affected track,
//! so a truncated trace says so on the timeline itself.
//!
//! The writer emits exactly one JSON object per line between the
//! `"traceEvents": [` and `]` lines — the schema tests lean on that.

use std::io::{self, Write};

use crate::event::{Event, EventKind};
use crate::Recorder;

/// Export the recorder's contents as a Chrome trace-event JSON string.
pub fn export_chrome_trace(rec: &Recorder) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(rec, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Stream the recorder's contents as Chrome trace-event JSON.
pub fn write_chrome_trace(rec: &Recorder, w: &mut dyn Write) -> io::Result<()> {
    let n_ranks = rec.n_ranks();
    let engine_tid = n_ranks;

    // Per-rank snapshots, sorted by timestamp (stable: emission order
    // breaks ties, which preserves causality for equal virtual times).
    let mut tracks: Vec<Vec<Event>> = (0..n_ranks).map(|r| rec.rank_events(r)).collect();
    for t in &mut tracks {
        t.sort_by(|a, b| a.ts_us.partial_cmp(&b.ts_us).unwrap_or(std::cmp::Ordering::Equal));
    }
    let engine = rec.engine_events();

    // Index send completions so the send slice can span start→done.
    let mut done_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for t in &tracks {
        for e in t {
            if let EventKind::SendDone { flow, .. } = e.kind {
                done_ts.insert(flow, e.ts_us);
            }
        }
    }

    let mut lines: Vec<String> = Vec::new();

    // Track metadata: process and per-rank thread names.
    lines.push(meta_line("process_name", 0, "mpiwasm"));
    for r in 0..n_ranks {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{r},\"args\":{{\"name\":\"rank {r}\"}}}}"
        ));
    }
    if !engine.is_empty() {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{engine_tid},\"args\":{{\"name\":\"engine\"}}}}"
        ));
    }

    for (rank, t) in tracks.iter().enumerate() {
        for e in t {
            emit_event(&mut lines, rank, e, &done_ts);
        }
        let dropped = rec.dropped(rank);
        if dropped > 0 {
            let ts = t.last().map(|e| e.ts_us).unwrap_or(0.0);
            lines.push(format!(
                "{{\"name\":\"events dropped\",\"cat\":\"trace\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{rank},\"args\":{{\"count\":{dropped}}}}}",
                fmt_ts(ts)
            ));
        }
    }
    for e in &engine {
        // The engine track renders through the same per-event emitter (the
        // watchdog and promotion hooks both land here).
        emit_event(&mut lines, engine_tid, e, &done_ts);
    }

    writeln!(w, "{{")?;
    writeln!(w, "\"traceEvents\": [")?;
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        writeln!(w, "{line}{comma}")?;
    }
    writeln!(w, "],")?;
    writeln!(w, "\"displayTimeUnit\": \"ms\",")?;
    let mut other = format!(
        "\"otherData\": {{\"clock\": \"{}\", \"ranks\": {}, \"dropped_events\": {}",
        rec.clock().name(),
        n_ranks,
        rec.total_dropped()
    );
    for (key, value) in rec.annotations() {
        other.push_str(&format!(", \"{}\": \"{}\"", json_escape(&key), json_escape(&value)));
    }
    other.push('}');
    writeln!(w, "{other}")?;
    writeln!(w, "}}")?;
    Ok(())
}

/// Minimal JSON string escaping for annotation keys/values.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn meta_line(name: &str, pid: u32, value: &str) -> String {
    format!("{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{value}\"}}}}")
}

/// Format a µs timestamp with ns precision (Chrome ts unit is µs).
fn fmt_ts(ts: f64) -> String {
    format!("{ts:.3}")
}

fn emit_event(
    lines: &mut Vec<String>,
    rank: usize,
    e: &Event,
    done_ts: &std::collections::HashMap<u64, f64>,
) {
    let ts = fmt_ts(e.ts_us);
    match e.kind {
        EventKind::SendStart { peer, tag, bytes, protocol, matched_posted, flow } => {
            // Sends with a recorded completion (rendezvous/deferred) span
            // start→done; fire-and-forget eager sends get a nominal width
            // so the slice is visible and can anchor the flow arrow.
            let dur = done_ts
                .get(&flow)
                .map(|d| (d - e.ts_us).max(0.1))
                .unwrap_or(0.1);
            let matched = if matched_posted { "posted" } else { "queued" };
            lines.push(format!(
                "{{\"name\":\"send \\u2192{peer}\",\"cat\":\"p2p\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":0,\"tid\":{rank},\"args\":{{\"protocol\":\"{}\",\"bytes\":{bytes},\"tag\":{tag},\"match\":\"{matched}\",\"flow\":{flow}}}}}",
                fmt_ts(dur),
                protocol.name()
            ));
            if flow != 0 {
                lines.push(format!(
                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{flow},\"ts\":{ts},\"pid\":0,\"tid\":{rank}}}"
                ));
            }
        }
        EventKind::SendDone { peer, flow } => {
            // The span is folded into the SendStart slice; keep a thin
            // marker so sender-side completion order stays visible.
            lines.push(format!(
                "{{\"name\":\"send-complete \\u2192{peer}\",\"cat\":\"p2p\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"flow\":{flow}}}}}"
            ));
        }
        EventKind::RecvPost { peer, tag } => {
            lines.push(format!(
                "{{\"name\":\"recv-post\",\"cat\":\"p2p\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"src\":{peer},\"tag\":{tag}}}}}"
            ));
        }
        EventKind::RecvDone { peer, tag, bytes, protocol, flow } => {
            lines.push(format!(
                "{{\"name\":\"recv \\u2190{peer}\",\"cat\":\"p2p\",\"ph\":\"X\",\"ts\":{ts},\"dur\":0.100,\"pid\":0,\"tid\":{rank},\"args\":{{\"protocol\":\"{}\",\"bytes\":{bytes},\"tag\":{tag},\"flow\":{flow}}}}}",
                protocol.name()
            ));
            if flow != 0 {
                lines.push(format!(
                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow},\"ts\":{ts},\"pid\":0,\"tid\":{rank}}}"
                ));
            }
        }
        EventKind::CollBegin { kind, algo, id } => {
            lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"coll\",\"ph\":\"b\",\"id\":{id},\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"algorithm\":\"{}\"}}}}",
                kind.name(),
                algo.name()
            ));
        }
        EventKind::CollRound { kind, round, id } => {
            lines.push(format!(
                "{{\"name\":\"{} round {round}\",\"cat\":\"coll\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"id\":{id}}}}}",
                kind.name()
            ));
        }
        EventKind::CollEnd { kind, id } => {
            lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"coll\",\"ph\":\"e\",\"id\":{id},\"ts\":{ts},\"pid\":0,\"tid\":{rank}}}",
                kind.name()
            ));
        }
        EventKind::ReqTransition { req, state } => {
            lines.push(format!(
                "{{\"name\":\"req\\u2192{}\",\"cat\":\"request\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"req\":{req}}}}}",
                state.name()
            ));
        }
        EventKind::Promotion { func } => {
            // Promotions normally live on the engine track; one emitted on
            // a rank track still renders.
            lines.push(format!(
                "{{\"name\":\"promote f{func}\",\"cat\":\"jit\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"func\":{func}}}}}"
            ));
        }
        EventKind::RankFailed { rank: failed } => {
            // Process-scoped instant ("s":"p") so the failure is visible
            // from any zoom level, anchored on the failed rank's track.
            lines.push(format!(
                "{{\"name\":\"RANK {failed} FAILED\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"rank\":{failed}}}}}"
            ));
        }
        EventKind::WatchdogFired { stalled_us } => {
            lines.push(format!(
                "{{\"name\":\"WATCHDOG\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"stalled_us\":{}}}}}",
                fmt_ts(stalled_us)
            ));
        }
        EventKind::FuelExhausted { rank: victim } => {
            lines.push(format!(
                "{{\"name\":\"fuel exhausted\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{rank},\"args\":{{\"rank\":{victim}}}}}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Algorithm, CollKind, Protocol};
    use crate::TraceClock;

    #[test]
    fn export_shape_has_tracks_flows_and_metadata() {
        let rec = Recorder::new(2, 16, TraceClock::Virtual);
        let flow = rec.next_flow();
        rec.emit(0, 1.0, EventKind::SendStart {
            peer: 1,
            tag: 5,
            bytes: 64,
            protocol: Protocol::Eager,
            matched_posted: true,
            flow,
        });
        rec.emit(1, 0.5, EventKind::RecvPost { peer: 0, tag: 5 });
        rec.emit(1, 2.0, EventKind::RecvDone {
            peer: 0,
            tag: 5,
            bytes: 64,
            protocol: Protocol::Eager,
            flow,
        });
        rec.emit(0, 3.0, EventKind::CollBegin {
            kind: CollKind::Allreduce,
            algo: Algorithm::RecursiveDoubling,
            id: 9,
        });
        rec.emit(0, 4.0, EventKind::CollEnd { kind: CollKind::Allreduce, id: 9 });

        let json = export_chrome_trace(&rec);
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains(&format!("\"id\":{flow}")));
        assert!(json.contains("recursive-doubling"));
        assert!(json.contains("\"clock\": \"virtual\""));
        assert!(json.contains("\"dropped_events\": 0"));
        // Every traceEvents line parses as a single self-contained object.
        let body: Vec<&str> = json
            .lines()
            .skip_while(|l| !l.starts_with("\"traceEvents\""))
            .skip(1)
            .take_while(|l| !l.starts_with(']'))
            .collect();
        assert!(body.len() >= 7);
        for line in body {
            let line = line.trim_end_matches(',');
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
    }

    #[test]
    fn dropped_events_surface_on_the_timeline() {
        let rec = Recorder::new(1, 2, TraceClock::Real);
        for i in 0..5 {
            rec.emit(0, i as f64, EventKind::RecvPost { peer: 0, tag: i });
        }
        let json = export_chrome_trace(&rec);
        assert!(json.contains("events dropped"));
        assert!(json.contains("\"dropped_events\": 3"));
    }
}

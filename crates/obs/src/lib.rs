//! Flight recorder for the MPIWasm stack.
//!
//! Three pieces, all dependency-free so every layer of the workspace can
//! emit into the same sink:
//!
//! * **Events** ([`Event`], [`EventKind`]) — small `Copy` records of the
//!   things the paper's evaluation reasons about: p2p sends/receives with
//!   protocol and byte counts, rendezvous handshake phases, posted- vs
//!   queued-match outcomes, collective rounds with their algorithm tag,
//!   request state transitions, and engine tier promotions.
//! * **Per-rank ring buffers** ([`RankLog`]) — lock-free bounded append
//!   logs. A writer claims a slot with one `fetch_add`; once the log is
//!   full further events bump a dropped counter instead, so truncation is
//!   counted, never silent. Readers only observe slots whose `ready` flag
//!   has been published, so a snapshot taken concurrently with writers is
//!   safe (it simply misses in-flight events).
//! * **Exporter** ([`export_chrome_trace`]) — Chrome trace-event JSON
//!   loadable in Perfetto: one track per rank, `X` slices for p2p and
//!   async `b`/`e` spans for collectives, and `s`/`f` flow arrows tying
//!   each send to the matching receive.
//!
//! Timestamps are microseconds of either host time (real clock mode) or
//! simulated time (virtual clock mode); the recorder itself is
//! mode-agnostic — the emitting layer resolves the mode once (see
//! `mpi-substrate`'s `WorldTrace`) and hands finished `f64` timestamps in.

mod event;
mod export;
mod metrics;
mod ring;

pub use event::{Algorithm, CollKind, Event, EventKind, Protocol, ReqState};
pub use export::{export_chrome_trace, write_chrome_trace};
pub use metrics::MetricSet;
pub use ring::RankLog;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-rank event capacity (events, not bytes).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Which clock produced the timestamps in a recorder. Carried into the
/// exported trace metadata so a reader knows whether the timeline is host
/// time or the replayed simulated timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClock {
    Real,
    Virtual,
}

impl TraceClock {
    pub fn name(self) -> &'static str {
        match self {
            TraceClock::Real => "real",
            TraceClock::Virtual => "virtual",
        }
    }
}

/// The flight recorder: one bounded event log per rank plus one extra
/// engine-wide track (tier promotions happen inside the Wasm engine, which
/// has no notion of MPI ranks), a global flow-id allocator for send→recv
/// arrows, and a metrics registry that the layers fold their counters into
/// at quiescence.
pub struct Recorder {
    ranks: Vec<RankLog>,
    engine: RankLog,
    epoch: Instant,
    clock: TraceClock,
    enabled: AtomicBool,
    flow: AtomicU64,
    metrics: Mutex<MetricSet>,
    /// Free-form string annotations carried into the exported trace's
    /// `otherData` footer (e.g. the hang watchdog's per-rank report).
    annotations: Mutex<Vec<(String, String)>>,
}

impl Recorder {
    /// A recorder for `n_ranks` ranks with `capacity` event slots per rank
    /// (plus an engine track at the same capacity).
    pub fn new(n_ranks: usize, capacity: usize, clock: TraceClock) -> Arc<Recorder> {
        Arc::new(Recorder {
            ranks: (0..n_ranks).map(|_| RankLog::new(capacity)).collect(),
            engine: RankLog::new(capacity),
            epoch: Instant::now(),
            clock,
            enabled: AtomicBool::new(true),
            // Flow id 0 means "no flow"; real ids start at 1.
            flow: AtomicU64::new(1),
            metrics: Mutex::new(MetricSet::new()),
            annotations: Mutex::new(Vec::new()),
        })
    }

    /// Number of rank tracks (excluding the engine track).
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn clock(&self) -> TraceClock {
        self.clock
    }

    /// Runtime kill switch. A disabled recorder drops nothing — emit
    /// becomes a no-op and the dropped counters stay untouched — so a
    /// "compiled in but disabled" run measures pure instrumentation cost.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Microseconds since the recorder was created (real-clock timestamps).
    #[inline]
    pub fn elapsed_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Allocate a flow id tying a send event to its receive event.
    #[inline]
    pub fn next_flow(&self) -> u64 {
        self.flow.fetch_add(1, Ordering::Relaxed)
    }

    /// Append an event to `rank`'s log. Out-of-range ranks and disabled
    /// recorders are ignored (never panics on the hot path).
    #[inline]
    pub fn emit(&self, rank: usize, ts_us: f64, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        if let Some(log) = self.ranks.get(rank) {
            log.push(Event { ts_us, kind });
        }
    }

    /// Append an engine-track event, timestamped with the recorder's own
    /// real clock (the engine has no virtual clock of its own).
    #[inline]
    pub fn emit_engine(&self, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        self.engine.push(Event { ts_us: self.elapsed_us(), kind });
    }

    /// Snapshot of one rank's events in emission order.
    pub fn rank_events(&self, rank: usize) -> Vec<Event> {
        self.ranks.get(rank).map(|l| l.snapshot()).unwrap_or_default()
    }

    pub fn engine_events(&self) -> Vec<Event> {
        self.engine.snapshot()
    }

    /// Events dropped on `rank` because its log was full.
    pub fn dropped(&self, rank: usize) -> u64 {
        self.ranks.get(rank).map(|l| l.dropped()).unwrap_or(0)
    }

    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|l| l.dropped()).sum::<u64>() + self.engine.dropped()
    }

    /// Fold a batch of named counters into the unified metrics registry.
    /// Values accumulate across calls (so per-rank or per-run sources can
    /// all merge into one table).
    pub fn fold_metrics<I>(&self, entries: I)
    where
        I: IntoIterator<Item = (&'static str, u64)>,
    {
        let mut m = self.metrics.lock().unwrap();
        for (name, v) in entries {
            m.add(name, v);
        }
    }

    /// Attach (or replace) a named free-form annotation. Annotations ride
    /// into the exported trace's `otherData` footer.
    pub fn set_annotation(&self, key: &str, value: impl Into<String>) {
        let mut a = self.annotations.lock().unwrap();
        match a.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.into(),
            None => a.push((key.to_string(), value.into())),
        }
    }

    /// Snapshot of the annotations in insertion order.
    pub fn annotations(&self) -> Vec<(String, String)> {
        self.annotations.lock().unwrap().clone()
    }

    /// Point-in-time snapshot of the metrics registry, with the recorder's
    /// own drop counters folded in under `trace.dropped_events`.
    pub fn metrics(&self) -> MetricSet {
        let mut m = self.metrics.lock().unwrap().clone();
        m.add("trace.dropped_events", self.total_dropped());
        let events: u64 =
            self.ranks.iter().map(|l| l.len() as u64).sum::<u64>() + self.engine.len() as u64;
        m.add("trace.events", events);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_snapshot_roundtrip() {
        let rec = Recorder::new(2, 8, TraceClock::Virtual);
        rec.emit(0, 1.0, EventKind::RecvPost { peer: -1, tag: 7 });
        rec.emit(1, 2.0, EventKind::SendDone { peer: 0, flow: 3 });
        let r0 = rec.rank_events(0);
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].ts_us, 1.0);
        assert!(matches!(r0[0].kind, EventKind::RecvPost { peer: -1, tag: 7 }));
        assert_eq!(rec.rank_events(1).len(), 1);
        assert_eq!(rec.total_dropped(), 0);
    }

    #[test]
    fn full_log_counts_drops_instead_of_growing() {
        let rec = Recorder::new(1, 4, TraceClock::Real);
        for i in 0..10 {
            rec.emit(0, i as f64, EventKind::RecvPost { peer: 0, tag: i });
        }
        assert_eq!(rec.rank_events(0).len(), 4);
        assert_eq!(rec.dropped(0), 6);
        // The metrics snapshot reports the truncation.
        let m = rec.metrics();
        assert_eq!(m.get("trace.dropped_events"), Some(6));
    }

    #[test]
    fn disabled_recorder_ignores_events() {
        let rec = Recorder::new(1, 4, TraceClock::Real);
        rec.set_enabled(false);
        rec.emit(0, 0.0, EventKind::RecvPost { peer: 0, tag: 0 });
        rec.emit_engine(EventKind::Promotion { func: 1 });
        assert!(rec.rank_events(0).is_empty());
        assert!(rec.engine_events().is_empty());
        assert_eq!(rec.total_dropped(), 0);
    }

    #[test]
    fn flow_ids_are_unique_and_nonzero() {
        let rec = Recorder::new(1, 4, TraceClock::Real);
        let a = rec.next_flow();
        let b = rec.next_flow();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn out_of_range_rank_is_ignored() {
        let rec = Recorder::new(1, 4, TraceClock::Real);
        rec.emit(5, 0.0, EventKind::RecvPost { peer: 0, tag: 0 });
        assert_eq!(rec.total_dropped(), 0);
    }

    #[test]
    fn metrics_fold_accumulates() {
        let rec = Recorder::new(1, 4, TraceClock::Real);
        rec.fold_metrics([("mpi.eager_messages", 3)]);
        rec.fold_metrics([("mpi.eager_messages", 2), ("jit.promotions", 1)]);
        let m = rec.metrics();
        assert_eq!(m.get("mpi.eager_messages"), Some(5));
        assert_eq!(m.get("jit.promotions"), Some(1));
    }
}

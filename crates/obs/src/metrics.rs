//! The unified metrics registry: a named-counter table that every layer's
//! statistics fold into (`mpi.*` from `ProtocolStats`, `jit.*` from the
//! engine's superblock counters, `trace.*` from the recorder itself),
//! queried as a point-in-time snapshot.

use std::collections::BTreeMap;

/// An ordered name → counter table. Cheap to clone, merge, and render.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    entries: BTreeMap<&'static str, u64>,
}

impl MetricSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `value` into `name` (creating it at zero first).
    pub fn add(&mut self, name: &'static str, value: u64) {
        *self.entries.entry(name).or_insert(0) += value;
    }

    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Fold another set into this one, summing shared names.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, v) in &other.entries {
            self.add(name, *v);
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().map(|(n, v)| (*n, *v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render as an aligned two-column text table (the CLI's `--metrics`
    /// output).
    pub fn render_table(&self) -> String {
        let width = self.entries.keys().map(|n| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, v) in &self.entries {
            out.push_str(&format!("{name:<width$}  {v}\n"));
        }
        out
    }
}

impl FromIterator<(&'static str, u64)> for MetricSet {
    fn from_iter<T: IntoIterator<Item = (&'static str, u64)>>(iter: T) -> Self {
        let mut m = MetricSet::new();
        for (n, v) in iter {
            m.add(n, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_merge_accumulate() {
        let mut a: MetricSet = [("x", 1), ("y", 2)].into_iter().collect();
        let b: MetricSet = [("y", 3), ("z", 4)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get("x"), Some(1));
        assert_eq!(a.get("y"), Some(5));
        assert_eq!(a.get("z"), Some(4));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn table_is_sorted_and_aligned() {
        let m: MetricSet = [("bb", 2), ("a", 1)].into_iter().collect();
        let t = m.render_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines, vec!["a   1", "bb  2"]);
    }
}

//! The typed event vocabulary of the flight recorder.
//!
//! Events are small `Copy` values (no heap, no strings) so a ring slot is
//! a plain store; names only materialize at export time.

/// Wire protocol a point-to-point message travelled under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Payload copied into the receiver's mailbox at send time.
    Eager,
    /// Eager-size message that found no credit and fell back to a
    /// sender-owned deferred rendezvous.
    EagerDeferred,
    /// Two-phase RTS/consume handshake; payload moves at match time.
    Rendezvous,
    /// Self-send (always eager, never counted against credits).
    SelfMsg,
}

impl Protocol {
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Eager => "eager",
            Protocol::EagerDeferred => "eager-deferred",
            Protocol::Rendezvous => "rendezvous",
            Protocol::SelfMsg => "self",
        }
    }
}

/// Which collective a round/span belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollKind {
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
    Alltoallv,
}

impl CollKind {
    pub fn name(self) -> &'static str {
        match self {
            CollKind::Barrier => "barrier",
            CollKind::Bcast => "bcast",
            CollKind::Reduce => "reduce",
            CollKind::Allreduce => "allreduce",
            CollKind::Gather => "gather",
            CollKind::Scatter => "scatter",
            CollKind::Allgather => "allgather",
            CollKind::Alltoall => "alltoall",
            CollKind::Alltoallv => "alltoallv",
        }
    }
}

/// Schedule used by a collective (the algorithm tag in the trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    Dissemination,
    Binomial,
    /// Binomial tree over pipelined segments (large bcast payloads).
    BinomialSegmented,
    RecursiveDoubling,
    Ring,
    /// Bruck's log₂(p)-round store-and-forward schedule (allgather /
    /// small alltoall).
    Bruck,
    /// Rabenseifner's reduce-scatter + allgather allreduce.
    Rabenseifner,
    Pairwise,
    LinearRoot,
}

impl Algorithm {
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Dissemination => "dissemination",
            Algorithm::Binomial => "binomial",
            Algorithm::BinomialSegmented => "binomial-segmented",
            Algorithm::RecursiveDoubling => "recursive-doubling",
            Algorithm::Ring => "ring",
            Algorithm::Bruck => "bruck",
            Algorithm::Rabenseifner => "rabenseifner",
            Algorithm::Pairwise => "pairwise",
            Algorithm::LinearRoot => "linear-root",
        }
    }
}

/// A nonblocking request's state-machine position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqState {
    Active,
    Done,
    Failed,
    Cancelled,
    Inactive,
    Null,
}

impl ReqState {
    pub fn name(self) -> &'static str {
        match self {
            ReqState::Active => "active",
            ReqState::Done => "done",
            ReqState::Failed => "failed",
            ReqState::Cancelled => "cancelled",
            ReqState::Inactive => "inactive",
            ReqState::Null => "null",
        }
    }
}

/// One recorded happening. The emitting rank is implied by which log the
/// event sits in; `peer` fields are ranks in the world communicator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A send left this rank. For rendezvous this marks the RTS posting
    /// (handshake phase 1). `matched_posted` distinguishes a posted-list
    /// match from an unexpected-queue deposit at the receiver.
    SendStart { peer: u32, tag: i32, bytes: u32, protocol: Protocol, matched_posted: bool, flow: u64 },
    /// A deferred/rendezvous send completed from the sender's point of
    /// view (handshake phase 3: payload consumed or buffer released).
    SendDone { peer: u32, flow: u64 },
    /// A receive was posted (peer/tag may be -1 wildcards).
    RecvPost { peer: i32, tag: i32 },
    /// A message was delivered into a receive buffer on this rank. For
    /// rendezvous this is handshake phase 2 (the consume/copy).
    RecvDone { peer: u32, tag: i32, bytes: u32, protocol: Protocol, flow: u64 },
    /// A collective began on this rank. `id` ties Begin/Round/End together
    /// so overlapping nonblocking collectives export as distinct spans.
    CollBegin { kind: CollKind, algo: Algorithm, id: u64 },
    /// The collective's schedule advanced to `round`.
    CollRound { kind: CollKind, round: u32, id: u64 },
    CollEnd { kind: CollKind, id: u64 },
    /// A request moved to `state`. `req` is a per-request trace id.
    ReqTransition { req: u64, state: ReqState },
    /// The engine promoted function `func` to compiled superblock chains.
    Promotion { func: u32 },
    /// World rank `rank` failed (injected fault, guest trap, resource
    /// limit, or panic). Recorded on the failed rank's own log.
    RankFailed { rank: u32 },
    /// The hang watchdog declared the world stuck after `stalled_us`
    /// microseconds without progress. The human-readable per-rank report
    /// travels out of band (Perfetto `otherData` footer).
    WatchdogFired { stalled_us: f64 },
    /// Rank `rank`'s guest exhausted its fuel / deadline budget and was
    /// interrupted at a guard point.
    FuelExhausted { rank: u32 },
}

/// A timestamped event. `ts_us` is microseconds of whichever clock the
/// recorder was created with (host time or the simulated timeline).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    pub ts_us: f64,
    pub kind: EventKind,
}

//! Lock-free bounded append log.
//!
//! Writers race on a single `fetch_add` to claim a slot index; a claim at
//! or past capacity increments the dropped counter instead (drop-newest —
//! the head of the timeline is the part that explains a hang or a storm,
//! and keeping it makes the virtual-clock monotonicity guarantee trivial).
//! Each slot carries a `ready` flag published with `Release` ordering after
//! the payload store, so a concurrent reader never observes a torn event:
//! it either sees `ready` and the full payload, or skips the slot.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::event::Event;

/// One rank's bounded event log.
pub struct RankLog {
    slots: Box<[Slot]>,
    /// Total claim tickets ever issued (may exceed capacity; the excess is
    /// exactly the dropped count).
    claimed: AtomicU64,
    dropped: AtomicU64,
}

struct Slot {
    ready: AtomicBool,
    event: UnsafeCell<Event>,
}

// SAFETY: slots are written at most once (a claim ticket is unique) and
// only read after the `ready` flag is observed with Acquire ordering,
// which synchronizes with the writer's Release store.
unsafe impl Sync for RankLog {}
unsafe impl Send for RankLog {}

impl RankLog {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log needs at least one slot");
        let slots = (0..capacity)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                event: UnsafeCell::new(Event {
                    ts_us: 0.0,
                    kind: crate::event::EventKind::RecvPost { peer: 0, tag: 0 },
                }),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RankLog { slots, claimed: AtomicU64::new(0), dropped: AtomicU64::new(0) }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append `ev`, or count a drop if the log is full.
    #[inline]
    pub fn push(&self, ev: Event) {
        let ticket = self.claimed.fetch_add(1, Ordering::Relaxed);
        match self.slots.get(ticket as usize) {
            Some(slot) => {
                // SAFETY: this ticket is unique, so we are the only writer
                // of this slot, and no reader looks before `ready`.
                unsafe { *slot.event.get() = ev };
                slot.ready.store(true, Ordering::Release);
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events recorded so far, in claim order. Slots claimed but not yet
    /// published by a racing writer are skipped (push is not atomic with
    /// the claim), so a quiescent log always returns everything.
    pub fn snapshot(&self) -> Vec<Event> {
        let n = (self.claimed.load(Ordering::Acquire) as usize).min(self.slots.len());
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            if slot.ready.load(Ordering::Acquire) {
                // SAFETY: ready was published after the payload store.
                out.push(unsafe { *slot.event.get() });
            }
        }
        out
    }

    /// Number of published events.
    pub fn len(&self) -> usize {
        let n = (self.claimed.load(Ordering::Acquire) as usize).min(self.slots.len());
        self.slots[..n].iter().filter(|s| s.ready.load(Ordering::Acquire)).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn ev(i: i32) -> Event {
        Event { ts_us: i as f64, kind: EventKind::RecvPost { peer: i, tag: i } }
    }

    #[test]
    fn preserves_order_and_bounds() {
        let log = RankLog::new(3);
        for i in 0..5 {
            log.push(ev(i));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.ts_us, i as f64);
        }
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn concurrent_pushes_lose_nothing_within_capacity() {
        let log = Arc::new(RankLog::new(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        log.push(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(log.len(), 4000);
        assert_eq!(log.dropped(), 0);
        // Every pushed event is present exactly once.
        let mut tags: Vec<i32> = log
            .snapshot()
            .iter()
            .map(|e| match e.kind {
                EventKind::RecvPost { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..4000).collect::<Vec<_>>());
    }
}

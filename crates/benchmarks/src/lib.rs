//! Standardized HPC benchmark guests for the MPIWasm reproduction.
//!
//! Every benchmark of the paper's §4.2 is implemented twice:
//!
//! * a **Wasm guest**, authored in the engine's DSL against the guest MPI
//!   import surface ([`guest::MpiImports`], the `mpi.h` analog) and
//!   executed through the embedder — the "WASM" series of the figures, and
//! * a **native** implementation, plain Rust directly against the MPI
//!   substrate — the "Native" baseline series.
//!
//! | Module | Paper benchmark |
//! |--------|-----------------|
//! | [`imb`]   | Intel MPI Benchmarks: PingPong, Sendrecv, Bcast, Allreduce, Allgather, Alltoall, Reduce, Gather, Scatter (Figures 3, 4, 7) |
//! | [`hpcg`]  | HPCG conjugate-gradient (Table 1, Figures 4f, 5c) |
//! | [`npb_is`] | NAS IS integer sort (Figure 5a left) |
//! | [`npb_dt`] | NAS DT data-traffic graph, bh/wh/sh, with and without SIMD (Figure 5a right) |
//! | [`ior`]   | IOR POSIX-backend file I/O (Figure 5b) |
//! | [`fig6`]  | The custom PingPong iterating over MPI datatypes (Figure 6) |
//! | [`overlap`] | IMB-NBC-style Iallreduce / p2p communication-computation overlap kernels |

pub mod fig6;
pub mod guest;
pub mod hpcg;
pub mod imb;
pub mod ior;
pub mod npb_dt;
pub mod npb_is;
pub mod overlap;

/// Default message-size sweep of the Intel MPI Benchmarks: 2^0 .. 2^22.
pub fn imb_message_sizes() -> Vec<u32> {
    (0..=22).map(|l| 1u32 << l).collect()
}

/// IMB-style iteration count for a message size: many iterations for tiny
/// messages, few for multi-MiB ones (keeps both native and guest runs
/// tractable while preserving the measurement structure).
pub fn imb_iters(bytes: u32, scale: u32) -> u32 {
    (scale * 64 / bytes.max(1).ilog2().max(1)).clamp(4, scale * 16) / if bytes > 65536 { 8 } else { 1 }
}

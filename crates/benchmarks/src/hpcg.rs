//! HPCG (§4.2): conjugate gradient on the 27-point stencil.
//!
//! Faithful to the structure that drives the paper's observations: a
//! memory-bound SpMV (matrix-free 27-point stencil, as HPCG's problem is a
//! regular grid), vector updates, and — crucially for Figure 5c — **two
//! `MPI_Allreduce` calls per iteration** for the dot products, which is
//! what makes the Wasm/native gap grow with rank count. Ranks decompose
//! the global grid in 1-D z-slabs and exchange one-plane halos per SpMV.
//!
//! Substitution note (DESIGN.md): the multigrid preconditioner is omitted
//! (plain CG); the communication/computation mix that the paper's analysis
//! attributes the degradation to (Allreduce frequency) is preserved.

use mpi_substrate::{Comm, Datatype, ReduceOp, Source, Tag};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

use crate::guest::{layout, MpiImports, MPI_DOUBLE, MPI_SUM};

/// Problem parameters: the local grid per rank and CG iteration count.
#[derive(Debug, Clone, Copy)]
pub struct HpcgParams {
    pub nx: u32,
    pub ny: u32,
    pub nz: u32,
    pub iters: u32,
}

impl Default for HpcgParams {
    fn default() -> Self {
        HpcgParams { nx: 16, ny: 16, nz: 16, iters: 10 }
    }
}

impl HpcgParams {
    pub fn local_n(&self) -> u64 {
        self.nx as u64 * self.ny as u64 * self.nz as u64
    }

    /// Model FLOP count per CG iteration per rank: 2 flops per stencil
    /// nonzero (27) for SpMV, two dot products and three AXPYs at 2 flops
    /// per element.
    pub fn flops_per_iter(&self) -> f64 {
        let n = self.local_n() as f64;
        2.0 * 27.0 * n + 2.0 * 2.0 * n + 3.0 * 2.0 * n
    }

    /// Model bytes moved per iteration per rank (vector traffic; used for
    /// the HPCG bandwidth series).
    pub fn bytes_per_iter(&self) -> f64 {
        let n = self.local_n() as f64;
        // SpMV reads 27 stencil operands + writes 1; dots read 2n each;
        // AXPYs read 2n + write n each.
        (27.0 + 1.0) * 8.0 * n + 2.0 * 2.0 * 8.0 * n + 3.0 * 3.0 * 8.0 * n
    }
}

/// Guest memory layout for the vectors (bytes, doubles are 8-aligned).
struct Layout {
    b: i32,
    r: i32,
    x: i32,
    ap: i32,
    /// p with ghost planes: plane 0 = bottom ghost, planes 1..=nz =
    /// interior, plane nz+1 = top ghost.
    pg: i32,
    plane: i32,
    n: i32,
}

fn vec_layout(p: &HpcgParams) -> Layout {
    let n = p.local_n() as i32;
    let plane = (p.nx * p.ny) as i32;
    let base = layout::HEAP;
    Layout {
        b: base,
        r: base + n * 8,
        x: base + 2 * n * 8,
        ap: base + 3 * n * 8,
        pg: base + 4 * n * 8,
        plane,
        n,
    }
}

/// Build the HPCG Wasm guest. Reports:
/// `(0, elapsed_seconds)`, `(1, rr_final / rr_initial)`, `(2, xsum)`.
pub fn build_guest(p: HpcgParams) -> Vec<u8> {
    let lay = vec_layout(&p);
    let mut b = ModuleBuilder::new();
    b.name("hpcg");
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);

    let (nx, ny, nz) = (p.nx as i32, p.ny as i32, p.nz as i32);
    let plane = lay.plane;
    let n = lay.n;

    // --- helper: halo exchange on PG ------------------------------------
    // Params: rank, size. Sends interior boundary planes, fills ghosts.
    let halo = b.func_private(vec![ValType::I32, ValType::I32], vec![], |f| {
        let rank = local(0, ValType::I32);
        let size = local(1, ValType::I32);
        let plane_bytes = plane * 8;
        let bottom_interior = lay.pg + plane_bytes; // plane index 1
        let top_interior = lay.pg + nz * plane_bytes; // plane index nz
        let bottom_ghost = lay.pg; // plane index 0
        let top_ghost = lay.pg + (nz + 1) * plane_bytes;
        emit_block(f, &[
            // Upward-moving data (tag 1): my top interior -> rank+1's
            // bottom ghost.
            if_then(rank.get().lt(size.get() - int(1)), &[mpi.send(
                int(top_interior),
                int(plane),
                MPI_DOUBLE,
                rank.get() + int(1),
                int(1),
            )]),
            if_then(rank.get().gt(int(0)), &[mpi.recv(
                int(bottom_ghost),
                int(plane),
                MPI_DOUBLE,
                rank.get() - int(1),
                int(1),
            )]),
            // Downward-moving data (tag 2): my bottom interior -> rank-1's
            // top ghost.
            if_then(rank.get().gt(int(0)), &[mpi.send(
                int(bottom_interior),
                int(plane),
                MPI_DOUBLE,
                rank.get() - int(1),
                int(2),
            )]),
            if_then(rank.get().lt(size.get() - int(1)), &[mpi.recv(
                int(top_ghost),
                int(plane),
                MPI_DOUBLE,
                rank.get() + int(1),
                int(2),
            )]),
        ]);
    });

    // --- helper: SpMV: out = A * PG ------------------------------------
    // Params: out_base, rank, size. Matrix-free 27-point stencil with
    // global boundary handling (z across ranks, x/y local).
    let spmv = b.func_private(vec![ValType::I32, ValType::I32, ValType::I32], vec![], |f| {
        let out_base = local(0, ValType::I32);
        let rank = local(1, ValType::I32);
        let size = local(2, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let j = Var::new(f, ValType::I32);
        let k = Var::new(f, ValType::I32);
        let sum = Var::new(f, ValType::F64);
        let center = Var::new(f, ValType::I32); // PG element index of (i,j,k)
        let gk = Var::new(f, ValType::I32); // global k

        // One statement list per (i,j,k) body, with the 27 neighbors
        // unrolled at build time.
        let mut body: Vec<Stmt> = vec![
            center.set(((k.get() + int(1)) * int(plane)) + j.get() * int(nx) + i.get()),
            gk.set(rank.get() * int(nz) + k.get()),
            sum.set(double(0.0)),
        ];
        for dk in -1i32..=1 {
            for dj in -1i32..=1 {
                for di in -1i32..=1 {
                    if di == 0 && dj == 0 && dk == 0 {
                        continue;
                    }
                    // In-bounds condition for this neighbor.
                    let mut cond = int(1);
                    if di != 0 {
                        let ni = i.get() + int(di);
                        cond = cond.and(ni.clone().ge(int(0)).and(ni.lt(int(nx))));
                    }
                    if dj != 0 {
                        let njv = j.get() + int(dj);
                        cond = cond.and(njv.clone().ge(int(0)).and(njv.lt(int(ny))));
                    }
                    if dk != 0 {
                        let ngk = gk.get() + int(dk);
                        // Global z bounds; the ghost plane holds the data
                        // whenever the neighbor exists.
                        cond = cond
                            .and(ngk.clone().ge(int(0)).and(ngk.lt(size.get() * int(nz))));
                    }
                    let neighbor = center.get() + int(dk * plane + dj * nx + di);
                    let load =
                        (int(lay.pg) + neighbor.shl(int(3))).load(ValType::F64, 0);
                    body.push(if_then(cond, &[sum.set(sum.get() + load)]));
                }
            }
        }
        // y[c] = 26*p[c] - sum(neighbors)
        let center_load = (int(lay.pg) + center.get().shl(int(3))).load(ValType::F64, 0);
        let out_idx = k.get() * int(plane) + j.get() * int(nx) + i.get();
        body.push(store(
            out_base.get() + out_idx.shl(int(3)),
            0,
            double(26.0) * center_load - sum.get(),
        ));

        emit_block(f, &[for_range(k, int(0), int(nz), &[for_range(
            j,
            int(0),
            int(ny),
            &[for_range(i, int(0), int(nx), &body)],
        )])]);
    });

    // --- helper: global dot product of two interior-sized vectors -------
    // Params: a_base, b_base -> f64. Uses SCRATCH for the allreduce.
    let dot = b.func_private(vec![ValType::I32, ValType::I32], vec![ValType::F64], |f| {
        let a = local(0, ValType::I32);
        let bb = local(1, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let acc = Var::new(f, ValType::F64);
        emit_block(f, &[
            for_range(i, int(0), int(n), &[acc.set(
                acc.get()
                    + (a.get() + i.get().shl(int(3))).load(ValType::F64, 0)
                        * (bb.get() + i.get().shl(int(3))).load(ValType::F64, 0),
            )]),
            store(int(layout::SCRATCH), 0, acc.get()),
            mpi.allreduce(
                int(layout::SCRATCH),
                int(layout::SCRATCH + 8),
                int(1),
                MPI_DOUBLE,
                MPI_SUM,
            ),
            ret(Some(int(layout::SCRATCH + 8).load(ValType::F64, 0))),
        ]);
    });

    // --- main ------------------------------------------------------------
    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let it = Var::new(f, ValType::I32);
        let t0 = Var::new(f, ValType::F64);
        let rr = Var::new(f, ValType::F64);
        let rr0 = Var::new(f, ValType::F64);
        let rr_new = Var::new(f, ValType::F64);
        let alpha = Var::new(f, ValType::F64);
        let beta = Var::new(f, ValType::F64);
        let pap = Var::new(f, ValType::F64);
        let xsum = Var::new(f, ValType::F64);

        let addr8 = |base: i32, idx: Expr| int(base) + idx.shl(int(3));
        let pg_interior = |idx: Expr| int(lay.pg + plane * 8) + idx.shl(int(3));

        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));

        stmts.extend([
            // Set p = 1 everywhere (including ghosts, so edge ranks see
            // Dirichlet-consistent data), then b = A*1.
            for_range(i, int(0), int((nz + 2) * plane), &[store(
                addr8(lay.pg, i.get()),
                0,
                double(1.0),
            )]),
            call_stmt(halo, vec![rank.get(), size.get()]),
            call_stmt(spmv, vec![int(lay.b), rank.get(), size.get()]),
            // x = 0; r = b; p_interior = r.
            for_range(i, int(0), int(n), &[
                store(addr8(lay.x, i.get()), 0, double(0.0)),
                store(addr8(lay.r, i.get()), 0, addr8(lay.b, i.get()).load(ValType::F64, 0)),
                store(pg_interior(i.get()), 0, addr8(lay.b, i.get()).load(ValType::F64, 0)),
            ]),
            rr.set(call(dot, vec![int(lay.r), int(lay.r)], ValType::F64)),
            rr0.set(rr.get()),
            mpi.barrier_world(),
            t0.set(mpi.wtime()),
            // CG iterations.
            for_range(it, int(0), int(p.iters as i32), &[
                call_stmt(halo, vec![rank.get(), size.get()]),
                call_stmt(spmv, vec![int(lay.ap), rank.get(), size.get()]),
                pap.set(call(dot, vec![int(lay.pg + plane * 8), int(lay.ap)], ValType::F64)),
                alpha.set(rr.get() / pap.get()),
                for_range(i, int(0), int(n), &[
                    // x += alpha * p ; r -= alpha * Ap
                    store(
                        addr8(lay.x, i.get()),
                        0,
                        addr8(lay.x, i.get()).load(ValType::F64, 0)
                            + alpha.get() * pg_interior(i.get()).load(ValType::F64, 0),
                    ),
                    store(
                        addr8(lay.r, i.get()),
                        0,
                        addr8(lay.r, i.get()).load(ValType::F64, 0)
                            - alpha.get() * addr8(lay.ap, i.get()).load(ValType::F64, 0),
                    ),
                ]),
                rr_new.set(call(dot, vec![int(lay.r), int(lay.r)], ValType::F64)),
                beta.set(rr_new.get() / rr.get()),
                rr.set(rr_new.get()),
                // p = r + beta * p
                for_range(i, int(0), int(n), &[store(
                    pg_interior(i.get()),
                    0,
                    addr8(lay.r, i.get()).load(ValType::F64, 0)
                        + beta.get() * pg_interior(i.get()).load(ValType::F64, 0),
                )]),
            ]),
            mpi.report(int(0), mpi.wtime() - t0.get()),
            mpi.report(int(1), rr.get() / rr0.get()),
            // Solution checksum for native/wasm cross-validation.
            xsum.set(double(0.0)),
            for_range(i, int(0), int(n), &[xsum.set(
                xsum.get() + addr8(lay.x, i.get()).load(ValType::F64, 0),
            )]),
            mpi.report(int(2), xsum.get()),
            mpi.finalize(),
        ]);
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

/// Native HPCG: the same algorithm in Rust. Returns
/// `(elapsed_seconds, rr_ratio, xsum)`.
pub fn run_native(comm: &Comm, p: HpcgParams) -> (f64, f64, f64) {
    let (nx, ny, nz) = (p.nx as usize, p.ny as usize, p.nz as usize);
    let plane = nx * ny;
    let n = plane * nz;
    let rank = comm.rank() as usize;
    let size = comm.size() as usize;
    let gnz = nz * size;

    let mut b = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut ap = vec![0.0f64; n];
    let mut pg = vec![1.0f64; plane * (nz + 2)];

    let halo = |comm: &Comm, pg: &mut [f64]| {
        let to_bytes = |s: &[f64]| -> Vec<u8> {
            s.iter().flat_map(|v| v.to_le_bytes()).collect()
        };
        if rank + 1 < size {
            comm.send(&to_bytes(&pg[nz * plane..(nz + 1) * plane]), rank as u32 + 1, 1).unwrap();
        }
        if rank > 0 {
            let mut buf = vec![0u8; plane * 8];
            comm.recv(&mut buf, Source::Rank(rank as u32 - 1), Tag::Value(1)).unwrap();
            for (i, c) in buf.chunks_exact(8).enumerate() {
                pg[i] = f64::from_le_bytes(c.try_into().unwrap());
            }
            comm.send(&to_bytes(&pg[plane..2 * plane]), rank as u32 - 1, 2).unwrap();
        }
        if rank + 1 < size {
            let mut buf = vec![0u8; plane * 8];
            comm.recv(&mut buf, Source::Rank(rank as u32 + 1), Tag::Value(2)).unwrap();
            for (i, c) in buf.chunks_exact(8).enumerate() {
                pg[(nz + 1) * plane + i] = f64::from_le_bytes(c.try_into().unwrap());
            }
        }
    };

    let spmv = |out: &mut [f64], pg: &[f64]| {
        for k in 0..nz {
            let gk = (rank * nz + k) as i64;
            for j in 0..ny {
                for i in 0..nx {
                    let c = (k + 1) * plane + j * nx + i;
                    let mut sum = 0.0;
                    for dk in -1i64..=1 {
                        for dj in -1i64..=1 {
                            for di in -1i64..=1 {
                                if di == 0 && dj == 0 && dk == 0 {
                                    continue;
                                }
                                let (ni, nj, ngk) =
                                    (i as i64 + di, j as i64 + dj, gk + dk);
                                if ni < 0
                                    || ni >= nx as i64
                                    || nj < 0
                                    || nj >= ny as i64
                                    || ngk < 0
                                    || ngk >= gnz as i64
                                {
                                    continue;
                                }
                                let nc = (c as i64 + dk * plane as i64 + dj * nx as i64 + di)
                                    as usize;
                                sum += pg[nc];
                            }
                        }
                    }
                    out[k * plane + j * nx + i] = 26.0 * pg[c] - sum;
                }
            }
        }
    };

    let dot = |comm: &Comm, a: &[f64], b: &[f64]| -> f64 {
        let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let mut out = [0u8; 8];
        comm.allreduce(&local.to_le_bytes(), &mut out, Datatype::Double, ReduceOp::Sum)
            .unwrap();
        f64::from_le_bytes(out)
    };

    // b = A * 1.
    halo(comm, &mut pg);
    spmv(&mut b, &pg);
    r.copy_from_slice(&b);
    for i in 0..n {
        pg[plane + i] = r[i];
    }
    let mut rr = dot(comm, &r, &r);
    let rr0 = rr;

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..p.iters {
        halo(comm, &mut pg);
        spmv(&mut ap, &pg);
        let pap = dot(comm, &pg[plane..plane + n], &ap);
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * pg[plane + i];
            r[i] -= alpha * ap[i];
        }
        let rr_new = dot(comm, &r, &r);
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            pg[plane + i] = r[i] + beta * pg[plane + i];
        }
    }
    let elapsed = comm.wtime() - t0;
    (elapsed, rr / rr0, x.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::run_world;
    use mpiwasm::{JobConfig, Runner};

    fn tiny() -> HpcgParams {
        HpcgParams { nx: 6, ny: 6, nz: 4, iters: 5 }
    }

    #[test]
    fn native_cg_converges() {
        let p = tiny();
        let out = run_world(2, move |comm| run_native(&comm, p));
        for (_, rr_ratio, _) in out {
            assert!(rr_ratio < 0.5, "CG must reduce the residual: {rr_ratio}");
            assert!(rr_ratio.is_finite());
        }
    }

    #[test]
    fn guest_module_validates() {
        let wasm = build_guest(tiny());
        let module = wasm_engine::decode_module(&wasm).unwrap();
        wasm_engine::validate_module(&module).unwrap();
    }

    #[test]
    fn guest_matches_native_solution() {
        let p = tiny();
        let native = run_world(2, move |comm| run_native(&comm, p));
        let wasm = build_guest(p);
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks[0].error);
        for (rank_result, (_, native_rr, native_xsum)) in result.ranks.iter().zip(&native) {
            let get = |key: i32| {
                rank_result
                    .reports
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            let guest_rr = get(1);
            let guest_xsum = get(2);
            assert!(
                (guest_rr - native_rr).abs() < 1e-9,
                "residual mismatch: {guest_rr} vs {native_rr}"
            );
            assert!(
                (guest_xsum - native_xsum).abs() / native_xsum.abs().max(1.0) < 1e-9,
                "solution mismatch: {guest_xsum} vs {native_xsum}"
            );
        }
    }

    #[test]
    fn single_rank_matches_two_ranks_globally() {
        // The same global problem split differently must converge to the
        // same residual trajectory (global operator is identical).
        let one = run_world(1, |comm| {
            run_native(&comm, HpcgParams { nx: 6, ny: 6, nz: 8, iters: 4 })
        });
        let two = run_world(2, |comm| {
            run_native(&comm, HpcgParams { nx: 6, ny: 6, nz: 4, iters: 4 })
        });
        let rr1 = one[0].1;
        let rr2 = two[0].1;
        assert!((rr1 - rr2).abs() < 1e-10, "{rr1} vs {rr2}");
        let xsum1 = one[0].2;
        let xsum2: f64 = two.iter().map(|t| t.2).sum();
        assert!((xsum1 - xsum2).abs() / xsum1.abs() < 1e-10, "{xsum1} vs {xsum2}");
    }

    #[test]
    fn flop_model_is_positive_and_scales() {
        let small = tiny();
        let big = HpcgParams { nx: 32, ny: 32, nz: 32, iters: 5 };
        assert!(big.flops_per_iter() > small.flops_per_iter() * 100.0);
        assert!(small.bytes_per_iter() > 0.0);
    }
}

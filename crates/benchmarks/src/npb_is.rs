//! NAS Parallel Benchmarks: IS — bucketed parallel integer sort (§4.2,
//! Figure 5a left).
//!
//! Each rank generates pseudo-random keys, histograms them into one bucket
//! per rank, exchanges bucket counts and then bucket contents with
//! `MPI_Alltoall`, and counting-sorts its received key range. The metric
//! is millions of keys ranked per second (Mop/s total), as NPB reports.
//!
//! Substitution note (DESIGN.md): NPB IS uses `MPI_Alltoallv`; this
//! implementation pads buckets to the global maximum bucket size and uses
//! fixed-size `MPI_Alltoall` (the embedder's MPI-2.2 subset), preserving
//! the communication pattern.

use mpi_substrate::{Comm, Datatype, ReduceOp};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

use crate::guest::{layout, MpiImports, MPI_INT, MPI_MAX};

/// IS problem parameters. NPB class S ≈ 64Ki keys total; class C ≈ 512Mi.
/// Scale per available time budget.
#[derive(Debug, Clone, Copy)]
pub struct IsParams {
    pub keys_per_rank: u32,
    /// Key range (power of two).
    pub max_key: u32,
    pub iters: u32,
}

impl Default for IsParams {
    fn default() -> Self {
        IsParams { keys_per_rank: 4096, max_key: 1 << 14, iters: 3 }
    }
}

/// Guest LCG matching the native one below.
const LCG_A: i32 = 1103515245;
const LCG_C: i32 = 12345;

/// Build the IS Wasm guest. Reports `(0, elapsed_seconds)`,
/// `(1, keys_verified_locally)`, `(2, global_keys_total)`.
pub fn build_guest(p: IsParams) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.name("npb-is");
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);

    let keys_n = p.keys_per_rank as i32;
    let max_key = p.max_key as i32;

    // Memory layout (i32 elements unless noted).
    let keys = layout::HEAP; // keys_n i32
    let counts = keys + keys_n * 4; // per-bucket counts (size entries)
    let recv_counts = counts + 4096; // counts from every rank
    let fill = recv_counts + 4096; // per-bucket fill cursors
    let sendbuf = fill + 4096;
    // recvbuf / histogram computed at runtime offsets after sendbuf; the
    // guest derives them from bucket_cap (dynamic), with generous spacing.
    let recvbuf_gap: i32 = 8 << 20;
    let hist_gap: i32 = 16 << 20;

    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let it = Var::new(f, ValType::I32);
        let seed = Var::new(f, ValType::I32);
        let key = Var::new(f, ValType::I32);
        let bucket = Var::new(f, ValType::I32);
        let cap = Var::new(f, ValType::I32);
        let t0 = Var::new(f, ValType::F64);
        let verified = Var::new(f, ValType::I32);
        let recvbuf = Var::new(f, ValType::I32);
        let hist = Var::new(f, ValType::I32);
        let range_lo = Var::new(f, ValType::I32);
        let range_size = Var::new(f, ValType::I32);
        let total = Var::new(f, ValType::I32);

        let a4 = |base: Expr, idx: Expr| base + idx.shl(int(2));

        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));
        stmts.extend([
            recvbuf.set(int(sendbuf + recvbuf_gap)),
            hist.set(int(sendbuf + hist_gap)),
            range_size.set(int(max_key) / size.get()),
            range_lo.set(rank.get() * range_size.get()),
            verified.set(int(0)),
            total.set(int(0)),
            mpi.barrier_world(),
            t0.set(mpi.wtime()),
        ]);

        let per_iter: Vec<Stmt> = vec![
            // 1. Key generation (rank- and iteration-seeded LCG).
            seed.set(int(0x2545) + rank.get() * int(7919) + it.get() * int(104729)),
            for_range(i, int(0), int(keys_n), &[
                seed.set(seed.get() * int(LCG_A) + int(LCG_C)),
                key.set(seed.get().shr_u(int(8)).rem_u(int(max_key))),
                store(a4(int(keys), i.get()), 0, key.get()),
            ]),
            // 2. Histogram into one bucket per rank.
            for_range(i, int(0), int(64), &[
                store(a4(int(counts), i.get()), 0, int(0)),
            ]),
            for_range(i, int(0), int(keys_n), &[
                bucket.set(a4(int(keys), i.get()).load(ValType::I32, 0) / range_size.get()),
                store(
                    a4(int(counts), bucket.get()),
                    0,
                    a4(int(counts), bucket.get()).load(ValType::I32, 0) + int(1),
                ),
            ]),
            // 3. Global max bucket size -> padded bucket capacity.
            store(int(layout::SCRATCH), 0, int(0)),
            for_range(i, int(0), size.get(), &[if_then(
                a4(int(counts), i.get())
                    .load(ValType::I32, 0)
                    .gt(int(layout::SCRATCH).load(ValType::I32, 0)),
                &[store(
                    int(layout::SCRATCH),
                    0,
                    a4(int(counts), i.get()).load(ValType::I32, 0),
                )],
            )]),
            mpi.allreduce(
                int(layout::SCRATCH),
                int(layout::SCRATCH + 8),
                int(1),
                MPI_INT,
                MPI_MAX,
            ),
            cap.set(int(layout::SCRATCH + 8).load(ValType::I32, 0)),
            // Exchange counts so receivers can skip padding exactly.
            mpi.alltoall(int(counts), int(1), MPI_INT, int(recv_counts)),
            // 4. Pack keys into per-bucket slots of `cap` entries.
            for_range(i, int(0), size.get(), &[store(a4(int(fill), i.get()), 0, int(0))]),
            for_range(i, int(0), int(keys_n), &[
                key.set(a4(int(keys), i.get()).load(ValType::I32, 0)),
                bucket.set(key.get() / range_size.get()),
                store(
                    a4(
                        int(sendbuf),
                        bucket.get() * cap.get() + a4(int(fill), bucket.get()).load(ValType::I32, 0),
                    ),
                    0,
                    key.get(),
                ),
                store(
                    a4(int(fill), bucket.get()),
                    0,
                    a4(int(fill), bucket.get()).load(ValType::I32, 0) + int(1),
                ),
            ]),
            // 5. Alltoall of the padded buckets.
            mpi.alltoall(int(sendbuf), cap.get(), MPI_INT, recvbuf.get()),
            // 6. Counting sort of the received range.
            for_range(i, int(0), range_size.get(), &[store(a4(hist.get(), i.get()), 0, int(0))]),
            // For each source rank, walk its real (unpadded) key count.
            for_range(bucket, int(0), size.get(), &[for_range(
                i,
                int(0),
                a4(int(recv_counts), bucket.get()).load(ValType::I32, 0),
                &[
                    key.set(
                        a4(recvbuf.get(), bucket.get() * cap.get() + i.get())
                            .load(ValType::I32, 0),
                    ),
                    store(
                        a4(hist.get(), key.get() - range_lo.get()),
                        0,
                        a4(hist.get(), key.get() - range_lo.get()).load(ValType::I32, 0)
                            + int(1),
                    ),
                    total.set(total.get() + int(1)),
                ],
            )]),
            // 7. Partial verification: every received key is in range.
            for_range(bucket, int(0), size.get(), &[for_range(
                i,
                int(0),
                a4(int(recv_counts), bucket.get()).load(ValType::I32, 0),
                &[
                    key.set(
                        a4(recvbuf.get(), bucket.get() * cap.get() + i.get())
                            .load(ValType::I32, 0),
                    ),
                    if_then(
                        key.get()
                            .ge(range_lo.get())
                            .and(key.get().lt(range_lo.get() + range_size.get())),
                        &[verified.set(verified.get() + int(1))],
                    ),
                ],
            )]),
        ];
        stmts.push(for_range(it, int(0), int(p.iters as i32), &per_iter));
        stmts.extend([
            mpi.report(int(0), mpi.wtime() - t0.get()),
            mpi.report(int(1), verified.get().to(ValType::F64)),
            // Global total of sorted keys across ranks (one iteration's
            // worth per iteration accumulated in `total`).
            store(int(layout::SCRATCH), 0, total.get()),
            mpi.allreduce(
                int(layout::SCRATCH),
                int(layout::SCRATCH + 8),
                int(1),
                MPI_INT,
                crate::guest::MPI_SUM,
            ),
            mpi.report(int(2), int(layout::SCRATCH + 8).load(ValType::I32, 0).to(ValType::F64)),
            mpi.finalize(),
        ]);
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

/// Native IS. Returns `(elapsed_seconds, verified_local, global_total)`.
pub fn run_native(comm: &Comm, p: IsParams) -> (f64, u64, u64) {
    let size = comm.size() as usize;
    let rank = comm.rank() as usize;
    let range_size = (p.max_key as usize) / size;
    let range_lo = rank * range_size;

    let mut verified = 0u64;
    let mut total = 0u64;
    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for it in 0..p.iters {
        // 1. Keys.
        let mut seed = 0x2545i32 + rank as i32 * 7919 + it as i32 * 104729;
        let keys: Vec<i32> = (0..p.keys_per_rank)
            .map(|_| {
                seed = seed.wrapping_mul(LCG_A).wrapping_add(LCG_C);
                (((seed as u32) >> 8) % p.max_key) as i32
            })
            .collect();
        // 2. Histogram.
        let mut counts = vec![0i32; size];
        for &k in &keys {
            counts[k as usize / range_size] += 1;
        }
        // 3. Global cap + counts exchange.
        let local_max = *counts.iter().max().unwrap();
        let mut cap_bytes = [0u8; 4];
        comm.allreduce(&local_max.to_le_bytes(), &mut cap_bytes, Datatype::Int, ReduceOp::Max)
            .unwrap();
        let cap = i32::from_le_bytes(cap_bytes) as usize;
        let counts_bytes: Vec<u8> = counts.iter().flat_map(|c| c.to_le_bytes()).collect();
        let mut recv_counts_bytes = vec![0u8; 4 * size];
        comm.alltoall(&counts_bytes, &mut recv_counts_bytes).unwrap();
        let recv_counts: Vec<i32> = recv_counts_bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // 4. Pack.
        let mut sendbuf = vec![0i32; size * cap];
        let mut fill = vec![0usize; size];
        for &k in &keys {
            let b = k as usize / range_size;
            sendbuf[b * cap + fill[b]] = k;
            fill[b] += 1;
        }
        // 5. Exchange.
        let send_bytes: Vec<u8> = sendbuf.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut recv_bytes = vec![0u8; send_bytes.len()];
        comm.alltoall(&send_bytes, &mut recv_bytes).unwrap();
        let recvbuf: Vec<i32> = recv_bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // 6/7. Counting sort + verify.
        let mut hist = vec![0u32; range_size];
        for (src, &cnt) in recv_counts.iter().enumerate() {
            for i in 0..cnt as usize {
                let k = recvbuf[src * cap + i] as usize;
                hist[k - range_lo] += 1;
                total += 1;
                if k >= range_lo && k < range_lo + range_size {
                    verified += 1;
                }
            }
        }
    }
    let elapsed = comm.wtime() - t0;
    let mut total_bytes = [0u8; 8];
    comm.allreduce(
        &(total as i64).to_le_bytes(),
        &mut total_bytes,
        Datatype::Long,
        ReduceOp::Sum,
    )
    .unwrap();
    (elapsed, verified, i64::from_le_bytes(total_bytes) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::run_world;
    use mpiwasm::{JobConfig, Runner};

    fn tiny() -> IsParams {
        IsParams { keys_per_rank: 512, max_key: 1 << 10, iters: 2 }
    }

    #[test]
    fn native_sorts_and_verifies_every_key() {
        let p = tiny();
        let out = run_world(4, move |comm| run_native(&comm, p));
        let global_total = out[0].2;
        // Every key of every iteration lands somewhere.
        assert_eq!(global_total, 4 * p.keys_per_rank as u64 * p.iters as u64);
        // Locally verified == locally received.
        let local_sum: u64 = out.iter().map(|o| o.1).sum();
        assert_eq!(local_sum, global_total);
    }

    #[test]
    fn guest_module_validates() {
        let wasm = build_guest(tiny());
        let module = wasm_engine::decode_module(&wasm).unwrap();
        wasm_engine::validate_module(&module).unwrap();
    }

    #[test]
    fn guest_matches_native_counts() {
        let p = tiny();
        let native = run_world(2, move |comm| run_native(&comm, p));
        let wasm = build_guest(p);
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks[0].error);
        let expected_total = 2 * p.keys_per_rank as u64 * p.iters as u64;
        for (rr, nat) in result.ranks.iter().zip(&native) {
            let get = |key: i32| {
                rr.reports.iter().find(|(k, _)| *k == key).map(|(_, v)| *v).unwrap()
            };
            assert_eq!(get(1) as u64, nat.1, "verified count differs on rank {}", rr.rank);
            assert_eq!(get(2) as u64, expected_total);
        }
    }
}

//! The guest-side MPI programming surface: this crate's equivalent of the
//! paper's custom `mpi.h` (§3.2, Listing 2).
//!
//! [`MpiImports::declare`] adds every `env.MPI_*` import to a module under
//! construction (producing exactly the import shape of the paper's
//! Listing 3) and hands back typed helpers for emitting calls from the
//! DSL. [`add_bump_allocator`] gives guests the exported `malloc`/`free`
//! that `MPI_Alloc_mem`/`MPI_Free_mem` re-enter.

use mpiwasm::handles;
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::ModuleBuilder;

/// Guest handle constants re-exported for benchmark authors.
pub use mpiwasm::handles::{
    MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_BYTE, MPI_CHAR, MPI_COMM_SELF, MPI_COMM_WORLD,
    MPI_DOUBLE, MPI_FLOAT, MPI_INT, MPI_LONG, MPI_MAX, MPI_MESSAGE_NULL, MPI_MIN,
    MPI_STATUS_IGNORE, MPI_SUM, MPI_THREAD_FUNNELED, MPI_THREAD_MULTIPLE,
    MPI_THREAD_SERIALIZED, MPI_THREAD_SINGLE, MPI_UNSIGNED, MPI_UNSIGNED_LONG,
};

/// Function indices of the imported MPI surface within a guest module.
#[derive(Debug, Clone, Copy)]
pub struct MpiImports {
    pub init: u32,
    pub finalize: u32,
    pub comm_rank: u32,
    pub comm_size: u32,
    pub send: u32,
    pub recv: u32,
    pub sendrecv: u32,
    pub barrier: u32,
    pub bcast: u32,
    pub reduce: u32,
    pub allreduce: u32,
    pub gather: u32,
    pub allgather: u32,
    pub scatter: u32,
    pub alltoall: u32,
    pub alltoallv: u32,
    pub comm_split: u32,
    pub comm_dup: u32,
    pub comm_free: u32,
    pub wtime: u32,
    pub get_count: u32,
    pub iprobe: u32,
    pub probe: u32,
    pub mprobe: u32,
    pub improbe: u32,
    pub mrecv: u32,
    pub imrecv: u32,
    pub cancel: u32,
    pub test_cancelled: u32,
    pub init_thread: u32,
    pub query_thread: u32,
    pub type_size: u32,
    pub alloc_mem: u32,
    pub free_mem: u32,
    pub isend: u32,
    pub irecv: u32,
    pub wait: u32,
    pub waitall: u32,
    pub waitany: u32,
    pub waitsome: u32,
    pub test: u32,
    pub testall: u32,
    pub testany: u32,
    pub send_init: u32,
    pub recv_init: u32,
    pub start: u32,
    pub startall: u32,
    pub request_free: u32,
    pub ibarrier: u32,
    pub ibcast: u32,
    pub iallreduce: u32,
    pub ireduce: u32,
    pub igather: u32,
    pub iscatter: u32,
    pub iallgather: u32,
    pub ialltoall: u32,
    pub ialltoallv: u32,
    pub ssend: u32,
    pub issend: u32,
    pub bsend: u32,
    pub ibsend: u32,
    pub buffer_attach: u32,
    pub buffer_detach: u32,
    pub get_elements: u32,
    pub type_contiguous: u32,
    pub type_vector: u32,
    pub type_create_struct: u32,
    pub type_commit: u32,
    pub type_free: u32,
    pub comm_group: u32,
    pub group_size: u32,
    pub group_rank: u32,
    pub group_incl: u32,
    pub group_excl: u32,
    pub group_free: u32,
    pub comm_create: u32,
    /// `bench.report(key, value)` harness hook.
    pub report: u32,
    /// `env.mpiwasm_stats(ptr, cap) -> bytes`: embedder extension dumping
    /// this rank's protocol counters as LE u64 words (see
    /// `ProtocolSnapshot::as_words` for the order).
    pub stats: u32,
}

impl MpiImports {
    /// Declare the MPI (and harness) imports. Must run before any function
    /// definitions, as imports occupy the front of the index space.
    pub fn declare(b: &mut ModuleBuilder) -> MpiImports {
        use ValType::{F64, I32};
        let i = |b: &mut ModuleBuilder, name: &str, p: Vec<ValType>, r: Vec<ValType>| {
            b.import_func("env", name, p, r)
        };
        MpiImports {
            init: i(b, "MPI_Init", vec![I32; 2], vec![I32]),
            finalize: i(b, "MPI_Finalize", vec![], vec![I32]),
            comm_rank: i(b, "MPI_Comm_rank", vec![I32; 2], vec![I32]),
            comm_size: i(b, "MPI_Comm_size", vec![I32; 2], vec![I32]),
            send: i(b, "MPI_Send", vec![I32; 6], vec![I32]),
            recv: i(b, "MPI_Recv", vec![I32; 7], vec![I32]),
            sendrecv: i(b, "MPI_Sendrecv", vec![I32; 12], vec![I32]),
            barrier: i(b, "MPI_Barrier", vec![I32], vec![I32]),
            bcast: i(b, "MPI_Bcast", vec![I32; 5], vec![I32]),
            reduce: i(b, "MPI_Reduce", vec![I32; 7], vec![I32]),
            allreduce: i(b, "MPI_Allreduce", vec![I32; 6], vec![I32]),
            gather: i(b, "MPI_Gather", vec![I32; 8], vec![I32]),
            allgather: i(b, "MPI_Allgather", vec![I32; 7], vec![I32]),
            scatter: i(b, "MPI_Scatter", vec![I32; 8], vec![I32]),
            alltoall: i(b, "MPI_Alltoall", vec![I32; 7], vec![I32]),
            alltoallv: i(b, "MPI_Alltoallv", vec![I32; 9], vec![I32]),
            comm_split: i(b, "MPI_Comm_split", vec![I32; 4], vec![I32]),
            comm_dup: i(b, "MPI_Comm_dup", vec![I32; 2], vec![I32]),
            comm_free: i(b, "MPI_Comm_free", vec![I32], vec![I32]),
            wtime: i(b, "MPI_Wtime", vec![], vec![F64]),
            get_count: i(b, "MPI_Get_count", vec![I32; 3], vec![I32]),
            iprobe: i(b, "MPI_Iprobe", vec![I32; 5], vec![I32]),
            probe: i(b, "MPI_Probe", vec![I32; 4], vec![I32]),
            mprobe: i(b, "MPI_Mprobe", vec![I32; 5], vec![I32]),
            improbe: i(b, "MPI_Improbe", vec![I32; 6], vec![I32]),
            mrecv: i(b, "MPI_Mrecv", vec![I32; 5], vec![I32]),
            imrecv: i(b, "MPI_Imrecv", vec![I32; 5], vec![I32]),
            cancel: i(b, "MPI_Cancel", vec![I32; 1], vec![I32]),
            test_cancelled: i(b, "MPI_Test_cancelled", vec![I32; 2], vec![I32]),
            init_thread: i(b, "MPI_Init_thread", vec![I32; 4], vec![I32]),
            query_thread: i(b, "MPI_Query_thread", vec![I32; 1], vec![I32]),
            type_size: i(b, "MPI_Type_size", vec![I32; 2], vec![I32]),
            alloc_mem: i(b, "MPI_Alloc_mem", vec![I32; 3], vec![I32]),
            free_mem: i(b, "MPI_Free_mem", vec![I32], vec![I32]),
            isend: i(b, "MPI_Isend", vec![I32; 7], vec![I32]),
            irecv: i(b, "MPI_Irecv", vec![I32; 7], vec![I32]),
            wait: i(b, "MPI_Wait", vec![I32; 2], vec![I32]),
            waitall: i(b, "MPI_Waitall", vec![I32; 3], vec![I32]),
            waitany: i(b, "MPI_Waitany", vec![I32; 4], vec![I32]),
            waitsome: i(b, "MPI_Waitsome", vec![I32; 5], vec![I32]),
            test: i(b, "MPI_Test", vec![I32; 3], vec![I32]),
            testall: i(b, "MPI_Testall", vec![I32; 4], vec![I32]),
            testany: i(b, "MPI_Testany", vec![I32; 5], vec![I32]),
            send_init: i(b, "MPI_Send_init", vec![I32; 7], vec![I32]),
            recv_init: i(b, "MPI_Recv_init", vec![I32; 7], vec![I32]),
            start: i(b, "MPI_Start", vec![I32; 1], vec![I32]),
            startall: i(b, "MPI_Startall", vec![I32; 2], vec![I32]),
            request_free: i(b, "MPI_Request_free", vec![I32; 1], vec![I32]),
            ibarrier: i(b, "MPI_Ibarrier", vec![I32; 2], vec![I32]),
            ibcast: i(b, "MPI_Ibcast", vec![I32; 6], vec![I32]),
            iallreduce: i(b, "MPI_Iallreduce", vec![I32; 7], vec![I32]),
            ireduce: i(b, "MPI_Ireduce", vec![I32; 8], vec![I32]),
            igather: i(b, "MPI_Igather", vec![I32; 9], vec![I32]),
            iscatter: i(b, "MPI_Iscatter", vec![I32; 9], vec![I32]),
            iallgather: i(b, "MPI_Iallgather", vec![I32; 8], vec![I32]),
            ialltoall: i(b, "MPI_Ialltoall", vec![I32; 8], vec![I32]),
            ialltoallv: i(b, "MPI_Ialltoallv", vec![I32; 10], vec![I32]),
            ssend: i(b, "MPI_Ssend", vec![I32; 6], vec![I32]),
            issend: i(b, "MPI_Issend", vec![I32; 7], vec![I32]),
            bsend: i(b, "MPI_Bsend", vec![I32; 6], vec![I32]),
            ibsend: i(b, "MPI_Ibsend", vec![I32; 7], vec![I32]),
            buffer_attach: i(b, "MPI_Buffer_attach", vec![I32; 2], vec![I32]),
            buffer_detach: i(b, "MPI_Buffer_detach", vec![I32; 2], vec![I32]),
            get_elements: i(b, "MPI_Get_elements", vec![I32; 3], vec![I32]),
            type_contiguous: i(b, "MPI_Type_contiguous", vec![I32; 3], vec![I32]),
            type_vector: i(b, "MPI_Type_vector", vec![I32; 5], vec![I32]),
            type_create_struct: i(b, "MPI_Type_create_struct", vec![I32; 5], vec![I32]),
            type_commit: i(b, "MPI_Type_commit", vec![I32; 1], vec![I32]),
            type_free: i(b, "MPI_Type_free", vec![I32; 1], vec![I32]),
            comm_group: i(b, "MPI_Comm_group", vec![I32; 2], vec![I32]),
            group_size: i(b, "MPI_Group_size", vec![I32; 2], vec![I32]),
            group_rank: i(b, "MPI_Group_rank", vec![I32; 2], vec![I32]),
            group_incl: i(b, "MPI_Group_incl", vec![I32; 4], vec![I32]),
            group_excl: i(b, "MPI_Group_excl", vec![I32; 4], vec![I32]),
            group_free: i(b, "MPI_Group_free", vec![I32; 1], vec![I32]),
            comm_create: i(b, "MPI_Comm_create", vec![I32; 3], vec![I32]),
            report: b.import_func("bench", "report", vec![I32, F64], vec![]),
            stats: i(b, "mpiwasm_stats", vec![I32; 2], vec![I32]),
        }
    }

    // --- DSL helpers; every helper drops the MPI error code, the idiom
    // --- of the benchmark codes themselves.

    pub fn init(&self) -> Stmt {
        call_drop(self.init, vec![int(0), int(0)])
    }

    pub fn finalize(&self) -> Stmt {
        call_drop(self.finalize, vec![])
    }

    /// `rank_var = MPI_Comm_rank(MPI_COMM_WORLD)` via scratch address.
    pub fn load_rank(&self, scratch: i32, rank_var: Var) -> Vec<Stmt> {
        vec![
            call_drop(self.comm_rank, vec![int(handles::MPI_COMM_WORLD), int(scratch)]),
            rank_var.set(int(scratch).load(ValType::I32, 0)),
        ]
    }

    pub fn load_size(&self, scratch: i32, size_var: Var) -> Vec<Stmt> {
        vec![
            call_drop(self.comm_size, vec![int(handles::MPI_COMM_WORLD), int(scratch)]),
            size_var.set(int(scratch).load(ValType::I32, 0)),
        ]
    }

    pub fn barrier_world(&self) -> Stmt {
        call_drop(self.barrier, vec![int(handles::MPI_COMM_WORLD)])
    }

    pub fn wtime(&self) -> Expr {
        call(self.wtime, vec![], ValType::F64)
    }

    pub fn report(&self, key: Expr, value: Expr) -> Stmt {
        call_stmt(self.report, vec![key, value])
    }

    /// `out_var = mpiwasm_stats(ptr, cap)`: snapshot the rank's protocol
    /// counters into guest memory at `ptr`, yielding the bytes written.
    pub fn stats(&self, ptr: Expr, cap: Expr, out_var: Var) -> Stmt {
        out_var.set(call(self.stats, vec![ptr, cap], ValType::I32))
    }

    #[allow(clippy::too_many_arguments)]
    pub fn send(&self, buf: Expr, count: Expr, dt: i32, dest: Expr, tag: Expr) -> Stmt {
        call_drop(
            self.send,
            vec![buf, count, int(dt), dest, tag, int(handles::MPI_COMM_WORLD)],
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn recv(&self, buf: Expr, count: Expr, dt: i32, src: Expr, tag: Expr) -> Stmt {
        call_drop(
            self.recv,
            vec![
                buf,
                count,
                int(dt),
                src,
                tag,
                int(handles::MPI_COMM_WORLD),
                int(handles::MPI_STATUS_IGNORE),
            ],
        )
    }

    pub fn bcast(&self, buf: Expr, count: Expr, dt: i32, root: Expr) -> Stmt {
        call_drop(self.bcast, vec![buf, count, int(dt), root, int(handles::MPI_COMM_WORLD)])
    }

    pub fn allreduce(&self, sbuf: Expr, rbuf: Expr, count: Expr, dt: i32, op: i32) -> Stmt {
        call_drop(
            self.allreduce,
            vec![sbuf, rbuf, count, int(dt), int(op), int(handles::MPI_COMM_WORLD)],
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn reduce(&self, sbuf: Expr, rbuf: Expr, count: Expr, dt: i32, op: i32, root: Expr) -> Stmt {
        call_drop(
            self.reduce,
            vec![sbuf, rbuf, count, int(dt), int(op), root, int(handles::MPI_COMM_WORLD)],
        )
    }

    pub fn allgather(&self, sbuf: Expr, count: Expr, dt: i32, rbuf: Expr) -> Stmt {
        call_drop(
            self.allgather,
            vec![sbuf, count.clone(), int(dt), rbuf, count, int(dt), int(handles::MPI_COMM_WORLD)],
        )
    }

    pub fn alltoall(&self, sbuf: Expr, count: Expr, dt: i32, rbuf: Expr) -> Stmt {
        call_drop(
            self.alltoall,
            vec![sbuf, count.clone(), int(dt), rbuf, count, int(dt), int(handles::MPI_COMM_WORLD)],
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn gather(&self, sbuf: Expr, count: Expr, dt: i32, rbuf: Expr, root: Expr) -> Stmt {
        call_drop(
            self.gather,
            vec![
                sbuf,
                count.clone(),
                int(dt),
                rbuf,
                count,
                int(dt),
                root,
                int(handles::MPI_COMM_WORLD),
            ],
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn scatter(&self, sbuf: Expr, count: Expr, dt: i32, rbuf: Expr, root: Expr) -> Stmt {
        call_drop(
            self.scatter,
            vec![
                sbuf,
                count.clone(),
                int(dt),
                rbuf,
                count,
                int(dt),
                root,
                int(handles::MPI_COMM_WORLD),
            ],
        )
    }

    /// Nonblocking allreduce over `MPI_COMM_WORLD`; the request handle is
    /// written to `req_ptr`.
    pub fn iallreduce_nb(
        &self,
        sbuf: Expr,
        rbuf: Expr,
        count: Expr,
        dt: i32,
        op: i32,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.iallreduce,
            vec![sbuf, rbuf, count, int(dt), int(op), int(handles::MPI_COMM_WORLD), req_ptr],
        )
    }

    /// Nonblocking barrier over `MPI_COMM_WORLD`.
    pub fn ibarrier_nb(&self, req_ptr: Expr) -> Stmt {
        call_drop(self.ibarrier, vec![int(handles::MPI_COMM_WORLD), req_ptr])
    }

    /// Nonblocking all-to-all over `MPI_COMM_WORLD` (equal counts on the
    /// send and receive side, as the blocking helper).
    pub fn ialltoall_nb(
        &self,
        sbuf: Expr,
        count: Expr,
        dt: i32,
        rbuf: Expr,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.ialltoall,
            vec![
                sbuf,
                count.clone(),
                int(dt),
                rbuf,
                count,
                int(dt),
                int(handles::MPI_COMM_WORLD),
                req_ptr,
            ],
        )
    }

    /// Nonblocking gather over `MPI_COMM_WORLD`.
    #[allow(clippy::too_many_arguments)]
    pub fn igather_nb(
        &self,
        sbuf: Expr,
        count: Expr,
        dt: i32,
        rbuf: Expr,
        root: Expr,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.igather,
            vec![
                sbuf,
                count.clone(),
                int(dt),
                rbuf,
                count,
                int(dt),
                root,
                int(handles::MPI_COMM_WORLD),
                req_ptr,
            ],
        )
    }

    /// Nonblocking scatter over `MPI_COMM_WORLD`.
    #[allow(clippy::too_many_arguments)]
    pub fn iscatter_nb(
        &self,
        sbuf: Expr,
        count: Expr,
        dt: i32,
        rbuf: Expr,
        root: Expr,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.iscatter,
            vec![
                sbuf,
                count.clone(),
                int(dt),
                rbuf,
                count,
                int(dt),
                root,
                int(handles::MPI_COMM_WORLD),
                req_ptr,
            ],
        )
    }

    /// Nonblocking allgather over `MPI_COMM_WORLD`.
    pub fn iallgather_nb(
        &self,
        sbuf: Expr,
        count: Expr,
        dt: i32,
        rbuf: Expr,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.iallgather,
            vec![
                sbuf,
                count.clone(),
                int(dt),
                rbuf,
                count,
                int(dt),
                int(handles::MPI_COMM_WORLD),
                req_ptr,
            ],
        )
    }

    /// Blocking vector all-to-all over `MPI_COMM_WORLD` (counts and
    /// displacements are `i32[p]` arrays in guest memory, in elements).
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv(
        &self,
        sbuf: Expr,
        scounts: Expr,
        sdispls: Expr,
        dt: i32,
        rbuf: Expr,
        rcounts: Expr,
        rdispls: Expr,
    ) -> Stmt {
        call_drop(
            self.alltoallv,
            vec![
                sbuf,
                scounts,
                sdispls,
                int(dt),
                rbuf,
                rcounts,
                rdispls,
                int(dt),
                int(handles::MPI_COMM_WORLD),
            ],
        )
    }

    /// Nonblocking vector all-to-all over `MPI_COMM_WORLD`.
    #[allow(clippy::too_many_arguments)]
    pub fn ialltoallv_nb(
        &self,
        sbuf: Expr,
        scounts: Expr,
        sdispls: Expr,
        dt: i32,
        rbuf: Expr,
        rcounts: Expr,
        rdispls: Expr,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.ialltoallv,
            vec![
                sbuf,
                scounts,
                sdispls,
                int(dt),
                rbuf,
                rcounts,
                rdispls,
                int(dt),
                int(handles::MPI_COMM_WORLD),
                req_ptr,
            ],
        )
    }

    /// `MPI_Wait(req_ptr, MPI_STATUS_IGNORE)`.
    pub fn wait_nb(&self, req_ptr: Expr) -> Stmt {
        call_drop(self.wait, vec![req_ptr, int(handles::MPI_STATUS_IGNORE)])
    }

    #[allow(clippy::too_many_arguments)]
    pub fn isend_nb(
        &self,
        buf: Expr,
        count: Expr,
        dt: i32,
        dest: Expr,
        tag: i32,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.isend,
            vec![buf, count, int(dt), dest, int(tag), int(handles::MPI_COMM_WORLD), req_ptr],
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn irecv_nb(
        &self,
        buf: Expr,
        count: Expr,
        dt: i32,
        src: Expr,
        tag: i32,
        req_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.irecv,
            vec![buf, count, int(dt), src, int(tag), int(handles::MPI_COMM_WORLD), req_ptr],
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        sbuf: Expr,
        scount: Expr,
        dt: i32,
        dest: Expr,
        rbuf: Expr,
        rcount: Expr,
        src: Expr,
        tag: i32,
    ) -> Stmt {
        call_drop(
            self.sendrecv,
            vec![
                sbuf,
                scount,
                int(dt),
                dest,
                int(tag),
                rbuf,
                rcount,
                int(dt),
                src,
                int(tag),
                int(handles::MPI_COMM_WORLD),
                int(handles::MPI_STATUS_IGNORE),
            ],
        )
    }
    // --- send modes over MPI_COMM_WORLD ---------------------------------

    /// Synchronous-mode blocking send: returns only after the receiver
    /// matched the message.
    pub fn ssend(&self, buf: Expr, count: Expr, dt: i32, dest: Expr, tag: Expr) -> Stmt {
        call_drop(
            self.ssend,
            vec![buf, count, int(dt), dest, tag, int(handles::MPI_COMM_WORLD)],
        )
    }

    /// Buffered-mode blocking send: completes locally against the
    /// attached buffer's accounting.
    pub fn bsend(&self, buf: Expr, count: Expr, dt: i32, dest: Expr, tag: Expr) -> Stmt {
        call_drop(
            self.bsend,
            vec![buf, count, int(dt), dest, tag, int(handles::MPI_COMM_WORLD)],
        )
    }

    /// `MPI_Buffer_attach(buf, size)`.
    pub fn buffer_attach(&self, buf: Expr, size: Expr) -> Stmt {
        call_drop(self.buffer_attach, vec![buf, size])
    }

    /// `MPI_Buffer_detach(bufptr_ptr, size_ptr)`.
    pub fn buffer_detach(&self, buf_ptr: Expr, size_ptr: Expr) -> Stmt {
        call_drop(self.buffer_detach, vec![buf_ptr, size_ptr])
    }

    // --- derived datatypes ----------------------------------------------

    /// `MPI_Type_vector(count, blocklen, stride, oldtype)`; the new
    /// handle lands at `out_ptr`.
    pub fn type_vector(
        &self,
        count: Expr,
        blocklen: Expr,
        stride: Expr,
        oldtype: i32,
        out_ptr: Expr,
    ) -> Stmt {
        call_drop(
            self.type_vector,
            vec![count, blocklen, stride, int(oldtype), out_ptr],
        )
    }

    /// `MPI_Type_contiguous(count, oldtype)`; handle at `out_ptr`.
    pub fn type_contiguous(&self, count: Expr, oldtype: i32, out_ptr: Expr) -> Stmt {
        call_drop(self.type_contiguous, vec![count, int(oldtype), out_ptr])
    }

    /// `MPI_Type_commit(type_ptr)`.
    pub fn type_commit(&self, type_ptr: Expr) -> Stmt {
        call_drop(self.type_commit, vec![type_ptr])
    }

    /// `MPI_Type_free(type_ptr)`.
    pub fn type_free(&self, type_ptr: Expr) -> Stmt {
        call_drop(self.type_free, vec![type_ptr])
    }

    /// Blocking send with a *dynamic* datatype handle (derived types are
    /// created at run time, so the handle is an `Expr`, not a constant).
    pub fn send_dt(&self, buf: Expr, count: Expr, dt: Expr, dest: Expr, tag: Expr) -> Stmt {
        call_drop(
            self.send,
            vec![buf, count, dt, dest, tag, int(handles::MPI_COMM_WORLD)],
        )
    }

    /// Blocking receive with a dynamic datatype handle.
    pub fn recv_dt(&self, buf: Expr, count: Expr, dt: Expr, src: Expr, tag: Expr) -> Stmt {
        call_drop(
            self.recv,
            vec![
                buf,
                count,
                dt,
                src,
                tag,
                int(handles::MPI_COMM_WORLD),
                int(handles::MPI_STATUS_IGNORE),
            ],
        )
    }

    // --- probe / matched probe / cancel over MPI_COMM_WORLD -------------

    /// `MPI_Probe(src, tag, MPI_COMM_WORLD, status_ptr)` (blocking).
    pub fn probe(&self, src: Expr, tag: Expr, status_ptr: Expr) -> Stmt {
        call_drop(self.probe, vec![src, tag, int(handles::MPI_COMM_WORLD), status_ptr])
    }

    /// `MPI_Iprobe(src, tag, MPI_COMM_WORLD, flag_ptr, status_ptr)`.
    pub fn iprobe(&self, src: Expr, tag: Expr, flag_ptr: Expr, status_ptr: Expr) -> Stmt {
        call_drop(
            self.iprobe,
            vec![src, tag, int(handles::MPI_COMM_WORLD), flag_ptr, status_ptr],
        )
    }

    /// `MPI_Mprobe(src, tag, MPI_COMM_WORLD, message_ptr, status_ptr)`.
    pub fn mprobe(&self, src: Expr, tag: Expr, msg_ptr: Expr, status_ptr: Expr) -> Stmt {
        call_drop(
            self.mprobe,
            vec![src, tag, int(handles::MPI_COMM_WORLD), msg_ptr, status_ptr],
        )
    }

    /// `MPI_Mrecv(buf, count, dt, message_ptr, status_ptr)`.
    pub fn mrecv(&self, buf: Expr, count: Expr, dt: i32, msg_ptr: Expr, status_ptr: Expr) -> Stmt {
        call_drop(self.mrecv, vec![buf, count, int(dt), msg_ptr, status_ptr])
    }

    /// `MPI_Cancel(request_ptr)`.
    pub fn cancel(&self, req_ptr: Expr) -> Stmt {
        call_drop(self.cancel, vec![req_ptr])
    }

    /// `MPI_Test_cancelled(status_ptr, flag_ptr)`.
    pub fn test_cancelled(&self, status_ptr: Expr, flag_ptr: Expr) -> Stmt {
        call_drop(self.test_cancelled, vec![status_ptr, flag_ptr])
    }

    /// `MPI_Init_thread(0, 0, required, provided_ptr)`.
    pub fn init_thread(&self, required: Expr, provided_ptr: Expr) -> Stmt {
        call_drop(self.init_thread, vec![int(0), int(0), required, provided_ptr])
    }

    /// `MPI_Query_thread(provided_ptr)`.
    pub fn query_thread(&self, provided_ptr: Expr) -> Stmt {
        call_drop(self.query_thread, vec![provided_ptr])
    }
}

/// Add a trivial bump allocator exporting `malloc` and `free`, the hooks
/// `MPI_Alloc_mem`/`MPI_Free_mem` require (§3.7). The heap grows from
/// `heap_base`; `free` is a no-op (bump allocators don't reclaim), which
/// is sufficient for the benchmark lifetimes.
pub fn add_bump_allocator(b: &mut ModuleBuilder, heap_base: i32) -> (u32, u32) {
    let heap_ptr = b.global(ValType::I32, true, wasm_engine::Instr::I32Const(heap_base));
    let malloc = b.func("malloc", vec![ValType::I32], vec![ValType::I32], |f| {
        let size = local(0, ValType::I32);
        let out = Var::new(f, ValType::I32);
        let g = GlobalVar { idx: heap_ptr, ty: ValType::I32 };
        emit_block(f, &[
            out.set(g.get()),
            // Bump by size rounded up to 16 bytes.
            g.set((g.get() + size.get() + int(15)).and(int(!15))),
            ret(Some(out.get())),
        ]);
    });
    let free = b.func("free", vec![ValType::I32], vec![], |_f| {});
    (malloc, free)
}

/// Standard scratch-memory layout shared by the benchmark guests.
pub mod layout {
    /// Scratch word for rank/size outputs and small results.
    pub const SCRATCH: i32 = 16;
    /// iovec area for WASI calls.
    pub const IOV: i32 = 64;
    /// Send buffer base (page 1).
    pub const SEND_BUF: i32 = 1 << 16;
    /// Receive buffer base, 8 MiB above the send buffer — holds 4 MiB
    /// payloads with room to spare.
    pub const RECV_BUF: i32 = SEND_BUF + (8 << 20);
    /// Heap base for the bump allocator / large benchmark state.
    pub const HEAP: i32 = RECV_BUF + (24 << 20);
    /// Default memory size in pages (64 MiB) covering the layout above.
    pub const PAGES: u32 = 1024;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::ClockMode;
    use mpiwasm::{JobConfig, Runner};
    use netsim::{CostModel, SystemProfile};
    use wasm_engine::encode_module;

    fn virtual_clock() -> ClockMode {
        ClockMode::Virtual(CostModel::native(SystemProfile::container()))
    }

    /// End-to-end smoke test: a 4-rank ring pass in Wasm through the
    /// embedder. Exercises Init/rank/size/send/recv/barrier/report.
    #[test]
    fn ring_pass_end_to_end() {
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let size = Var::new(f, ValType::I32);
            let token = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));
            // Rank 0 seeds the token with 100; each hop adds the sender's
            // rank; rank 0 receives the final value from the last rank.
            stmts.extend([
                if_else(
                    rank.get().eq(int(0)),
                    &[
                        store(int(layout::SEND_BUF), 0, int(100)),
                        mpi.send(int(layout::SEND_BUF), int(1), MPI_INT, int(1), int(7)),
                        mpi.recv(
                            int(layout::RECV_BUF),
                            int(1),
                            MPI_INT,
                            size.get() - int(1),
                            int(7),
                        ),
                        token.set(int(layout::RECV_BUF).load(ValType::I32, 0)),
                        mpi.report(int(0), token.get().to(ValType::F64)),
                    ],
                    &[
                        mpi.recv(int(layout::RECV_BUF), int(1), MPI_INT, rank.get() - int(1), int(7)),
                        token.set(int(layout::RECV_BUF).load(ValType::I32, 0) + rank.get()),
                        store(int(layout::SEND_BUF), 0, token.get()),
                        mpi.send(
                            int(layout::SEND_BUF),
                            int(1),
                            MPI_INT,
                            (rank.get() + int(1)) % size.get(),
                            int(7),
                        ),
                    ],
                ),
                mpi.barrier_world(),
                mpi.finalize(),
            ]);
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());

        let runner = Runner::new();
        let result = runner
            .run(&wasm, JobConfig { np: 4, clock: ClockMode::Real, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        // 100 + 1 + 2 + 3
        assert_eq!(result.ranks[0].reports, vec![(0, 106.0)]);
    }

    /// MPI_Alloc_mem must re-enter the exported bump allocator.
    #[test]
    fn alloc_mem_uses_guest_malloc() {
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        add_bump_allocator(&mut b, layout::HEAP);
        b.func("_start", vec![], vec![], |f| {
            let p1 = Var::new(f, ValType::I32);
            let p2 = Var::new(f, ValType::I32);
            emit_block(f, &[
                mpi.init(),
                call_drop(mpi.alloc_mem, vec![int(256), int(0), int(layout::SCRATCH)]),
                p1.set(int(layout::SCRATCH).load(ValType::I32, 0)),
                call_drop(mpi.alloc_mem, vec![int(256), int(0), int(layout::SCRATCH)]),
                p2.set(int(layout::SCRATCH).load(ValType::I32, 0)),
                call_drop(mpi.free_mem, vec![p1.get()]),
                mpi.report(int(0), p1.get().to(ValType::F64)),
                mpi.report(int(1), p2.get().to(ValType::F64)),
                mpi.finalize(),
            ]);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 1, ..Default::default() })
            .unwrap();
        assert!(result.success());
        let reports = &result.ranks[0].reports;
        assert_eq!(reports[0].1, layout::HEAP as f64);
        assert_eq!(reports[1].1, (layout::HEAP + 256) as f64);
    }

    /// The canonical halo-exchange shape: both ranks Isend a
    /// rendezvous-sized payload, Irecv the peer's, then Waitall both.
    /// Regression test for the host progress engine — waiting on the send
    /// must keep driving the posted receive, or the exchange deadlocks.
    #[test]
    fn symmetric_rendezvous_waitall_completes() {
        const BYTES: i32 = 256 << 10; // above every eager threshold
        let reqs = layout::SCRATCH + 16;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            let peer = int(1) - rank.get();
            stmts.extend([
                store(int(layout::SEND_BUF), 0, rank.get() + int(7)),
                mpi.isend_nb(int(layout::SEND_BUF), int(BYTES), MPI_BYTE, peer.clone(), 5, int(reqs)),
                mpi.irecv_nb(int(layout::RECV_BUF), int(BYTES), MPI_BYTE, peer, 5, int(reqs + 4)),
                call_drop(mpi.waitall, vec![int(2), int(reqs), int(0 /* STATUSES_IGNORE */)]),
                mpi.report(int(0), int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64)),
                mpi.finalize(),
            ]);
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        // Each rank received the peer's first word.
        assert_eq!(result.ranks[0].reports, vec![(0, 8.0)]);
        assert_eq!(result.ranks[1].reports, vec![(0, 7.0)]);
    }

    /// The MPI-guaranteed Irecv-then-blocking-Send exchange: both ranks
    /// post a large Irecv, then call blocking MPI_Send of a
    /// rendezvous-sized payload, then Wait the receive. The host's
    /// blocking send must keep the posted receive progressing or both
    /// ranks park on their rendezvous slots forever.
    #[test]
    fn posted_irecv_unblocks_symmetric_blocking_send() {
        const BYTES: i32 = 256 << 10;
        let req = layout::SCRATCH + 16;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            let peer = int(1) - rank.get();
            stmts.extend([
                store(int(layout::SEND_BUF), 0, rank.get() + int(40)),
                mpi.irecv_nb(int(layout::RECV_BUF), int(BYTES), MPI_BYTE, peer.clone(), 9, int(req)),
                mpi.send(int(layout::SEND_BUF), int(BYTES), MPI_BYTE, peer, int(9)),
                mpi.wait_nb(int(req)),
                mpi.report(int(0), int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64)),
                mpi.finalize(),
            ]);
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        assert_eq!(result.ranks[0].reports, vec![(0, 41.0)]);
        assert_eq!(result.ranks[1].reports, vec![(0, 40.0)]);
    }

    /// MPI_Request_free must return immediately (mark-for-deletion):
    /// Isend → Request_free → Barrier → peer receives. Blocking inside
    /// Request_free until the send drained would deadlock at the barrier.
    #[test]
    fn request_free_on_inflight_send_is_nonblocking() {
        const BYTES: i32 = 256 << 10;
        let req = layout::SCRATCH + 16;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            let peer = int(1) - rank.get();
            stmts.extend([
                store(int(layout::SEND_BUF), 0, rank.get() + int(60)),
                mpi.isend_nb(int(layout::SEND_BUF), int(BYTES), MPI_BYTE, peer.clone(), 2, int(req)),
                call_drop(mpi.request_free, vec![int(req)]),
                mpi.barrier_world(),
                mpi.recv(int(layout::RECV_BUF), int(BYTES), MPI_BYTE, peer, int(2)),
                mpi.report(int(0), int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64)),
                mpi.finalize(),
            ]);
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        assert_eq!(result.ranks[0].reports, vec![(0, 61.0)]);
        assert_eq!(result.ranks[1].reports, vec![(0, 60.0)]);
    }

    /// A collective must keep the rank's posted receives progressing:
    /// rank 0 posts an Irecv and enters a barrier; rank 1 Isends and
    /// Waits *before* its barrier. Rank 1's send can only complete when
    /// rank 0's parked barrier drives the posted receive.
    #[test]
    fn barrier_progresses_posted_receives() {
        const BYTES: i32 = 256 << 10;
        let req = layout::SCRATCH + 16;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.push(if_else(
                rank.get().eq(int(0)),
                &[
                    mpi.irecv_nb(int(layout::RECV_BUF), int(BYTES), MPI_BYTE, int(1), 4, int(req)),
                    mpi.barrier_world(),
                    mpi.wait_nb(int(req)),
                    mpi.report(int(0), int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64)),
                ],
                &[
                    store(int(layout::SEND_BUF), 0, int(77)),
                    mpi.isend_nb(int(layout::SEND_BUF), int(BYTES), MPI_BYTE, int(0), 4, int(req)),
                    mpi.wait_nb(int(req)),
                    mpi.barrier_world(),
                ],
            ));
            stmts.push(mpi.finalize());
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        assert_eq!(result.ranks[0].reports, vec![(0, 77.0)]);
    }

    /// `MPI_Waitall` partial-failure audit: a set mixing a p2p request
    /// with a nonblocking collective that fails (mismatched Ibcast
    /// counts) must return the collective's error code *and* rewrite
    /// every completed handle word to `MPI_REQUEST_NULL`, exactly like
    /// the one-shot p2p encoding documented on `env::MpiState`.
    #[test]
    fn waitall_partial_failure_nulls_collective_handles() {
        let reqs = layout::SCRATCH + 16;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let code = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.extend([
                store(int(layout::SEND_BUF), 0, int(41)),
                // Slot 0: a p2p pair that completes cleanly.
                if_else(
                    rank.get().eq(int(0)),
                    &[mpi.isend_nb(int(layout::SEND_BUF), int(1), MPI_INT, int(1), 5, int(reqs))],
                    &[mpi.irecv_nb(int(layout::RECV_BUF), int(1), MPI_INT, int(0), 5, int(reqs))],
                ),
                // Slot 1: Ibcast with count 2 on the root, 1 elsewhere —
                // the non-root's state machine latches CollectiveMismatch.
                call_drop(
                    mpi.ibcast,
                    vec![
                        int(layout::SEND_BUF + 64),
                        int(2) - rank.get(),
                        int(MPI_INT),
                        int(0),
                        int(handles::MPI_COMM_WORLD),
                        int(reqs + 4),
                    ],
                ),
                code.set(call(
                    mpi.waitall,
                    vec![int(2), int(reqs), int(0 /* STATUSES_IGNORE */)],
                    ValType::I32,
                )),
                mpi.report(int(0), code.get().to(ValType::F64)),
                mpi.report(int(1), int(reqs).load(ValType::I32, 0).to(ValType::F64)),
                mpi.report(int(2), int(reqs + 4).load(ValType::I32, 0).to(ValType::F64)),
                mpi.finalize(),
            ]);
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        // Rank 0 (root, matching counts): clean success.
        assert_eq!(result.ranks[0].reports[0].1, 0.0, "root waitall code");
        // Rank 1: the collective's error code surfaces (16 =
        // CollectiveMismatch)...
        assert_eq!(result.ranks[1].reports[0].1, 16.0, "non-root waitall code");
        // ...and on BOTH ranks every handle word is nulled, including the
        // failed collective's.
        for r in &result.ranks {
            assert_eq!(r.reports[1].1, 0.0, "rank {} p2p handle nulled", r.rank);
            assert_eq!(r.reports[2].1, 0.0, "rank {} coll handle nulled", r.rank);
        }
    }

    /// The guest-visible `MPI_Alltoallv` ABI end to end: element counts
    /// and displacements are translated per rank (block to rank `r` holds
    /// `r + 1` ints), routed through the nonblocking state machine, and
    /// land transposed.
    #[test]
    fn alltoallv_through_embedder() {
        const P: i32 = 3;
        let scounts = layout::SCRATCH + 64;
        let sdispls = scounts + 4 * P;
        let rcounts = sdispls + 4 * P;
        let rdispls = rcounts + 4 * P;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let size = Var::new(f, ValType::I32);
            let r = Var::new(f, ValType::I32);
            let k = Var::new(f, ValType::I32);
            let acc = Var::new(f, ValType::I32);
            let sum = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));
            stmts.extend([
                // Build the count/displacement arrays: block to rank r is
                // r+1 ints; receive side expects rank+1 ints from everyone.
                acc.set(int(0)),
                for_range(r, int(0), size.get(), &[
                    store(int(scounts) + r.get() * int(4), 0, r.get() + int(1)),
                    store(int(sdispls) + r.get() * int(4), 0, acc.get()),
                    // Fill block r with the value rank*100 + r.
                    for_range(k, int(0), r.get() + int(1), &[store(
                        int(layout::SEND_BUF) + (acc.get() + k.get()) * int(4),
                        0,
                        rank.get() * int(100) + r.get(),
                    )]),
                    acc.set(acc.get() + r.get() + int(1)),
                    store(int(rcounts) + r.get() * int(4), 0, rank.get() + int(1)),
                    store(
                        int(rdispls) + r.get() * int(4),
                        0,
                        r.get() * (rank.get() + int(1)),
                    ),
                ]),
                mpi.alltoallv(
                    int(layout::SEND_BUF),
                    int(scounts),
                    int(sdispls),
                    MPI_INT,
                    int(layout::RECV_BUF),
                    int(rcounts),
                    int(rdispls),
                ),
                // Sum everything received: rank+1 ints from each sender
                // s, each s*100 + rank.
                sum.set(int(0)),
                for_range(r, int(0), size.get() * (rank.get() + int(1)), &[sum.set(
                    sum.get() + (int(layout::RECV_BUF) + r.get() * int(4)).load(ValType::I32, 0),
                )]),
                mpi.report(int(0), sum.get().to(ValType::F64)),
                mpi.finalize(),
            ]);
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: P as u32, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        for rank in 0..P {
            let expected: i32 = (0..P).map(|s| (rank + 1) * (s * 100 + rank)).sum();
            assert_eq!(
                result.ranks[rank as usize].reports,
                vec![(0, expected as f64)],
                "rank {rank}"
            );
        }
    }

    /// Symmetric `Ialltoall` + `Waitall` through the full guest ABI with
    /// rendezvous-sized blocks: the parked `Waitall` must keep each
    /// rank's collective state machine draining its peers.
    #[test]
    fn guest_symmetric_ialltoall_waitall_completes() {
        const BLOCK: i32 = 256 << 10; // per-peer block, rendezvous-sized
        let req = layout::SCRATCH + 16;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.extend([
                // First word of each outgoing block: 10 + rank.
                store(int(layout::SEND_BUF), 0, rank.get() + int(10)),
                store(int(layout::SEND_BUF + BLOCK), 0, rank.get() + int(10)),
                mpi.ialltoall_nb(
                    int(layout::SEND_BUF),
                    int(BLOCK),
                    MPI_BYTE,
                    int(layout::RECV_BUF),
                    int(req),
                ),
                call_drop(mpi.waitall, vec![int(1), int(req), int(0)]),
                // Peer block landed at RECV_BUF + peer*BLOCK.
                mpi.report(
                    int(0),
                    (int(layout::RECV_BUF) + (int(1) - rank.get()) * int(BLOCK))
                        .load(ValType::I32, 0)
                        .to(ValType::F64),
                ),
                mpi.finalize(),
            ]);
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        assert_eq!(result.ranks[0].reports, vec![(0, 11.0)]);
        assert_eq!(result.ranks[1].reports, vec![(0, 10.0)]);
    }

    /// `MPI_Init_thread` grants the requested level up to
    /// `MPI_THREAD_MULTIPLE` and `MPI_Query_thread` reads it back.
    #[test]
    fn init_thread_grants_thread_multiple() {
        const PROVIDED: i32 = 256;
        const QUERIED: i32 = 260;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            emit_block(f, &[
                mpi.init_thread(int(MPI_THREAD_MULTIPLE), int(PROVIDED)),
                mpi.query_thread(int(QUERIED)),
                mpi.report(int(0), int(PROVIDED).load(ValType::I32, 0).to(ValType::F64)),
                mpi.report(int(1), int(QUERIED).load(ValType::I32, 0).to(ValType::F64)),
                mpi.finalize(),
            ]);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        for r in &result.ranks {
            assert_eq!(r.reports[0].1, MPI_THREAD_MULTIPLE as f64, "provided on rank {}", r.rank);
            assert_eq!(r.reports[1].1, MPI_THREAD_MULTIPLE as f64, "queried on rank {}", r.rank);
        }
    }

    /// `MPI_Message` handle encoding end to end: `Improbe` yields handle
    /// index+1, `Mrecv` delivers and rewrites the handle word to
    /// `MPI_MESSAGE_NULL` (0), freed slots are reclaimed, and a probe
    /// miss reports flag 0 with a null handle.
    #[test]
    fn message_handles_encode_and_null_on_mrecv() {
        const STATUS: i32 = 256; // 20-byte guest MPI_Status
        const FLAG: i32 = 288;
        const MSG: i32 = 292;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.push(if_else(
                rank.get().eq(int(0)),
                &[
                    store(int(layout::SEND_BUF), 0, int(42)),
                    mpi.send(int(layout::SEND_BUF), int(1), MPI_INT, int(1), int(8)),
                    store(int(layout::SEND_BUF), 0, int(43)),
                    mpi.send(int(layout::SEND_BUF), int(1), MPI_INT, int(1), int(8)),
                    mpi.send(int(layout::SEND_BUF), int(0), MPI_BYTE, int(1), int(10)),
                ],
                &[
                    // Wait for both tag-8 messages to be pending.
                    mpi.recv(int(layout::RECV_BUF), int(0), MPI_BYTE, int(0), int(10)),
                    // Improbe extracts the first message: flag 1, handle 1.
                    call_drop(
                        mpi.improbe,
                        vec![
                            int(0),
                            int(8),
                            int(handles::MPI_COMM_WORLD),
                            int(FLAG),
                            int(MSG),
                            int(STATUS),
                        ],
                    ),
                    mpi.report(int(0), int(FLAG).load(ValType::I32, 0).to(ValType::F64)),
                    mpi.report(int(1), int(MSG).load(ValType::I32, 0).to(ValType::F64)),
                    // Mrecv delivers message 0 and nulls the handle word.
                    mpi.mrecv(int(layout::RECV_BUF), int(1), MPI_INT, int(MSG), int(STATUS)),
                    mpi.report(int(2), int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64)),
                    mpi.report(int(3), int(MSG).load(ValType::I32, 0).to(ValType::F64)),
                    // The freed slot is reclaimed: Mprobe hands out 1 again.
                    mpi.mprobe(int(0), int(8), int(MSG), int(STATUS)),
                    mpi.report(int(4), int(MSG).load(ValType::I32, 0).to(ValType::F64)),
                    mpi.mrecv(int(layout::RECV_BUF), int(1), MPI_INT, int(MSG), int(STATUS)),
                    mpi.report(int(5), int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64)),
                    // Probe miss: flag 0, handle stays MPI_MESSAGE_NULL.
                    call_drop(
                        mpi.improbe,
                        vec![
                            int(MPI_ANY_SOURCE),
                            int(8),
                            int(handles::MPI_COMM_WORLD),
                            int(FLAG),
                            int(MSG),
                            int(STATUS),
                        ],
                    ),
                    mpi.report(int(6), int(FLAG).load(ValType::I32, 0).to(ValType::F64)),
                    mpi.report(int(7), int(MSG).load(ValType::I32, 0).to(ValType::F64)),
                ],
            ));
            stmts.push(mpi.finalize());
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        let reports: Vec<f64> = result.ranks[1].reports.iter().map(|&(_, v)| v).collect();
        assert_eq!(
            reports,
            vec![1.0, 1.0, 42.0, 0.0, 1.0, 43.0, 0.0, 0.0],
            "flag, handle, payload, nulled, reused handle, payload, miss flag, miss handle"
        );
    }

    /// The master/worker idiom the tentpole exists for: `MPI_Probe` +
    /// `MPI_Get_count` sizing a dynamic receive.
    #[test]
    fn probe_get_count_drives_dynamic_receive() {
        const STATUS: i32 = 256;
        const CNT: i32 = 288;
        const N: i32 = 5;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let i = Var::new(f, ValType::I32);
            let count = Var::new(f, ValType::I32);
            let sum = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.push(if_else(
                rank.get().eq(int(0)),
                &[
                    // N ints, values 7·i — the receiver learns N only by
                    // probing.
                    for_range(i, int(0), int(N), &[store(
                        int(layout::SEND_BUF) + i.get() * int(4),
                        0,
                        i.get() * int(7),
                    )]),
                    mpi.send(int(layout::SEND_BUF), int(N), MPI_INT, int(1), int(3)),
                ],
                &[
                    mpi.probe(int(0), int(3), int(STATUS)),
                    call_drop(mpi.get_count, vec![int(STATUS), int(MPI_INT), int(CNT)]),
                    count.set(int(CNT).load(ValType::I32, 0)),
                    mpi.recv(int(layout::RECV_BUF), count.get(), MPI_INT, int(0), int(3)),
                    sum.set(int(0)),
                    for_range(i, int(0), count.get(), &[sum.set(
                        sum.get()
                            + (int(layout::RECV_BUF) + i.get() * int(4)).load(ValType::I32, 0),
                    )]),
                    mpi.report(int(0), count.get().to(ValType::F64)),
                    mpi.report(int(1), sum.get().to(ValType::F64)),
                ],
            ));
            stmts.push(mpi.finalize());
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        let expected_sum: i32 = (0..N).map(|k| k * 7).sum();
        assert_eq!(
            result.ranks[1].reports,
            vec![(0, N as f64), (1, expected_sum as f64)]
        );
    }

    /// `MPI_Cancel` + `MPI_Test_cancelled` on an unmatched send: the
    /// rendezvous-sized Isend is retracted (the peer observes nothing),
    /// the Wait surfaces the cancelled status, and the handle word nulls.
    #[test]
    fn cancel_unmatched_send_reports_test_cancelled() {
        const BYTES: i32 = 256 << 10; // above every eager threshold
        const STATUS: i32 = 256;
        const FLAG: i32 = 288;
        let req = layout::SCRATCH + 16;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.push(if_else(
                rank.get().eq(int(1)),
                &[
                    mpi.isend_nb(int(layout::SEND_BUF), int(BYTES), MPI_BYTE, int(0), 5, int(req)),
                    mpi.cancel(int(req)),
                    call_drop(mpi.wait, vec![int(req), int(STATUS)]),
                    mpi.test_cancelled(int(STATUS), int(FLAG)),
                    mpi.report(int(0), int(FLAG).load(ValType::I32, 0).to(ValType::F64)),
                    mpi.report(int(1), int(req).load(ValType::I32, 0).to(ValType::F64)),
                    // Only now may the peer look for the absence.
                    mpi.send(int(layout::SEND_BUF), int(0), MPI_BYTE, int(0), int(9)),
                ],
                &[
                    mpi.recv(int(layout::RECV_BUF), int(0), MPI_BYTE, int(1), int(9)),
                    // The cancelled message never existed for us.
                    mpi.iprobe(int(1), int(5), int(FLAG), int(STATUS)),
                    mpi.report(int(0), int(FLAG).load(ValType::I32, 0).to(ValType::F64)),
                ],
            ));
            stmts.push(mpi.finalize());
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        assert_eq!(
            result.ranks[1].reports,
            vec![(0, 1.0), (1, 0.0)],
            "cancelled flag set, request handle nulled"
        );
        assert_eq!(result.ranks[0].reports, vec![(0, 0.0)], "retracted message invisible");
    }

    /// Collectives through the full stack, all tiers.
    #[test]
    fn allreduce_through_embedder_all_tiers() {
        for tier in wasm_engine::Tier::ALL {
            let mut b = ModuleBuilder::new();
            b.memory(layout::PAGES, None);
            let mpi = MpiImports::declare(&mut b);
            b.func("_start", vec![], vec![], |f| {
                let rank = Var::new(f, ValType::I32);
                let mut stmts = vec![mpi.init()];
                stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
                stmts.extend([
                    store(int(layout::SEND_BUF), 0, rank.get().to(ValType::F64) + double(1.0)),
                    mpi.allreduce(
                        int(layout::SEND_BUF),
                        int(layout::RECV_BUF),
                        int(1),
                        MPI_DOUBLE,
                        MPI_SUM,
                    ),
                    mpi.report(int(0), int(layout::RECV_BUF).load(ValType::F64, 0)),
                    mpi.finalize(),
                ]);
                emit_block(f, &stmts);
            });
            let wasm = encode_module(&b.finish());
            let result = Runner::new()
                .run(&wasm, JobConfig { np: 3, tier, ..Default::default() })
                .unwrap();
            assert!(result.success(), "tier {tier}");
            // 1 + 2 + 3 on every rank.
            for r in &result.ranks {
                assert_eq!(r.reports, vec![(0, 6.0)], "tier {tier} rank {}", r.rank);
            }
        }
    }

    /// Conformance pin for the `MPI_Get_count` rounding bug: a byte count
    /// that is not a multiple of the datatype size must yield
    /// `MPI_UNDEFINED`, while `MPI_Get_elements` still counts the whole
    /// basic elements. Also pins the MPI_ERROR status word (offset +8)
    /// as MPI_SUCCESS on a clean receive, and `MPI_Type_free` writing
    /// `MPI_DATATYPE_NULL`.
    #[test]
    fn get_count_undefined_on_partial_element() {
        const STATUS: i32 = 256;
        const CNT: i32 = 288;
        const TYPE: i32 = 296;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.push(if_else(
                rank.get().eq(int(0)),
                // 8 bytes: two full ints, 2/3 of the 12-byte derived type.
                &[mpi.send(int(layout::SEND_BUF), int(8), MPI_BYTE, int(1), int(3))],
                &[
                    mpi.type_contiguous(int(3), MPI_INT, int(TYPE)),
                    mpi.type_commit(int(TYPE)),
                    call_drop(
                        mpi.recv,
                        vec![
                            int(layout::RECV_BUF),
                            int(8),
                            int(MPI_BYTE),
                            int(0),
                            int(3),
                            int(MPI_COMM_WORLD),
                            int(STATUS),
                        ],
                    ),
                    // 8 % 12 != 0 -> MPI_UNDEFINED, not floor(8/12).
                    call_drop(
                        mpi.get_count,
                        vec![int(STATUS), int(TYPE).load(ValType::I32, 0), int(CNT)],
                    ),
                    mpi.report(int(0), int(CNT).load(ValType::I32, 0).to(ValType::F64)),
                    // ...but two whole basic ints did arrive.
                    call_drop(
                        mpi.get_elements,
                        vec![int(STATUS), int(TYPE).load(ValType::I32, 0), int(CNT)],
                    ),
                    mpi.report(int(1), int(CNT).load(ValType::I32, 0).to(ValType::F64)),
                    // Divisible by the primitive size -> exact count.
                    call_drop(mpi.get_count, vec![int(STATUS), int(MPI_INT), int(CNT)]),
                    mpi.report(int(2), int(CNT).load(ValType::I32, 0).to(ValType::F64)),
                    // MPI_ERROR word of a successful receive.
                    mpi.report(int(3), int(STATUS).load(ValType::I32, 8).to(ValType::F64)),
                    mpi.type_free(int(TYPE)),
                    mpi.report(int(4), int(TYPE).load(ValType::I32, 0).to(ValType::F64)),
                ],
            ));
            stmts.push(mpi.finalize());
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        assert_eq!(
            result.ranks[1].reports,
            vec![(0, -1.0), (1, 2.0), (2, 2.0), (3, 0.0), (4, -2.0)],
            "Get_count UNDEFINED, Get_elements 2, int count 2, MPI_ERROR success, freed handle null"
        );
    }

    /// Derived-datatype roundtrip in both clock modes: a strided
    /// `MPI_Type_vector` is packed by the host on send (receiver sees a
    /// dense int stream) and scattered back on a derived receive.
    #[test]
    fn type_vector_pack_and_scatter_roundtrip() {
        const TYPE: i32 = 256;
        for clock in [ClockMode::Real, virtual_clock()] {
            let mut b = ModuleBuilder::new();
            b.memory(layout::PAGES, None);
            let mpi = MpiImports::declare(&mut b);
            b.func("_start", vec![], vec![], |f| {
                let rank = Var::new(f, ValType::I32);
                let i = Var::new(f, ValType::I32);
                let sum = Var::new(f, ValType::I32);
                let mut stmts = vec![mpi.init()];
                stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
                stmts.extend([
                    // 4 blocks of 2 ints, stride 4: picks elements
                    // 0,1, 4,5, 8,9, 12,13 out of a 16-int region.
                    mpi.type_vector(int(4), int(2), int(4), MPI_INT, int(TYPE)),
                    mpi.type_commit(int(TYPE)),
                ]);
                stmts.push(if_else(
                    rank.get().eq(int(0)),
                    &[
                        for_range(i, int(0), int(16), &[store(
                            int(layout::SEND_BUF) + i.get() * int(4),
                            0,
                            i.get(),
                        )]),
                        mpi.send_dt(
                            int(layout::SEND_BUF),
                            int(1),
                            int(TYPE).load(ValType::I32, 0),
                            int(1),
                            int(1),
                        ),
                        // The peer echoes the dense stream; scatter it back
                        // through the same vector type.
                        mpi.recv_dt(
                            int(layout::RECV_BUF),
                            int(1),
                            int(TYPE).load(ValType::I32, 0),
                            int(1),
                            int(2),
                        ),
                        sum.set(int(0)),
                        for_range(i, int(0), int(16), &[sum.set(
                            sum.get()
                                + (int(layout::RECV_BUF) + i.get() * int(4))
                                    .load(ValType::I32, 0),
                        )]),
                        mpi.report(int(0), sum.get().to(ValType::F64)),
                        // A gap element stays zero; a strided slot holds its
                        // original value.
                        mpi.report(int(1), int(layout::RECV_BUF).load(ValType::I32, 8).to(ValType::F64)),
                        mpi.report(int(2), int(layout::RECV_BUF).load(ValType::I32, 16).to(ValType::F64)),
                    ],
                    &[
                        mpi.recv(int(layout::RECV_BUF), int(8), MPI_INT, int(0), int(1)),
                        sum.set(int(0)),
                        for_range(i, int(0), int(8), &[sum.set(
                            sum.get()
                                + (int(layout::RECV_BUF) + i.get() * int(4))
                                    .load(ValType::I32, 0),
                        )]),
                        mpi.report(int(0), sum.get().to(ValType::F64)),
                        mpi.send(int(layout::RECV_BUF), int(8), MPI_INT, int(0), int(2)),
                    ],
                ));
                stmts.push(mpi.type_free(int(TYPE)));
                stmts.push(mpi.finalize());
                emit_block(f, &stmts);
            });
            let wasm = encode_module(&b.finish());
            let result = Runner::new()
                .run(&wasm, JobConfig { np: 2, clock: clock.clone(), ..Default::default() })
                .unwrap();
            assert!(result.success(), "{clock:?}: {:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
            // 0+1+4+5+8+9+12+13 = 52 on the dense receiver; the scatter
            // restores the same mass with zeros in the gaps.
            assert_eq!(result.ranks[1].reports, vec![(0, 52.0)], "{clock:?}");
            assert_eq!(
                result.ranks[0].reports,
                vec![(0, 52.0), (1, 0.0), (2, 4.0)],
                "{clock:?}: scatter sum, gap zero, strided slot"
            );
        }
    }

    /// Synchronous sends (blocking and nonblocking) deliver correctly
    /// below the eager threshold in both clock modes — the receipt-ack
    /// handshake must not deadlock or corrupt the payload.
    #[test]
    fn ssend_and_issend_deliver_below_threshold() {
        const REQ: i32 = 256;
        for clock in [ClockMode::Real, virtual_clock()] {
            let mut b = ModuleBuilder::new();
            b.memory(layout::PAGES, None);
            let mpi = MpiImports::declare(&mut b);
            b.func("_start", vec![], vec![], |f| {
                let rank = Var::new(f, ValType::I32);
                let i = Var::new(f, ValType::I32);
                let sum = Var::new(f, ValType::I32);
                let mut stmts = vec![mpi.init()];
                stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
                stmts.push(if_else(
                    rank.get().eq(int(0)),
                    &[
                        for_range(i, int(0), int(4), &[store(
                            int(layout::SEND_BUF) + i.get() * int(4),
                            0,
                            (i.get() + int(1)) * int(10),
                        )]),
                        mpi.ssend(int(layout::SEND_BUF), int(4), MPI_INT, int(1), int(1)),
                        call_drop(
                            mpi.issend,
                            vec![
                                int(layout::SEND_BUF),
                                int(4),
                                int(MPI_INT),
                                int(1),
                                int(2),
                                int(MPI_COMM_WORLD),
                                int(REQ),
                            ],
                        ),
                        call_drop(mpi.wait, vec![int(REQ), int(MPI_STATUS_IGNORE)]),
                        mpi.report(int(0), int(REQ).load(ValType::I32, 0).to(ValType::F64)),
                    ],
                    &[
                        mpi.recv(int(layout::RECV_BUF), int(4), MPI_INT, int(0), int(1)),
                        mpi.recv(int(layout::RECV_BUF) + int(64), int(4), MPI_INT, int(0), int(2)),
                        sum.set(int(0)),
                        for_range(i, int(0), int(4), &[sum.set(
                            sum.get()
                                + (int(layout::RECV_BUF) + i.get() * int(4)).load(ValType::I32, 0)
                                + (int(layout::RECV_BUF) + int(64) + i.get() * int(4))
                                    .load(ValType::I32, 0),
                        )]),
                        mpi.report(int(0), sum.get().to(ValType::F64)),
                    ],
                ));
                stmts.push(mpi.finalize());
                emit_block(f, &stmts);
            });
            let wasm = encode_module(&b.finish());
            let result = Runner::new()
                .run(&wasm, JobConfig { np: 2, clock: clock.clone(), ..Default::default() })
                .unwrap();
            assert!(result.success(), "{clock:?}: {:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
            // Issend's request handle nulled; both payloads summed:
            // 2 * (10+20+30+40).
            assert_eq!(result.ranks[0].reports, vec![(0, 0.0)], "{clock:?}");
            assert_eq!(result.ranks[1].reports, vec![(0, 200.0)], "{clock:?}");
        }
    }

    /// Buffered sends: `MPI_Bsend` without an attached buffer returns
    /// MPI_ERR_BUFFER; with one attached it completes *locally* — the
    /// sender detaches and sends a second message before the receiver
    /// posts anything, and the receiver matches the two out of order.
    #[test]
    fn bsend_requires_attach_and_completes_locally() {
        const DETACH_PTR: i32 = 256;
        const DETACH_SZ: i32 = 260;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let i = Var::new(f, ValType::I32);
            let sum = Var::new(f, ValType::I32);
            let err = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.push(if_else(
                rank.get().eq(int(0)),
                &[
                    for_range(i, int(0), int(4), &[store(
                        int(layout::SEND_BUF) + i.get() * int(4),
                        0,
                        (i.get() + int(1)) * int(10),
                    )]),
                    // No buffer attached yet: MPI_ERR_BUFFER.
                    err.set(call(
                        mpi.bsend,
                        vec![
                            int(layout::SEND_BUF),
                            int(4),
                            int(MPI_INT),
                            int(1),
                            int(7),
                            int(MPI_COMM_WORLD),
                        ],
                        ValType::I32,
                    )),
                    mpi.report(int(0), err.get().to(ValType::F64)),
                    mpi.buffer_attach(int(layout::HEAP), int(1 << 16)),
                    mpi.bsend(int(layout::SEND_BUF), int(4), MPI_INT, int(1), int(7)),
                    mpi.buffer_detach(int(DETACH_PTR), int(DETACH_SZ)),
                    mpi.report(int(1), int(DETACH_SZ).load(ValType::I32, 0).to(ValType::F64)),
                    // Reaching here before the peer posts any receive
                    // proves local completion; the peer matches this tag
                    // first.
                    mpi.send(int(layout::SEND_BUF), int(0), MPI_BYTE, int(1), int(8)),
                ],
                &[
                    mpi.recv(int(layout::RECV_BUF), int(0), MPI_BYTE, int(0), int(8)),
                    mpi.recv(int(layout::RECV_BUF), int(4), MPI_INT, int(0), int(7)),
                    sum.set(int(0)),
                    for_range(i, int(0), int(4), &[sum.set(
                        sum.get()
                            + (int(layout::RECV_BUF) + i.get() * int(4)).load(ValType::I32, 0),
                    )]),
                    mpi.report(int(0), sum.get().to(ValType::F64)),
                ],
            ));
            stmts.push(mpi.finalize());
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        assert_eq!(
            result.ranks[0].reports,
            vec![(0, 1.0), (1, 65536.0)],
            "MPI_ERR_BUFFER without attach, detach returns the attached size"
        );
        assert_eq!(result.ranks[1].reports, vec![(0, 100.0)]);
    }

    /// Groups and `MPI_Comm_create`: exclude rank 0 from the world group,
    /// build a communicator from the remainder, and run a collective on
    /// it. The excluded rank gets MPI_COMM_NULL and MPI_UNDEFINED.
    #[test]
    fn group_excl_comm_create_runs_collective() {
        const GRP: i32 = 256;
        const NG: i32 = 260;
        const SZ: i32 = 264;
        const VAL: i32 = 268;
        const COMM2: i32 = 272;
        const IDX: i32 = 276;
        const SB: i32 = 288;
        const RB: i32 = 296;
        let mut b = ModuleBuilder::new();
        b.memory(layout::PAGES, None);
        let mpi = MpiImports::declare(&mut b);
        b.func("_start", vec![], vec![], |f| {
            let rank = Var::new(f, ValType::I32);
            let mut stmts = vec![mpi.init()];
            stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
            stmts.extend([
                call_drop(mpi.comm_group, vec![int(MPI_COMM_WORLD), int(GRP)]),
                call_drop(mpi.group_size, vec![int(GRP).load(ValType::I32, 0), int(SZ)]),
                mpi.report(int(0), int(SZ).load(ValType::I32, 0).to(ValType::F64)),
                call_drop(mpi.group_rank, vec![int(GRP).load(ValType::I32, 0), int(VAL)]),
                mpi.report(int(1), int(VAL).load(ValType::I32, 0).to(ValType::F64)),
                // Drop rank 0 from the group.
                store(int(IDX), 0, int(0)),
                call_drop(
                    mpi.group_excl,
                    vec![int(GRP).load(ValType::I32, 0), int(1), int(IDX), int(NG)],
                ),
                call_drop(mpi.group_rank, vec![int(NG).load(ValType::I32, 0), int(VAL)]),
                mpi.report(int(2), int(VAL).load(ValType::I32, 0).to(ValType::F64)),
                // Collective over MPI_COMM_WORLD: every rank calls it.
                call_drop(
                    mpi.comm_create,
                    vec![int(MPI_COMM_WORLD), int(NG).load(ValType::I32, 0), int(COMM2)],
                ),
                mpi.report(int(3), int(COMM2).load(ValType::I32, 0).to(ValType::F64)),
                if_else(
                    int(COMM2).load(ValType::I32, 0).ne(int(-1)),
                    &[
                        store(int(SB), 0, rank.get() + int(1)),
                        call_drop(
                            mpi.allreduce,
                            vec![
                                int(SB),
                                int(RB),
                                int(1),
                                int(MPI_INT),
                                int(MPI_SUM),
                                int(COMM2).load(ValType::I32, 0),
                            ],
                        ),
                        mpi.report(int(4), int(RB).load(ValType::I32, 0).to(ValType::F64)),
                    ],
                    &[],
                ),
                call_drop(mpi.group_free, vec![int(NG)]),
                call_drop(mpi.group_free, vec![int(GRP)]),
                mpi.report(int(5), int(GRP).load(ValType::I32, 0).to(ValType::F64)),
            ]);
            stmts.push(mpi.finalize());
            emit_block(f, &stmts);
        });
        let wasm = encode_module(&b.finish());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 3, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks.iter().map(|r| &r.error).collect::<Vec<_>>());
        // World group: size 3, own rank. New group: rank 0 excluded.
        assert_eq!(
            result.ranks[0].reports,
            vec![(0, 3.0), (1, 0.0), (2, -1.0), (3, -1.0), (5, 0.0)],
            "excluded rank: MPI_UNDEFINED group rank, MPI_COMM_NULL, freed group nulls"
        );
        for (r, new_rank) in [(1usize, 0.0), (2usize, 1.0)] {
            let comm_handle = result.ranks[r].reports[3].1;
            assert!(comm_handle >= 2.0, "rank {r} got dynamic comm {comm_handle}");
            assert_eq!(result.ranks[r].reports[0], (0, 3.0), "rank {r}");
            assert_eq!(result.ranks[r].reports[1], (1, r as f64), "rank {r}");
            assert_eq!(result.ranks[r].reports[2], (2, new_rank), "rank {r}");
            // 1-based world ranks of members: 2 + 3.
            assert_eq!(result.ranks[r].reports[4], (4, 5.0), "rank {r}");
            assert_eq!(result.ranks[r].reports[5], (5, 0.0), "rank {r}");
        }
    }
}

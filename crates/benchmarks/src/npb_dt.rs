//! NAS Parallel Benchmarks: DT — data traffic through a task graph (§4.2,
//! Figure 5a right).
//!
//! DT streams arrays of doubles through a communication topology and
//! performs element-wise pairwise-comparison reductions at each node —
//! exactly the workload the paper uses to demonstrate the effect of
//! 128-bit SIMD (`-msimd128`): the guest is built in a scalar and a SIMD
//! variant, and the SIMD variant processes two f64 lanes per operation.
//!
//! Topologies, following the paper's bh/wh/sh:
//! * **BlackHole** — fan-in: every rank streams to rank 0,
//! * **WhiteHole** — fan-out: rank 0 streams to every rank,
//! * **Shuffle** — butterfly: log₂(p) pairwise exchange rounds.

use mpi_substrate::{Comm, Source, Tag};
use wasm_engine::dsl::*;
use wasm_engine::instr::{Instr, MemArg};
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

use crate::guest::{layout, MpiImports, MPI_DOUBLE};

/// DT topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    BlackHole,
    WhiteHole,
    Shuffle,
}

impl Topology {
    pub const ALL: [Topology; 3] = [Topology::BlackHole, Topology::WhiteHole, Topology::Shuffle];

    pub fn short_name(&self) -> &'static str {
        match self {
            Topology::BlackHole => "bh",
            Topology::WhiteHole => "wh",
            Topology::Shuffle => "sh",
        }
    }
}

/// DT parameters.
#[derive(Debug, Clone, Copy)]
pub struct DtParams {
    /// Doubles per message (must be even for the SIMD variant).
    pub elems: u32,
    pub topology: Topology,
    pub iters: u32,
    /// Emit the SIMD combine kernel (the `-msimd128` build).
    pub simd: bool,
}

impl Default for DtParams {
    fn default() -> Self {
        DtParams { elems: 4096, topology: Topology::BlackHole, iters: 4, simd: false }
    }
}

impl DtParams {
    /// Total payload bytes moved per iteration for `p` ranks (the
    /// throughput denominator).
    pub fn bytes_per_iter(&self, p: u32) -> u64 {
        let msg = self.elems as u64 * 8;
        match self.topology {
            Topology::BlackHole | Topology::WhiteHole => msg * (p as u64 - 1),
            Topology::Shuffle => msg * p as u64 * (p.max(2).ilog2() as u64),
        }
    }
}

/// The DT combine kernel, scalar semantics (shared by native and guest):
/// `acc[i] = max(acc,in)*0.5 + min(acc,in)*0.25 + acc*in*1e-6`.
#[inline]
pub fn combine_scalar(acc: f64, input: f64) -> f64 {
    let hi = if acc > input { acc } else { input };
    let lo = if acc > input { input } else { acc };
    hi * 0.5 + lo * 0.25 + acc * input * 1e-6
}

/// Build the DT guest. Reports `(0, elapsed_seconds)`, `(1, checksum)`.
pub fn build_guest(p: DtParams) -> Vec<u8> {
    assert!(p.elems % 2 == 0, "SIMD variant needs an even element count");
    let mut b = ModuleBuilder::new();
    b.name(&format!(
        "npb-dt-{}{}",
        p.topology.short_name(),
        if p.simd { "-simd" } else { "" }
    ));
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);

    let elems = p.elems as i32;
    let acc_buf = layout::HEAP;
    let in_buf = acc_buf + elems * 8 + 64;
    // Probe status + Get_count scratch for the dynamic receives below.
    let status = layout::SCRATCH + 112;
    let cnt_ptr = status + 24;

    // combine(acc_ptr, in_ptr): element-wise kernel.
    let combine = b.func_private(vec![ValType::I32, ValType::I32], vec![], move |f| {
        let acc = local(0, ValType::I32);
        let inp = local(1, ValType::I32);
        let i = Var::new(f, ValType::I32);
        if p.simd {
            // Two f64 lanes per step with v128 operations.
            let va = f.local(ValType::V128);
            let vb = f.local(ValType::V128);
            let mask = f.local(ValType::V128);
            let step: Vec<Stmt> = vec![Stmt::Raw(vec![
                // va = acc[i..i+2], vb = in[i..i+2]
                Instr::LocalGet(acc.idx),
                Instr::LocalGet(i.idx),
                Instr::I32Const(3),
                Instr::I32Shl,
                Instr::I32Add,
                Instr::V128Load(MemArg::default()),
                Instr::LocalSet(va),
                Instr::LocalGet(inp.idx),
                Instr::LocalGet(i.idx),
                Instr::I32Const(3),
                Instr::I32Shl,
                Instr::I32Add,
                Instr::V128Load(MemArg::default()),
                Instr::LocalSet(vb),
                // mask = va < vb (per lane)
                Instr::LocalGet(va),
                Instr::LocalGet(vb),
                Instr::F64x2Lt,
                Instr::LocalSet(mask),
                // hi = (vb & mask) | (va & !mask)
                Instr::LocalGet(vb),
                Instr::LocalGet(mask),
                Instr::V128And,
                Instr::LocalGet(va),
                Instr::LocalGet(mask),
                Instr::V128Not,
                Instr::V128And,
                Instr::V128Or,
                // hi * 0.5
                Instr::F64Const(0.5),
                Instr::F64x2Splat,
                Instr::F64x2Mul,
                // lo = (va & mask) | (vb & !mask); lo * 0.25
                Instr::LocalGet(va),
                Instr::LocalGet(mask),
                Instr::V128And,
                Instr::LocalGet(vb),
                Instr::LocalGet(mask),
                Instr::V128Not,
                Instr::V128And,
                Instr::V128Or,
                Instr::F64Const(0.25),
                Instr::F64x2Splat,
                Instr::F64x2Mul,
                Instr::F64x2Add,
                // + va*vb*1e-6
                Instr::LocalGet(va),
                Instr::LocalGet(vb),
                Instr::F64x2Mul,
                Instr::F64Const(1e-6),
                Instr::F64x2Splat,
                Instr::F64x2Mul,
                Instr::F64x2Add,
                Instr::LocalSet(va),
                // store back to acc
                Instr::LocalGet(acc.idx),
                Instr::LocalGet(i.idx),
                Instr::I32Const(3),
                Instr::I32Shl,
                Instr::I32Add,
                Instr::LocalGet(va),
                Instr::V128Store(MemArg::default()),
                // i += 2
                Instr::LocalGet(i.idx),
                Instr::I32Const(2),
                Instr::I32Add,
                Instr::LocalSet(i.idx),
            ])];
            emit_block(f, &[while_loop(i.get().lt(int(elems)), &step)]);
        } else {
            let a = |idx: Expr| (acc.get() + idx.shl(int(3))).load(ValType::F64, 0);
            let bv = |idx: Expr| (inp.get() + idx.shl(int(3))).load(ValType::F64, 0);
            emit_block(f, &[for_range(i, int(0), int(elems), &[store(
                acc.get() + i.get().shl(int(3)),
                0,
                a(i.get()).max(bv(i.get())) * double(0.5)
                    + a(i.get()).min(bv(i.get())) * double(0.25)
                    + a(i.get()) * bv(i.get()) * double(1e-6),
            )])]);
        }
    });

    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let it = Var::new(f, ValType::I32);
        let round = Var::new(f, ValType::I32);
        let partner = Var::new(f, ValType::I32);
        let cnt = Var::new(f, ValType::I32);
        let t0 = Var::new(f, ValType::F64);
        let checksum = Var::new(f, ValType::F64);

        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));

        // Seed data: deterministic per rank.
        stmts.push(for_range(i, int(0), int(elems), &[store(
            int(acc_buf) + i.get().shl(int(3)),
            0,
            (rank.get() * int(31) + i.get().rem_u(int(97)) + int(1)).to(ValType::F64)
                * double(0.001),
        )]));
        stmts.push(mpi.barrier_world());
        stmts.push(t0.set(mpi.wtime()));

        // Receivers size their buffers dynamically — Probe the incoming
        // stream, Get_count it, then post the exact-count receive. This is
        // how the real DT consumer drains a task-graph edge whose payload
        // size it does not know statically.
        let per_iter: Vec<Stmt> = match p.topology {
            Topology::BlackHole => vec![if_else(
                rank.get().eq(int(0)),
                &[for_range(partner, int(1), size.get(), &[
                    mpi.probe(partner.get(), int(5), int(status)),
                    call_drop(mpi.get_count, vec![int(status), int(MPI_DOUBLE), int(cnt_ptr)]),
                    cnt.set(int(cnt_ptr).load(ValType::I32, 0)),
                    mpi.recv(int(in_buf), cnt.get(), MPI_DOUBLE, partner.get(), int(5)),
                    call_stmt(combine, vec![int(acc_buf), int(in_buf)]),
                ])],
                &[mpi.send(int(acc_buf), int(elems), MPI_DOUBLE, int(0), int(5))],
            )],
            Topology::WhiteHole => vec![if_else(
                rank.get().eq(int(0)),
                &[for_range(partner, int(1), size.get(), &[mpi.send(
                    int(acc_buf),
                    int(elems),
                    MPI_DOUBLE,
                    partner.get(),
                    int(5),
                )])],
                &[
                    mpi.probe(int(0), int(5), int(status)),
                    call_drop(mpi.get_count, vec![int(status), int(MPI_DOUBLE), int(cnt_ptr)]),
                    cnt.set(int(cnt_ptr).load(ValType::I32, 0)),
                    mpi.recv(int(in_buf), cnt.get(), MPI_DOUBLE, int(0), int(5)),
                    call_stmt(combine, vec![int(acc_buf), int(in_buf)]),
                ],
            )],
            Topology::Shuffle => vec![
                round.set(int(1)),
                while_loop(round.get().lt(size.get()), &[
                    partner.set(rank.get().xor(round.get())),
                    if_then(partner.get().lt(size.get()), &[
                        mpi.sendrecv(
                            int(acc_buf),
                            int(elems),
                            MPI_DOUBLE,
                            partner.get(),
                            int(in_buf),
                            int(elems),
                            partner.get(),
                            5,
                        ),
                        call_stmt(combine, vec![int(acc_buf), int(in_buf)]),
                    ]),
                    round.set(round.get().shl(int(1))),
                ]),
            ],
        };
        stmts.push(for_range(it, int(0), int(p.iters as i32), &per_iter));

        stmts.extend([
            mpi.report(int(0), mpi.wtime() - t0.get()),
            checksum.set(double(0.0)),
            for_range(i, int(0), int(elems), &[checksum.set(
                checksum.get() + (int(acc_buf) + i.get().shl(int(3))).load(ValType::F64, 0),
            )]),
            mpi.report(int(1), checksum.get()),
            mpi.finalize(),
        ]);
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

/// Native DT. Returns `(elapsed_seconds, checksum)`.
pub fn run_native(comm: &Comm, p: DtParams) -> (f64, f64) {
    let rank = comm.rank();
    let size = comm.size();
    let n = p.elems as usize;
    let mut acc: Vec<f64> =
        (0..n).map(|i| (rank * 31 + (i as u32 % 97) + 1) as f64 * 0.001).collect();
    let mut inp = vec![0.0f64; n];

    let to_bytes = |s: &[f64]| -> Vec<u8> { s.iter().flat_map(|v| v.to_le_bytes()).collect() };
    let from_bytes = |b: &[u8], out: &mut [f64]| {
        for (i, c) in b.chunks_exact(8).enumerate() {
            out[i] = f64::from_le_bytes(c.try_into().unwrap());
        }
    };

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..p.iters {
        match p.topology {
            Topology::BlackHole => {
                if rank == 0 {
                    for partner in 1..size {
                        let mut buf = vec![0u8; n * 8];
                        comm.recv(&mut buf, Source::Rank(partner), Tag::Value(5)).unwrap();
                        from_bytes(&buf, &mut inp);
                        for i in 0..n {
                            acc[i] = combine_scalar(acc[i], inp[i]);
                        }
                    }
                } else {
                    comm.send(&to_bytes(&acc), 0, 5).unwrap();
                }
            }
            Topology::WhiteHole => {
                if rank == 0 {
                    for partner in 1..size {
                        comm.send(&to_bytes(&acc), partner, 5).unwrap();
                    }
                } else {
                    let mut buf = vec![0u8; n * 8];
                    comm.recv(&mut buf, Source::Rank(0), Tag::Value(5)).unwrap();
                    from_bytes(&buf, &mut inp);
                    for i in 0..n {
                        acc[i] = combine_scalar(acc[i], inp[i]);
                    }
                }
            }
            Topology::Shuffle => {
                let mut round = 1;
                while round < size {
                    let partner = rank ^ round;
                    if partner < size {
                        let mut buf = vec![0u8; n * 8];
                        comm.sendrecv(
                            &to_bytes(&acc),
                            partner,
                            5,
                            &mut buf,
                            Source::Rank(partner),
                            Tag::Value(5),
                        )
                        .unwrap();
                        from_bytes(&buf, &mut inp);
                        for i in 0..n {
                            acc[i] = combine_scalar(acc[i], inp[i]);
                        }
                    }
                    round <<= 1;
                }
            }
        }
    }
    let elapsed = comm.wtime() - t0;
    (elapsed, acc.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::run_world;
    use mpiwasm::{JobConfig, Runner};

    fn tiny(topology: Topology, simd: bool) -> DtParams {
        DtParams { elems: 64, topology, iters: 2, simd }
    }

    #[test]
    fn all_guest_variants_validate() {
        for topology in Topology::ALL {
            for simd in [false, true] {
                let wasm = build_guest(tiny(topology, simd));
                let module = wasm_engine::decode_module(&wasm).unwrap();
                wasm_engine::validate_module(&module).unwrap();
            }
        }
    }

    #[test]
    fn guest_scalar_matches_native_checksum() {
        for topology in Topology::ALL {
            let p = tiny(topology, false);
            let native = run_world(4, move |comm| run_native(&comm, p));
            let wasm = build_guest(p);
            let result = Runner::new()
                .run(&wasm, JobConfig { np: 4, ..Default::default() })
                .unwrap();
            assert!(result.success(), "{topology:?}: {:?}", result.ranks[0].error);
            for (rr, nat) in result.ranks.iter().zip(&native) {
                let checksum =
                    rr.reports.iter().find(|(k, _)| *k == 1).map(|(_, v)| *v).unwrap();
                assert!(
                    (checksum - nat.1).abs() < 1e-9 * nat.1.abs().max(1.0),
                    "{topology:?} rank {}: {checksum} vs {}",
                    rr.rank,
                    nat.1
                );
            }
        }
    }

    /// The tentpole cap: DT end to end in *both* clock modes, the
    /// receivers sizing every message via Probe + Get_count, with
    /// checksums byte-identical to the native oracle (same IEEE
    /// operation sequence, so exact equality — no tolerance).
    #[test]
    fn guest_matches_native_exactly_in_both_clock_modes() {
        use mpi_substrate::ClockMode;
        use netsim::{CostModel, SystemProfile};

        for topology in Topology::ALL {
            let p = tiny(topology, false);
            let native = run_world(4, move |comm| run_native(&comm, p));
            let wasm = build_guest(p);
            for clock in [
                ClockMode::Real,
                ClockMode::Virtual(CostModel::native(SystemProfile::container())),
            ] {
                let result = Runner::new()
                    .run(&wasm, JobConfig { np: 4, clock: clock.clone(), ..Default::default() })
                    .unwrap();
                assert!(result.success(), "{topology:?} {clock:?}: {:?}", result.ranks[0].error);
                for (rr, nat) in result.ranks.iter().zip(&native) {
                    let checksum =
                        rr.reports.iter().find(|(k, _)| *k == 1).map(|(_, v)| *v).unwrap();
                    assert_eq!(
                        checksum.to_bits(),
                        nat.1.to_bits(),
                        "{topology:?} {clock:?} rank {}: {checksum} vs {}",
                        rr.rank,
                        nat.1
                    );
                }
            }
        }
    }

    #[test]
    fn simd_and_scalar_guests_agree() {
        for topology in Topology::ALL {
            let scalar = build_guest(tiny(topology, false));
            let simd = build_guest(tiny(topology, true));
            let run = |wasm: &[u8]| {
                Runner::new()
                    .run(wasm, JobConfig { np: 4, ..Default::default() })
                    .unwrap()
            };
            let a = run(&scalar);
            let b = run(&simd);
            assert!(a.success() && b.success(), "{topology:?}");
            for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
                let ca = ra.reports.iter().find(|(k, _)| *k == 1).unwrap().1;
                let cb = rb.reports.iter().find(|(k, _)| *k == 1).unwrap().1;
                assert!(
                    (ca - cb).abs() < 1e-9 * ca.abs().max(1.0),
                    "{topology:?} rank {}: scalar {ca} vs simd {cb}",
                    ra.rank
                );
            }
        }
    }

    #[test]
    fn bytes_per_iter_model() {
        let p = DtParams { elems: 100, topology: Topology::BlackHole, iters: 1, simd: false };
        assert_eq!(p.bytes_per_iter(5), 100 * 8 * 4);
        let sh = DtParams { topology: Topology::Shuffle, ..p };
        assert_eq!(sh.bytes_per_iter(8), 100 * 8 * 8 * 3);
    }
}

//! The Intel MPI Benchmarks (§4.2): point-to-point and collective
//! communication measurements over a range of message sizes.
//!
//! Each routine exists as a Wasm guest builder ([`build_guest`]) and a
//! native implementation ([`run_native`]). Both execute the identical
//! measurement loop: per message size, a barrier, `iters` repetitions of
//! the routine, and a `MPI_Wtime`-based per-iteration time in µs. Under a
//! virtual-clock world, `MPI_Wtime` reads simulated time, so the same code
//! produces the large-scale figures.

use mpi_substrate::{Comm, Datatype, ReduceOp, Source, Tag};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

use crate::guest::{layout, MpiImports, MPI_BYTE};

/// The nine IMB routines of Figures 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImbRoutine {
    PingPong,
    SendRecv,
    Bcast,
    Allreduce,
    Allgather,
    Alltoall,
    Reduce,
    Gather,
    Scatter,
}

impl ImbRoutine {
    pub const ALL: [ImbRoutine; 9] = [
        ImbRoutine::PingPong,
        ImbRoutine::SendRecv,
        ImbRoutine::Bcast,
        ImbRoutine::Allreduce,
        ImbRoutine::Allgather,
        ImbRoutine::Alltoall,
        ImbRoutine::Reduce,
        ImbRoutine::Gather,
        ImbRoutine::Scatter,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ImbRoutine::PingPong => "PingPong",
            ImbRoutine::SendRecv => "Sendrecv",
            ImbRoutine::Bcast => "Bcast",
            ImbRoutine::Allreduce => "Allreduce",
            ImbRoutine::Allgather => "Allgather",
            ImbRoutine::Alltoall => "Alltoall",
            ImbRoutine::Reduce => "Reduce",
            ImbRoutine::Gather => "Gather",
            ImbRoutine::Scatter => "Scatter",
        }
    }

    /// Whether the routine's aggregate buffer footprint scales with the
    /// communicator size (guides the harness's size sweeps).
    pub fn scales_with_ranks(&self) -> bool {
        matches!(
            self,
            ImbRoutine::Allgather | ImbRoutine::Alltoall | ImbRoutine::Gather | ImbRoutine::Scatter
        )
    }
}

/// Build the Wasm guest for `routine` measuring each `(bytes, iters)`
/// pair of `sweep`. The guest reports `(log2(bytes), time_us)` per size
/// through the harness hook.
pub fn build_guest(routine: ImbRoutine, sweep: &[(u32, u32)]) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.name(&format!("imb-{}", routine.name().to_lowercase()));
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);
    let sweep = sweep.to_vec();

    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let t0 = Var::new(f, ValType::F64);

        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));

        for &(bytes, iters) in &sweep {
            let log = bytes.max(1).ilog2() as i32;
            let body = routine_body(&mpi, routine, bytes, rank, size);
            stmts.push(mpi.barrier_world());
            stmts.push(t0.set(mpi.wtime()));
            stmts.push(for_range(i, int(0), int(iters as i32), &body));
            // Per-iteration time in µs; PingPong halves (one-way time).
            let divisor = if routine == ImbRoutine::PingPong { 2.0 } else { 1.0 };
            stmts.push(mpi.report(
                int(log),
                (mpi.wtime() - t0.get()) * double(1e6 / (iters as f64 * divisor)),
            ));
        }
        stmts.push(mpi.finalize());
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

/// One iteration of `routine` at `bytes`, as DSL statements.
fn routine_body(
    mpi: &MpiImports,
    routine: ImbRoutine,
    bytes: u32,
    rank: Var,
    size: Var,
) -> Vec<Stmt> {
    let sbuf = int(layout::SEND_BUF);
    let rbuf = int(layout::RECV_BUF);
    let n = int(bytes as i32);
    match routine {
        ImbRoutine::PingPong => vec![if_else(
            rank.get().eq(int(0)),
            &[
                mpi.send(sbuf.clone(), n.clone(), MPI_BYTE, int(1), int(0)),
                mpi.recv(rbuf.clone(), n.clone(), MPI_BYTE, int(1), int(0)),
            ],
            &[if_then(rank.get().eq(int(1)), &[
                mpi.recv(rbuf, n.clone(), MPI_BYTE, int(0), int(0)),
                mpi.send(sbuf, n, MPI_BYTE, int(0), int(0)),
            ])],
        )],
        ImbRoutine::SendRecv => {
            // Periodic chain: send right, receive from left.
            vec![mpi.sendrecv(
                sbuf,
                n.clone(),
                MPI_BYTE,
                (rank.get() + int(1)) % size.get(),
                rbuf,
                n,
                (rank.get() + size.get() - int(1)) % size.get(),
                0,
            )]
        }
        ImbRoutine::Bcast => vec![mpi.bcast(sbuf, n, MPI_BYTE, int(0))],
        ImbRoutine::Allreduce => {
            // Counts are in doubles, as IMB does for reductions.
            let count = int((bytes / 8).max(1) as i32);
            vec![mpi.allreduce(sbuf, rbuf, count, crate::guest::MPI_DOUBLE, crate::guest::MPI_SUM)]
        }
        ImbRoutine::Reduce => {
            let count = int((bytes / 8).max(1) as i32);
            vec![mpi.reduce(
                sbuf,
                rbuf,
                count,
                crate::guest::MPI_DOUBLE,
                crate::guest::MPI_SUM,
                int(0),
            )]
        }
        ImbRoutine::Allgather => vec![mpi.allgather(sbuf, n, MPI_BYTE, rbuf)],
        ImbRoutine::Alltoall => vec![mpi.alltoall(sbuf, n, MPI_BYTE, rbuf)],
        ImbRoutine::Gather => vec![mpi.gather(sbuf, n, MPI_BYTE, rbuf, int(0))],
        ImbRoutine::Scatter => vec![mpi.scatter(sbuf, n, MPI_BYTE, rbuf, int(0))],
    }
}

/// Native execution of one routine sweep on an existing communicator.
/// Returns `(log2(bytes), time_us_per_iteration)` per sweep entry
/// (measured on this rank; callers typically read rank 0).
pub fn run_native(comm: &Comm, routine: ImbRoutine, sweep: &[(u32, u32)]) -> Vec<(i32, f64)> {
    let mut out = Vec::with_capacity(sweep.len());
    let p = comm.size();
    let me = comm.rank();
    // Buffers sized for the largest aggregate operation in the sweep.
    let max_bytes = sweep.iter().map(|&(b, _)| b as usize).max().unwrap_or(1);
    let sbuf = vec![1u8; max_bytes.max(8) * if routine == ImbRoutine::Alltoall || routine == ImbRoutine::Scatter { p as usize } else { 1 }];
    let mut rbuf = vec![0u8; max_bytes.max(8) * p as usize];

    for &(bytes, iters) in sweep {
        let n = bytes as usize;
        comm.barrier().unwrap();
        let t0 = comm.wtime();
        for _ in 0..iters {
            match routine {
                ImbRoutine::PingPong => {
                    if me == 0 {
                        comm.send(&sbuf[..n], 1, 0).unwrap();
                        comm.recv(&mut rbuf[..n], Source::Rank(1), Tag::Value(0)).unwrap();
                    } else if me == 1 {
                        comm.recv(&mut rbuf[..n], Source::Rank(0), Tag::Value(0)).unwrap();
                        comm.send(&sbuf[..n], 0, 0).unwrap();
                    }
                }
                ImbRoutine::SendRecv => {
                    let right = (me + 1) % p;
                    let left = (me + p - 1) % p;
                    comm.sendrecv(
                        &sbuf[..n],
                        right,
                        0,
                        &mut rbuf[..n],
                        Source::Rank(left),
                        Tag::Value(0),
                    )
                    .unwrap();
                }
                ImbRoutine::Bcast => {
                    let mut buf = &mut rbuf[..n];
                    if me == 0 {
                        buf[..n.min(sbuf.len())].copy_from_slice(&sbuf[..n.min(sbuf.len())]);
                    }
                    comm.bcast(&mut buf, 0).unwrap();
                }
                ImbRoutine::Allreduce => {
                    let count = (n / 8).max(1) * 8;
                    comm.allreduce(&sbuf[..count], &mut rbuf[..count], Datatype::Double, ReduceOp::Sum)
                        .unwrap();
                }
                ImbRoutine::Reduce => {
                    let count = (n / 8).max(1) * 8;
                    let root_buf = if me == 0 { Some(&mut rbuf[..count]) } else { None };
                    comm.reduce(&sbuf[..count], root_buf, Datatype::Double, ReduceOp::Sum, 0)
                        .unwrap();
                }
                ImbRoutine::Allgather => {
                    comm.allgather(&sbuf[..n], &mut rbuf[..n * p as usize]).unwrap();
                }
                ImbRoutine::Alltoall => {
                    comm.alltoall(&sbuf[..n * p as usize], &mut rbuf[..n * p as usize]).unwrap();
                }
                ImbRoutine::Gather => {
                    let root_buf = if me == 0 { Some(&mut rbuf[..n * p as usize]) } else { None };
                    comm.gather(&sbuf[..n], root_buf, 0).unwrap();
                }
                ImbRoutine::Scatter => {
                    let root_buf = if me == 0 { Some(&sbuf[..n * p as usize]) } else { None };
                    comm.scatter(root_buf, &mut rbuf[..n], 0).unwrap();
                }
            }
        }
        let elapsed_us = (comm.wtime() - t0) * 1e6;
        let divisor = if routine == ImbRoutine::PingPong { 2.0 } else { 1.0 };
        out.push((bytes.max(1).ilog2() as i32, elapsed_us / (iters as f64 * divisor)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::{run_world, run_world_with, ClockMode};
    use mpiwasm::{JobConfig, Runner};
    use netsim::{CostModel, SystemProfile};

    #[test]
    fn guest_modules_validate_for_every_routine() {
        for routine in ImbRoutine::ALL {
            let wasm = build_guest(routine, &[(64, 2)]);
            let module = wasm_engine::decode_module(&wasm).unwrap();
            wasm_engine::validate_module(&module).unwrap();
        }
    }

    #[test]
    fn pingpong_guest_runs_and_reports() {
        let wasm = build_guest(ImbRoutine::PingPong, &[(16, 4), (256, 4)]);
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks[0].error);
        let reports = &result.ranks[0].reports;
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].0, 4); // log2(16)
        assert_eq!(reports[1].0, 8); // log2(256)
        assert!(reports.iter().all(|&(_, t)| t >= 0.0));
    }

    #[test]
    fn collective_guests_run_at_np4() {
        for routine in [
            ImbRoutine::Bcast,
            ImbRoutine::Allreduce,
            ImbRoutine::Allgather,
            ImbRoutine::Alltoall,
            ImbRoutine::Reduce,
            ImbRoutine::Gather,
            ImbRoutine::Scatter,
            ImbRoutine::SendRecv,
        ] {
            let wasm = build_guest(routine, &[(128, 2)]);
            let result = Runner::new()
                .run(&wasm, JobConfig { np: 4, ..Default::default() })
                .unwrap();
            assert!(
                result.success(),
                "{routine:?}: {:?}",
                result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
            );
            assert_eq!(result.ranks[0].reports.len(), 1, "{routine:?}");
        }
    }

    #[test]
    fn native_matches_structure() {
        let out = run_world(2, |comm| {
            run_native(&comm, ImbRoutine::PingPong, &[(8, 4), (1024, 4)])
        });
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[0][0].0, 3);
        assert_eq!(out[0][1].0, 10);
    }

    #[test]
    fn virtual_clock_guest_times_follow_message_size() {
        // Under a virtual clock the reported times must reflect the wire
        // model: 4 KiB takes longer than 8 bytes.
        let wasm = build_guest(ImbRoutine::PingPong, &[(8, 4), (4096, 4)]);
        let mode = ClockMode::Virtual(CostModel::native(SystemProfile::container()));
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, clock: mode, ..Default::default() })
            .unwrap();
        assert!(result.success());
        let reports = &result.ranks[0].reports;
        assert!(reports[1].1 > reports[0].1, "{reports:?}");
    }

    #[test]
    fn native_virtual_and_guest_virtual_agree_roughly() {
        // The same sweep, native vs guest, both under the container
        // profile's virtual clock: the guest may only be slower by the
        // per-call software overhead, not by orders of magnitude.
        let sweep = [(1024u32, 8u32)];
        let mode = ClockMode::Virtual(CostModel::native(SystemProfile::container()));
        let native = run_world_with(2, mode.clone(), move |comm| {
            run_native(&comm, ImbRoutine::PingPong, &sweep)
        });
        let wasm = build_guest(ImbRoutine::PingPong, &sweep);
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, clock: mode, ..Default::default() })
            .unwrap();
        let native_t = native[0][0].1;
        let guest_t = result.ranks[0].reports[0].1;
        assert!(
            (guest_t / native_t) < 1.5 && (native_t / guest_t) < 1.5,
            "native {native_t}us vs guest {guest_t}us"
        );
    }
}

//! IOR (§4.2, Figure 5b): file-system I/O bandwidth through the POSIX API
//! (the WASI path — `path_open`/`fd_write`/`fd_read`/`fd_seek`/`fd_close`).
//!
//! Each rank writes `blocks` blocks of `block_bytes` to its own file under
//! the preopened directory, seeks back, and reads the file back,
//! timing the two phases separately. Bandwidth = bytes / time, aggregated
//! over ranks by the harness. Runs against the embedder's virtual
//! filesystem, which is exactly the isolation layer the paper's IOR
//! experiment stresses (§3.4).

use mpi_substrate::Comm;
use wasi_layer::host::{oflags, rights};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

use crate::guest::{layout, MpiImports};

/// IOR parameters.
#[derive(Debug, Clone, Copy)]
pub struct IorParams {
    pub block_bytes: u32,
    pub blocks: u32,
}

impl Default for IorParams {
    fn default() -> Self {
        IorParams { block_bytes: 1 << 20, blocks: 8 }
    }
}

impl IorParams {
    pub fn total_bytes(&self) -> u64 {
        self.block_bytes as u64 * self.blocks as u64
    }
}

/// Build the IOR guest. Reports `(0, write_seconds)`, `(1, read_seconds)`,
/// `(2, verify_errors)`.
pub fn build_guest(p: IorParams) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.name("ior");
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);
    use ValType::{I32, I64};
    let path_open = b.import_func(
        "wasi_snapshot_preview1",
        "path_open",
        vec![I32, I32, I32, I32, I32, I64, I64, I32, I32],
        vec![I32],
    );
    let fd_write =
        b.import_func("wasi_snapshot_preview1", "fd_write", vec![I32; 4], vec![I32]);
    let fd_read = b.import_func("wasi_snapshot_preview1", "fd_read", vec![I32; 4], vec![I32]);
    let fd_seek = b.import_func(
        "wasi_snapshot_preview1",
        "fd_seek",
        vec![I32, I64, I32, I32],
        vec![I32],
    );
    let fd_close = b.import_func("wasi_snapshot_preview1", "fd_close", vec![I32], vec![I32]);

    let block = p.block_bytes as i32;
    let blocks = p.blocks as i32;
    const NAME: i32 = 128; // "ior.<d><d>" file name buffer
    const FD_OUT: i32 = 160;
    const IOV: i32 = layout::IOV;
    let buf = layout::SEND_BUF;

    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let fd = Var::new(f, ValType::I32);
        let t0 = Var::new(f, ValType::F64);
        let errors = Var::new(f, ValType::I32);

        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend([
            // File name "ior.XY" with two decimal digits of the rank.
            store_u8(int(NAME), 0, int('i' as i32)),
            store_u8(int(NAME), 1, int('o' as i32)),
            store_u8(int(NAME), 2, int('r' as i32)),
            store_u8(int(NAME), 3, int('.' as i32)),
            store_u8(int(NAME), 4, int('0' as i32) + rank.get() / int(10)),
            store_u8(int(NAME), 5, int('0' as i32) + rank.get() % int(10)),
            // Fill the write buffer with a rank-dependent pattern.
            for_range(i, int(0), int(block), &[store_u8(
                int(buf) + i.get(),
                0,
                (i.get() + rank.get()).rem_u(int(251)),
            )]),
            // iovec: one segment of `block` bytes.
            store(int(IOV), 0, int(buf)),
            store(int(IOV), 4, int(block)),
            // open(dirfd=3 /data, "ior.XY", CREAT|TRUNC, rw)
            call_drop(path_open, vec![
                int(3),
                int(0),
                int(NAME),
                int(6),
                int((oflags::CREAT | oflags::TRUNC) as i32),
                long((rights::FD_READ | rights::FD_WRITE) as i64),
                long(0),
                int(0),
                int(FD_OUT),
            ]),
            fd.set(int(FD_OUT).load(ValType::I32, 0)),
            // Untimed warm pass: allocates the file so the timed phase
            // measures steady-state writes, as IOR's repeated iterations do.
            for_range(i, int(0), int(blocks), &[call_drop(
                fd_write,
                vec![fd.get(), int(IOV), int(1), int(layout::SCRATCH)],
            )]),
            call_drop(fd_seek, vec![fd.get(), long(0), int(0), int(layout::SCRATCH)]),
            mpi.barrier_world(),
            // --- write phase ---
            t0.set(mpi.wtime()),
            for_range(i, int(0), int(blocks), &[call_drop(
                fd_write,
                vec![fd.get(), int(IOV), int(1), int(layout::SCRATCH)],
            )]),
            mpi.barrier_world(),
            mpi.report(int(0), mpi.wtime() - t0.get()),
            // --- read phase (into a different buffer for verification) ---
            call_drop(fd_seek, vec![fd.get(), long(0), int(0), int(layout::SCRATCH)]),
            store(int(IOV), 0, int(layout::RECV_BUF)),
            store(int(IOV), 4, int(block)),
            // Pre-touch the read buffer so first-touch page faults don't
            // pollute the timed phase (the write buffer was touched by the
            // pattern fill above).
            Stmt::MemFill { dst: int(layout::RECV_BUF), byte: int(0), len: int(block) },
            mpi.barrier_world(),
            t0.set(mpi.wtime()),
            for_range(i, int(0), int(blocks), &[call_drop(
                fd_read,
                vec![fd.get(), int(IOV), int(1), int(layout::SCRATCH)],
            )]),
            mpi.barrier_world(),
            mpi.report(int(1), mpi.wtime() - t0.get()),
            // --- verify the last block read back ---
            errors.set(int(0)),
            for_range(i, int(0), int(block), &[if_then(
                (int(layout::RECV_BUF) + i.get())
                    .load_u8(0)
                    .ne((i.get() + rank.get()).rem_u(int(251))),
                &[errors.set(errors.get() + int(1))],
            )]),
            mpi.report(int(2), errors.get().to(ValType::F64)),
            call_drop(fd_close, vec![fd.get()]),
            mpi.finalize(),
        ]);
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

/// Native IOR against an in-memory "filesystem" (a plain Vec per rank).
/// Returns `(write_seconds, read_seconds, verify_errors)`.
pub fn run_native(comm: &Comm, p: IorParams) -> (f64, f64, u64) {
    let rank = comm.rank();
    let n = p.block_bytes as usize;
    let pattern: Vec<u8> = (0..n).map(|i| ((i as u32 + rank) % 251) as u8).collect();
    // Warm pass allocates the file; the timed phase overwrites in place
    // (matching the guest's warm-write + rewrite sequence).
    let mut file: Vec<u8> = Vec::new();
    for _ in 0..p.blocks {
        file.extend_from_slice(&pattern);
    }

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for b in 0..p.blocks as usize {
        file[b * n..(b + 1) * n].copy_from_slice(&pattern);
    }
    comm.barrier().unwrap();
    let write_t = comm.wtime() - t0;

    let mut readback = vec![0u8; n];
    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for b in 0..p.blocks as usize {
        readback.copy_from_slice(&file[b * n..(b + 1) * n]);
    }
    comm.barrier().unwrap();
    let read_t = comm.wtime() - t0;

    let errors = readback.iter().zip(&pattern).filter(|(a, b)| a != b).count() as u64;
    (write_t, read_t, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::run_world;
    use mpiwasm::{JobConfig, Runner};

    fn tiny() -> IorParams {
        IorParams { block_bytes: 4096, blocks: 4 }
    }

    #[test]
    fn guest_validates() {
        let wasm = build_guest(tiny());
        let module = wasm_engine::decode_module(&wasm).unwrap();
        wasm_engine::validate_module(&module).unwrap();
    }

    #[test]
    fn guest_writes_reads_and_verifies() {
        let wasm = build_guest(tiny());
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks[0].error);
        for r in &result.ranks {
            let get = |key: i32| r.reports.iter().find(|(k, _)| *k == key).unwrap().1;
            assert_eq!(get(2), 0.0, "rank {} read back corrupt data", r.rank);
            // Warm pass + timed pass both write the full file.
            assert_eq!(r.bytes_written, 2 * tiny().total_bytes());
            assert_eq!(r.bytes_read, tiny().total_bytes());
        }
    }

    #[test]
    fn ranks_write_distinct_files() {
        let wasm = build_guest(tiny());
        let fs = wasi_layer::SharedFs::memory();
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 3, fs: fs.clone(), ..Default::default() })
            .unwrap();
        assert!(result.success());
        // All three per-rank files exist in the shared fs.
        for rank in 0..3 {
            let name = format!("ior.{:02}", rank);
            assert!(
                fs.open(0, &name, false, false, false).is_ok(),
                "missing {name}"
            );
        }
        assert_eq!(fs.memory_usage() as u64, 3 * tiny().total_bytes());
    }

    #[test]
    fn native_roundtrip_is_clean() {
        let p = tiny();
        let out = run_world(2, move |comm| run_native(&comm, p));
        for (_, _, errors) in out {
            assert_eq!(errors, 0);
        }
    }
}

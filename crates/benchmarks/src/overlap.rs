//! IMB-NBC-style communication/computation overlap kernels.
//!
//! The paper's motivation for running real MPI codes in Wasm is that they
//! overlap communication with computation; this module measures how much
//! of an `Iallreduce` (and, IMB-NBC `Ialltoall`-style, of a pairwise
//! exchange) the substrate actually hides behind compute. Each kernel
//! runs the same loop twice:
//!
//! * **blocking** — the blocking collective then compute (serialized);
//! * **nonblocking** — initiate, compute, `Wait` (overlappable).
//!
//! Like the IMB modules, each kernel exists as a Wasm guest builder
//! ([`build_guest`], [`build_alltoall_guest`] — reporting
//! `(0, blocking_us)` and `(1, nonblocking_us)` per iteration) and a
//! native implementation ([`run_native`], [`run_native_alltoall`]).
//! Under a virtual clock the compute phase charges simulated time, so
//! the overlap is visible in the LogP model too: the wire delay and the
//! compute charge combine through `max()` on the receive path.

use mpi_substrate::{Comm, Datatype, ReduceOp, Request};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

use crate::guest::{layout, MpiImports};

/// One overlap measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct OverlapParams {
    /// Allreduce payload in bytes (rounded down to whole doubles).
    pub bytes: u32,
    /// Iterations per timing loop.
    pub iters: u32,
    /// Compute-kernel inner iterations between initiation and completion.
    pub compute_units: u32,
    /// Simulated cost of the compute kernel (µs), charged per iteration
    /// in virtual-clock worlds.
    pub virtual_compute_us: f64,
}

impl Default for OverlapParams {
    fn default() -> Self {
        OverlapParams { bytes: 4096, iters: 8, compute_units: 2000, virtual_compute_us: 5.0 }
    }
}

/// Result of one native overlap run.
#[derive(Debug, Clone, Copy)]
pub struct OverlapResult {
    /// Per-iteration time of the serialized Allreduce + compute loop, µs.
    pub blocking_us: f64,
    /// Per-iteration time of the Iallreduce / compute / Wait loop, µs.
    pub nonblocking_us: f64,
}

impl OverlapResult {
    /// `blocking / nonblocking`: > 1 means the nonblocking formulation
    /// hid communication behind compute.
    pub fn speedup(&self) -> f64 {
        self.blocking_us / self.nonblocking_us.max(1e-9)
    }
}

/// Build the Wasm overlap guest. Reports `(0, blocking_us_per_iter)` and
/// `(1, nonblocking_us_per_iter)`.
pub fn build_guest(params: OverlapParams) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.name("imb-nbc-overlap");
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);
    let count = (params.bytes / 8).max(1) as i32;
    let iters = params.iters.max(1) as i32;
    let units = params.compute_units as i32;
    let req_addr = layout::SCRATCH + 16;

    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let j = Var::new(f, ValType::I32);
        let t0 = Var::new(f, ValType::F64);
        let acc = Var::new(f, ValType::F64);

        let sbuf = int(layout::SEND_BUF);
        let rbuf = int(layout::RECV_BUF);

        // The compute kernel: a dependent multiply-add chain the engine
        // cannot elide, reading the receive buffer's first double.
        let compute = for_range(j, int(0), int(units), &[acc.set(
            acc.get() * double(0.999_999) + rbuf.clone().load(ValType::F64, 0),
        )]);

        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));
        stmts.push(store(sbuf.clone(), 0, rank.get().to(ValType::F64) + double(1.0)));

        // Serialized: Allreduce, then compute.
        stmts.push(mpi.barrier_world());
        stmts.push(t0.set(mpi.wtime()));
        stmts.push(for_range(i, int(0), int(iters), &[
            mpi.allreduce(
                sbuf.clone(),
                rbuf.clone(),
                int(count),
                crate::guest::MPI_DOUBLE,
                crate::guest::MPI_SUM,
            ),
            compute.clone(),
        ]));
        stmts.push(mpi.report(int(0), (mpi.wtime() - t0.get()) * double(1e6 / iters as f64)));

        // Overlapped: Iallreduce, compute, Wait.
        stmts.push(mpi.barrier_world());
        stmts.push(t0.set(mpi.wtime()));
        stmts.push(for_range(i, int(0), int(iters), &[
            mpi.iallreduce_nb(
                sbuf.clone(),
                rbuf.clone(),
                int(count),
                crate::guest::MPI_DOUBLE,
                crate::guest::MPI_SUM,
                int(req_addr),
            ),
            compute.clone(),
            mpi.wait_nb(int(req_addr)),
        ]));
        stmts.push(mpi.report(int(1), (mpi.wtime() - t0.get()) * double(1e6 / iters as f64)));

        // Keep the compute result observable so the kernel is never dead.
        stmts.push(mpi.report(int(2), acc.get()));
        stmts.push(mpi.finalize());
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

/// Build the IMB-NBC-style `Ialltoall` overlap guest: every rank
/// exchanges `bytes`-sized blocks with every peer, blocking vs
/// initiate/compute/wait. Reports `(0, blocking_us_per_iter)` and
/// `(1, nonblocking_us_per_iter)`.
pub fn build_alltoall_guest(params: OverlapParams) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.name("imb-nbc-ialltoall");
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);
    let count = params.bytes.max(1) as i32; // MPI_BYTE block per peer
    let iters = params.iters.max(1) as i32;
    let units = params.compute_units as i32;
    let req_addr = layout::SCRATCH + 16;

    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let j = Var::new(f, ValType::I32);
        let t0 = Var::new(f, ValType::F64);
        let acc = Var::new(f, ValType::F64);

        let sbuf = int(layout::SEND_BUF);
        let rbuf = int(layout::RECV_BUF);

        // Dependent multiply-add chain reading the receive buffer.
        let compute = for_range(j, int(0), int(units), &[acc.set(
            acc.get() * double(0.999_999) + rbuf.clone().load(ValType::F64, 0),
        )]);

        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));
        stmts.push(store(sbuf.clone(), 0, rank.get().to(ValType::F64) + double(1.0)));

        // Serialized: Alltoall, then compute.
        stmts.push(mpi.barrier_world());
        stmts.push(t0.set(mpi.wtime()));
        stmts.push(for_range(i, int(0), int(iters), &[
            mpi.alltoall(sbuf.clone(), int(count), crate::guest::MPI_BYTE, rbuf.clone()),
            compute.clone(),
        ]));
        stmts.push(mpi.report(int(0), (mpi.wtime() - t0.get()) * double(1e6 / iters as f64)));

        // Overlapped: Ialltoall, compute, Wait.
        stmts.push(mpi.barrier_world());
        stmts.push(t0.set(mpi.wtime()));
        stmts.push(for_range(i, int(0), int(iters), &[
            mpi.ialltoall_nb(
                sbuf.clone(),
                int(count),
                crate::guest::MPI_BYTE,
                rbuf.clone(),
                int(req_addr),
            ),
            compute.clone(),
            mpi.wait_nb(int(req_addr)),
        ]));
        stmts.push(mpi.report(int(1), (mpi.wtime() - t0.get()) * double(1e6 / iters as f64)));

        stmts.push(mpi.report(int(2), acc.get()));
        stmts.push(mpi.finalize());
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

/// Busy compute kernel for the native path; charges `virtual_compute_us`
/// to the rank's clock in virtual worlds so the simulated timeline sees
/// the same overlap structure.
fn compute(comm: &Comm, units: u32, virtual_us: f64, seed: &mut f64) {
    let mut acc = *seed;
    for _ in 0..units {
        acc = acc * 0.999_999 + 1.25;
    }
    *seed = std::hint::black_box(acc);
    comm.charge_overhead_us(virtual_us);
}

/// Native execution of the overlap kernel on an existing communicator.
pub fn run_native(comm: &Comm, params: OverlapParams) -> OverlapResult {
    let count = ((params.bytes as usize / 8).max(1)) * 8;
    let sbuf = vec![1u8; count];
    let mut rbuf = vec![0u8; count];
    let iters = params.iters.max(1);
    let mut seed = comm.rank() as f64;

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..iters {
        comm.allreduce(&sbuf, &mut rbuf, Datatype::Double, ReduceOp::Sum).unwrap();
        compute(comm, params.compute_units, params.virtual_compute_us, &mut seed);
    }
    let blocking_us = (comm.wtime() - t0) * 1e6 / iters as f64;

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..iters {
        let mut req = comm
            .iallreduce(&sbuf, &mut rbuf, Datatype::Double, ReduceOp::Sum)
            .unwrap();
        compute(comm, params.compute_units, params.virtual_compute_us, &mut seed);
        req.wait().unwrap();
    }
    let nonblocking_us = (comm.wtime() - t0) * 1e6 / iters as f64;

    OverlapResult { blocking_us, nonblocking_us }
}

/// Native execution of the IMB-NBC-style `Ialltoall` overlap kernel:
/// blocking `alltoall` + compute vs `ialltoall` / compute / `wait`.
/// `params.bytes` is the per-peer block size.
pub fn run_native_alltoall(comm: &Comm, params: OverlapParams) -> OverlapResult {
    let p = comm.size() as usize;
    let n = params.bytes.max(1) as usize;
    let sbuf = vec![0x3cu8; n * p];
    let mut rbuf = vec![0u8; n * p];
    let iters = params.iters.max(1);
    let mut seed = comm.rank() as f64;

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..iters {
        comm.alltoall(&sbuf, &mut rbuf).unwrap();
        compute(comm, params.compute_units, params.virtual_compute_us, &mut seed);
    }
    let blocking_us = (comm.wtime() - t0) * 1e6 / iters as f64;

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..iters {
        let mut req = comm.ialltoall(&sbuf, &mut rbuf).unwrap();
        compute(comm, params.compute_units, params.virtual_compute_us, &mut seed);
        req.wait().unwrap();
    }
    let nonblocking_us = (comm.wtime() - t0) * 1e6 / iters as f64;

    OverlapResult { blocking_us, nonblocking_us }
}

/// Native pingpong overlap: Isend/Irecv + compute + Waitall vs blocking
/// send/recv + compute. Exercises the point-to-point engine's overlap
/// (including rendezvous payloads) rather than the collective path.
pub fn run_native_p2p(comm: &Comm, params: OverlapParams) -> OverlapResult {
    assert!(comm.size() >= 2, "p2p overlap needs 2 ranks");
    let n = params.bytes as usize;
    let sbuf = vec![7u8; n];
    let mut rbuf = vec![0u8; n];
    let iters = params.iters.max(1);
    let me = comm.rank();
    let mut seed = me as f64;
    if me > 1 {
        // Spectators still hit the barriers.
        comm.barrier().unwrap();
        comm.barrier().unwrap();
        return OverlapResult { blocking_us: 0.0, nonblocking_us: 0.0 };
    }
    let other = 1 - me;

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..iters {
        let st = comm.sendrecv(
            &sbuf,
            other,
            0,
            &mut rbuf,
            mpi_substrate::Source::Rank(other),
            mpi_substrate::Tag::Value(0),
        );
        st.unwrap();
        compute(comm, params.compute_units, params.virtual_compute_us, &mut seed);
    }
    let blocking_us = (comm.wtime() - t0) * 1e6 / iters as f64;

    comm.barrier().unwrap();
    let t0 = comm.wtime();
    for _ in 0..iters {
        let mut reqs = vec![
            comm.isend(&sbuf, other, 1).unwrap(),
            comm.irecv(&mut rbuf, mpi_substrate::Source::Rank(other), mpi_substrate::Tag::Value(1))
                .unwrap(),
        ];
        compute(comm, params.compute_units, params.virtual_compute_us, &mut seed);
        Request::wait_all(&mut reqs).unwrap();
    }
    let nonblocking_us = (comm.wtime() - t0) * 1e6 / iters as f64;

    OverlapResult { blocking_us, nonblocking_us }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::{run_world, run_world_with, ClockMode};
    use mpiwasm::{JobConfig, Runner};
    use netsim::{CostModel, SystemProfile};

    fn virtual_mode() -> ClockMode {
        ClockMode::Virtual(CostModel::native(SystemProfile::container()))
    }

    #[test]
    fn overlap_guest_validates() {
        let wasm = build_guest(OverlapParams::default());
        let module = wasm_engine::decode_module(&wasm).unwrap();
        wasm_engine::validate_module(&module).unwrap();
    }

    #[test]
    fn overlap_guest_runs_real_and_virtual() {
        let wasm = build_guest(OverlapParams {
            bytes: 2048,
            iters: 3,
            compute_units: 500,
            virtual_compute_us: 3.0,
        });
        for clock in [ClockMode::Real, virtual_mode()] {
            let result = Runner::new()
                .run(&wasm, JobConfig { np: 4, clock, ..Default::default() })
                .unwrap();
            assert!(
                result.success(),
                "{:?}",
                result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
            );
            let reports = &result.ranks[0].reports;
            assert_eq!(reports.len(), 3);
            assert_eq!(reports[0].0, 0);
            assert_eq!(reports[1].0, 1);
            assert!(reports[0].1 >= 0.0 && reports[1].1 >= 0.0);
        }
    }

    #[test]
    fn virtual_overlap_is_not_slower_than_serialized() {
        let params = OverlapParams {
            bytes: 8192,
            iters: 4,
            compute_units: 100,
            virtual_compute_us: 10.0,
        };
        let out = run_world_with(4, virtual_mode(), move |comm| run_native(&comm, params));
        for r in &out {
            assert!(
                r.nonblocking_us <= r.blocking_us * 1.05 + 1.0,
                "overlap slower than serialized: {r:?}"
            );
        }
    }

    #[test]
    fn alltoall_guest_runs_real_and_virtual() {
        let wasm = build_alltoall_guest(OverlapParams {
            bytes: 1024,
            iters: 3,
            compute_units: 500,
            virtual_compute_us: 3.0,
        });
        for clock in [ClockMode::Real, virtual_mode()] {
            let result = Runner::new()
                .run(&wasm, JobConfig { np: 4, clock, ..Default::default() })
                .unwrap();
            assert!(
                result.success(),
                "{:?}",
                result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
            );
            let reports = &result.ranks[0].reports;
            assert_eq!(reports[0].0, 0);
            assert_eq!(reports[1].0, 1);
            assert!(reports[0].1 >= 0.0 && reports[1].1 >= 0.0);
        }
    }

    #[test]
    fn native_alltoall_overlap_covers_rendezvous_blocks() {
        // 96 KiB per peer block is rendezvous under the real default.
        let params = OverlapParams {
            bytes: 96 << 10,
            iters: 3,
            compute_units: 1000,
            virtual_compute_us: 20.0,
        };
        let out = run_world(3, move |comm| run_native_alltoall(&comm, params));
        for r in &out {
            assert!(r.blocking_us > 0.0 && r.nonblocking_us > 0.0);
        }
    }

    #[test]
    fn p2p_overlap_covers_rendezvous_sizes() {
        // 256 KiB is rendezvous in every configuration.
        let params = OverlapParams {
            bytes: 256 << 10,
            iters: 3,
            compute_units: 1000,
            virtual_compute_us: 20.0,
        };
        let out = run_world(2, move |comm| run_native_p2p(&comm, params));
        for r in &out {
            assert!(r.blocking_us > 0.0 && r.nonblocking_us > 0.0);
        }
    }
}

//! The custom PingPong of §4.6: iterates over the MPI datatypes and
//! message sizes so the embedder's instrumented Send path can measure the
//! datatype-translation overhead (Figure 6).

use mpi_substrate::Datatype;
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

use crate::guest::{layout, MpiImports};

/// The datatypes of Figure 6, with their guest handles.
pub fn figure6_datatypes() -> Vec<(i32, Datatype, &'static str)> {
    use mpiwasm::handles::*;
    vec![
        (MPI_BYTE, Datatype::Byte, "MPI_BYTE"),
        (MPI_CHAR, Datatype::Char, "MPI_CHAR"),
        (MPI_INT, Datatype::Int, "MPI_INT"),
        (MPI_FLOAT, Datatype::Float, "MPI_FLOAT"),
        (MPI_DOUBLE, Datatype::Double, "MPI_DOUBLE"),
        (MPI_LONG, Datatype::Long, "MPI_LONG"),
    ]
}

/// The message sizes of Figure 6's x-axis, in bytes.
pub fn figure6_sizes() -> Vec<u32> {
    vec![8, 64, 256, 1024, 32768, 262144, 1048576, 2097152, 4194304]
}

/// Build the two-rank datatype-translation probe. For every datatype and
/// message size it performs `iters` send/recv pairs; run it with
/// `JobConfig::instrument = true` and read the per-datatype translation
/// means from `JobResult::merged_stats()`.
pub fn build_guest(sizes: &[u32], iters: u32) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.name("fig6-datatype-pingpong");
    b.memory(layout::PAGES, Some(layout::PAGES));
    let mpi = MpiImports::declare(&mut b);
    let sizes = sizes.to_vec();

    b.func("_start", vec![], vec![], move |f| {
        let rank = Var::new(f, ValType::I32);
        let i = Var::new(f, ValType::I32);
        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));

        for (dt_handle, dt, _) in figure6_datatypes() {
            for &bytes in &sizes {
                let count = (bytes as usize / dt.size()).max(1) as i32;
                let body = vec![if_else(
                    rank.get().eq(int(0)),
                    &[
                        mpi.send(int(layout::SEND_BUF), int(count), dt_handle, int(1), int(0)),
                        mpi.recv(int(layout::RECV_BUF), int(count), dt_handle, int(1), int(0)),
                    ],
                    &[
                        mpi.recv(int(layout::RECV_BUF), int(count), dt_handle, int(0), int(0)),
                        mpi.send(int(layout::SEND_BUF), int(count), dt_handle, int(0), int(0)),
                    ],
                )];
                stmts.push(mpi.barrier_world());
                stmts.push(for_range(i, int(0), int(iters as i32), &body));
            }
        }
        stmts.push(mpi.finalize());
        emit_block(f, &stmts);
    });
    encode_module(&b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiwasm::{JobConfig, Runner};

    #[test]
    fn instrumentation_collects_samples_per_datatype() {
        let wasm = build_guest(&[8, 1024], 3);
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, instrument: true, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks[0].error);
        let stats = result.merged_stats();
        assert!(stats.total_samples() > 0);
        for (_, dt, name) in figure6_datatypes() {
            let mean = stats.mean_ns_all_sizes(dt);
            assert!(mean.is_some(), "no samples for {name}");
            let mean = mean.unwrap();
            assert!(mean >= 0.0 && mean < 1e6, "{name} mean {mean}ns implausible");
        }
    }

    #[test]
    fn uninstrumented_run_records_nothing() {
        let wasm = build_guest(&[8], 2);
        let result = Runner::new()
            .run(&wasm, JobConfig { np: 2, instrument: false, ..Default::default() })
            .unwrap();
        assert!(result.success());
        assert_eq!(result.merged_stats().total_samples(), 0);
    }

    #[test]
    fn figure6_axes_match_paper() {
        assert_eq!(figure6_datatypes().len(), 6);
        assert_eq!(figure6_sizes().first(), Some(&8));
        assert_eq!(figure6_sizes().last(), Some(&4194304));
    }
}

//! Measurement primitives: every *software* quantity the figures need is
//! measured from the real stack here.

use std::time::Instant;

use hpc_benchmarks::{fig6, hpcg, imb, ior, npb_dt, npb_is};
use mpi_substrate::{run_world, run_world_with, ClockMode};
use mpiwasm::translate::TranslationStats;
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};
use wasm_engine::dsl::*;
use wasm_engine::runtime::CompiledModule;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder, Tier};

/// Measured per-MPI-call embedder overhead, broken into its parts.
#[derive(Debug, Clone)]
pub struct EmbedderOverhead {
    /// Host-function trampoline cost, µs/call.
    pub trampoline_us: f64,
    /// Datatype + handle translation cost, µs/call (Figure 6 mean).
    pub translation_us: f64,
    /// The Figure 6 statistics the translation mean came from.
    pub stats: TranslationStats,
}

impl EmbedderOverhead {
    /// Total software overhead the Wasm path adds per MPI call, µs.
    pub fn total_us(&self) -> f64 {
        self.trampoline_us + self.translation_us
    }
}

/// Measure the host-call trampoline: a guest loop of N calls to a no-op
/// `env` import, minus the same loop without the call.
pub fn measure_trampoline_us(calls: u32) -> f64 {
    let build = |with_call: bool| -> Vec<u8> {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let noop = b.import_func("env", "noop", vec![], vec![]);
        b.func("_start", vec![], vec![], |f| {
            let i = Var::new(f, ValType::I32);
            let body: Vec<Stmt> =
                if with_call { vec![call_stmt(noop, vec![])] } else { vec![Stmt::Raw(vec![])] };
            emit_block(f, &[for_range(i, int(0), int(calls as i32), &body)]);
        });
        encode_module(&b.finish())
    };
    let run = |wasm: &[u8]| -> f64 {
        let module = wasm_engine::decode_module(wasm).unwrap();
        let compiled = CompiledModule::compile(module, Tier::Max).unwrap();
        let mut linker = wasm_engine::Linker::new();
        linker.func("env", "noop", wasm_engine::FuncType::new(vec![], vec![]), |_, _| {
            Ok(vec![])
        });
        let mut inst = linker.instantiate(&compiled, Box::new(())).unwrap();
        let t0 = Instant::now();
        inst.invoke("_start", &[]).unwrap();
        t0.elapsed().as_secs_f64() * 1e6
    };
    let with = run(&build(true));
    let without = run(&build(false));
    ((with - without) / calls as f64).max(0.001)
}

/// Run the Figure 6 probe and return the measured overheads.
pub fn measure_embedder_overhead() -> EmbedderOverhead {
    let wasm = fig6::build_guest(&fig6::figure6_sizes(), 20);
    let result = Runner::new()
        .run(&wasm, JobConfig { np: 2, instrument: true, ..Default::default() })
        .expect("fig6 probe runs");
    assert!(result.success(), "fig6 probe failed: {:?}", result.ranks[0].error);
    let stats = result.merged_stats();
    let mut means = Vec::new();
    for (_, dt, _) in fig6::figure6_datatypes() {
        if let Some(m) = stats.mean_ns_all_sizes(dt) {
            means.push(m);
        }
    }
    let translation_us = means.iter().sum::<f64>() / means.len().max(1) as f64 / 1e3;
    let trampoline_us = measure_trampoline_us(50_000);
    EmbedderOverhead { trampoline_us, translation_us, stats }
}

/// Table 1: per-tier compile duration and single-core HPCG performance.
pub struct TierResult {
    pub tier: Tier,
    pub compile_ms: f64,
    pub gflops: f64,
}

pub fn measure_tiers(params: hpcg::HpcgParams) -> Vec<TierResult> {
    let wasm = hpcg::build_guest(params);
    let module = wasm_engine::decode_module(&wasm).unwrap();
    let mut out = Vec::new();
    for tier in Tier::ALL {
        // Median-of-3 compile time.
        let mut times = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&compiled);
        }
        times.sort_by(f64::total_cmp);
        let compile_ms = times[1];

        let result = Runner::new()
            .run(&wasm, JobConfig { np: 1, tier, ..Default::default() })
            .unwrap();
        assert!(result.success(), "hpcg under {tier}: {:?}", result.ranks[0].error);
        let elapsed = report_value(&result.ranks[0].reports, 0);
        let flops = params.flops_per_iter() * params.iters as f64;
        out.push(TierResult { tier, compile_ms, gflops: flops / elapsed / 1e9 });
    }
    out
}

fn report_value(reports: &[(i32, f64)], key: i32) -> f64 {
    reports.iter().find(|(k, _)| *k == key).map(|(_, v)| *v).expect("report key present")
}

/// Measured compute times of the HPCG kernel per iteration:
/// `(native_seconds, wasm_seconds)` at one rank.
pub fn measure_hpcg_kernel(params: hpcg::HpcgParams) -> (f64, f64) {
    let native = run_world(1, move |comm| hpcg::run_native(&comm, params))[0].0
        / params.iters as f64;
    let wasm_bytes = hpcg::build_guest(params);
    let result = Runner::new()
        .run(&wasm_bytes, JobConfig { np: 1, ..Default::default() })
        .unwrap();
    assert!(result.success());
    let wasm = report_value(&result.ranks[0].reports, 0) / params.iters as f64;
    (native, wasm)
}

/// DT wall-clock seconds: `(native, wasm_scalar, wasm_simd)`.
pub fn measure_dt(np: u32, params: npb_dt::DtParams) -> (f64, f64, f64) {
    let native = {
        let p = params;
        let out = run_world(np, move |comm| npb_dt::run_native(&comm, p));
        out.iter().map(|o| o.0).fold(0.0, f64::max)
    };
    let run_guest = |simd: bool| -> f64 {
        let wasm = npb_dt::build_guest(npb_dt::DtParams { simd, ..params });
        let result = Runner::new()
            .run(&wasm, JobConfig { np, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks[0].error);
        result
            .ranks
            .iter()
            .map(|r| report_value(&r.reports, 0))
            .fold(0.0, f64::max)
    };
    (native, run_guest(false), run_guest(true))
}

/// IS wall-clock seconds `(native, wasm)` plus verified totals.
pub fn measure_is(np: u32, params: npb_is::IsParams) -> (f64, f64, u64) {
    let p = params;
    let native = run_world(np, move |comm| npb_is::run_native(&comm, p));
    let native_t = native.iter().map(|o| o.0).fold(0.0, f64::max);
    let total = native[0].2;
    let wasm = npb_is::build_guest(params);
    let result = Runner::new()
        .run(&wasm, JobConfig { np, ..Default::default() })
        .unwrap();
    assert!(result.success(), "{:?}", result.ranks[0].error);
    let wasm_t = result
        .ranks
        .iter()
        .map(|r| report_value(&r.reports, 0))
        .fold(0.0, f64::max);
    (native_t, wasm_t, total)
}

/// IOR bandwidths in MiB/s: `((native_write, native_read), (wasm_write, wasm_read))`.
/// Median of five repetitions per phase — short memcpy-bound phases are
/// scheduler-noisy on shared single-core hosts.
pub fn measure_ior(np: u32, params: ior::IorParams) -> ((f64, f64), (f64, f64)) {
    let total_mib = params.total_bytes() as f64 * np as f64 / (1 << 20) as f64;
    let reps = 5;
    let mut nw = Vec::new();
    let mut nr = Vec::new();
    let mut ww = Vec::new();
    let mut wr = Vec::new();
    let wasm = ior::build_guest(params);
    for _ in 0..reps {
        let p = params;
        let native = run_world(np, move |comm| ior::run_native(&comm, p));
        nw.push(total_mib / native.iter().map(|o| o.0).fold(0.0, f64::max).max(1e-9));
        nr.push(total_mib / native.iter().map(|o| o.1).fold(0.0, f64::max).max(1e-9));

        let result = Runner::new()
            .run(&wasm, JobConfig { np, ..Default::default() })
            .unwrap();
        assert!(result.success(), "{:?}", result.ranks[0].error);
        let ww_t =
            result.ranks.iter().map(|r| report_value(&r.reports, 0)).fold(0.0, f64::max);
        let wr_t =
            result.ranks.iter().map(|r| report_value(&r.reports, 1)).fold(0.0, f64::max);
        ww.push(total_mib / ww_t.max(1e-9));
        wr.push(total_mib / wr_t.max(1e-9));
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    (
        (median(&mut nw), median(&mut nr)),
        (median(&mut ww), median(&mut wr)),
    )
}

/// Executed IMB under virtual clocks: returns `(native, wasm)` series of
/// `(log2 bytes, us)` at a rank count the host can actually thread.
pub fn imb_executed_virtual(
    profile: &SystemProfile,
    routine: imb::ImbRoutine,
    np: u32,
    sweep: &[(u32, u32)],
    wasm_overhead_us: f64,
) -> (Vec<(i32, f64)>, Vec<(i32, f64)>) {
    let mode = ClockMode::Virtual(CostModel::native(profile.clone()));
    let sweep_owned: Vec<(u32, u32)> = sweep.to_vec();
    let native = {
        let sweep = sweep_owned.clone();
        run_world_with(np, mode.clone(), move |comm| imb::run_native(&comm, routine, &sweep))
            .swap_remove(0)
    };
    let wasm_bytes = imb::build_guest(routine, sweep);
    let result = Runner::new()
        .run(
            &wasm_bytes,
            JobConfig {
                np,
                clock: mode,
                wasm_call_overhead_us: wasm_overhead_us,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(result.success(), "{:?}", result.ranks[0].error);
    (native, result.ranks[0].reports.clone())
}

/// Quick-mode switch for CI/tests: smaller problems.
pub fn quick() -> bool {
    std::env::var("MPIWASM_QUICK").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trampoline_measurement_is_positive_and_sub_us() {
        let t = measure_trampoline_us(20_000);
        assert!(t > 0.0 && t < 10.0, "{t}");
    }

    #[test]
    fn embedder_overhead_parts_are_sane() {
        let o = measure_embedder_overhead();
        assert!(o.translation_us >= 0.0 && o.translation_us < 10.0);
        assert!(o.total_us() > 0.0);
        assert!(o.stats.total_samples() > 0);
    }

    #[test]
    fn tier_ordering_matches_table1() {
        let results =
            measure_tiers(hpc_benchmarks::hpcg::HpcgParams { nx: 8, ny: 8, nz: 8, iters: 6 });
        assert_eq!(results.len(), Tier::ALL.len());
        // Compile time grows from Baseline to Max…
        assert!(
            results[2].compile_ms > results[0].compile_ms,
            "max {}ms vs baseline {}ms",
            results[2].compile_ms,
            results[0].compile_ms
        );
        // …and runtime performance improves.
        assert!(
            results[2].gflops > results[0].gflops,
            "max {} vs baseline {} GFLOP/s",
            results[2].gflops,
            results[0].gflops
        );
    }

    #[test]
    fn executed_imb_wasm_is_slower_by_bounded_margin() {
        let profile = SystemProfile::container();
        let (native, wasm) = imb_executed_virtual(
            &profile,
            imb::ImbRoutine::Allreduce,
            4,
            &[(256, 4)],
            0.2,
        );
        assert_eq!(native.len(), 1);
        assert_eq!(wasm.len(), 1);
        let (n, w) = (native[0].1, wasm[0].1);
        assert!(w > n, "wasm {w}us <= native {n}us");
        assert!(w / n < 2.0, "overhead out of band: {w} vs {n}");
    }
}

//! Minimal ASCII plotting for terminal-rendered figures.

/// Render series as an ASCII chart with log-scaled y (the paper's figures
/// are mostly log-log). Each series gets a marker character.
pub fn ascii_chart(
    title: &str,
    x_labels: &[String],
    series: &[(&str, &[f64])],
    height: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("  {title}\n"));
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if all.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let (lo, hi) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let (llo, lhi) = (lo.ln(), (hi.ln()).max(lo.ln() + 1e-9));
    let width = x_labels.len();
    let markers = ['N', 'W', 'F', 'x', 'o'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        for (xi, &y) in ys.iter().enumerate() {
            if !(y.is_finite() && y > 0.0) {
                continue;
            }
            let frac = (y.ln() - llo) / (lhi - llo);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[row.min(height - 1)][xi];
            *cell = if *cell == ' ' { markers[si % markers.len()] } else { '*' };
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y_val = (lhi - (lhi - llo) * i as f64 / (height - 1) as f64).exp();
        out.push_str(&format!("  {y_val:>10.2} | "));
        for &c in row {
            out.push(c);
            out.push(' ');
        }
        out.push('\n');
    }
    out.push_str(&format!("  {:>10} +-{}\n", "", "-".repeat(width * 2)));
    out.push_str(&format!("  {:>13}", ""));
    for l in x_labels {
        let c = l.chars().next().unwrap_or(' ');
        out.push(c);
        out.push(' ');
    }
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{}={}", markers[i % markers.len()], name))
        .collect();
    out.push_str(&format!("  legend: {} ('*' = overlap)\n", legend.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_series_markers_and_title() {
        let xs: Vec<String> = (0..8).map(|i| format!("{i}")).collect();
        let native: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let wasm: Vec<f64> = (0..8).map(|i| 1.1 * (1.0 + i as f64)).collect();
        let chart =
            ascii_chart("demo", &xs, &[("Native", &native), ("WASM", &wasm)], 10);
        assert!(chart.contains("demo"));
        assert!(chart.contains('N') || chart.contains('*'));
        assert!(chart.contains("legend"));
    }

    #[test]
    fn empty_series_do_not_panic() {
        let chart = ascii_chart("empty", &[], &[("a", &[])], 5);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn zero_and_negative_values_are_skipped() {
        let xs: Vec<String> = vec!["a".into(), "b".into()];
        let ys = [0.0, -5.0];
        let chart = ascii_chart("degenerate", &xs, &[("s", &ys)], 5);
        assert!(chart.contains("no data"));
    }
}

//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4) from this repository's own components.
//!
//! Methodology (see EXPERIMENTS.md for the full discussion):
//!
//! * **Measured quantities** — everything software: the embedder's
//!   datatype-translation overhead (Figure 6 instrumentation), host-call
//!   trampoline cost, compile times per tier, Wasm/native execution-time
//!   ratios of the compute kernels, binary/artifact sizes, and real
//!   small-scale runs of every benchmark through the full stack.
//! * **Modeled quantities** — everything hardware we do not have: wire
//!   times of the OmniPath-class fabric and the Graviton2 node
//!   (`netsim::CostModel`), with the measured software overheads injected
//!   on top. Small-scale executed runs under virtual clocks validate the
//!   models (the harness prints the validation deltas).
//!
//! The paper's "Native" series uses the native per-call overhead; the
//! "WASM" series adds the *measured* embedder overhead. Compute-bound
//! series additionally scale by the measured guest/native kernel ratio,
//! normalized by the calibrated compiled-Wasm factor (DESIGN.md
//! substitution #1: our Max tier is an optimizing interpreter, not a JIT;
//! `WASM_COMPUTE_FACTOR` carries the paper-reported compiled-Wasm cost).

use std::fmt::Write as _;
use std::path::PathBuf;

pub mod figures;
pub mod measure;
pub mod plot;

/// Compute slowdown factor the paper reports for compiled Wasm vs native
/// compute (their HPCG/DT results and the Not-So-Fast literature put
/// AoT-compiled Wasm at ~5–15% behind native; we use 8%).
pub const WASM_COMPUTE_FACTOR: f64 = 1.08;

/// Additional compute factor for 128-bit-SIMD-limited kernels vs 512-bit
/// native vectorization (the paper's DT discussion).
pub const WASM_SIMD_GAP_FACTOR: f64 = 1.45;

/// Geometric mean of a slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The paper's slowdown convention (§4.5): GM of native/wasm ratios,
/// minus one. Positive = Wasm slower.
pub fn gm_slowdown(native_us: &[f64], wasm_us: &[f64]) -> f64 {
    let ratios: Vec<f64> =
        native_us.iter().zip(wasm_us).map(|(n, w)| n / w).collect();
    1.0 - geometric_mean(&ratios)
}

/// Results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MPIWASM_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a CSV file into the results directory.
pub fn write_csv(name: &str, header: &str, rows: &[Vec<String>]) -> PathBuf {
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    let path = results_dir().join(name);
    std::fs::write(&path, out).expect("write csv");
    path
}

/// Render a two-series table (the textual figure form).
pub fn print_series_table(
    title: &str,
    x_label: &str,
    xs: &[String],
    series: &[(&str, &[f64])],
) {
    println!("\n== {title} ==");
    print!("{x_label:>12}");
    for (name, _) in series {
        print!(" {name:>14}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>12}");
        for (_, ys) in series {
            print!(" {:>14.3}", ys[i]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[8.0]) - 8.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn gm_slowdown_sign_convention() {
        // Wasm 10% slower everywhere -> slowdown ≈ 0.09.
        let native = [10.0, 20.0, 40.0];
        let wasm = [11.0, 22.0, 44.0];
        let s = gm_slowdown(&native, &wasm);
        assert!((s - (1.0 - 1.0 / 1.1)).abs() < 1e-9, "{s}");
        // Wasm faster -> negative.
        assert!(gm_slowdown(&[10.0], &[9.0]) < 0.0);
    }
}

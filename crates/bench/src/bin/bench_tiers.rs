//! Per-tier execution benchmark over the hpcg and npb_is kernels,
//! emitting `BENCH_tiers.json` so successive engine changes have a
//! recorded perf trajectory to compare against.
//!
//! Usage: `bench_tiers [out.json]` (default `BENCH_tiers.json`). Each
//! kernel runs single-rank through the full embedder (compile once, then
//! repeated runs); the reported figure is the best-of-N wall-clock
//! nanoseconds per run, which is the stable measure on shared CI boxes.

use std::time::Instant;

use hpc_benchmarks::{hpcg, npb_is};
use mpiwasm::{JobConfig, Runner};
use wasm_engine::Tier;

struct Kernel {
    name: &'static str,
    wasm: Vec<u8>,
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "hpcg",
            wasm: hpcg::build_guest(hpcg::HpcgParams { nx: 8, ny: 8, nz: 8, iters: 3 }),
        },
        Kernel {
            name: "npb_is",
            wasm: npb_is::build_guest(npb_is::IsParams {
                keys_per_rank: 16384,
                max_key: 1 << 12,
                iters: 2,
            }),
        },
    ]
}

fn bench_one(runner: &Runner, wasm: &[u8], tier: Tier) -> u64 {
    let (compiled, _) = runner.prepare(wasm, tier).expect("compile");
    let run = || {
        let t0 = Instant::now();
        let result = runner
            .run_compiled(&compiled, JobConfig { np: 1, tier, ..Default::default() })
            .expect("run");
        assert!(result.success(), "{:?}", result.ranks[0].error);
        t0.elapsed().as_nanos() as u64
    };
    run(); // warmup
    let reps = if tier == Tier::Baseline { 3 } else { 5 };
    (0..reps).map(|_| run()).min().unwrap()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_tiers.json".into());
    let runner = Runner::new();
    let mut lines = Vec::new();
    for k in kernels() {
        for tier in Tier::ALL {
            let ns = bench_one(&runner, &k.wasm, tier);
            let tier_key = match tier {
                Tier::Baseline => "baseline",
                Tier::Optimizing => "optimizing",
                Tier::Max => "max",
            };
            println!("{:>8} {:<10} {:>12} ns/op", k.name, tier_key, ns);
            lines.push(format!(
                "  {{\"kernel\": \"{}\", \"tier\": \"{}\", \"ns_per_op\": {}}}",
                k.name, tier_key, ns
            ));
        }
    }
    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}

//! Per-tier execution benchmark over the hpcg and npb_is kernels,
//! emitting `BENCH_tiers.json` so successive engine changes have a
//! recorded perf trajectory to compare against.
//!
//! Usage: `bench_tiers [out.json] [--check committed.json]` (default out
//! `BENCH_tiers.json`). Each kernel runs single-rank through the full
//! embedder (compile once, then repeated runs); the reported figure is
//! the best-of-N wall-clock nanoseconds per run, which is the stable
//! measure on shared CI boxes.
//!
//! With `--check`, the fresh numbers are compared against a committed
//! baseline and the process exits non-zero if any (kernel, tier) cell
//! regressed by more than [`REGRESSION_TOLERANCE`] — the CI gate that
//! locks in engine perf wins. The tolerance absorbs shared-runner noise;
//! the committed file is only refreshed deliberately, with an engine
//! change that moves the numbers.

use std::sync::Arc;
use std::time::Instant;

use hpc_benchmarks::{hpcg, npb_is};
use mpiwasm::{JobConfig, Runner};
use obs::{Recorder, TraceClock};
use wasm_engine::Tier;

struct Kernel {
    name: &'static str,
    wasm: Vec<u8>,
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "hpcg",
            wasm: hpcg::build_guest(hpcg::HpcgParams { nx: 8, ny: 8, nz: 8, iters: 3 }),
        },
        Kernel {
            name: "npb_is",
            wasm: npb_is::build_guest(npb_is::IsParams {
                keys_per_rank: 16384,
                max_key: 1 << 12,
                iters: 2,
            }),
        },
    ]
}

struct Cell {
    ns: u64,
    jit: Option<wasm_engine::JitSnapshot>,
}

fn bench_one(runner: &Runner, wasm: &[u8], tier: Tier) -> Cell {
    let (compiled, _) = runner.prepare(wasm, tier).expect("compile");
    let run = || {
        let t0 = Instant::now();
        let result = runner
            .run_compiled(&compiled, JobConfig { np: 1, tier, ..Default::default() })
            .expect("run");
        assert!(result.success(), "{:?}", result.ranks[0].error);
        t0.elapsed().as_nanos() as u64
    };
    run(); // warmup
    let reps = if tier == Tier::Baseline { 3 } else { 5 };
    let ns = (0..reps).map(|_| run()).min().unwrap();
    // Informational JIT counters (max+jit only): one extra *untimed*
    // profiled run, so the timed reps above execute the unprofiled path.
    let jit = (tier == Tier::MaxJit)
        .then(|| {
            compiled.set_jit_profiling(true);
            run();
            compiled.jit_snapshot()
        })
        .flatten();
    Cell { ns, jit }
}

/// Tracing-off must be (nearly) free: a recorder attached but disabled may
/// cost at most this fraction over running with no recorder at all.
const TRACE_OVERHEAD_TOLERANCE: f64 = 0.02;

/// Measure hpcg at tier max twice — plain vs recorder-attached-but-disabled
/// — with interleaved min-of-N sampling and retries to damp shared-runner
/// noise. Ok((plain, off)) when within budget, Err otherwise.
fn check_trace_overhead(runner: &Runner, wasm: &[u8]) -> Result<(u64, u64), (u64, u64)> {
    let (compiled, _) = runner.prepare(wasm, Tier::Max).expect("compile");
    let run = |recorder: Option<Arc<Recorder>>| {
        let t0 = Instant::now();
        let result = runner
            .run_compiled(
                &compiled,
                JobConfig { np: 1, tier: Tier::Max, recorder, ..Default::default() },
            )
            .expect("run");
        assert!(result.success(), "{:?}", result.ranks[0].error);
        t0.elapsed().as_nanos() as u64
    };
    let rec = Recorder::new(1, obs::DEFAULT_CAPACITY, TraceClock::Real);
    rec.set_enabled(false);
    run(None); // warmup both shapes
    run(Some(Arc::clone(&rec)));
    let mut last = (0, 0);
    for _attempt in 0..4 {
        let (mut plain, mut off) = (u64::MAX, u64::MAX);
        for _ in 0..5 {
            plain = plain.min(run(None));
            off = off.min(run(Some(Arc::clone(&rec))));
        }
        last = (plain, off);
        if (off as f64) <= (plain as f64) * (1.0 + TRACE_OVERHEAD_TOLERANCE) {
            return Ok(last);
        }
    }
    Err(last)
}

/// Maximum tolerated slowdown vs the committed baseline before the check
/// fails: `new <= committed * (1 + tolerance)`.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// Parse the (self-emitted) results format: one
/// `{"kernel": "K", "tier": "T", "ns_per_op": N}` object per line.
fn parse_results(json: &str) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let field = |key: &str| -> Option<&str> {
            let at = line.find(key)? + key.len();
            let rest = line[at..].trim_start_matches([':', ' ', '"']);
            Some(rest.split(['"', ',', '}']).next().unwrap_or("").trim())
        };
        if let (Some(k), Some(t), Some(n)) =
            (field("\"kernel\""), field("\"tier\""), field("\"ns_per_op\""))
        {
            if let Ok(ns) = n.parse::<u64>() {
                out.push((k.to_string(), t.to_string(), ns));
            }
        }
    }
    out
}

/// Compare fresh results against the committed baseline. Returns the
/// regressed cells as (kernel, tier, committed, new).
fn check_regressions(
    committed: &[(String, String, u64)],
    fresh: &[(String, String, u64)],
) -> Vec<(String, String, u64, u64)> {
    let mut bad = Vec::new();
    for (k, t, old) in committed {
        let Some((_, _, new)) = fresh.iter().find(|(fk, ft, _)| fk == k && ft == t) else {
            continue; // kernel/tier removed: not a regression
        };
        if (*new as f64) > (*old as f64) * (1.0 + REGRESSION_TOLERANCE) {
            bad.push((k.clone(), t.clone(), *old, *new));
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_tiers.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check_path = Some(it.next().expect("--check needs a baseline path"));
        } else {
            out_path = a;
        }
    }

    let runner = Runner::new();
    let ks = kernels();
    let mut lines = Vec::new();
    let mut fresh = Vec::new();
    for k in &ks {
        for tier in Tier::ALL {
            let cell = bench_one(&runner, &k.wasm, tier);
            let tier_key = match tier {
                Tier::Baseline => "baseline",
                Tier::Optimizing => "optimizing",
                Tier::Max => "max",
                Tier::MaxJit => "max+jit",
            };
            // Informational (non-gated) JIT profiling columns: only the
            // ns_per_op cell participates in the --check regression gate.
            let jit_cols = match &cell.jit {
                Some(s) => format!(
                    ", \"chains_entered\": {}, \"guard_exits\": {}",
                    s.chains_entered, s.guard_exits
                ),
                None => String::new(),
            };
            let jit_note = match &cell.jit {
                Some(s) => format!(
                    "  (chains {}, guard exits {})",
                    s.chains_entered, s.guard_exits
                ),
                None => String::new(),
            };
            println!("{:>8} {:<10} {:>12} ns/op{}", k.name, tier_key, cell.ns, jit_note);
            lines.push(format!(
                "  {{\"kernel\": \"{}\", \"tier\": \"{}\", \"ns_per_op\": {}{}}}",
                k.name, tier_key, cell.ns, jit_cols
            ));
            fresh.push((k.name.to_string(), tier_key.to_string(), cell.ns));
        }
    }

    // Flight-recorder overhead gate: an attached-but-disabled recorder must
    // not slow hpcg down measurably. Recorded in the JSON for trend-watching
    // (the cell has no ns_per_op, so --check never reads it).
    let overhead = check_trace_overhead(&runner, &ks[0].wasm);
    let (plain, off) = match overhead {
        Ok(p) | Err(p) => p,
    };
    let pct = (off as f64 / plain as f64 - 1.0) * 100.0;
    println!("trace-off overhead (hpcg/max): plain {plain} ns, recorder-off {off} ns ({pct:+.2}%)");
    lines.push(format!(
        "  {{\"overhead_kernel\": \"hpcg\", \"plain_ns\": {plain}, \"recorder_off_ns\": {off}}}"
    ));

    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");

    if overhead.is_err() {
        eprintln!(
            "TRACE OVERHEAD: disabled recorder costs {pct:+.2}% (budget {:.0}%)",
            TRACE_OVERHEAD_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }

    if let Some(path) = check_path {
        let committed = parse_results(&std::fs::read_to_string(&path).expect("read baseline"));
        assert!(!committed.is_empty(), "no baseline cells parsed from {path}");
        let bad = check_regressions(&committed, &fresh);
        if bad.is_empty() {
            println!(
                "perf check OK: all {} cells within {:.0}% of {path}",
                committed.len(),
                REGRESSION_TOLERANCE * 100.0
            );
        } else {
            for (k, t, old, new) in &bad {
                eprintln!(
                    "PERF REGRESSION {k}/{t}: {old} -> {new} ns/op ({:+.1}%)",
                    (*new as f64 / *old as f64 - 1.0) * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_format_and_flags_regressions() {
        // The max+jit informational columns and the overhead cell must be
        // invisible to the regression parser.
        let json = "[\n  {\"kernel\": \"hpcg\", \"tier\": \"max\", \"ns_per_op\": 1000, \"chains_entered\": 42, \"guard_exits\": 3},\n  {\"kernel\": \"is\", \"tier\": \"baseline\", \"ns_per_op\": 2000},\n  {\"overhead_kernel\": \"hpcg\", \"plain_ns\": 500, \"recorder_off_ns\": 505}\n]\n";
        let cells = parse_results(json);
        assert_eq!(
            cells,
            vec![
                ("hpcg".into(), "max".into(), 1000),
                ("is".into(), "baseline".into(), 2000)
            ]
        );
        // 10% slower: within tolerance. 20% slower: regression.
        let fresh = vec![
            ("hpcg".to_string(), "max".to_string(), 1100u64),
            ("is".to_string(), "baseline".to_string(), 2400u64),
        ];
        let bad = check_regressions(&cells, &fresh);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "is");
    }
}

//! Run the complete experiment suite: every table and figure, in order,
//! writing CSVs into `results/`. The `runme.sh` analog of the paper's
//! artifact (§A.3.1).

use std::process::Command;

fn main() {
    let bins = [
        "table1", "table2", "fig3", "fig4", "fig5a", "fig5b", "fig5c", "fig6", "fig7",
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate binary dir");

    let mut failed = Vec::new();
    for bin in bins {
        println!("\n{}\n=== {bin} ===\n{}", "=".repeat(72), "=".repeat(72));
        let path = exe_dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when invoked via `cargo run`.
            Command::new("cargo").args(["run", "-q", "-p", "mpiwasm-bench", "--bin", bin]).status()
        };
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}");
                failed.push(bin);
            }
        }
    }
    println!("\n{}", "=".repeat(72));
    if failed.is_empty() {
        println!("all experiments completed; CSVs in results/");
    } else {
        println!("FAILED: {failed:?}");
        std::process::exit(1);
    }
}

//! Figure 6: datatype-translation overhead in the embedder's Send path,
//! per MPI datatype and message size — measured directly from the
//! instrumented embedder running the custom datatype PingPong of §4.6.

use hpc_benchmarks::fig6::{build_guest, figure6_datatypes, figure6_sizes};
use mpiwasm::{JobConfig, Runner};
use mpiwasm_bench::measure::quick;
use mpiwasm_bench::write_csv;

fn main() {
    println!("Figure 6 — datatype translation overhead (ns) in the Send path\n");
    let iters = if quick() { 30 } else { 300 };
    let sizes = figure6_sizes();
    let wasm = build_guest(&sizes, iters);
    let result = Runner::new()
        .run(&wasm, JobConfig { np: 2, instrument: true, ..Default::default() })
        .expect("fig6 probe");
    assert!(result.success(), "{:?}", result.ranks[0].error);
    let stats = result.merged_stats();

    print!("{:>20}", "datatype \\ bytes");
    for s in &sizes {
        print!(" {:>9}", s);
    }
    println!();
    let mut rows = Vec::new();
    for (_, dt, name) in figure6_datatypes() {
        print!("{name:>20}");
        let mut row = vec![name.to_string()];
        for &s in &sizes {
            let mean = stats.mean_ns(dt, s).unwrap_or(f64::NAN);
            print!(" {mean:>9.1}");
            row.push(format!("{mean:.2}"));
        }
        println!();
        rows.push(row);
        if let Some(mean) = stats.mean_ns_all_sizes(dt) {
            // Stored for the summary below.
            let _ = mean;
        }
    }

    println!("\nmean across all sizes:");
    for (_, dt, name) in figure6_datatypes() {
        println!(
            "  {:>12}: {:>8.2} ns",
            name,
            stats.mean_ns_all_sizes(dt).unwrap_or(f64::NAN)
        );
    }
    println!("\n(paper: 85.44/84.72/99.78/96.32/103.35/104.79 ns for");
    println!(" BYTE/CHAR/INT/FLOAT/DOUBLE/LONG on Skylake-SP; our numbers are the");
    println!(" measured cost of this embedder's translation path on this host)");

    let header = {
        let mut h = String::from("datatype");
        for s in &sizes {
            h.push(',');
            h.push_str(&s.to_string());
        }
        h
    };
    let path = write_csv("fig6.csv", &header, &rows);
    println!("wrote {}", path.display());
}

//! Figure 4: selected IMB routines and HPCG on the AWS Graviton2 profile
//! (single aarch64 node, 32 ranks). The same Wasm modules run unmodified
//! against this profile — the portability claim of Figure 1, demonstrated
//! by executing identical module bytes under a different system model.

use hpc_benchmarks::{hpcg, imb, imb_message_sizes};
use mpiwasm_bench::figures::{hpcg_scaling, imb_model_series, max_bandwidth_gib};
use mpiwasm_bench::measure::{measure_embedder_overhead, measure_hpcg_kernel, quick};
use mpiwasm_bench::{gm_slowdown, plot::ascii_chart, write_csv};
use netsim::SystemProfile;

fn main() {
    let profile = SystemProfile::graviton2();
    println!("Figure 4 — {}", profile.name);
    let overhead = measure_embedder_overhead();
    println!("measured embedder overhead: {:.3}us/call\n", overhead.total_us());

    let sizes = imb_message_sizes();
    let mut rows = Vec::new();

    for routine in [
        imb::ImbRoutine::PingPong,
        imb::ImbRoutine::SendRecv,
        imb::ImbRoutine::Allreduce,
        imb::ImbRoutine::Allgather,
        imb::ImbRoutine::Alltoall,
    ] {
        let ranks = if routine == imb::ImbRoutine::PingPong { 2 } else { 32 };
        let pts = imb_model_series(&profile, routine, ranks, &sizes, &overhead);
        let native: Vec<f64> = pts.iter().map(|p| p.native_us).collect();
        let wasm: Vec<f64> = pts.iter().map(|p| p.wasm_us).collect();
        let labels: Vec<String> = sizes.iter().map(|b| format!("{}", b.ilog2())).collect();
        println!(
            "{}",
            ascii_chart(
                &format!("{} {ranks} ranks — iteration time (us)", routine.name()),
                &labels,
                &[("Native", &native), ("WASM", &wasm)],
                10,
            )
        );
        println!("  GM slowdown: {:+.3}\n", gm_slowdown(&native, &wasm));
        if routine == imb::ImbRoutine::PingPong {
            println!(
                "  max bandwidth: native {:.2} GiB/s, wasm {:.2} GiB/s (paper: 10.98 / 10.61)\n",
                max_bandwidth_gib(&pts, false),
                max_bandwidth_gib(&pts, true)
            );
        }
        for p in &pts {
            rows.push(vec![
                routine.name().to_string(),
                ranks.to_string(),
                p.bytes.to_string(),
                format!("{:.4}", p.native_us),
                format!("{:.4}", p.wasm_us),
            ]);
        }
    }

    // Figure 4f: HPCG GFLOP/s and bandwidth, 1..32 ranks.
    let params = if quick() {
        hpcg::HpcgParams { nx: 8, ny: 8, nz: 8, iters: 5 }
    } else {
        hpcg::HpcgParams::default()
    };
    let (t_native, t_wasm) = measure_hpcg_kernel(params);
    println!(
        "HPCG kernel per iteration: native {:.3}ms, guest-engine {:.3}ms (interpreter; figures use the compiled-Wasm factor)",
        t_native * 1e3,
        t_wasm * 1e3
    );
    let ranks = [1u32, 2, 4, 8, 16, 32];
    let pts = hpcg_scaling(&profile, params, &ranks, t_native, &overhead);
    println!("\n  HPCG on Graviton2 (weak scaling)");
    println!("  {:>6} {:>16} {:>16} {:>12} {:>12}", "ranks", "native GFLOP/s", "wasm GFLOP/s", "native GB/s", "wasm GB/s");
    for p in &pts {
        println!(
            "  {:>6} {:>16.3} {:>16.3} {:>12.2} {:>12.2}",
            p.ranks, p.native_gflops, p.wasm_gflops, p.native_gbs, p.wasm_gbs
        );
        rows.push(vec![
            "HPCG".into(),
            p.ranks.to_string(),
            "-".into(),
            format!("{:.4}", p.native_gflops),
            format!("{:.4}", p.wasm_gflops),
        ]);
    }

    let path = write_csv("fig4.csv", "series,ranks,bytes,native,wasm", &rows);
    println!("\nwrote {}", path.display());
}

//! Figure 5b: IOR aggregate read/write bandwidth over block sizes.
//!
//! The Wasm/native efficiency is *measured* by running IOR through the
//! embedder's WASI + virtual-filesystem path vs the native path; the
//! absolute axis comes from the parallel-filesystem model (the paper's
//! Spectrum Scale system). The measured efficiency ≈ 1 reproduces the
//! paper's finding that userspace permission handling and the virtual
//! directory tree have no significant bandwidth impact.

use hpc_benchmarks::ior;
use mpiwasm_bench::figures::ior_figure;
use mpiwasm_bench::measure::{measure_ior, quick};
use mpiwasm_bench::write_csv;
use netsim::SystemProfile;

fn main() {
    let profile = SystemProfile::supermuc_ng();
    println!("Figure 5b — IOR on {}\n", profile.name);

    // Efficiency is measured at one rank: this host has a single core, so
    // multi-rank wall-clock phases interleave arbitrarily and measure the
    // scheduler, not the I/O path. Multi-rank correctness is covered by
    // the test suite; aggregate bandwidth scaling comes from the model.
    let np = 1;
    // Phases must be ms-scale so single-core scheduling noise does not
    // swamp the memcpy-bound measurement.
    let params = if quick() {
        ior::IorParams { block_bytes: 512 << 10, blocks: 8 }
    } else {
        ior::IorParams { block_bytes: 1 << 20, blocks: 16 }
    };
    let ((nw, nr), (ww, wr)) = measure_ior(np, params);
    let write_eff = ww / nw;
    let read_eff = wr / nr;
    println!("measured at {np} ranks, {} KiB blocks:", params.block_bytes >> 10);
    println!("  native  write {nw:>10.0} MiB/s   read {nr:>10.0} MiB/s");
    println!("  wasm    write {ww:>10.0} MiB/s   read {wr:>10.0} MiB/s");
    println!("  efficiency: write {write_eff:.3}, read {read_eff:.3}\n");

    let rows_data = ior_figure(&profile, &[1, 4, 8, 12, 16], 4, write_eff, read_eff);
    println!("  projected 4-node aggregate bandwidth (MiB/s):");
    println!(
        "  {:>10} {:>14} {:>14} {:>14} {:>14}",
        "block MiB", "native write", "wasm write", "native read", "wasm read"
    );
    let mut rows = Vec::new();
    for r in &rows_data {
        println!(
            "  {:>10} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            r.block_mib, r.native_write_mibs, r.wasm_write_mibs, r.native_read_mibs, r.wasm_read_mibs
        );
        rows.push(vec![
            r.block_mib.to_string(),
            format!("{:.0}", r.native_write_mibs),
            format!("{:.0}", r.wasm_write_mibs),
            format!("{:.0}", r.native_read_mibs),
            format!("{:.0}", r.wasm_read_mibs),
        ]);
    }
    println!("\n  (paper: wasm ~40206 MiB/s write, ~29411 MiB/s read — no significant wasm penalty)");
    let path = write_csv(
        "fig5b.csv",
        "block_mib,native_write,wasm_write,native_read,wasm_read",
        &rows,
    );
    println!("wrote {}", path.display());
}

//! Figure 5a: NPB IS total Mop/s over rank counts, and NPB DT throughput
//! per topology with the SIMD ablation (Native vs WASM w/o SIMD vs WASM
//! w/ SIMD).

use hpc_benchmarks::{npb_dt, npb_is};
use mpiwasm_bench::figures::{dt_figure, is_scaling};
use mpiwasm_bench::measure::{measure_dt, measure_embedder_overhead, measure_is, quick};
use mpiwasm_bench::write_csv;
use netsim::SystemProfile;

fn main() {
    let profile = SystemProfile::supermuc_ng();
    let overhead = measure_embedder_overhead();
    println!("Figure 5a — NPB IS and DT on {}\n", profile.name);

    // --- IS -------------------------------------------------------------
    let np = if quick() { 2 } else { 4 };
    let is_params = if quick() {
        npb_is::IsParams { keys_per_rank: 1024, max_key: 1 << 10, iters: 2 }
    } else {
        npb_is::IsParams { keys_per_rank: 8192, max_key: 1 << 14, iters: 3 }
    };
    let (native_s, wasm_s, total) = measure_is(np, is_params);
    println!(
        "IS executed at {np} ranks: native {:.1}ms, guest {:.1}ms, {} keys ranked",
        native_s * 1e3,
        wasm_s * 1e3,
        total
    );
    // Per-rank compute time per iteration, the scaling model's input.
    let t_native = native_s / is_params.iters as f64;
    let t_wasm_measured = wasm_s / is_params.iters as f64;
    // Project the interpreter kernel onto the compiled-Wasm factor
    // (DESIGN.md #1); keep the measured value in the printout.
    let t_wasm = t_native * mpiwasm_bench::WASM_COMPUTE_FACTOR;
    println!(
        "  (guest/native kernel ratio measured {:.1}x on the interpreter; projected {:.2}x compiled)",
        t_wasm_measured / t_native,
        mpiwasm_bench::WASM_COMPUTE_FACTOR
    );

    let rank_counts = [64u32, 128, 256, 512, 1024];
    let pts = is_scaling(&profile, 1 << 16, &rank_counts, t_native, t_wasm, &overhead);
    println!("\n  IS total Mop/s (keys ranked per second, millions):");
    println!("  {:>6} {:>14} {:>14} {:>9}", "ranks", "Native", "WASM", "ratio");
    let mut rows = Vec::new();
    for p in &pts {
        println!(
            "  {:>6} {:>14.1} {:>14.1} {:>9.3}",
            p.ranks,
            p.native_mops,
            p.wasm_mops,
            p.wasm_mops / p.native_mops
        );
        rows.push(vec![
            "IS".into(),
            p.ranks.to_string(),
            format!("{:.2}", p.native_mops),
            format!("{:.2}", p.wasm_mops),
        ]);
    }
    println!("  (paper: WASM 8260 vs native 8546 average Mop/s — ~3% gap)");

    // --- DT -------------------------------------------------------------
    let dt_np = if quick() { 4 } else { 8 };
    let dt_params = if quick() {
        npb_dt::DtParams { elems: 512, iters: 2, ..Default::default() }
    } else {
        npb_dt::DtParams { elems: 8192, iters: 4, ..Default::default() }
    };
    println!("\n  DT total throughput (MB/s) per topology:");
    println!(
        "  {:>4} {:>12} {:>16} {:>14} {:>22}",
        "topo", "Native", "WASM w/o SIMD", "WASM w SIMD", "measured SIMD speedup"
    );
    let mut measured = Vec::new();
    for topology in npb_dt::Topology::ALL {
        let p = npb_dt::DtParams { topology, ..dt_params };
        let (native, scalar, simd) = measure_dt(dt_np, p);
        measured.push((topology, native, scalar, simd));
    }
    for row in dt_figure(dt_params, dt_np, &measured) {
        println!(
            "  {:>4} {:>12.1} {:>16.1} {:>14.1} {:>21.2}x",
            row.topology.short_name(),
            row.native_mbs,
            row.wasm_mbs,
            row.wasm_simd_mbs,
            row.measured_simd_speedup
        );
        rows.push(vec![
            format!("DT-{}", row.topology.short_name()),
            dt_np.to_string(),
            format!("{:.2}", row.native_mbs),
            format!("{:.2}", row.wasm_simd_mbs),
        ]);
    }
    println!("  (paper: SIMD gives 1.36x over no-SIMD; native leads both — 128- vs 512-bit vectors)");

    let path = write_csv("fig5a.csv", "series,ranks,native,wasm", &rows);
    println!("\nwrote {}", path.display());
}

//! Figure 5c: HPCG GFLOP/s and memory bandwidth on the HPC system, small
//! panel (4..144 ranks) and large panel (192..6144 ranks) — including the
//! paper's headline effect: Wasm tracks native up to ~192 ranks, then the
//! per-Allreduce translation cost erodes performance to a ~14% gap at
//! 6144 ranks.

use hpc_benchmarks::hpcg;
use mpiwasm_bench::figures::hpcg_scaling;
use mpiwasm_bench::measure::{measure_embedder_overhead, measure_hpcg_kernel, quick};
use mpiwasm_bench::{plot::ascii_chart, write_csv};
use netsim::SystemProfile;

fn main() {
    let profile = SystemProfile::supermuc_ng();
    let overhead = measure_embedder_overhead();
    println!("Figure 5c — HPCG on {}\n", profile.name);

    let params = if quick() {
        hpcg::HpcgParams { nx: 8, ny: 8, nz: 8, iters: 5 }
    } else {
        hpcg::HpcgParams::default()
    };
    let (t_native, t_wasm_interp) = measure_hpcg_kernel(params);
    println!(
        "measured HPCG kernel: native {:.3}ms/iter (guest engine {:.3}ms/iter; figures use the compiled-Wasm factor)",
        t_native * 1e3,
        t_wasm_interp * 1e3
    );
    println!("measured embedder overhead: {:.3}us per MPI call\n", overhead.total_us());

    let mut rows = Vec::new();
    for (panel, ranks) in [
        ("small scale", vec![4u32, 8, 16, 48, 96, 144]),
        ("large scale", vec![192u32, 768, 1536, 3072, 6144]),
    ] {
        let pts = hpcg_scaling(&profile, params, &ranks, t_native, &overhead);
        println!("  HPCG {panel}:");
        println!(
            "  {:>6} {:>16} {:>16} {:>8} {:>12} {:>12}",
            "ranks", "native GFLOP/s", "wasm GFLOP/s", "gap", "native GB/s", "wasm GB/s"
        );
        for p in &pts {
            let gap = 1.0 - p.wasm_gflops / p.native_gflops;
            println!(
                "  {:>6} {:>16.2} {:>16.2} {:>7.1}% {:>12.1} {:>12.1}",
                p.ranks,
                p.native_gflops,
                p.wasm_gflops,
                gap * 100.0,
                p.native_gbs,
                p.wasm_gbs
            );
            rows.push(vec![
                p.ranks.to_string(),
                format!("{:.3}", p.native_gflops),
                format!("{:.3}", p.wasm_gflops),
                format!("{:.3}", p.native_gbs),
                format!("{:.3}", p.wasm_gbs),
            ]);
        }
        let labels: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
        let native: Vec<f64> = pts.iter().map(|p| p.native_gflops).collect();
        let wasm: Vec<f64> = pts.iter().map(|p| p.wasm_gflops).collect();
        println!(
            "{}",
            ascii_chart(
                &format!("HPCG GFLOP/s, {panel}"),
                &labels,
                &[("Native", &native), ("WASM", &wasm)],
                9
            )
        );
    }
    println!("  (paper: parity through 192 ranks, 14% GFLOP/s reduction at 6144 ranks,");
    println!("   driven by Allreduce frequency x datatype-translation cost)");
    let path = write_csv(
        "fig5c.csv",
        "ranks,native_gflops,wasm_gflops,native_gbs,wasm_gbs",
        &rows,
    );
    println!("wrote {}", path.display());
}

//! Figure 3: Intel MPI Benchmarks, native vs Wasm, on the HPC-system
//! profile (SuperMUC-NG, OmniPath) — all nine routines over the
//! 2^0..2^22-byte sweep, at the paper's rank counts (768 and 6144 for the
//! dual-panel routines).
//!
//! Wire times come from the interconnect model; the Wasm series adds the
//! *measured* embedder overhead. Small-scale executed runs (threaded ranks
//! under virtual clocks) validate the model; their deltas are printed.

use hpc_benchmarks::{imb, imb_message_sizes};
use mpiwasm_bench::figures::{imb_model_series, max_bandwidth_gib};
use mpiwasm_bench::measure::{imb_executed_virtual, measure_embedder_overhead, quick};
use mpiwasm_bench::{gm_slowdown, plot::ascii_chart, print_series_table, write_csv};
use netsim::SystemProfile;

fn main() {
    let profile = SystemProfile::supermuc_ng();
    println!("Figure 3 — IMB on {}", profile.name);
    let overhead = measure_embedder_overhead();
    println!(
        "measured embedder overhead: trampoline {:.3}us + translation {:.3}us = {:.3}us/call\n",
        overhead.trampoline_us,
        overhead.translation_us,
        overhead.total_us()
    );

    let sizes = imb_message_sizes();
    let mut rows = Vec::new();
    let mut summary = Vec::new();

    for routine in imb::ImbRoutine::ALL {
        // PingPong runs on 2 ranks; Reduce/Gather/Scatter additionally at
        // 768 ranks in the paper; everything else at 6144.
        let rank_counts: &[u32] = match routine {
            imb::ImbRoutine::PingPong => &[2],
            imb::ImbRoutine::Reduce | imb::ImbRoutine::Gather | imb::ImbRoutine::Scatter => {
                &[768, 6144]
            }
            _ => &[6144],
        };
        for &ranks in rank_counts {
            // The aggregate-footprint routines cap at 2^17 per rank at
            // 6144 ranks, as the paper's axes do.
            let max_log = if routine.scales_with_ranks() && ranks >= 768 { 17 } else { 22 };
            let sizes_here: Vec<u32> =
                sizes.iter().copied().filter(|b| b.ilog2() <= max_log).collect();
            let pts = imb_model_series(&profile, routine, ranks, &sizes_here, &overhead);
            let native: Vec<f64> = pts.iter().map(|p| p.native_us).collect();
            let wasm: Vec<f64> = pts.iter().map(|p| p.wasm_us).collect();
            let slowdown = gm_slowdown(&native, &wasm);
            summary.push((routine.name(), ranks, slowdown));
            let labels: Vec<String> =
                sizes_here.iter().map(|b| format!("{}", b.ilog2())).collect();
            println!(
                "{}",
                ascii_chart(
                    &format!(
                        "{} {} ranks — iteration time (us) vs log2(bytes)",
                        routine.name(),
                        ranks
                    ),
                    &labels,
                    &[("Native", &native), ("WASM", &wasm)],
                    10,
                )
            );
            for p in &pts {
                rows.push(vec![
                    routine.name().to_string(),
                    ranks.to_string(),
                    p.bytes.to_string(),
                    format!("{:.4}", p.native_us),
                    format!("{:.4}", p.wasm_us),
                ]);
            }
            if routine == imb::ImbRoutine::PingPong {
                println!(
                    "  max bandwidth: native {:.2} GiB/s, wasm {:.2} GiB/s (paper: 12.80 / 13.44)\n",
                    max_bandwidth_gib(&pts, false),
                    max_bandwidth_gib(&pts, true)
                );
            }
        }
    }

    println!("\nGM slowdowns (paper §4.5: PingPong 0.05, SendRecv 0.06, Bcast 0.13,");
    println!("Allreduce 0.06, Allgather 0.06, Alltoall 0.10, Reduce 0.12/0.05,");
    println!("Gather 0.14/0.10, Scatter 0.05/0.08):");
    for (name, ranks, s) in &summary {
        println!("  {name:<10} {ranks:>5} ranks: {s:+.3}");
    }

    // Model validation: executed threaded ranks under virtual clocks.
    let np = if quick() { 4 } else { 8 };
    println!("\nmodel validation at {np} executed ranks (virtual clocks):");
    for routine in [imb::ImbRoutine::Allreduce, imb::ImbRoutine::Bcast] {
        let sweep: Vec<(u32, u32)> = [64u32, 4096].iter().map(|&b| (b, 4)).collect();
        let (native, wasm) =
            imb_executed_virtual(&profile, routine, np, &sweep, overhead.total_us());
        for ((log, n_us), (_, w_us)) in native.iter().zip(&wasm) {
            println!(
                "  {:<10} 2^{log:<2}B executed: native {n_us:>8.3}us wasm {w_us:>8.3}us (wasm/native {:.3})",
                routine.name(),
                w_us / n_us
            );
        }
    }

    let xs: Vec<String> = summary.iter().map(|(n, r, _)| format!("{n}@{r}")).collect();
    let slow: Vec<f64> = summary.iter().map(|(_, _, s)| s.max(1e-4)).collect();
    print_series_table("GM slowdown per routine", "routine", &xs, &[("slowdown", &slow)]);

    let path = write_csv("fig3.csv", "routine,ranks,bytes,native_us,wasm_us", &rows);
    println!("\nwrote {}", path.display());
}

//! Table 2: binary sizes — "native dynamically linked" vs "statically
//! linked" vs Wasm — for the five benchmark applications.
//!
//! Size analogs (DESIGN.md substitution #5):
//! * **Wasm** — the actual bytes of the generated module,
//! * **native dynamic** — the compiled-code artifact for the application
//!   alone (the engine's serialized Max-tier IR minus the embedded module
//!   copy), i.e. code that links against a shared runtime,
//! * **native static** — the application artifact plus the runtime image
//!   every static binary must carry (measured as this harness binary,
//!   which statically contains the MPI substrate, engine and WASI layer —
//!   the `libmpi.a`/`libc.a` analog).

use hpc_benchmarks::{hpcg, imb, ior, npb_dt, npb_is};
use mpiwasm::cache::store_artifact;
use mpiwasm_bench::write_csv;
use wasm_engine::runtime::CompiledModule;
use wasm_engine::Tier;

fn main() {
    let builders: Vec<(&str, fn() -> Vec<u8>)> = vec![
        ("Intel MPI Benchmarks", || {
            imb::build_guest(
                imb::ImbRoutine::Allreduce,
                &hpc_benchmarks::imb_message_sizes()
                    .iter()
                    .map(|&b| (b, 10))
                    .collect::<Vec<_>>(),
            )
        }),
        ("HPCG", || hpcg::build_guest(hpcg::HpcgParams::default())),
        ("IOR", || ior::build_guest(ior::IorParams::default())),
        ("IS", || npb_is::build_guest(npb_is::IsParams::default())),
        ("DT", || {
            npb_dt::build_guest(npb_dt::DtParams { simd: true, ..Default::default() })
        }),
    ];
    let apps: Vec<(&str, Vec<u8>)> =
        builders.into_iter().map(|(name, build)| (name, build())).collect();

    let runtime_image = std::env::current_exe()
        .and_then(std::fs::metadata)
        .map(|m| m.len())
        .unwrap_or(16 << 20);

    println!("Table 2 — binary sizes (KiB unless noted)");
    println!(
        "{:<24} {:>16} {:>18} {:>12} {:>14}",
        "Application", "Dynamic (KiB)", "Static (MiB)", "Wasm (KiB)", "static/wasm"
    );
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (name, wasm_bytes) in &apps {
        let module = wasm_engine::decode_module(wasm_bytes).unwrap();
        let compiled = CompiledModule::compile(module, Tier::Max).unwrap();
        let artifact = store_artifact(wasm_bytes, &compiled);
        let dynamic = (artifact.len() - wasm_bytes.len()) as f64;
        let static_size = dynamic + runtime_image as f64;
        let wasm = wasm_bytes.len() as f64;
        let ratio = static_size / wasm;
        ratios.push(ratio);
        println!(
            "{:<24} {:>16.1} {:>18.2} {:>12.2} {:>13.1}x",
            name,
            dynamic / 1024.0,
            static_size / (1 << 20) as f64,
            wasm / 1024.0,
            ratio
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", dynamic),
            format!("{:.0}", static_size),
            format!("{:.0}", wasm),
            format!("{:.1}", ratio),
        ]);
    }
    let gm = mpiwasm_bench::geometric_mean(&ratios);
    println!("\nstatically-linked binaries are {gm:.1}x larger than Wasm on average");
    println!("(paper: 139.5x; ordering static >> wasm reproduced structurally)");
    let path = write_csv(
        "table2.csv",
        "application,dynamic_bytes,static_bytes,wasm_bytes,static_over_wasm",
        &rows,
    );
    println!("wrote {}", path.display());
}

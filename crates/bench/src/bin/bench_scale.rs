//! Collective latency vs rank count under the virtual clock, emitting
//! `BENCH_scale.json` so the tuned schedules have a recorded scaling
//! trajectory.
//!
//! Usage: `bench_scale [out.json] [--check committed.json]` (default out
//! `BENCH_scale.json`).
//!
//! One virtual-clock world per rank count in 64→4096 (the
//! `scale_cluster` profile, ranks on [`SMALL_STACK_BYTES`] stacks), each
//! running barrier, bcast, allreduce, allgather — and alltoall up to
//! 1024 ranks — with the tuning table's default selection. The recorded
//! latency is the simulated time of one call, maxed over ranks (the
//! slowest rank bounds the collective), and each cell names the
//! algorithm the selection table picked so curve changes are
//! attributable to schedule changes.
//!
//! Because the schedules really execute under the deterministic LogP
//! clock, the numbers are reproducible run-to-run: with `--check`, a
//! fresh cell more than [`REGRESSION_TOLERANCE`] *slower* (higher µs)
//! than the committed baseline exits non-zero, exactly like
//! `bench_p2p --check`.

use mpi_substrate::{
    run_world_configured, ClockMode, CollTuning, Datatype, ReduceOp, WorldConfig,
    SMALL_STACK_BYTES,
};
use netsim::{CostModel, SystemProfile};

const RANK_COUNTS: [u32; 4] = [64, 256, 1024, 4096];
const BCAST_BYTES: usize = 64 << 10;
const ALLREDUCE_BYTES: usize = 64 << 10;
const ALLGATHER_BLOCK: usize = 8;
const ALLTOALL_BLOCK: usize = 8;
/// Pairwise-volume ceiling: alltoall moves p·block per rank, so the
/// 4096-rank cell is skipped to keep the sweep fast.
const ALLTOALL_MAX_RANKS: u32 = 1024;

/// Maximum tolerated slowdown vs the committed baseline. The virtual
/// clock is deterministic, so this headroom is for intentional protocol
/// or model tweaks, not measurement noise.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Simulated per-call latency (µs, max over ranks) of each collective at
/// `p` ranks, with the algorithm the default tuning table selected.
fn measure(p: u32) -> Vec<(&'static str, String, f64)> {
    let include_a2a = p <= ALLTOALL_MAX_RANKS;
    let mode = ClockMode::Virtual(CostModel::native(SystemProfile::scale_cluster()));
    let cfg = WorldConfig::new(mode).with_stack_size(SMALL_STACK_BYTES);
    let per_rank = run_world_configured(p, cfg, move |comm| {
        let mut lat = Vec::new();

        comm.barrier().unwrap();
        let t0 = comm.wtime();
        comm.barrier().unwrap();
        lat.push(comm.wtime() - t0);

        let mut buf = vec![0x11u8; BCAST_BYTES];
        comm.barrier().unwrap();
        let t0 = comm.wtime();
        comm.bcast(&mut buf, 0).unwrap();
        lat.push(comm.wtime() - t0);

        let send = vec![0u8; ALLREDUCE_BYTES];
        let mut out = vec![0u8; ALLREDUCE_BYTES];
        comm.barrier().unwrap();
        let t0 = comm.wtime();
        comm.allreduce(&send, &mut out, Datatype::Double, ReduceOp::Sum).unwrap();
        lat.push(comm.wtime() - t0);

        let mine = [0x22u8; ALLGATHER_BLOCK];
        let mut gathered = vec![0u8; ALLGATHER_BLOCK * comm.size() as usize];
        comm.barrier().unwrap();
        let t0 = comm.wtime();
        comm.allgather(&mine, &mut gathered).unwrap();
        lat.push(comm.wtime() - t0);

        if include_a2a {
            let send = vec![0x33u8; ALLTOALL_BLOCK * comm.size() as usize];
            let mut recv = vec![0u8; ALLTOALL_BLOCK * comm.size() as usize];
            comm.barrier().unwrap();
            let t0 = comm.wtime();
            comm.alltoall(&send, &mut recv).unwrap();
            lat.push(comm.wtime() - t0);
        }
        lat
    });

    let t = CollTuning::new();
    let mut cells: Vec<(&'static str, String)> = vec![
        ("barrier", "dissemination".to_string()),
        ("bcast", t.select_bcast(p, BCAST_BYTES).name().to_string()),
        ("allreduce", t.select_allreduce(p, ALLREDUCE_BYTES).name().to_string()),
        ("allgather", t.select_allgather(p, ALLGATHER_BLOCK).name().to_string()),
    ];
    if include_a2a {
        cells.push(("alltoall", t.select_alltoall(p, ALLTOALL_BLOCK).name().to_string()));
    }
    cells
        .into_iter()
        .enumerate()
        .map(|(i, (coll, algo))| {
            let us = per_rank.iter().map(|lat| lat[i]).fold(0.0, f64::max) * 1e6;
            (coll, algo, us)
        })
        .collect()
}

/// Parse the (self-emitted) results format into gateable cells:
/// `(coll/np, µs)`, lower is better.
fn parse_cells(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let field = |key: &str| -> Option<&str> {
            let at = line.find(key)? + key.len();
            let rest = line[at..].trim_start_matches([':', ' ', '"']);
            Some(rest.split(['"', ',', '}']).next().unwrap_or("").trim())
        };
        if field("\"section\"") != Some("scale") {
            continue;
        }
        if let (Some(coll), Some(np), Some(us)) =
            (field("\"coll\""), field("\"np\""), field("\"us\""))
        {
            if let Ok(us) = us.parse::<f64>() {
                out.push((format!("{coll}/{np}"), us));
            }
        }
    }
    out
}

/// Cells slower than the committed baseline by more than the tolerance:
/// (key, committed, fresh).
fn check_regressions(
    committed: &[(String, f64)],
    fresh: &[(String, f64)],
) -> Vec<(String, f64, f64)> {
    let mut bad = Vec::new();
    for (key, old) in committed {
        let Some((_, new)) = fresh.iter().find(|(k, _)| k == key) else {
            continue; // cell removed: not a regression
        };
        if *new > *old * (1.0 + REGRESSION_TOLERANCE) {
            bad.push((key.clone(), *old, *new));
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_scale.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check_path = Some(it.next().expect("--check needs a baseline path"));
        } else {
            out_path = a;
        }
    }

    let mut lines: Vec<String> = Vec::new();
    println!("== collective latency vs rank count (virtual clock, scale_cluster) ==");
    for p in RANK_COUNTS {
        for (coll, algo, us) in measure(p) {
            println!("np {p:>5}  {coll:>9}  {algo:>20}  {us:>12.2} us");
            lines.push(format!(
                "  {{\"section\": \"scale\", \"coll\": \"{coll}\", \"np\": {p}, \
                 \"algo\": \"{algo}\", \"us\": {us:.2}}}"
            ));
        }
    }

    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    std::fs::write(&out_path, &json).expect("write json");
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let committed = parse_cells(&std::fs::read_to_string(&path).expect("read baseline"));
        assert!(!committed.is_empty(), "no baseline cells parsed from {path}");
        let fresh = parse_cells(&json);
        let bad = check_regressions(&committed, &fresh);
        if bad.is_empty() {
            println!(
                "perf check OK: all {} cells within {:.0}% of {path}",
                committed.len(),
                REGRESSION_TOLERANCE * 100.0
            );
        } else {
            for (key, old, new) in &bad {
                eprintln!(
                    "PERF REGRESSION scale/{key}: {old:.1} -> {new:.1} us ({:+.1}%)",
                    (new / old - 1.0) * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_format_and_flags_slowdowns() {
        let json = concat!(
            "[\n",
            "  {\"section\": \"scale\", \"coll\": \"bcast\", \"np\": 64, \"algo\": \"binomial-segmented\", \"us\": 100.00},\n",
            "  {\"section\": \"scale\", \"coll\": \"barrier\", \"np\": 256, \"algo\": \"dissemination\", \"us\": 20.00}\n",
            "]\n"
        );
        let cells = parse_cells(json);
        assert_eq!(
            cells,
            vec![("bcast/64".to_string(), 100.0), ("barrier/256".to_string(), 20.0)]
        );
        // 5% slower is tolerated, 20% is flagged; faster never flags.
        let fresh =
            vec![("bcast/64".to_string(), 105.0), ("barrier/256".to_string(), 24.0)];
        let bad = check_regressions(&cells, &fresh);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "barrier/256");
        let faster = vec![("bcast/64".to_string(), 50.0), ("barrier/256".to_string(), 10.0)];
        assert!(check_regressions(&cells, &faster).is_empty());
    }
}

//! Figure 7: MPIWasm vs the Faasm-style baseline on PingPong.
//!
//! Model curves for the paper's axes, plus a *real* wall-clock comparison:
//! the broker-mediated platform vs the embedder on this host.

use faasm_sim::{FaasmModel, FaasmPlatform};
use hpc_benchmarks::{imb, imb_message_sizes};
use mpiwasm::{JobConfig, Runner};
use mpiwasm_bench::figures::imb_model_series;
use mpiwasm_bench::measure::{measure_embedder_overhead, quick};
use mpiwasm_bench::{geometric_mean, plot::ascii_chart, write_csv};
use netsim::SystemProfile;

fn main() {
    let profile = SystemProfile::supermuc_ng();
    let overhead = measure_embedder_overhead();
    println!("Figure 7 — MPIWasm vs Faasm, PingPong on {}\n", profile.name);

    let sizes = imb_message_sizes();
    let faasm = FaasmModel::new(profile.clone());
    let mpiwasm_pts =
        imb_model_series(&profile, imb::ImbRoutine::PingPong, 2, &sizes, &overhead);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut mpiwasm_series = Vec::new();
    let mut faasm_series = Vec::new();
    for p in &mpiwasm_pts {
        let f_us = faasm.pingpong(p.bytes as usize).as_micros();
        ratios.push(f_us / p.wasm_us);
        mpiwasm_series.push(p.wasm_us);
        faasm_series.push(f_us);
        rows.push(vec![
            p.bytes.to_string(),
            format!("{:.4}", p.wasm_us),
            format!("{:.4}", f_us),
        ]);
    }
    let labels: Vec<String> = sizes.iter().map(|b| format!("{}", b.ilog2())).collect();
    println!(
        "{}",
        ascii_chart(
            "PingPong iteration time (us): MPIWasm vs Faasm",
            &labels,
            &[("MPIWasm", &mpiwasm_series), ("Faasm", &faasm_series)],
            12,
        )
    );
    println!(
        "GM speedup of MPIWasm over Faasm: {:.2}x (paper: 4.28x)\n",
        geometric_mean(&ratios)
    );

    // Real wall-clock cross-check on this host.
    let iters = if quick() { 50 } else { 400 };
    let bytes = 1024usize;
    let broker_us = FaasmPlatform::pingpong_us(bytes, iters);
    let wasm = imb::build_guest(imb::ImbRoutine::PingPong, &[(bytes as u32, iters)]);
    let result = Runner::new()
        .run(&wasm, JobConfig { np: 2, ..Default::default() })
        .unwrap();
    assert!(result.success());
    let embedder_us = result.ranks[0].reports[0].1;
    println!("executed on this host at {bytes}B x {iters} iters:");
    println!("  embedder (direct MPI):   {embedder_us:>8.2} us one-way");
    println!("  broker platform (Faasm): {broker_us:>8.2} us one-way");
    println!("  measured architecture penalty: {:.2}x", broker_us / embedder_us);

    let path = write_csv("fig7.csv", "bytes,mpiwasm_us,faasm_us", &rows);
    println!("\nwrote {}", path.display());
}

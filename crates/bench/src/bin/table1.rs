//! Table 1: compile duration and single-core HPCG performance for the
//! three compiler backends (Baseline/Optimizing/Max standing in for
//! Wasmer's Singlepass/Cranelift/LLVM).

use hpc_benchmarks::hpcg::HpcgParams;
use mpiwasm_bench::measure::{measure_tiers, quick};
use mpiwasm_bench::write_csv;

fn main() {
    let params = if quick() {
        HpcgParams { nx: 8, ny: 8, nz: 8, iters: 6 }
    } else {
        HpcgParams { nx: 16, ny: 16, nz: 16, iters: 25 }
    };
    println!("Table 1 — compiler backends on the HPCG Wasm module");
    println!("(paper: Singlepass 52ms/0.38 GF, Cranelift 150ms/1.32 GF, LLVM 2811ms/1.54 GF)\n");
    println!("{:<36} {:>18} {:>28}", "Compiler", "Compile (ms)", "Single-core (GFLOP/s)");

    let results = measure_tiers(params);
    let mut rows = Vec::new();
    for r in &results {
        println!("{:<36} {:>18.2} {:>28.4}", r.tier.to_string(), r.compile_ms, r.gflops);
        rows.push(vec![
            r.tier.to_string(),
            format!("{:.3}", r.compile_ms),
            format!("{:.5}", r.gflops),
        ]);
    }
    let path = write_csv("table1.csv", "compiler,compile_ms,gflops", &rows);
    println!("\nordering check: compile {} ; performance {}",
        if results.windows(2).all(|w| w[1].compile_ms >= w[0].compile_ms) { "Baseline < Optimizing < Max ✓" } else { "UNEXPECTED" },
        if results.windows(2).all(|w| w[1].gflops >= w[0].gflops) { "Baseline < Optimizing < Max ✓" } else { "UNEXPECTED" });
    println!("wrote {}", path.display());
}

//! Point-to-point protocol benchmark: eager vs rendezvous bandwidth and
//! communication/computation overlap, emitting `BENCH_p2p.json` so
//! protocol changes have a recorded perf trajectory.
//!
//! Usage: `bench_p2p [out.json]` (default `BENCH_p2p.json`).
//!
//! Three sections:
//!
//! * **bandwidth** — real-clock PingPong at sizes straddling the
//!   rendezvous threshold, interleaved A/B between the progress engine's
//!   default protocol and the seed's eager-only behavior
//!   (`ProtocolConfig::eager_only()`), best-of-N per arm. Above the
//!   threshold the rendezvous path copies each payload once
//!   (sender buffer → receive buffer) instead of twice (sender → mailbox
//!   heap box → receive buffer), which is the bandwidth win.
//! * **overlap** — Iallreduce and Isend/Irecv overlap kernels
//!   (`hpc_benchmarks::overlap`), blocking vs nonblocking per-iteration
//!   times.
//! * **imb_nbc_smoke** — the Wasm overlap guest through the full embedder
//!   under both clock modes (the CI smoke for the nonblocking guest ABI).

use std::sync::Arc;

use hpc_benchmarks::overlap::{self, OverlapParams};
use mpi_substrate::{
    run_world_with_protocol, ClockMode, ProtocolConfig, Source, Tag,
};
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};

const SIZES: [usize; 5] = [4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
const REPS: usize = 5;

/// One timed pingpong run: returns the best per-iteration one-way time in
/// ns for `bytes` under `protocol`.
fn pingpong_ns(bytes: usize, protocol: ProtocolConfig) -> f64 {
    let iters: usize = if bytes >= 1 << 20 { 20 } else { 100 };
    let out = run_world_with_protocol(2, ClockMode::Real, protocol, move |comm| {
        let sbuf = vec![0x5au8; bytes];
        let mut rbuf = vec![0u8; bytes];
        comm.barrier().unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            if comm.rank() == 0 {
                comm.send(&sbuf, 1, 0).unwrap();
                comm.recv(&mut rbuf, Source::Rank(1), Tag::Value(0)).unwrap();
            } else {
                comm.recv(&mut rbuf, Source::Rank(0), Tag::Value(0)).unwrap();
                comm.send(&sbuf, 0, 0).unwrap();
            }
        }
        t0.elapsed().as_nanos() as f64 / (2.0 * iters as f64)
    });
    // Rank 0's measurement (both agree to within the final barrier).
    out[0]
}

fn mb_per_s(bytes: usize, ns: f64) -> f64 {
    bytes as f64 / ns * 1e9 / 1e6
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_p2p.json".into());
    let mut lines: Vec<String> = Vec::new();

    // --- bandwidth: interleaved A/B, default (rendezvous) vs eager-only -
    println!("== p2p bandwidth (PingPong, np=2, real clock) ==");
    for &bytes in &SIZES {
        let mut best_rdv = f64::INFINITY;
        let mut best_eager = f64::INFINITY;
        for _ in 0..REPS {
            // Interleave the arms so scheduler noise hits both equally.
            best_rdv = best_rdv.min(pingpong_ns(bytes, ProtocolConfig::default_real()));
            best_eager = best_eager.min(pingpong_ns(bytes, ProtocolConfig::eager_only()));
        }
        let (r, e) = (mb_per_s(bytes, best_rdv), mb_per_s(bytes, best_eager));
        println!(
            "{:>9} B  default {:>9.1} MB/s   eager-only {:>9.1} MB/s   ratio {:.2}x",
            bytes,
            r,
            e,
            r / e
        );
        lines.push(format!(
            "  {{\"section\": \"bandwidth\", \"bytes\": {bytes}, \
             \"default_mb_s\": {r:.1}, \"eager_only_mb_s\": {e:.1}}}"
        ));
    }

    // --- overlap kernels -------------------------------------------------
    println!("== overlap (np=4 Iallreduce, np=2 p2p, real clock) ==");
    let coll_params = OverlapParams {
        bytes: 64 << 10,
        iters: 10,
        compute_units: 200_000,
        virtual_compute_us: 50.0,
    };
    let coll = run_world_with_protocol(
        4,
        ClockMode::Real,
        ProtocolConfig::default_real(),
        move |comm| overlap::run_native(&comm, coll_params),
    );
    let coll_block = coll.iter().map(|r| r.blocking_us).fold(0.0, f64::max);
    let coll_nb = coll.iter().map(|r| r.nonblocking_us).fold(0.0, f64::max);
    println!("iallreduce: blocking {coll_block:.1} us/iter, nonblocking {coll_nb:.1} us/iter");
    lines.push(format!(
        "  {{\"section\": \"overlap\", \"kernel\": \"iallreduce\", \
         \"blocking_us\": {coll_block:.2}, \"nonblocking_us\": {coll_nb:.2}}}"
    ));

    let p2p_params = OverlapParams {
        bytes: 1 << 20,
        iters: 10,
        compute_units: 200_000,
        virtual_compute_us: 50.0,
    };
    let p2p = run_world_with_protocol(
        2,
        ClockMode::Real,
        ProtocolConfig::default_real(),
        move |comm| overlap::run_native_p2p(&comm, p2p_params),
    );
    let p2p_block = p2p.iter().map(|r| r.blocking_us).fold(0.0, f64::max);
    let p2p_nb = p2p.iter().map(|r| r.nonblocking_us).fold(0.0, f64::max);
    println!("p2p 1MiB:   blocking {p2p_block:.1} us/iter, nonblocking {p2p_nb:.1} us/iter");
    lines.push(format!(
        "  {{\"section\": \"overlap\", \"kernel\": \"p2p_1mib\", \
         \"blocking_us\": {p2p_block:.2}, \"nonblocking_us\": {p2p_nb:.2}}}"
    ));

    // --- IMB-NBC guest smoke --------------------------------------------
    println!("== imb nbc guest smoke (np=4, real + virtual clocks) ==");
    let wasm = Arc::new(overlap::build_guest(OverlapParams {
        bytes: 4096,
        iters: 4,
        compute_units: 1000,
        virtual_compute_us: 5.0,
    }));
    let runner = Runner::new();
    for (name, clock) in [
        ("real", ClockMode::Real),
        ("virtual", ClockMode::Virtual(CostModel::native(SystemProfile::container()))),
    ] {
        let result = runner
            .run(&wasm, JobConfig { np: 4, clock, ..Default::default() })
            .expect("overlap guest launch");
        assert!(
            result.success(),
            "overlap guest failed under {name} clock: {:?}",
            result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
        );
        let reports = &result.ranks[0].reports;
        println!(
            "{name:>8} clock: blocking {:.1} us/iter, nonblocking {:.1} us/iter",
            reports[0].1, reports[1].1
        );
        lines.push(format!(
            "  {{\"section\": \"imb_nbc_smoke\", \"clock\": \"{name}\", \
             \"blocking_us\": {:.2}, \"nonblocking_us\": {:.2}}}",
            reports[0].1, reports[1].1
        ));
    }

    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}

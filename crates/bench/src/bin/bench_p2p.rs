//! Point-to-point protocol benchmark: eager vs rendezvous bandwidth and
//! communication/computation overlap, emitting `BENCH_p2p.json` so
//! protocol changes have a recorded perf trajectory.
//!
//! Usage: `bench_p2p [out.json] [--check committed.json]` (default out
//! `BENCH_p2p.json`).
//!
//! Three sections:
//!
//! * **bandwidth** — real-clock PingPong at sizes straddling the
//!   rendezvous threshold, interleaved A/B between the progress engine's
//!   default protocol and the seed's eager-only behavior
//!   (`ProtocolConfig::eager_only()`), best-of-N per arm. Above the
//!   threshold the rendezvous path copies each payload once
//!   (sender buffer → receive buffer) instead of twice (sender → mailbox
//!   heap box → receive buffer), which is the bandwidth win.
//! * **overlap** — Iallreduce, Isend/Irecv, and IMB-NBC-style Ialltoall
//!   overlap kernels (`hpc_benchmarks::overlap`), blocking vs nonblocking
//!   per-iteration times, best-of-N.
//! * **imb_nbc_smoke** — the Wasm overlap guests (Iallreduce and
//!   Ialltoall) through the full embedder under both clock modes (the CI
//!   smoke for the nonblocking guest ABI).
//!
//! With `--check`, the fresh numbers are compared against a committed
//! baseline, mirroring `bench_tiers --check`: a bandwidth cell more than
//! [`REGRESSION_TOLERANCE`] *slower* (lower MB/s) or an overlap cell more
//! than the tolerance *higher* (µs/iter) than the committed value exits
//! non-zero. The noisy guest-smoke cells are reported but not gated.

use std::sync::Arc;

use hpc_benchmarks::overlap::{self, OverlapParams, OverlapResult};
use mpi_substrate::{
    run_world_with_protocol, ClockMode, Comm, ProtocolConfig, Source, Tag,
};
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};

const SIZES: [usize; 5] = [4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
const REPS: usize = 5;
/// Best-of reps for the overlap kernels (they feed the `--check` gate).
const OVERLAP_REPS: usize = 3;

/// Maximum tolerated regression vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// One timed pingpong run: returns the best per-iteration one-way time in
/// ns for `bytes` under `protocol`.
fn pingpong_ns(bytes: usize, protocol: ProtocolConfig) -> f64 {
    let iters: usize = if bytes >= 1 << 20 { 20 } else { 100 };
    let out = run_world_with_protocol(2, ClockMode::Real, protocol, move |comm| {
        let sbuf = vec![0x5au8; bytes];
        let mut rbuf = vec![0u8; bytes];
        comm.barrier().unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            if comm.rank() == 0 {
                comm.send(&sbuf, 1, 0).unwrap();
                comm.recv(&mut rbuf, Source::Rank(1), Tag::Value(0)).unwrap();
            } else {
                comm.recv(&mut rbuf, Source::Rank(0), Tag::Value(0)).unwrap();
                comm.send(&sbuf, 0, 0).unwrap();
            }
        }
        t0.elapsed().as_nanos() as f64 / (2.0 * iters as f64)
    });
    // Rank 0's measurement (both agree to within the final barrier).
    out[0]
}

fn mb_per_s(bytes: usize, ns: f64) -> f64 {
    bytes as f64 / ns * 1e9 / 1e6
}

/// Best-of-N of an overlap kernel at `np` ranks, reduced across ranks by
/// max (slowest rank bounds the iteration).
fn overlap_best(
    np: u32,
    params: OverlapParams,
    kernel: impl Fn(&Comm, OverlapParams) -> OverlapResult + Send + Sync + Copy + 'static,
) -> (f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..OVERLAP_REPS {
        let out = run_world_with_protocol(
            np,
            ClockMode::Real,
            ProtocolConfig::default_real(),
            move |comm| kernel(&comm, params),
        );
        let block = out.iter().map(|r| r.blocking_us).fold(0.0, f64::max);
        let nb = out.iter().map(|r| r.nonblocking_us).fold(0.0, f64::max);
        best.0 = best.0.min(block);
        best.1 = best.1.min(nb);
    }
    best
}

/// Parse the (self-emitted) results format into gateable cells:
/// `(section, key, value)` where bandwidth cells carry `default_mb_s`
/// (higher is better) and overlap cells `nonblocking_us` (lower is
/// better). Smoke cells are skipped.
fn parse_cells(json: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let field = |key: &str| -> Option<&str> {
            let at = line.find(key)? + key.len();
            let rest = line[at..].trim_start_matches([':', ' ', '"']);
            Some(rest.split(['"', ',', '}']).next().unwrap_or("").trim())
        };
        match field("\"section\"") {
            Some("bandwidth") => {
                if let (Some(bytes), Some(v)) = (field("\"bytes\""), field("\"default_mb_s\"")) {
                    if let Ok(v) = v.parse::<f64>() {
                        out.push(("bandwidth".into(), bytes.to_string(), v));
                    }
                }
            }
            Some("overlap") => {
                if let (Some(k), Some(v)) = (field("\"kernel\""), field("\"nonblocking_us\"")) {
                    if let Ok(v) = v.parse::<f64>() {
                        out.push(("overlap".into(), k.to_string(), v));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Compare fresh cells against the committed baseline. Bandwidth
/// regresses downward, overlap upward. Returns (section, key, committed,
/// fresh) per regressed cell.
fn check_regressions(
    committed: &[(String, String, f64)],
    fresh: &[(String, String, f64)],
) -> Vec<(String, String, f64, f64)> {
    let mut bad = Vec::new();
    for (sec, key, old) in committed {
        let Some((_, _, new)) = fresh.iter().find(|(s, k, _)| s == sec && k == key) else {
            continue; // cell removed: not a regression
        };
        let regressed = match sec.as_str() {
            "bandwidth" => *new < *old * (1.0 - REGRESSION_TOLERANCE),
            _ => *new > *old * (1.0 + REGRESSION_TOLERANCE),
        };
        if regressed {
            bad.push((sec.clone(), key.clone(), *old, *new));
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_p2p.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check_path = Some(it.next().expect("--check needs a baseline path"));
        } else {
            out_path = a;
        }
    }

    let mut lines: Vec<String> = Vec::new();

    // --- bandwidth: interleaved A/B, default (rendezvous) vs eager-only -
    println!("== p2p bandwidth (PingPong, np=2, real clock) ==");
    for &bytes in &SIZES {
        let mut best_rdv = f64::INFINITY;
        let mut best_eager = f64::INFINITY;
        for _ in 0..REPS {
            // Interleave the arms so scheduler noise hits both equally.
            best_rdv = best_rdv.min(pingpong_ns(bytes, ProtocolConfig::default_real()));
            best_eager = best_eager.min(pingpong_ns(bytes, ProtocolConfig::eager_only()));
        }
        let (r, e) = (mb_per_s(bytes, best_rdv), mb_per_s(bytes, best_eager));
        println!(
            "{:>9} B  default {:>9.1} MB/s   eager-only {:>9.1} MB/s   ratio {:.2}x",
            bytes,
            r,
            e,
            r / e
        );
        lines.push(format!(
            "  {{\"section\": \"bandwidth\", \"bytes\": {bytes}, \
             \"default_mb_s\": {r:.1}, \"eager_only_mb_s\": {e:.1}}}"
        ));
    }

    // --- overlap kernels -------------------------------------------------
    println!("== overlap (np=4 Iallreduce/Ialltoall, np=2 p2p, real clock) ==");
    let coll_params = OverlapParams {
        bytes: 64 << 10,
        iters: 10,
        compute_units: 200_000,
        virtual_compute_us: 50.0,
    };
    let (coll_block, coll_nb) = overlap_best(4, coll_params, overlap::run_native);
    println!("iallreduce: blocking {coll_block:.1} us/iter, nonblocking {coll_nb:.1} us/iter");
    lines.push(format!(
        "  {{\"section\": \"overlap\", \"kernel\": \"iallreduce\", \
         \"blocking_us\": {coll_block:.2}, \"nonblocking_us\": {coll_nb:.2}}}"
    ));

    let p2p_params = OverlapParams {
        bytes: 1 << 20,
        iters: 10,
        compute_units: 200_000,
        virtual_compute_us: 50.0,
    };
    let (p2p_block, p2p_nb) = overlap_best(2, p2p_params, overlap::run_native_p2p);
    println!("p2p 1MiB:   blocking {p2p_block:.1} us/iter, nonblocking {p2p_nb:.1} us/iter");
    lines.push(format!(
        "  {{\"section\": \"overlap\", \"kernel\": \"p2p_1mib\", \
         \"blocking_us\": {p2p_block:.2}, \"nonblocking_us\": {p2p_nb:.2}}}"
    ));

    // IMB-style Ialltoall: 96 KiB per-peer blocks are rendezvous-sized,
    // so the kernel measures how much of the pairwise exchange the
    // request state machine hides behind compute.
    let a2a_params = OverlapParams {
        bytes: 96 << 10,
        iters: 10,
        compute_units: 200_000,
        virtual_compute_us: 50.0,
    };
    let (a2a_block, a2a_nb) = overlap_best(4, a2a_params, overlap::run_native_alltoall);
    println!("ialltoall:  blocking {a2a_block:.1} us/iter, nonblocking {a2a_nb:.1} us/iter");
    lines.push(format!(
        "  {{\"section\": \"overlap\", \"kernel\": \"ialltoall_96k\", \
         \"blocking_us\": {a2a_block:.2}, \"nonblocking_us\": {a2a_nb:.2}}}"
    ));

    // --- IMB-NBC guest smoke --------------------------------------------
    println!("== imb nbc guest smoke (np=4, real + virtual clocks) ==");
    let smoke_params = OverlapParams {
        bytes: 4096,
        iters: 4,
        compute_units: 1000,
        virtual_compute_us: 5.0,
    };
    let runner = Runner::new();
    for (kernel, wasm) in [
        ("iallreduce", Arc::new(overlap::build_guest(smoke_params))),
        ("ialltoall", Arc::new(overlap::build_alltoall_guest(smoke_params))),
    ] {
        for (name, clock) in [
            ("real", ClockMode::Real),
            ("virtual", ClockMode::Virtual(CostModel::native(SystemProfile::container()))),
        ] {
            let result = runner
                .run(&wasm, JobConfig { np: 4, clock, ..Default::default() })
                .expect("overlap guest launch");
            assert!(
                result.success(),
                "{kernel} guest failed under {name} clock: {:?}",
                result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
            );
            let reports = &result.ranks[0].reports;
            println!(
                "{kernel:>10} {name:>8} clock: blocking {:.1} us/iter, nonblocking {:.1} us/iter",
                reports[0].1, reports[1].1
            );
            lines.push(format!(
                "  {{\"section\": \"imb_nbc_smoke\", \"kernel\": \"{kernel}\", \
                 \"clock\": \"{name}\", \
                 \"blocking_us\": {:.2}, \"nonblocking_us\": {:.2}}}",
                reports[0].1, reports[1].1
            ));
        }
    }

    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    std::fs::write(&out_path, &json).expect("write json");
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let committed = parse_cells(&std::fs::read_to_string(&path).expect("read baseline"));
        assert!(!committed.is_empty(), "no baseline cells parsed from {path}");
        let fresh = parse_cells(&json);
        let bad = check_regressions(&committed, &fresh);
        if bad.is_empty() {
            println!(
                "perf check OK: all {} cells within {:.0}% of {path}",
                committed.len(),
                REGRESSION_TOLERANCE * 100.0
            );
        } else {
            for (sec, key, old, new) in &bad {
                eprintln!(
                    "PERF REGRESSION {sec}/{key}: {old:.1} -> {new:.1} ({:+.1}%)",
                    (new / old - 1.0) * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_format_and_flags_directional_regressions() {
        let json = concat!(
            "[\n",
            "  {\"section\": \"bandwidth\", \"bytes\": 4096, \"default_mb_s\": 1000.0, \"eager_only_mb_s\": 900.0},\n",
            "  {\"section\": \"overlap\", \"kernel\": \"ialltoall_96k\", \"blocking_us\": 50.00, \"nonblocking_us\": 40.00},\n",
            "  {\"section\": \"imb_nbc_smoke\", \"kernel\": \"ialltoall\", \"clock\": \"real\", \"blocking_us\": 1.00, \"nonblocking_us\": 1.00}\n",
            "]\n"
        );
        let cells = parse_cells(json);
        // Smoke cells are not gated.
        assert_eq!(
            cells,
            vec![
                ("bandwidth".into(), "4096".into(), 1000.0),
                ("overlap".into(), "ialltoall_96k".into(), 40.0),
            ]
        );
        // Bandwidth regresses downward; overlap upward. 10% either way is
        // tolerated, 20% is flagged.
        let fresh = vec![
            ("bandwidth".to_string(), "4096".to_string(), 800.0),
            ("overlap".to_string(), "ialltoall_96k".to_string(), 44.0),
        ];
        let bad = check_regressions(&cells, &fresh);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "bandwidth");
        let fresh_ok = vec![
            ("bandwidth".to_string(), "4096".to_string(), 900.0),
            ("overlap".to_string(), "ialltoall_96k".to_string(), 60.0),
        ];
        let bad = check_regressions(&cells, &fresh_ok);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "overlap");
    }
}

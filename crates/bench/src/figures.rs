//! Figure/table assembly: one function per paper artifact, combining the
//! measured software quantities with the interconnect models.

use hpc_benchmarks::{hpcg, imb, npb_dt};
use netsim::{CostModel, SystemProfile};

use crate::measure::EmbedderOverhead;
use crate::WASM_SIMD_GAP_FACTOR;

/// One series point of an IMB figure.
#[derive(Debug, Clone)]
pub struct ImbPoint {
    pub bytes: u32,
    pub native_us: f64,
    pub wasm_us: f64,
}

/// Model-driven IMB series at an arbitrary rank count (the 768/6144-rank
/// panels of Figure 3 and the 32-rank panels of Figure 4). The native
/// series uses the profile's native per-call cost, the WASM series adds
/// the measured embedder overhead per call.
pub fn imb_model_series(
    profile: &SystemProfile,
    routine: imb::ImbRoutine,
    ranks: u32,
    sizes: &[u32],
    overhead: &EmbedderOverhead,
) -> Vec<ImbPoint> {
    let native = CostModel::native(profile.clone());
    let wasm = CostModel::wasm(profile.clone(), overhead.total_us());
    sizes
        .iter()
        .map(|&bytes| {
            let eval = |m: &CostModel| match routine {
                imb::ImbRoutine::PingPong => m.pingpong(bytes as usize),
                imb::ImbRoutine::SendRecv => m.sendrecv(ranks, bytes as usize),
                imb::ImbRoutine::Bcast => m.bcast(ranks, bytes as usize),
                imb::ImbRoutine::Allreduce => m.allreduce(ranks, bytes as usize),
                imb::ImbRoutine::Allgather => m.allgather(ranks, bytes as usize),
                imb::ImbRoutine::Alltoall => m.alltoall(ranks, bytes as usize),
                imb::ImbRoutine::Reduce => m.reduce(ranks, bytes as usize),
                imb::ImbRoutine::Gather => m.gather(ranks, bytes as usize),
                imb::ImbRoutine::Scatter => m.scatter(ranks, bytes as usize),
            };
            ImbPoint {
                bytes,
                native_us: eval(&native).as_micros(),
                wasm_us: eval(&wasm).as_micros(),
            }
        })
        .collect()
}

/// Maximum achievable PingPong bandwidth over a size sweep, GiB/s
/// (the §4.5 "maximum bandwidth" numbers).
pub fn max_bandwidth_gib(points: &[ImbPoint], wasm: bool) -> f64 {
    points
        .iter()
        .map(|p| {
            let t = if wasm { p.wasm_us } else { p.native_us };
            p.bytes as f64 / (t * 1e-6) / (1u64 << 30) as f64
        })
        .fold(0.0, f64::max)
}

/// HPCG scaling model (Figures 4f and 5c).
///
/// Per CG iteration each rank spends:
/// * measured compute time (`t_compute_native`, or × the compiled-Wasm
///   factor for the WASM series),
/// * one halo exchange (two plane-sized p2p transfers), and
/// * two 8-byte Allreduces — whose cost on the Wasm path includes the
///   measured translation overhead plus the contention growth of §4.6
///   (read-lock acquisition in the `Env`), calibrated by
///   [`CONTENTION_PER_RANK_US`].
pub struct HpcgScalePoint {
    pub ranks: u32,
    pub native_gflops: f64,
    pub wasm_gflops: f64,
    pub native_gbs: f64,
    pub wasm_gbs: f64,
}

/// Calibration of the §4.6 contention effect: extra µs per Allreduce on
/// the Wasm path, linear in the rank count (every rank's translation takes
/// the `Env` read lock once per collective). Chosen so the reproduction
/// lands in the paper's band (≈0% gap at ≤192 ranks, ≈14% at 6144 — the
/// paper's own explanation of Figure 5c); see EXPERIMENTS.md.
pub const CONTENTION_PER_RANK_US: f64 = 0.0026;

/// HPCG-specific compiled-Wasm compute factor: the paper measures parity
/// with native at low rank counts, so the kernel factor is near 1.
pub const HPCG_WASM_COMPUTE_FACTOR: f64 = 1.02;

pub fn hpcg_scaling(
    profile: &SystemProfile,
    params: hpcg::HpcgParams,
    rank_counts: &[u32],
    t_compute_native_s: f64,
    overhead: &EmbedderOverhead,
) -> Vec<HpcgScalePoint> {
    let native = CostModel::native(profile.clone());
    let wasm = CostModel::wasm(profile.clone(), overhead.total_us());
    let plane_bytes = (params.nx * params.ny * 8) as usize;
    let flops = params.flops_per_iter();
    let bytes = params.bytes_per_iter();

    rank_counts
        .iter()
        .map(|&p| {
            let logp = (p.max(2) as f64).log2();
            let halo = profile.p2p_time(0, profile.cores_per_node.min(p - 1).max(1), plane_bytes)
                * 2.0;
            let _ = logp;
            let t_native_iter = t_compute_native_s * 1e6
                + halo.as_micros()
                + 2.0 * native.allreduce(p, 8).as_micros();
            let contention = CONTENTION_PER_RANK_US * p as f64;
            let t_wasm_iter = t_compute_native_s * HPCG_WASM_COMPUTE_FACTOR * 1e6
                + halo.as_micros()
                + 2.0 * (wasm.allreduce(p, 8).as_micros() + contention);
            let gf = |t_us: f64| p as f64 * flops / (t_us * 1e-6) / 1e9;
            let gb = |t_us: f64| p as f64 * bytes / (t_us * 1e-6) / 1e9;
            HpcgScalePoint {
                ranks: p,
                native_gflops: gf(t_native_iter),
                wasm_gflops: gf(t_wasm_iter),
                native_gbs: gb(t_native_iter),
                wasm_gbs: gb(t_wasm_iter),
            }
        })
        .collect()
}

/// IS scaling model (Figure 5a left): total Mop/s at `ranks`, from the
/// measured per-key compute rate and the modeled Alltoall costs.
pub struct IsScalePoint {
    pub ranks: u32,
    pub native_mops: f64,
    pub wasm_mops: f64,
}

pub fn is_scaling(
    profile: &SystemProfile,
    keys_per_rank: u32,
    rank_counts: &[u32],
    t_compute_native_s: f64,
    t_compute_wasm_s: f64,
    overhead: &EmbedderOverhead,
) -> Vec<IsScalePoint> {
    let native = CostModel::native(profile.clone());
    let wasm = CostModel::wasm(profile.clone(), overhead.total_us());
    rank_counts
        .iter()
        .map(|&p| {
            // Bucket exchange: counts (4 B) + keys (keys/p * 4 B per pair).
            let per_pair = (keys_per_rank / p.max(1)).max(1) as usize * 4;
            let t = |m: &CostModel, comp: f64| -> f64 {
                comp * 1e6
                    + m.allreduce(p, 4).as_micros()
                    + m.alltoall(p, 4).as_micros()
                    + m.alltoall(p, per_pair).as_micros()
            };
            let keys_total = keys_per_rank as f64 * p as f64;
            IsScalePoint {
                ranks: p,
                native_mops: keys_total / t(&native, t_compute_native_s) / 1.0,
                wasm_mops: keys_total / t(&wasm, t_compute_wasm_s) / 1.0,
            }
        })
        .collect()
}

/// DT throughput figure (Figure 5a right): MB/s per topology for Native,
/// WASM without SIMD, and WASM with SIMD.
///
/// The communication volume is measured (`bytes_per_iter`); the kernel
/// times come from the real runs, normalized so the compiled-Wasm factor
/// replaces the interpreter gap (DESIGN.md substitution #1). The
/// *SIMD-vs-no-SIMD ratio* is taken directly from the measured runs.
pub struct DtFigureRow {
    pub topology: npb_dt::Topology,
    pub native_mbs: f64,
    pub wasm_mbs: f64,
    pub wasm_simd_mbs: f64,
    /// The measured SIMD speedup of the guest kernel (paper: 1.36×).
    pub measured_simd_speedup: f64,
}

pub fn dt_figure(
    params: npb_dt::DtParams,
    np: u32,
    measured: &[(npb_dt::Topology, f64, f64, f64)],
) -> Vec<DtFigureRow> {
    measured
        .iter()
        .map(|&(topology, native_s, wasm_scalar_s, wasm_simd_s)| {
            let mb = params.bytes_per_iter(np) as f64 * params.iters as f64 / 1e6;
            let native_mbs = mb / native_s;
            let measured_simd_speedup = wasm_scalar_s / wasm_simd_s;
            // Projected compiled-Wasm times: native × SIMD-gap factor for
            // the vectorized build, and that × the measured SIMD speedup
            // backed out for the scalar build.
            let wasm_simd_t = native_s * WASM_SIMD_GAP_FACTOR;
            let wasm_scalar_t = wasm_simd_t * measured_simd_speedup.max(1.0);
            DtFigureRow {
                topology,
                native_mbs,
                wasm_mbs: mb / wasm_scalar_t,
                wasm_simd_mbs: mb / wasm_simd_t,
                measured_simd_speedup,
            }
        })
        .collect()
}

/// IOR figure (Figure 5b): aggregate bandwidth over block sizes, scaling
/// the PFS model by the measured Wasm/native efficiency.
pub struct IorFigureRow {
    pub block_mib: u32,
    pub native_write_mibs: f64,
    pub wasm_write_mibs: f64,
    pub native_read_mibs: f64,
    pub wasm_read_mibs: f64,
}

pub fn ior_figure(
    profile: &SystemProfile,
    block_sizes_mib: &[u32],
    nodes: u32,
    measured_write_eff: f64,
    measured_read_eff: f64,
) -> Vec<IorFigureRow> {
    // The paper's 4-node runs reach ~40 GiB/s write / ~29 GiB/s read of a
    // 47 GiB/s per-4-node share. Model: the share, degraded slightly for
    // small blocks (per-op overhead), times the measured efficiency.
    let share_mibs = profile.pfs_bw_bytes_per_us * 1e6 / (1 << 20) as f64
        * (nodes as f64 / profile.nodes.max(1) as f64);
    block_sizes_mib
        .iter()
        .map(|&mib| {
            let small_block_penalty = 1.0 - 0.18 / (mib as f64).sqrt();
            let write = share_mibs * 0.85 * small_block_penalty;
            let read = share_mibs * 0.62 * small_block_penalty;
            IorFigureRow {
                block_mib: mib,
                native_write_mibs: write,
                wasm_write_mibs: write * measured_write_eff.min(1.05),
                native_read_mibs: read,
                wasm_read_mibs: read * measured_read_eff.min(1.05),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gm_slowdown;
    use mpiwasm::translate::TranslationStats;

    fn fake_overhead(us: f64) -> EmbedderOverhead {
        EmbedderOverhead {
            trampoline_us: us / 2.0,
            translation_us: us / 2.0,
            stats: TranslationStats::new(),
        }
    }

    #[test]
    fn imb_model_wasm_always_slower_but_bounded() {
        let profile = SystemProfile::supermuc_ng();
        let overhead = fake_overhead(0.2);
        let sizes: Vec<u32> = (0..=22).map(|l| 1 << l).collect();
        for routine in imb::ImbRoutine::ALL {
            let ranks = if routine == imb::ImbRoutine::PingPong { 2 } else { 768 };
            let pts = imb_model_series(&profile, routine, ranks, &sizes, &overhead);
            let native: Vec<f64> = pts.iter().map(|p| p.native_us).collect();
            let wasm: Vec<f64> = pts.iter().map(|p| p.wasm_us).collect();
            let slowdown = gm_slowdown(&native, &wasm);
            assert!(slowdown > 0.0, "{routine:?} wasm not slower");
            assert!(
                slowdown < 0.25,
                "{routine:?} slowdown {slowdown} outside the paper's band"
            );
        }
    }

    #[test]
    fn pingpong_max_bandwidth_near_line_rate() {
        let profile = SystemProfile::supermuc_ng();
        let overhead = fake_overhead(0.15);
        let sizes: Vec<u32> = (0..=22).map(|l| 1 << l).collect();
        let pts = imb_model_series(&profile, imb::ImbRoutine::PingPong, 2, &sizes, &overhead);
        let native_bw = max_bandwidth_gib(&pts, false);
        // Paper: 12.80 GiB/s native on the OmniPath system.
        assert!((8.0..14.0).contains(&native_bw), "{native_bw} GiB/s");
        let wasm_bw = max_bandwidth_gib(&pts, true);
        assert!((wasm_bw - native_bw).abs() / native_bw < 0.1);
    }

    #[test]
    fn hpcg_gap_grows_with_ranks_to_paper_band() {
        let profile = SystemProfile::supermuc_ng();
        let overhead = fake_overhead(0.2);
        let params = hpcg::HpcgParams::default();
        let pts = hpcg_scaling(
            &profile,
            params,
            &[48, 192, 768, 1536, 3072, 6144],
            300e-6, // 300µs compute per iteration per rank
            &overhead,
        );
        let gap = |p: &HpcgScalePoint| 1.0 - p.wasm_gflops / p.native_gflops;
        let g192 = gap(&pts[1]);
        let g6144 = gap(&pts[5]);
        assert!(g192 < 0.10, "gap at 192 ranks too large: {g192}");
        assert!((0.08..0.25).contains(&g6144), "gap at 6144 ranks: {g6144}");
        assert!(g6144 > g192, "gap must grow with scale");
        // Throughput itself keeps growing (weak scaling).
        assert!(pts[5].native_gflops > pts[0].native_gflops * 10.0);
    }

    #[test]
    fn is_scaling_grows_then_saturates() {
        let profile = SystemProfile::supermuc_ng();
        let overhead = fake_overhead(0.2);
        let pts = is_scaling(&profile, 65536, &[64, 128, 256, 512, 1024], 3e-3, 3.3e-3, &overhead);
        assert!(pts[1].native_mops > pts[0].native_mops, "more ranks, more Mop/s");
        for p in &pts {
            assert!(p.wasm_mops < p.native_mops);
            assert!(p.wasm_mops / p.native_mops > 0.8, "IS gap too large");
        }
    }

    #[test]
    fn dt_figure_preserves_measured_simd_ratio() {
        let params = npb_dt::DtParams { elems: 1024, iters: 4, ..Default::default() };
        let rows = dt_figure(
            params,
            8,
            &[(npb_dt::Topology::BlackHole, 0.010, 0.80, 0.55)],
        );
        let r = &rows[0];
        assert!((r.measured_simd_speedup - 0.80 / 0.55).abs() < 1e-9);
        assert!(r.native_mbs > r.wasm_simd_mbs);
        assert!(r.wasm_simd_mbs > r.wasm_mbs);
        let ratio = r.wasm_simd_mbs / r.wasm_mbs;
        assert!((ratio - r.measured_simd_speedup).abs() < 1e-9);
    }

    #[test]
    fn ior_figure_shapes() {
        let profile = SystemProfile::supermuc_ng();
        let rows = ior_figure(&profile, &[1, 4, 8, 12, 16], 4, 0.98, 0.97);
        for r in &rows {
            assert!(r.native_write_mibs > r.native_read_mibs);
            let weff = r.wasm_write_mibs / r.native_write_mibs;
            assert!((0.9..=1.05).contains(&weff));
        }
        // Larger blocks approach the share.
        assert!(rows[4].native_write_mibs > rows[0].native_write_mibs);
    }
}

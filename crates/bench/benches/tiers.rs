//! Criterion bench behind Table 1: compile time and execution throughput
//! of the three tiers on the HPCG module, plus the ablation DESIGN.md
//! calls out (what each Max-tier optimization pass buys).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpc_benchmarks::hpcg::{build_guest, HpcgParams};
use mpiwasm::{JobConfig, Runner};
use wasm_engine::runtime::CompiledModule;
use wasm_engine::Tier;

fn params() -> HpcgParams {
    HpcgParams { nx: 6, ny: 6, nz: 6, iters: 2 }
}

fn bench_compile(c: &mut Criterion) {
    let wasm = build_guest(params());
    let module = wasm_engine::decode_module(&wasm).unwrap();
    let mut group = c.benchmark_group("compile");
    for tier in Tier::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |b, &tier| {
            b.iter(|| CompiledModule::compile(module.clone(), tier).unwrap());
        });
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let wasm = build_guest(params());
    let runner = Runner::new();
    let mut group = c.benchmark_group("hpcg-execute");
    group.sample_size(10);
    for tier in Tier::ALL {
        let compiled = runner.prepare(&wasm, tier).unwrap().0;
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |b, &tier| {
            b.iter(|| {
                let result = runner
                    .run_compiled(&compiled, JobConfig { np: 1, tier, ..Default::default() })
                    .unwrap();
                assert!(result.success());
            });
        });
    }
    group.finish();
}

fn bench_ir_passes(c: &mut Criterion) {
    // Ablation: flatten-only vs full optimization pipeline.
    let wasm = build_guest(params());
    let module = wasm_engine::decode_module(&wasm).unwrap();
    let mut group = c.benchmark_group("ir-passes");
    for (name, opt) in [("flatten-only", 0u8), ("full-pipeline", 2u8)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for f in &module.functions {
                    std::hint::black_box(wasm_engine::ir::compile(&module, f, opt));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_execute, bench_ir_passes);
criterion_main!(benches);

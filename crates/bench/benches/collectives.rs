//! Criterion bench over the MPI substrate's collectives and cost models —
//! the machinery behind Figures 3/4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_substrate::{run_world, Datatype, ReduceOp};
use netsim::{CostModel, SystemProfile};

fn bench_executed_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("executed-np4");
    group.sample_size(10);
    group.bench_function("allreduce-8B", |b| {
        b.iter(|| {
            run_world(4, |comm| {
                let v = 1.0f64.to_le_bytes();
                let mut out = [0u8; 8];
                for _ in 0..10 {
                    comm.allreduce(&v, &mut out, Datatype::Double, ReduceOp::Sum).unwrap();
                }
            });
        });
    });
    group.bench_function("bcast-4KiB", |b| {
        b.iter(|| {
            run_world(4, |comm| {
                let mut buf = vec![0u8; 4096];
                for _ in 0..10 {
                    comm.bcast(&mut buf, 0).unwrap();
                }
            });
        });
    });
    group.finish();
}

fn bench_cost_models(c: &mut Criterion) {
    let model = CostModel::native(SystemProfile::supermuc_ng());
    let mut group = c.benchmark_group("cost-model");
    for ranks in [48u32, 768, 6144] {
        group.bench_with_input(
            BenchmarkId::new("allreduce", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    for log in 0..=22u32 {
                        std::hint::black_box(model.allreduce(ranks, 1usize << log));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_executed_collectives, bench_cost_models);
criterion_main!(benches);

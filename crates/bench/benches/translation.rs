//! Criterion bench behind Figure 6: the embedder's translation costs —
//! datatype handle translation, byte-length computation, and the
//! instrumented recording path itself.

use criterion::{criterion_group, criterion_main, Criterion};
use mpi_substrate::Datatype;
use mpiwasm::translate::{byte_len, datatype_from_handle, op_from_handle, TranslationStats};

fn bench_handle_translation(c: &mut Criterion) {
    c.bench_function("datatype_from_handle", |b| {
        b.iter(|| {
            for h in 0..8 {
                std::hint::black_box(datatype_from_handle(std::hint::black_box(h)).unwrap());
            }
        });
    });
    c.bench_function("op_from_handle", |b| {
        b.iter(|| {
            for h in 0..9 {
                std::hint::black_box(op_from_handle(std::hint::black_box(h)).unwrap());
            }
        });
    });
    c.bench_function("byte_len", |b| {
        b.iter(|| {
            std::hint::black_box(
                byte_len(std::hint::black_box(4096), Datatype::Double).unwrap(),
            );
        });
    });
}

fn bench_stats_recording(c: &mut Criterion) {
    c.bench_function("stats_record", |b| {
        let mut stats = TranslationStats::new();
        b.iter(|| {
            stats.record(Datatype::Double, std::hint::black_box(8192), 100.0);
        });
    });
}

fn bench_memory_translation(c: &mut Criterion) {
    // The §3.5 address translation: zero-copy slice formation.
    use wasm_engine::runtime::Memory;
    use wasm_engine::types::Limits;
    let mem = Memory::new(Limits::new(64, None));
    let mut group = c.benchmark_group("address-translation");
    for bytes in [8u32, 1024, 262144, 1 << 22] {
        group.bench_function(format!("{bytes}B"), |b| {
            b.iter(|| {
                let view = mem.slice(std::hint::black_box(4096), bytes).unwrap();
                std::hint::black_box(view.as_ptr());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_handle_translation,
    bench_stats_recording,
    bench_memory_translation
);
criterion_main!(benches);

//! `MPI_THREAD_MULTIPLE` stress tests: several threads of one rank hammer
//! the shared mailbox and the lock-protected [`RequestTable`] while an
//! invariant checker audits the mailbox queues concurrently.
//!
//! The runs are driven by a **fixed seed** (`SEED`), so CI executes the
//! same operation mix every time; thread interleavings still vary, which
//! is the point — the assertions (per-tag FIFO, queue invariants,
//! cancellation outcomes) must hold under *every* interleaving.

use std::sync::atomic::{AtomicBool, Ordering};

use mpi_substrate::{
    run_world_configured, run_world_with, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo,
    BcastAlgo, ClockMode, CollTuning, Comm, Datatype, ReduceOp, RequestTable, Source, Status,
    Tag, WorldConfig,
};
use proptest::TestRng;

/// Fixed CI seed: change deliberately, never randomly.
const SEED: u64 = 0x00C0_FFEE_5EED_2024;

/// Messages routed to the posting thread (consumed via table `Irecv`s).
const TAG_POST: i32 = 11;
/// Messages routed to the probing thread (consumed via probe + `Mrecv`).
const TAG_PROBE: i32 = 22;
/// A tag the sender never uses: receives posted on it always cancel.
const TAG_NEVER: i32 = 33;

const MESSAGES_PER_TAG: usize = 48;

/// Deterministic payload for message `i` of `len` bytes (distinct from
/// the progress-test generator so cross-test copy/paste bugs surface).
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i * 37 + j * 11 + 5) as u8).collect()
}

/// Seeded message sizes: mostly eager, every fifth rendezvous-sized so
/// the probing thread also extracts and answers RTS handshakes.
fn sizes(stream: &str) -> Vec<usize> {
    let mut rng = TestRng::from_seed(SEED ^ TestRng::deterministic(stream).next_u64());
    (0..MESSAGES_PER_TAG)
        .map(|i| {
            if i % 5 == 4 {
                (96 << 10) + rng.below(1024) as usize
            } else {
                1 + rng.below(2048) as usize
            }
        })
        .collect()
}

/// The tentpole stress shape: one rank runs four threads — a poster
/// (table-managed `Irecv`s + cancellations), a prober (`Iprobe`/
/// `Improbe`/`Mprobe` + `Mrecv`), a progressor (`progress_all` over the
/// shared table), and an invariant checker — against a remote sender
/// interleaving two tag streams with mixed eager/rendezvous sizes.
#[test]
fn concurrent_posters_probers_and_progressors_hold_invariants() {
    let post_sizes = sizes("post");
    let probe_sizes = sizes("probe");
    let (post_tx, probe_tx) = (post_sizes.clone(), probe_sizes.clone());

    run_world_with(2, ClockMode::Real, move |comm| {
        if comm.rank() == 0 {
            // Interleave the two streams deterministically (seeded), so
            // the two consumer threads contend on the same mailbox.
            let mut rng = TestRng::from_seed(SEED);
            let (mut p, mut q) = (0usize, 0usize);
            while p < post_tx.len() || q < probe_tx.len() {
                let take_post = q >= probe_tx.len()
                    || (p < post_tx.len() && rng.below(2) == 0);
                if take_post {
                    comm.send(&payload(p, post_tx[p]), 1, TAG_POST).unwrap();
                    p += 1;
                } else {
                    comm.send(&payload(q, probe_tx[q]), 1, TAG_PROBE).unwrap();
                    q += 1;
                }
            }
            return;
        }

        let table = RequestTable::new();
        let stop = AtomicBool::new(false);
        let comm: &Comm = &comm;
        std::thread::scope(|s| {
            // --- invariant checker ---------------------------------------
            let checker = s.spawn(|| {
                let mut audits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    comm.check_mailbox_invariants();
                    audits += 1;
                    std::thread::yield_now();
                }
                audits
            });

            // --- progressor: drives the shared table ---------------------
            let progressor = s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    table.progress_all();
                    std::thread::yield_now();
                }
            });

            // --- poster: table-managed receives + cancellations ----------
            let poster = s.spawn(|| {
                let mut rng = TestRng::from_seed(SEED ^ 0xA5A5);
                for (i, &len) in post_sizes.iter().enumerate() {
                    let mut buf = vec![0u8; len];
                    let h = table.insert(
                        unsafe {
                            comm.irecv_raw(
                                buf.as_mut_ptr(),
                                len,
                                Source::Rank(0),
                                Tag::Value(TAG_POST),
                            )
                        }
                        .unwrap(),
                    );
                    // Sometimes race a doomed receive on the never-sent
                    // tag: cancel must always win and must never disturb
                    // the live streams.
                    let doomed = if rng.below(3) == 0 {
                        let mut scratch = vec![0u8; 16];
                        let dh = table.insert(
                            unsafe {
                                comm.irecv_raw(
                                    scratch.as_mut_ptr(),
                                    16,
                                    Source::Rank(0),
                                    Tag::Value(TAG_NEVER),
                                )
                            }
                            .unwrap(),
                        );
                        Some((dh, scratch))
                    } else {
                        None
                    };
                    // Poll through the table (the progressor thread races
                    // us on the same request — outcomes latch).
                    let st: Status = loop {
                        if let Some(st) =
                            table.with(h, |r| r.test()).unwrap().unwrap()
                        {
                            break st;
                        }
                        std::thread::yield_now();
                    };
                    table.remove(h).unwrap();
                    assert_eq!(
                        (st.source, st.tag, st.bytes),
                        (0, TAG_POST, len),
                        "posted stream status at {i}"
                    );
                    assert_eq!(buf, payload(i, len), "posted stream FIFO at {i}");
                    if let Some((dh, _scratch)) = doomed {
                        table.with(dh, |r| r.cancel()).unwrap();
                        let st = loop {
                            if let Some(st) =
                                table.with(dh, |r| r.test()).unwrap().unwrap()
                            {
                                break st;
                            }
                            std::thread::yield_now();
                        };
                        assert!(st.cancelled, "never-matched receive must cancel");
                        table.remove(dh).unwrap();
                    }
                }
            });

            // --- prober: Iprobe/Improbe/Mprobe + Mrecv -------------------
            let prober = s.spawn(|| {
                let mut rng = TestRng::from_seed(SEED ^ 0x5A5A);
                for (i, &len) in probe_sizes.iter().enumerate() {
                    let mut buf = vec![0u8; len];
                    let st = match rng.below(3) {
                        0 => {
                            // Blocking matched probe.
                            let (msg, st) = comm
                                .mprobe(Source::Rank(0), Tag::Value(TAG_PROBE))
                                .unwrap();
                            assert_eq!(st, msg.status());
                            msg.recv(&mut buf).unwrap()
                        }
                        1 => {
                            // Nonblocking matched probe, polled.
                            let (msg, _) = loop {
                                if let Some(hit) = comm
                                    .improbe(Source::Rank(0), Tag::Value(TAG_PROBE))
                                    .unwrap()
                                {
                                    break hit;
                                }
                                std::thread::yield_now();
                            };
                            msg.recv(&mut buf).unwrap()
                        }
                        _ => {
                            // Plain probe first (status only), then an
                            // extracting probe takes the same message:
                            // with this thread as the only TAG_PROBE
                            // consumer, the earliest match cannot change
                            // in between.
                            let seen =
                                comm.probe(Source::Rank(0), Tag::Value(TAG_PROBE)).unwrap();
                            let (msg, st) = comm
                                .mprobe(Source::Rank(0), Tag::Value(TAG_PROBE))
                                .unwrap();
                            assert_eq!(seen, st, "probe/mprobe must agree at {i}");
                            msg.recv(&mut buf).unwrap()
                        }
                    };
                    assert_eq!(
                        (st.source, st.tag, st.bytes),
                        (0, TAG_PROBE, len),
                        "probed stream status at {i}"
                    );
                    assert_eq!(buf, payload(i, len), "probed stream FIFO at {i}");
                }
            });

            poster.join().expect("poster thread");
            prober.join().expect("prober thread");
            stop.store(true, Ordering::Relaxed);
            progressor.join().expect("progressor thread");
            let audits = checker.join().expect("checker thread");
            assert!(audits > 0, "checker must have audited at least once");
        });
        assert_eq!(table.live(), 0, "all table requests retired");
        comm.check_mailbox_invariants();
    });
}

/// The tuned schedules' algorithm-internal sub-receive tags (segmented
/// bcast pipelines, Bruck rounds, Rabenseifner reduce-scatter/allgather)
/// must stay invisible to wildcard probes, exactly like the original
/// collective tags: an auditor thread on every rank runs wildcard
/// `Improbe(ANY, ANY)` plus the mailbox-invariant checker *while* the
/// main thread drives collectives forced onto the new schedules, and the
/// only message the wildcard may ever see is the user-tagged finale.
#[test]
fn algorithm_sub_tags_stay_invisible_to_wildcards() {
    const P: u32 = 4;
    const ROUNDS: usize = 25;
    const TAG_DONE: i32 = 77;
    // Force every collective onto a schedule that uses the new sub-tags;
    // a 16-byte segment makes the 200-byte bcast a 13-segment pipeline.
    let tuning = CollTuning::new()
        .force_bcast(BcastAlgo::BinomialSegmented)
        .force_allgather(AllgatherAlgo::Bruck)
        .force_allreduce(AllreduceAlgo::Rabenseifner)
        .force_alltoall(AlltoallAlgo::Bruck)
        .with_segment_bytes(16);
    let cfg = WorldConfig::new(ClockMode::Real).with_coll_tuning(tuning);
    run_world_configured(P, cfg, |comm| {
        let me = comm.rank();
        let comm: &Comm = &comm;
        std::thread::scope(|s| {
            // --- wildcard auditor: may only ever see the finale ----------
            let auditor = s.spawn(move || {
                let mut audits = 0u64;
                loop {
                    comm.check_mailbox_invariants();
                    audits += 1;
                    if let Some((msg, st)) =
                        comm.improbe(Source::Any, Tag::Any).unwrap()
                    {
                        assert_eq!(
                            st.tag, TAG_DONE,
                            "wildcard saw a collective-internal tag {} at rank {me}",
                            st.tag
                        );
                        assert_eq!(st.source, (me + P - 1) % P);
                        let mut buf = [0u8; 1];
                        msg.recv(&mut buf).unwrap();
                        assert_eq!(buf[0], ((me + P - 1) % P) as u8);
                        return audits;
                    }
                    std::thread::yield_now();
                }
            });

            // --- main thread: collective traffic on the new schedules ----
            for i in 0..ROUNDS {
                let root = (i as u32) % P;
                let mut buf = if me == root { [0x77u8; 200] } else { [0u8; 200] };
                comm.bcast(&mut buf, root).unwrap();
                assert!(buf.iter().all(|&b| b == 0x77));

                let mine = [me as u8; 24];
                let mut gathered = [0u8; 24 * P as usize];
                comm.allgather(&mine, &mut gathered).unwrap();

                let vals: Vec<u8> =
                    (0..12i32).flat_map(|v| (v + me as i32).to_le_bytes()).collect();
                let mut out = vec![0u8; vals.len()];
                comm.allreduce(&vals, &mut out, Datatype::Int, ReduceOp::Sum).unwrap();

                let send: Vec<u8> = (0..P as u8).flat_map(|d| [me as u8, d]).collect();
                let mut recv = vec![0u8; 2 * P as usize];
                comm.alltoall(&send, &mut recv).unwrap();
            }
            // Finale: one user-tagged message around the ring releases the
            // auditor — proving the wildcard still sees user traffic.
            comm.send(&[me as u8], (me + 1) % P, TAG_DONE).unwrap();
            let audits = auditor.join().expect("auditor thread");
            assert!(audits > 0);
        });
        comm.check_mailbox_invariants();
    });
}

/// Two threads hammer one shared [`RequestTable`] with insert/test/remove
/// cycles while a third calls `progress_all`: handle identity must never
/// be confused (each thread always gets its own request's status back).
#[test]
fn request_table_handles_stay_isolated_across_threads() {
    const PER_THREAD: usize = 64;
    run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            for t in 0..2i32 {
                for i in 0..PER_THREAD {
                    comm.send(&payload(i, 64 + t as usize), 1, 40 + t).unwrap();
                }
            }
            return;
        }
        let table = RequestTable::new();
        let stop = AtomicBool::new(false);
        let comm: &Comm = &comm;
        std::thread::scope(|s| {
            let progressor = s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    table.progress_all();
                    std::thread::yield_now();
                }
            });
            let workers: Vec<_> = (0..2i32)
                .map(|t| {
                    let table = &table;
                    s.spawn(move || {
                        let len = 64 + t as usize;
                        for i in 0..PER_THREAD {
                            let mut buf = vec![0u8; len];
                            let h = table.insert(
                                unsafe {
                                    comm.irecv_raw(
                                        buf.as_mut_ptr(),
                                        len,
                                        Source::Rank(0),
                                        Tag::Value(40 + t),
                                    )
                                }
                                .unwrap(),
                            );
                            let st = loop {
                                if let Some(st) =
                                    table.with(h, |r| r.test()).unwrap().unwrap()
                                {
                                    break st;
                                }
                                std::thread::yield_now();
                            };
                            table.remove(h).unwrap();
                            assert_eq!(st.tag, 40 + t, "thread {t} got its own tag");
                            assert_eq!(st.bytes, len);
                            assert_eq!(buf, payload(i, len), "thread {t} message {i}");
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("worker thread");
            }
            stop.store(true, Ordering::Relaxed);
            progressor.join().expect("progressor thread");
        });
        assert_eq!(table.live(), 0);
    });
}

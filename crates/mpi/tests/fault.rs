//! Fault-tolerance integration tests: injected rank crashes, message
//! drops, and the hang watchdog, in both clock modes.
//!
//! The contract under test is ULFM-flavoured: a failure never hangs a
//! survivor. Every surviving rank either completes cleanly or gets
//! `MpiError::RankFailed`; the failed rank's identity is observable; and
//! `agree`/`shrink` let survivors re-form a working communicator.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mpi_substrate::{
    run_world_configured, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, ClockMode,
    CollTuning, Datatype, MpiError, ReduceOp, Source, Tag, WatchdogConfig, WorldConfig,
};
use netsim::{CostModel, FaultPlan, SystemProfile};
use proptest::prelude::*;

fn both_modes() -> Vec<ClockMode> {
    vec![
        ClockMode::Real,
        ClockMode::Virtual(CostModel::native(SystemProfile::container())),
    ]
}

/// A rank that gives up on MPI announces its own death first — this is
/// what the embedder does when a guest traps (`Comm::fail_self`), and it
/// is what keeps failure knowledge flowing transitively: a peer waiting
/// on an *aborted* (not crashed) rank still observes `RankFailed`.
fn with_fail_on_abort<T>(
    comm: &mpi_substrate::Comm,
    f: impl FnOnce() -> Result<T, MpiError>,
) -> Result<T, MpiError> {
    let r = f();
    if r.is_err() {
        comm.fail_self();
    }
    r
}

/// The PR's acceptance scenario: a seeded crash lands while an
/// `Iallreduce` is in flight. Every survivor's wait must complete with
/// `RankFailed` — no hang, no abort — in both clock modes.
#[test]
fn crash_mid_iallreduce_fails_survivors_in_both_modes() {
    for mode in both_modes() {
        // Rank 2's second MPI call is the iallreduce initiation: it dies
        // there, after the survivors have already entered the collective.
        let config = WorldConfig::new(mode)
            .with_fault(FaultPlan::new(42).crash_at_call(2, 2));
        let results = run_world_configured(4, config, |comm| {
            with_fail_on_abort(&comm, || {
                let x = [comm.rank() as f64 + 1.0];
                let mut warm = [0.0f64];
                comm.allreduce(bytes(&x), bytes_mut(&mut warm), Datatype::Double, ReduceOp::Sum)?;
                assert_eq!(warm[0], 10.0);
                let mut out = [0.0f64];
                let mut req = comm.iallreduce(
                    bytes(&x),
                    bytes_mut(&mut out),
                    Datatype::Double,
                    ReduceOp::Sum,
                )?;
                req.wait()?;
                Ok(())
            })
        });
        for (rank, r) in results.iter().enumerate() {
            assert!(
                matches!(r, Err(MpiError::RankFailed { .. })),
                "rank {rank} must observe a failure, not hang: {r:?}"
            );
        }
        // The original culprit is observable on at least one survivor.
        assert!(
            results.iter().any(|r| *r == Err(MpiError::RankFailed { rank: 2 })),
            "{results:?}"
        );
    }
}

/// Fault-matrix smoke (ISSUE 9 satellite): a seeded crash lands
/// mid-collective under **each new tuned schedule**, and every survivor
/// that keeps driving the collective observes `RankFailed` — never a
/// hang (the watchdog is armed as a tripwire). Payloads stay eager-sized:
/// a crashed *rendezvous* sender is the message-drop scenario, covered
/// separately.
#[test]
fn crash_mid_collective_fails_survivors_under_every_new_schedule() {
    // A 4-byte segment turns the 13-byte bcast into a 4-segment pipeline.
    let cases: Vec<(&str, CollTuning)> = vec![
        (
            "bcast",
            CollTuning::new()
                .force_bcast(BcastAlgo::BinomialSegmented)
                .with_segment_bytes(4),
        ),
        ("bcast", CollTuning::new().force_bcast(BcastAlgo::Ring).with_segment_bytes(4)),
        ("allgather", CollTuning::new().force_allgather(AllgatherAlgo::Bruck)),
        (
            "allgather",
            CollTuning::new().force_allgather(AllgatherAlgo::RecursiveDoubling),
        ),
        ("allreduce", CollTuning::new().force_allreduce(AllreduceAlgo::Rabenseifner)),
        ("alltoall", CollTuning::new().force_alltoall(AlltoallAlgo::Bruck)),
    ];
    for (coll, tuning) in cases {
        let algo = format!("{tuning:?}");
        let hung = Arc::new(AtomicBool::new(false));
        let tripwire = Arc::clone(&hung);
        // Rank 1's third collective call is mid-matrix: survivors are
        // already inside the same call when it dies. p = 5 puts the
        // victim on the fold-in paths of the non-power-of-two shapes.
        let config = WorldConfig::new(ClockMode::Real)
            .with_coll_tuning(tuning)
            .with_fault(FaultPlan::new(5).crash_at_call(1, 3))
            .with_watchdog(
                WatchdogConfig::wall(Duration::from_secs(10))
                    .with_on_fire(move |_| tripwire.store(true, Ordering::Release)),
            );
        let coll_name = coll.to_string();
        let results = run_world_configured(5, config, move |comm| -> Result<(), MpiError> {
            let p = comm.size();
            let run_one = || -> Result<(), MpiError> {
                match coll_name.as_str() {
                    "bcast" => {
                        let mut buf = [0x42u8; 13];
                        comm.bcast(&mut buf, 0)
                    }
                    "allgather" => {
                        let mine = [comm.rank() as u8; 3];
                        let mut out = vec![0u8; 3 * p as usize];
                        comm.allgather(&mine, &mut out)
                    }
                    "allreduce" => {
                        let x = [comm.rank() as f64; 2];
                        let mut out = [0.0f64; 2];
                        comm.allreduce(
                            bytes(&x),
                            bytes_mut(&mut out),
                            Datatype::Double,
                            ReduceOp::Sum,
                        )
                    }
                    _ => {
                        let send = vec![comm.rank() as u8; 2 * p as usize];
                        let mut recv = vec![0u8; 2 * p as usize];
                        comm.alltoall(&send, &mut recv)
                    }
                }
            };
            // ULFM contract: keep driving the collective until the
            // failure surfaces at this rank.
            loop {
                run_one()?;
            }
        });
        assert!(
            !hung.load(Ordering::Acquire),
            "watchdog fired under {coll}/{algo}: a survivor hung"
        );
        for (rank, r) in results.iter().enumerate() {
            assert!(
                matches!(r, Err(MpiError::RankFailed { .. })),
                "rank {rank} under {coll}/{algo}: {r:?}"
            );
        }
        assert!(
            results.iter().any(|r| *r == Err(MpiError::RankFailed { rank: 1 })),
            "the culprit must be observable under {coll}/{algo}: {results:?}"
        );
    }
}

/// Survivors of a crash can acknowledge the failure, agree, shrink, and
/// keep computing on the smaller communicator.
#[test]
fn survivors_shrink_and_continue_after_crash() {
    let config =
        WorldConfig::new(ClockMode::Real).with_fault(FaultPlan::new(7).crash_at_call(1, 1));
    let results = run_world_configured(3, config, |comm| {
        let me = comm.rank();
        if me == 1 {
            // Dies on its first call; the error is the expected outcome.
            return comm.barrier();
        }
        // Drive a collective until the failure surfaces, then recover.
        loop {
            match comm.barrier() {
                Ok(()) => continue,
                Err(MpiError::RankFailed { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        assert_eq!(comm.ack_failed(), vec![1]);
        let flag = comm.agree(1)?;
        assert_eq!(flag, 1);
        let small = comm.shrink()?;
        assert_eq!(small.size(), 2);
        let x = [1.0f64];
        let mut sum = [0.0f64];
        small.allreduce(bytes(&x), bytes_mut(&mut sum), Datatype::Double, ReduceOp::Sum)?;
        assert_eq!(sum[0], 2.0);
        Ok(())
    });
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert_eq!(results[1], Err(MpiError::RankFailed { rank: 1 }));
    assert!(results[2].is_ok(), "{:?}", results[2]);
}

/// A dropped message starves the receiver; the watchdog (not a hung test)
/// is what reports it. This is the CI fault-injection smoke scenario.
#[test]
fn dropped_message_is_caught_by_the_watchdog() {
    let report: Arc<std::sync::Mutex<Option<String>>> = Arc::default();
    let cap = Arc::clone(&report);
    let config = WorldConfig::new(ClockMode::Real)
        .with_fault(FaultPlan::new(3).drop_nth(0, 1, 1))
        .with_watchdog(
            WatchdogConfig::wall(Duration::from_millis(150))
                .with_on_fire(move |r| *cap.lock().unwrap() = Some(r.to_string())),
        );
    let results = run_world_configured(2, config, |comm| {
        if comm.rank() == 0 {
            comm.send(&[1, 2, 3, 4], 1, 0)?; // silently dropped on the wire
            Ok(())
        } else {
            let mut buf = [0u8; 4];
            comm.recv(&mut buf, Source::Rank(0), Tag::Value(0)).map(|_| ())
        }
    });
    assert!(results[0].is_ok());
    assert!(results[1].is_err(), "starved receiver must be unwedged");
    let report = report.lock().unwrap().clone().expect("watchdog must fire");
    assert!(report.contains("rank 1"), "{report}");
    assert!(report.contains("recv"), "{report}");
}

/// Injected extra wire delay is deterministic: the same seeded plan
/// produces the identical virtual-time outcome on every run.
#[test]
fn delay_injection_is_reproducible_in_virtual_time() {
    let run = || {
        let mode = ClockMode::Virtual(CostModel::native(SystemProfile::container()));
        let config = WorldConfig::new(mode)
            .with_fault(FaultPlan::new(11).delay(0, 1, 250.0, 0.5));
        run_world_configured(2, config, |comm| {
            if comm.rank() == 0 {
                for _ in 0..20 {
                    comm.send(&[0u8; 64], 1, 0).unwrap();
                }
            } else {
                let mut buf = [0u8; 64];
                for _ in 0..20 {
                    comm.recv(&mut buf, Source::Rank(0), Tag::Value(0)).unwrap();
                }
            }
            comm.virtual_time_us()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same plan, same timeline");
    // The delay plan must actually have perturbed the receiver's clock
    // relative to an undisturbed run.
    let clean = run_world_configured(
        2,
        WorldConfig::new(ClockMode::Virtual(CostModel::native(SystemProfile::container()))),
        |comm| {
            if comm.rank() == 0 {
                for _ in 0..20 {
                    comm.send(&[0u8; 64], 1, 0).unwrap();
                }
            } else {
                let mut buf = [0u8; 64];
                for _ in 0..20 {
                    comm.recv(&mut buf, Source::Rank(0), Tag::Value(0)).unwrap();
                }
            }
            comm.virtual_time_us()
        },
    );
    assert!(a[1] > clean[1], "delays must add wire time: {} vs {}", a[1], clean[1]);
}

fn bytes(v: &[f64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 8) }
}

fn bytes_mut(v: &mut [f64]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut u8, v.len() * 8) }
}

/// One step of the differential workload. Every op is symmetric (all
/// ranks execute the same call sequence), so without a fault plan the
/// mix always completes cleanly.
#[derive(Debug, Clone, Copy)]
enum WorkOp {
    Barrier,
    Allreduce,
    RingSendrecv,
    IallreduceWait,
    IsendIrecvRing,
}

fn op_strategy() -> impl Strategy<Value = WorkOp> {
    prop_oneof![
        Just(WorkOp::Barrier),
        Just(WorkOp::Allreduce),
        Just(WorkOp::RingSendrecv),
        Just(WorkOp::IallreduceWait),
        Just(WorkOp::IsendIrecvRing),
    ]
}

fn run_ops(comm: &mpi_substrate::Comm, ops: &[WorkOp]) -> Result<(), MpiError> {
    let n = comm.size();
    let me = comm.rank();
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for op in ops {
        match op {
            WorkOp::Barrier => comm.barrier()?,
            WorkOp::Allreduce => {
                let x = [me as f64];
                let mut out = [0.0f64];
                comm.allreduce(bytes(&x), bytes_mut(&mut out), Datatype::Double, ReduceOp::Sum)?;
            }
            WorkOp::RingSendrecv => {
                let mut buf = [0u8; 8];
                comm.sendrecv(
                    &[me as u8; 8],
                    right,
                    5,
                    &mut buf,
                    Source::Rank(left),
                    Tag::Value(5),
                )?;
            }
            WorkOp::IallreduceWait => {
                let x = [1.0f64];
                let mut out = [0.0f64];
                let mut req = comm.iallreduce(
                    bytes(&x),
                    bytes_mut(&mut out),
                    Datatype::Double,
                    ReduceOp::Sum,
                )?;
                req.wait()?;
            }
            WorkOp::IsendIrecvRing => {
                let payload = [me as u8; 16];
                let mut inbox = [0u8; 16];
                let mut rreq = comm.irecv(&mut inbox, Source::Rank(left), Tag::Value(9))?;
                let mut sreq = comm.isend(&payload, right, 9)?;
                rreq.wait()?;
                sreq.wait()?;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
    ))]

    /// Differential fault test: any op mix plus one injected crash leaves
    /// every surviving rank with either a clean result or `RankFailed` —
    /// never a hang. The watchdog is armed only as a tripwire: it firing
    /// (i.e. a real hang) fails the test.
    #[test]
    fn crash_never_hangs_survivors(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        victim in 0u32..3,
        crash_call in 1u64..12,
        virtual_clock in any::<bool>(),
    ) {
        let mode = if virtual_clock {
            ClockMode::Virtual(CostModel::native(SystemProfile::container()))
        } else {
            ClockMode::Real
        };
        let hung = Arc::new(AtomicBool::new(false));
        let tripwire = Arc::clone(&hung);
        let config = WorldConfig::new(mode)
            .with_fault(FaultPlan::new(99).crash_at_call(victim, crash_call))
            .with_watchdog(
                WatchdogConfig::wall(Duration::from_secs(5))
                    .with_on_fire(move |_| tripwire.store(true, Ordering::Release)),
            );
        let ops_for_body = ops.clone();
        let results = run_world_configured(3, config, move |comm| {
            with_fail_on_abort(&comm, || run_ops(&comm, &ops_for_body))
        });
        prop_assert!(!hung.load(Ordering::Acquire), "watchdog fired: a survivor hung");
        for (rank, r) in results.iter().enumerate() {
            match r {
                Ok(()) => {}
                Err(MpiError::RankFailed { .. }) => {}
                Err(e) => prop_assert!(false, "rank {rank}: unexpected error {e:?}"),
            }
        }
    }
}

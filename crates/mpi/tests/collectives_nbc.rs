//! Differential conformance tests for the nonblocking collective suite
//! (`Igather`/`Iscatter`/`Iallgather`/`Ialltoall`/`Ialltoallv`, plus
//! `Ireduce`) and the posted-receive matching engine they ride on.
//!
//! The centerpiece is a property test: random sequences of the new
//! nonblocking collectives, interleaved with point-to-point traffic,
//! must produce byte-identical buffers and statuses to the blocking
//! formulations, in both real-time and virtual-clock worlds. A deadlock
//! regression pins the symmetric `Ialltoall` + `Waitall` shape with
//! payloads straddling the rendezvous threshold.

use proptest::prelude::*;

use mpi_substrate::{
    run_world_with, ClockMode, Datatype, ReduceOp, Request, Source, Status, Tag,
};
use netsim::{CostModel, SystemProfile};

fn virtual_mode() -> ClockMode {
    ClockMode::Virtual(CostModel::native(SystemProfile::container()))
}

fn both_modes() -> [ClockMode; 2] {
    [ClockMode::Real, virtual_mode()]
}

/// Deterministic payload byte for (step, rank, offset).
fn fill(step: usize, rank: u32, len: usize) -> Vec<u8> {
    (0..len).map(|j| (step * 131 + rank as usize * 31 + j * 7 + 5) as u8).collect()
}

// --- per-collective oracles ----------------------------------------------

#[test]
fn ireduce_matches_blocking_reduce() {
    for p in [1u32, 2, 3, 5, 8] {
        for mode in both_modes() {
            let out = run_world_with(p, mode, move |comm| {
                let root = p - 1;
                let mine: Vec<u8> = (0..8i32)
                    .flat_map(|k| (k * (comm.rank() as i32 + 2)).to_le_bytes())
                    .collect();
                let mut expect = vec![0u8; 32];
                comm.reduce(
                    &mine,
                    (comm.rank() == root).then_some(&mut expect[..]),
                    Datatype::Int,
                    ReduceOp::Sum,
                    root,
                )
                .unwrap();
                let mut got = vec![0u8; 32];
                {
                    let mut req = comm
                        .ireduce(
                            &mine,
                            (comm.rank() == root).then_some(&mut got[..]),
                            Datatype::Int,
                            ReduceOp::Sum,
                            root,
                        )
                        .unwrap();
                    req.wait().unwrap();
                }
                (comm.rank() == root).then_some((got, expect))
            });
            for pair in out.into_iter().flatten() {
                assert_eq!(pair.0, pair.1, "p {p}");
            }
        }
    }
}

#[test]
fn igather_iscatter_match_blocking_at_all_roots() {
    for p in [1u32, 2, 3, 5] {
        for root in 0..p {
            run_world_with(p, ClockMode::Real, move |comm| {
                let n = 40;
                let me = comm.rank();
                // Gather.
                let mine = fill(0, me, n);
                let mut blocking = vec![0u8; n * p as usize];
                comm.gather(&mine, (me == root).then_some(&mut blocking[..]), root)
                    .unwrap();
                let mut nb = vec![0u8; n * p as usize];
                {
                    let mut req = comm
                        .igather(&mine, (me == root).then_some(&mut nb[..]), root)
                        .unwrap();
                    req.wait().unwrap();
                }
                if me == root {
                    assert_eq!(nb, blocking, "gather root {root} p {p}");
                }
                // Scatter.
                let src: Vec<u8> = (0..n * p as usize).map(|i| (i * 3 + 1) as u8).collect();
                let mut b_block = vec![0u8; n];
                comm.scatter((me == root).then_some(&src[..]), &mut b_block, root).unwrap();
                let mut nb_block = vec![0u8; n];
                {
                    let mut req = comm
                        .iscatter((me == root).then_some(&src[..]), &mut nb_block, root)
                        .unwrap();
                    req.wait().unwrap();
                }
                assert_eq!(nb_block, b_block, "scatter root {root} p {p} rank {me}");
            });
        }
    }
}

#[test]
fn iallgather_and_ialltoall_match_blocking() {
    for p in [1u32, 2, 3, 4, 7] {
        for mode in both_modes() {
            run_world_with(p, mode, move |comm| {
                let n = 24;
                let me = comm.rank();
                let mine = fill(1, me, n);
                let mut b_all = vec![0u8; n * p as usize];
                comm.allgather(&mine, &mut b_all).unwrap();
                let mut nb_all = vec![0u8; n * p as usize];
                {
                    let mut req = comm.iallgather(&mine, &mut nb_all).unwrap();
                    req.wait().unwrap();
                }
                assert_eq!(nb_all, b_all, "allgather p {p} rank {me}");

                let send: Vec<u8> = (0..p).flat_map(|r| fill(2 + r as usize, me, n)).collect();
                let mut b_a2a = vec![0u8; n * p as usize];
                comm.alltoall(&send, &mut b_a2a).unwrap();
                let mut nb_a2a = vec![0u8; n * p as usize];
                {
                    let mut req = comm.ialltoall(&send, &mut nb_a2a).unwrap();
                    req.wait().unwrap();
                }
                assert_eq!(nb_a2a, b_a2a, "alltoall p {p} rank {me}");
            });
        }
    }
}

/// The vector exchange's counts for (sender s → receiver r) at `step`:
/// deliberately uneven, with some zero blocks.
fn a2av_count(step: usize, s: u32, r: u32, unit: usize) -> usize {
    ((s as usize * 7 + r as usize * 3 + step) % 4) * unit
}

/// Build (counts, displs, total) for one rank's side of an alltoallv.
fn a2av_layout(
    p: u32,
    count_of: impl Fn(u32) -> usize,
) -> (Vec<usize>, Vec<usize>, usize) {
    let mut counts = Vec::with_capacity(p as usize);
    let mut displs = Vec::with_capacity(p as usize);
    let mut off = 0;
    for r in 0..p {
        counts.push(count_of(r));
        displs.push(off);
        off += counts[r as usize];
    }
    (counts, displs, off)
}

#[test]
fn ialltoallv_matches_blocking_including_zero_blocks() {
    for p in [1u32, 2, 3, 5] {
        for mode in both_modes() {
            run_world_with(p, mode, move |comm| {
                let me = comm.rank();
                let unit = 16;
                let (scounts, sdispls, stotal) =
                    a2av_layout(p, |r| a2av_count(0, me, r, unit));
                let (rcounts, rdispls, rtotal) =
                    a2av_layout(p, |s| a2av_count(0, s, me, unit));
                let mut send = vec![0u8; stotal];
                for r in 0..p as usize {
                    let block = fill(3 + r, me, scounts[r]);
                    send[sdispls[r]..sdispls[r] + scounts[r]].copy_from_slice(&block);
                }
                let mut blocking = vec![0u8; rtotal];
                comm.alltoallv(&send, &scounts, &sdispls, &mut blocking, &rcounts, &rdispls)
                    .unwrap();
                let mut nb = vec![0xEEu8; rtotal];
                {
                    let mut req = comm
                        .ialltoallv(&send, &scounts, &sdispls, &mut nb, &rcounts, &rdispls)
                        .unwrap();
                    req.wait().unwrap();
                }
                assert_eq!(nb, blocking, "alltoallv p {p} rank {me}");
            });
        }
    }
}

/// Two same-kind collectives in flight at once must not cross-match.
#[test]
fn outstanding_ialltoalls_do_not_cross_match() {
    for p in [2u32, 3, 4] {
        run_world_with(p, ClockMode::Real, move |comm| {
            let me = comm.rank();
            let n = 8;
            let send_a: Vec<u8> = (0..p).flat_map(|r| fill(10 + r as usize, me, n)).collect();
            let send_b: Vec<u8> = (0..p).flat_map(|r| fill(90 + r as usize, me, n)).collect();
            let mut oracle_a = vec![0u8; n * p as usize];
            let mut oracle_b = vec![0u8; n * p as usize];
            comm.alltoall(&send_a, &mut oracle_a).unwrap();
            comm.alltoall(&send_b, &mut oracle_b).unwrap();
            let mut got_a = vec![0u8; n * p as usize];
            let mut got_b = vec![0u8; n * p as usize];
            {
                let mut req_a = comm.ialltoall(&send_a, &mut got_a).unwrap();
                let _ = req_a.test().unwrap(); // get round 1 in flight
                let mut req_b = comm.ialltoall(&send_b, &mut got_b).unwrap();
                // Complete B first: its arrivals must skip A's messages.
                req_b.wait().unwrap();
                req_a.wait().unwrap();
            }
            assert_eq!(got_a, oracle_a, "A at rank {me} p {p}");
            assert_eq!(got_b, oracle_b, "B at rank {me} p {p}");
        });
    }
}

// --- deadlock regression -------------------------------------------------

/// The shape PR 2's latched outcomes were built to survive, now with the
/// full pairwise exchange: every rank initiates a symmetric `Ialltoall`
/// whose per-peer blocks straddle the rendezvous threshold, posts p2p
/// requests on top, and parks in `Waitall`. Completion requires each
/// parked rank to keep driving its whole request table.
#[test]
fn symmetric_ialltoall_waitall_straddling_rendezvous_is_deadlock_free() {
    // 96 KiB blocks clear the real default (64 KiB) and the container
    // profile's virtual threshold (32 KiB); 1 KiB blocks stay eager.
    for block in [1usize << 10, 96 << 10] {
        for mode in both_modes() {
            for p in [2u32, 3] {
                run_world_with(p, mode.clone(), move |comm| {
                    let me = comm.rank();
                    let peer = (me + 1) % p;
                    let send: Vec<u8> =
                        (0..p).flat_map(|r| fill(r as usize, me, block)).collect();
                    let mut recv = vec![0u8; block * p as usize];
                    let extra_out = fill(77, me, block);
                    let mut extra_in = vec![0u8; block];
                    let mut oracle = vec![0u8; block * p as usize];
                    comm.alltoall(&send, &mut oracle).unwrap();
                    {
                        let mut reqs = vec![
                            comm.ialltoall(&send, &mut recv).unwrap(),
                            comm.isend(&extra_out, peer, 9).unwrap(),
                            comm.irecv(
                                &mut extra_in,
                                Source::Rank((me + p - 1) % p),
                                Tag::Value(9),
                            )
                            .unwrap(),
                        ];
                        Request::wait_all(&mut reqs).unwrap();
                    }
                    assert_eq!(recv, oracle, "rank {me} p {p} block {block}");
                    assert_eq!(extra_in, fill(77, (me + p - 1) % p, block), "p2p rank {me}");
                });
            }
        }
    }
}

// --- the differential property test --------------------------------------

#[derive(Debug, Clone, Copy)]
enum CollOp {
    Gather { root: u32 },
    Scatter { root: u32 },
    Allgather,
    Alltoall,
    Alltoallv,
}

#[derive(Debug, Clone)]
struct Script {
    /// Per step: the collective, large blocks?, interleave p2p traffic?,
    /// and whether the subject completes the p2p requests first.
    steps: Vec<(CollOp, bool, bool, bool)>,
}

/// Raw step tuples: (kind, raw root, large, p2p, p2p_first). Roots are
/// reduced mod `p` when the script is resolved (the world size is an
/// independent strategy argument).
type RawScript = Vec<(u8, u8, bool, bool, bool)>;

fn script_strategy() -> BoxedStrategy<RawScript> {
    proptest::collection::vec(
        (0u8..5, any::<u8>(), any::<bool>(), any::<bool>(), any::<bool>()),
        1..5,
    )
    .boxed()
}

fn resolve_script(raw: &RawScript, p: u32) -> Script {
    Script {
        steps: raw
            .iter()
            .map(|&(kind, root, large, p2p, p2p_first)| {
                let root = root as u32 % p;
                let op = match kind {
                    0 => CollOp::Gather { root },
                    1 => CollOp::Scatter { root },
                    2 => CollOp::Allgather,
                    3 => CollOp::Alltoall,
                    _ => CollOp::Alltoallv,
                };
                (op, large, p2p, p2p_first)
            })
            .collect(),
    }
}

/// Per-rank block size: large straddles every rendezvous threshold.
fn block_len(large: bool) -> usize {
    if large {
        96 << 10
    } else {
        64
    }
}

/// One rank's buffers for step `i` of the script, pre-filled
/// deterministically. Returns (send, recv, layout-for-alltoallv).
struct StepBufs {
    send: Vec<u8>,
    recv: Vec<u8>,
    scounts: Vec<usize>,
    sdispls: Vec<usize>,
    rcounts: Vec<usize>,
    rdispls: Vec<usize>,
}

fn step_bufs(op: CollOp, large: bool, step: usize, me: u32, p: u32) -> StepBufs {
    let n = block_len(large);
    let (send, recv_len, scounts, sdispls, rcounts, rdispls) = match op {
        CollOp::Gather { .. } => (fill(step, me, n), n * p as usize, vec![], vec![], vec![], vec![]),
        CollOp::Scatter { .. } => {
            ((0..p).flat_map(|r| fill(step + r as usize, me, n)).collect(), n, vec![], vec![], vec![], vec![])
        }
        CollOp::Allgather => (fill(step, me, n), n * p as usize, vec![], vec![], vec![], vec![]),
        CollOp::Alltoall => {
            ((0..p).flat_map(|r| fill(step + r as usize, me, n)).collect(), n * p as usize, vec![], vec![], vec![], vec![])
        }
        CollOp::Alltoallv => {
            // Uneven blocks, zero included; unit scaled so "large" still
            // crosses the rendezvous threshold for the nonzero blocks.
            let unit = if large { 48 << 10 } else { 32 };
            let (scounts, sdispls, stotal) =
                a2av_layout(p, |r| a2av_count(step, me, r, unit));
            let (rcounts, rdispls, rtotal) =
                a2av_layout(p, |s| a2av_count(step, s, me, unit));
            let mut send = vec![0u8; stotal];
            for r in 0..p as usize {
                send[sdispls[r]..sdispls[r] + scounts[r]]
                    .copy_from_slice(&fill(step + r, me, scounts[r]));
            }
            (send, rtotal, scounts, sdispls, rcounts, rdispls)
        }
    };
    StepBufs { send, recv: vec![0u8; recv_len], scounts, sdispls, rcounts, rdispls }
}

/// The per-rank result of one run: every step's receive buffer (roots
/// only, for rooted collectives) plus the p2p payloads and statuses.
type RankResult = Vec<(Vec<u8>, Option<Status>)>;

fn run_formulation(
    script: &Script,
    p: u32,
    mode: ClockMode,
    nonblocking: bool,
) -> Vec<RankResult> {
    let script = script.clone();
    run_world_with(p, mode, move |comm| {
        let me = comm.rank();
        let mut results: RankResult = Vec::new();
        for (i, &(op, large, p2p, p2p_first)) in script.steps.iter().enumerate() {
            let mut bufs = step_bufs(op, large, i, me, p);
            // Interleaved ring p2p traffic riding alongside the
            // collective (tags never collide with collective space).
            let n = block_len(large);
            let p2p_out = fill(1000 + i, me, n);
            let mut p2p_in = vec![0u8; n];
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let tag = i as i32;

            let is_recv_root = |root: u32| me == root;
            let mut p2p_status = None;
            if nonblocking {
                let mut reqs: Vec<Request> = Vec::new();
                if p2p {
                    reqs.push(comm.irecv(&mut p2p_in, Source::Rank(left), Tag::Value(tag)).unwrap());
                    reqs.push(comm.isend(&p2p_out, right, tag).unwrap());
                }
                let coll = match op {
                    CollOp::Gather { root } => comm
                        .igather(&bufs.send, is_recv_root(root).then_some(&mut bufs.recv[..]), root)
                        .unwrap(),
                    CollOp::Scatter { root } => comm
                        .iscatter((me == root).then_some(&bufs.send[..]), &mut bufs.recv, root)
                        .unwrap(),
                    CollOp::Allgather => comm.iallgather(&bufs.send, &mut bufs.recv).unwrap(),
                    CollOp::Alltoall => comm.ialltoall(&bufs.send, &mut bufs.recv).unwrap(),
                    CollOp::Alltoallv => comm
                        .ialltoallv(
                            &bufs.send,
                            &bufs.scounts,
                            &bufs.sdispls,
                            &mut bufs.recv,
                            &bufs.rcounts,
                            &bufs.rdispls,
                        )
                        .unwrap(),
                };
                if p2p_first {
                    reqs.push(coll);
                } else {
                    reqs.insert(0, coll);
                }
                let statuses = Request::wait_all(&mut reqs).unwrap();
                if p2p {
                    // The irecv's status, wherever it landed in the set.
                    let idx = if p2p_first { 0 } else { 1 };
                    p2p_status = Some(statuses[idx]);
                }
            } else {
                // Oracle: the blocking formulations, p2p via sendrecv.
                if p2p {
                    let st = comm
                        .sendrecv(&p2p_out, right, tag, &mut p2p_in, Source::Rank(left), Tag::Value(tag))
                        .unwrap();
                    p2p_status = Some(st);
                }
                match op {
                    CollOp::Gather { root } => comm
                        .gather(&bufs.send, is_recv_root(root).then_some(&mut bufs.recv[..]), root)
                        .unwrap(),
                    CollOp::Scatter { root } => comm
                        .scatter((me == root).then_some(&bufs.send[..]), &mut bufs.recv, root)
                        .unwrap(),
                    CollOp::Allgather => comm.allgather(&bufs.send, &mut bufs.recv).unwrap(),
                    CollOp::Alltoall => comm.alltoall(&bufs.send, &mut bufs.recv).unwrap(),
                    CollOp::Alltoallv => comm
                        .alltoallv(
                            &bufs.send,
                            &bufs.scounts,
                            &bufs.sdispls,
                            &mut bufs.recv,
                            &bufs.rcounts,
                            &bufs.rdispls,
                        )
                        .unwrap(),
                }
            }
            // Non-root gather ranks have no defined recv contents.
            let observable = match op {
                CollOp::Gather { root } if me != root => Vec::new(),
                _ => bufs.recv,
            };
            results.push((observable, None));
            if p2p {
                results.push((p2p_in, p2p_status));
            }
        }
        results
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random mixes of the five new nonblocking collectives plus p2p
    /// traffic are byte- and status-identical to the blocking
    /// formulations, under both clock modes.
    #[test]
    fn nonblocking_collectives_match_blocking_differentially(
        p in 2u32..5,
        raw in script_strategy(),
    ) {
        let script = resolve_script(&raw, p);
        for mode in both_modes() {
            let oracle = run_formulation(&script, p, mode.clone(), false);
            let subject = run_formulation(&script, p, mode, true);
            prop_assert_eq!(oracle.len(), subject.len());
            for (rank, (o, s)) in oracle.iter().zip(&subject).enumerate() {
                prop_assert_eq!(o.len(), s.len());
                for (k, ((od, ost), (sd, sst))) in o.iter().zip(s).enumerate() {
                    prop_assert!(od == sd,
                        "data mismatch rank {} item {} ({:?})", rank, k, script);
                    // Collective entries carry no oracle status; p2p
                    // entries must agree exactly.
                    if let (Some(a), Some(b)) = (ost, sst) {
                        prop_assert_eq!(a, b,
                            "status mismatch rank {} item {} ({:?})", rank, k, script);
                    }
                }
            }
        }
    }
}

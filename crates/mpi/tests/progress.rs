//! Progress-engine integration tests: the rendezvous protocol, bounded
//! eager buffering, true nonblocking requests, persistent requests, and
//! nonblocking collectives.
//!
//! The centerpiece is a differential property test: random interleavings
//! of `Isend`/`Irecv`/`Wait`/`Test`/persistent-start must produce
//! byte-identical data and statuses to the plain blocking send/recv
//! formulation, in both real-time and virtual-clock worlds.

use proptest::prelude::*;

use mpi_substrate::{
    run_world_with, run_world_with_protocol, ClockMode, Comm, Datatype, ProtocolConfig,
    ReduceOp, Request, Source, Status, Tag, TestAny,
};
use netsim::{CostModel, SystemProfile};

fn virtual_mode() -> ClockMode {
    ClockMode::Virtual(CostModel::native(SystemProfile::container()))
}

/// Deterministic payload for message `i` of `len` bytes.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i * 31 + j * 7 + 13) as u8).collect()
}

// --- zero-copy rendezvous (ISSUE acceptance criterion) ------------------

/// Large messages must travel by rendezvous with no intermediate heap
/// copy of the payload: the eager-copy counter stays at the small-message
/// traffic while the rendezvous counters account for the large payload.
#[test]
fn large_messages_skip_the_eager_copy() {
    const BIG: usize = 256 << 10; // far above every profile's threshold
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            comm.send(&payload(1, BIG), 1, 5).unwrap();
        } else {
            let mut buf = vec![0u8; BIG];
            let st = comm.recv(&mut buf, Source::Rank(0), Tag::Value(5)).unwrap();
            assert_eq!(st.bytes, BIG);
            assert_eq!(buf, payload(1, BIG));
        }
        comm.protocol_stats()
    });
    let stats = out[0];
    assert_eq!(stats.rendezvous_messages, 1, "{stats:?}");
    assert_eq!(stats.rendezvous_bytes, BIG as u64, "{stats:?}");
    // No eager copy of the big payload was ever made.
    assert!(
        stats.eager_bytes_copied < BIG as u64 / 2,
        "large payload was heap-copied: {stats:?}"
    );
}

#[test]
fn eager_messages_still_buffer() {
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            comm.send(&payload(0, 100), 1, 1).unwrap();
        } else {
            let mut buf = [0u8; 100];
            comm.recv(&mut buf, Source::Rank(0), Tag::Value(1)).unwrap();
        }
        comm.protocol_stats()
    });
    assert_eq!(out[0].eager_messages, 1);
    assert_eq!(out[0].rendezvous_messages, 0);
}

/// A tiny eager budget forces nonblocking sends through the sender-owned
/// deferred path; everything still arrives in order.
#[test]
fn bounded_eager_buffer_backpressure_preserves_order() {
    let protocol = ProtocolConfig { eager_threshold: 1 << 20, eager_capacity: 512 };
    let out = run_world_with_protocol(2, ClockMode::Real, protocol, |comm| {
        const N: usize = 40;
        if comm.rank() == 0 {
            let bufs: Vec<Vec<u8>> = (0..N).map(|m| payload(m, 200)).collect();
            let mut reqs: Vec<Request> = bufs
                .iter()
                .map(|b| comm.isend(b, 1, 0).unwrap())
                .collect();
            Request::wait_all(&mut reqs).unwrap();
            comm.protocol_stats().deferred_eager_messages
        } else {
            // Drain slowly so the sender exhausts its credit.
            for i in 0..N {
                std::thread::sleep(std::time::Duration::from_micros(200));
                let mut buf = vec![0u8; 200];
                comm.recv(&mut buf, Source::Rank(0), Tag::Value(0)).unwrap();
                assert_eq!(buf, payload(i, 200), "message {i} out of order");
            }
            0
        }
    });
    // 512-byte budget, 200-byte messages: at most 2 in flight eagerly.
    assert!(out[0] > 0, "expected deferred eager sends, got none");
}

/// A rank blocked in (or initiating) a rendezvous send must be released
/// when the world shuts down — the panic has to propagate instead of the
/// join hanging on a handshake nobody will answer.
#[test]
#[should_panic(expected = "boom")]
fn rendezvous_send_unblocks_on_peer_panic() {
    run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 1 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            panic!("boom");
        }
        // Large payload: the send parks on the rendezvous slot until the
        // peer's shutdown fails it.
        let big = payload(0, 256 << 10);
        let _ = comm.send(&big, 1, 0);
        // Sends initiated after the shutdown must fail fast too. With the
        // fault layer the panicked peer is recorded as *failed*, so the
        // error names the culprit (`RankFailed`) rather than the generic
        // shutdown; either way the send must not hang.
        let err = comm.send(&big, 1, 0);
        assert!(matches!(
            err,
            Err(mpi_substrate::MpiError::WorldShutdown)
                | Err(mpi_substrate::MpiError::RankFailed { rank: 1 })
                | Ok(())
        ));
    });
}

/// Send-to-self must stay eager at every size: the same thread receives
/// later, so a rendezvous handshake could never be answered (the seed's
/// semantics, preserved).
#[test]
fn large_self_send_completes_eagerly() {
    run_world_with(1, ClockMode::Real, |comm| {
        let big = payload(5, 256 << 10);
        comm.send(&big, 0, 1).unwrap();
        let mut back = vec![0u8; 256 << 10];
        let st = comm.recv(&mut back, Source::Rank(0), Tag::Value(1)).unwrap();
        assert_eq!(st.bytes, 256 << 10);
        assert_eq!(back, big);
    });
}

/// Rooted collectives must survive eager-credit exhaustion: with a budget
/// far smaller than the aggregate traffic, blocking sends convert to
/// matchable deferred rendezvous instead of parking invisibly on credit
/// (which deadlocked gather: the root drains sources in rank order).
#[test]
fn gather_survives_tiny_eager_budget() {
    let protocol = ProtocolConfig { eager_threshold: 1 << 20, eager_capacity: 64 };
    run_world_with_protocol(6, ClockMode::Real, protocol, |comm| {
        let mine = payload(comm.rank() as usize, 200);
        let mut out = vec![0u8; 200 * 6];
        let root_buf = (comm.rank() == 0).then_some(&mut out[..]);
        comm.gather(&mine, root_buf, 0).unwrap();
        if comm.rank() == 0 {
            for r in 0..6 {
                assert_eq!(&out[r * 200..(r + 1) * 200], &payload(r, 200)[..], "rank {r}");
            }
        }
    });
}

// --- posted-receive matching ---------------------------------------------

/// An eager arrival against an already-posted `Irecv` must take the
/// pre-posted fast path (no mailbox buffering): the `preposted_matches`
/// counter fires and the payload arrives intact.
#[test]
fn eager_arrival_matches_posted_receive() {
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 1 {
            let mut buf = vec![0u8; 1 << 10];
            let mut req = comm.irecv(&mut buf, Source::Rank(0), Tag::Value(4)).unwrap();
            // Tell the sender the receive is posted, then wait.
            comm.send(&[1], 0, 99).unwrap();
            let st = req.wait().unwrap();
            assert_eq!(st.bytes, 1 << 10);
            drop(req);
            assert_eq!(buf, payload(8, 1 << 10));
        } else {
            let mut sync = [0u8; 1];
            comm.recv(&mut sync, Source::Rank(1), Tag::Value(99)).unwrap();
            comm.send(&payload(8, 1 << 10), 1, 4).unwrap();
        }
        comm.protocol_stats()
    });
    assert!(out[0].preposted_matches >= 1, "{:?}", out[0]);
}

/// A rendezvous RTS arriving against an already-posted buffer still moves
/// the payload with the single sender-buffer → posted-buffer copy: the
/// rendezvous (zero-copy) counters fire, the eager-copy counter does not,
/// and the arrival is counted as a pre-posted match.
#[test]
fn rendezvous_arrival_against_posted_buffer_is_zero_copy() {
    const BIG: usize = 256 << 10;
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 1 {
            let mut buf = vec![0u8; BIG];
            let mut req = comm.irecv(&mut buf, Source::Rank(0), Tag::Value(4)).unwrap();
            comm.send(&[1], 0, 99).unwrap();
            let st = req.wait().unwrap();
            assert_eq!(st.bytes, BIG);
            drop(req);
            assert_eq!(buf, payload(9, BIG));
        } else {
            let mut sync = [0u8; 1];
            comm.recv(&mut sync, Source::Rank(1), Tag::Value(99)).unwrap();
            comm.send(&payload(9, BIG), 1, 4).unwrap();
        }
        comm.protocol_stats()
    });
    let stats = out[0];
    assert!(stats.preposted_matches >= 1, "{stats:?}");
    assert_eq!(stats.rendezvous_messages, 1, "{stats:?}");
    assert_eq!(stats.rendezvous_bytes, BIG as u64, "{stats:?}");
    assert!(stats.eager_bytes_copied < BIG as u64 / 2, "payload was heap-copied: {stats:?}");
}

/// Same-`(source, tag)` receives must complete in posted order even when
/// only the *newest* request is tested: arrival-time matching pins
/// message 0 to the first-posted entry, so testing the second request
/// cannot steal it.
#[test]
fn same_matcher_receives_match_in_posted_order() {
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            comm.send(&payload(0, 64), 1, 5).unwrap();
            comm.send(&payload(1, 64), 1, 5).unwrap();
            (Vec::new(), Vec::new())
        } else {
            let mut b0 = vec![0u8; 64];
            let mut b1 = vec![0u8; 64];
            {
                let mut r0 = comm.irecv(&mut b0, Source::Rank(0), Tag::Value(5)).unwrap();
                let mut r1 = comm.irecv(&mut b1, Source::Rank(0), Tag::Value(5)).unwrap();
                // Drive only the newest request until it completes...
                loop {
                    if r1.test().unwrap().is_some() {
                        break;
                    }
                    std::thread::yield_now();
                }
                // ...then the oldest; posted order must hold regardless.
                r0.wait().unwrap();
            }
            (b0, b1)
        }
    });
    let (b0, b1) = &out[1];
    assert_eq!(b0, &payload(0, 64), "first-posted receive got message 0");
    assert_eq!(b1, &payload(1, 64), "second-posted receive got message 1");
}

/// An `ANY_SOURCE`/`ANY_TAG` wildcard posted *after* a specific-source
/// receive must lose the race for a matching arrival, and win it when
/// posted first — posting position is the only tiebreaker.
#[test]
fn wildcard_race_against_specific_post_follows_posting_order() {
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            let mut sync = [0u8; 1];
            comm.recv(&mut sync, Source::Rank(1), Tag::Value(99)).unwrap();
            comm.send(&payload(3, 32), 1, 7).unwrap();
            comm.send(&payload(4, 32), 1, 7).unwrap();
            (Vec::new(), Vec::new())
        } else {
            let mut specific = vec![0u8; 32];
            let mut wild = vec![0u8; 32];
            {
                let mut r_specific =
                    comm.irecv(&mut specific, Source::Rank(0), Tag::Value(7)).unwrap();
                let mut r_wild = comm.irecv(&mut wild, Source::Any, Tag::Any).unwrap();
                comm.send(&[1], 0, 99).unwrap();
                // Completing the wildcard first must still hand the first
                // arrival to the earlier-posted specific receive.
                r_wild.wait().unwrap();
                r_specific.wait().unwrap();
            }
            (specific, wild)
        }
    });
    let (specific, wild) = &out[1];
    assert_eq!(specific, &payload(3, 32), "specific post was first: gets message 0");
    assert_eq!(wild, &payload(4, 32), "wildcard takes the second arrival");
}

// --- probing and cancellation --------------------------------------------

/// `Probe` + `Iprobe` report the earliest matching pending message — the
/// one a receive posted at that instant would claim — without consuming
/// it, in both clock modes; in virtual mode a successful probe
/// synchronizes the rank's clock with the message's arrival.
#[test]
fn probe_reports_earliest_match_without_consuming() {
    for mode in [ClockMode::Real, virtual_mode()] {
        let vt = matches!(mode, ClockMode::Virtual(_));
        run_world_with(2, mode, move |comm| {
            if comm.rank() == 0 {
                comm.send(&payload(0, 64), 1, 9).unwrap();
                comm.send(&payload(1, 64), 1, 5).unwrap();
                comm.send(&[], 1, 10).unwrap(); // sync marker
            } else {
                let mut sync = [0u8; 0];
                comm.recv(&mut sync, Source::Rank(0), Tag::Value(10)).unwrap();
                // Blocking probe on tag 5 sees the *second* arrival.
                let st = comm.probe(Source::Rank(0), Tag::Value(5)).unwrap();
                assert_eq!((st.source, st.tag, st.bytes), (0, 5, 64));
                assert!(!st.cancelled);
                if vt {
                    assert!(comm.virtual_time_us() > 0.0, "probe charged the clock");
                }
                // A wildcard Iprobe sees the earliest arrival (tag 9).
                let st_any = comm.iprobe(Source::Any, Tag::Any).unwrap().unwrap();
                assert_eq!((st_any.tag, st_any.bytes), (9, 64));
                // Nothing was consumed: both receives still deliver.
                let mut buf = vec![0u8; 64];
                comm.recv(&mut buf, Source::Rank(0), Tag::Value(5)).unwrap();
                assert_eq!(buf, payload(1, 64));
                comm.recv(&mut buf, Source::Rank(0), Tag::Value(9)).unwrap();
                assert_eq!(buf, payload(0, 64));
            }
        });
    }
}

/// A wildcard probe must never see a message that a posted receive
/// claimed at arrival (the no-queued-match invariant as observed through
/// the probe window).
#[test]
fn wildcard_probe_skips_messages_claimed_by_posted_receives() {
    run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 1 {
            let mut claimed = vec![0u8; 256];
            let mut req = comm.irecv(&mut claimed, Source::Rank(0), Tag::Value(5)).unwrap();
            comm.send(&[1], 0, 99).unwrap(); // receive is posted
            // Wait for the tag-6 chaser to be probe-visible; the tag-5
            // message (sent first) must never surface in the wildcard
            // probe, because it matched the posted receive at arrival.
            let st = comm.probe(Source::Any, Tag::Any).unwrap();
            assert_eq!(st.tag, 6, "claimed message leaked into the probe");
            req.wait().unwrap();
            drop(req);
            assert_eq!(claimed, payload(0, 256));
            let mut buf = vec![0u8; 32];
            comm.recv(&mut buf, Source::Any, Tag::Value(6)).unwrap();
        } else {
            let mut sync = [0u8; 1];
            comm.recv(&mut sync, Source::Rank(1), Tag::Value(99)).unwrap();
            comm.send(&payload(0, 256), 1, 5).unwrap();
            comm.send(&payload(1, 32), 1, 6).unwrap();
        }
    });
}

/// `Mprobe`/`Improbe` extract the message atomically: once probed it is
/// invisible to every other probe and receive, `Mrecv` delivers it, and
/// dropping the handle unreceived requeues it at its arrival position.
#[test]
fn matched_probe_extracts_and_drop_requeues() {
    for mode in [ClockMode::Real, virtual_mode()] {
        run_world_with(2, mode, |comm| {
            if comm.rank() == 0 {
                comm.send(&payload(3, 128), 1, 7).unwrap();
                comm.send(&payload(4, 128), 1, 7).unwrap();
                comm.send(&[], 1, 10).unwrap();
            } else {
                let mut sync = [0u8; 0];
                comm.recv(&mut sync, Source::Rank(0), Tag::Value(10)).unwrap();
                let (msg, st) = comm.mprobe(Source::Rank(0), Tag::Value(7)).unwrap();
                assert_eq!(st.bytes, 128);
                assert_eq!(msg.status(), st);
                // The extracted (earliest) message is gone from the queue:
                // a wildcard probe now reports the *second* one...
                let st2 = comm.iprobe(Source::Rank(0), Tag::Value(7)).unwrap().unwrap();
                assert_eq!(st2.bytes, 128);
                // ...and dropping the handle puts message 0 back at its
                // arrival position, restoring FIFO.
                drop(msg);
                comm.check_mailbox_invariants();
                let mut buf = vec![0u8; 128];
                let st = comm.recv(&mut buf, Source::Rank(0), Tag::Value(7)).unwrap();
                assert_eq!((st.bytes, &buf), (128, &payload(3, 128)));
                // The remaining message delivers through Mrecv.
                let (msg, _) = comm.mprobe(Source::Rank(0), Tag::Value(7)).unwrap();
                let st = msg.recv(&mut buf).unwrap();
                assert!(!st.cancelled);
                assert_eq!(buf, payload(4, 128));
                assert!(comm.improbe(Source::Any, Tag::Value(7)).unwrap().is_none());
            }
        });
    }
}

/// `Imrecv` turns the extracted message into a request that completes on
/// its first progress step, including for rendezvous payloads (the RTS is
/// matched at probe time; delivery copies straight from the sender).
#[test]
fn imrecv_completes_rendezvous_payload() {
    const BIG: usize = 256 << 10;
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            comm.send(&payload(6, BIG), 1, 4).unwrap();
        } else {
            let (msg, st) = comm.mprobe(Source::Rank(0), Tag::Value(4)).unwrap();
            assert_eq!(st.bytes, BIG);
            let mut buf = vec![0u8; BIG];
            let mut req = msg.imrecv(&mut buf);
            let st = req.wait().unwrap();
            assert_eq!(st.bytes, BIG);
            drop(req);
            assert_eq!(buf, payload(6, BIG));
        }
        comm.protocol_stats()
    });
    let stats = out[0];
    assert_eq!(stats.rendezvous_messages, 1, "{stats:?}");
    assert!(stats.eager_bytes_copied < BIG as u64 / 2, "{stats:?}");
}

/// Send-side `MPI_Cancel`: an unmatched rendezvous (or credit-deferred
/// eager) send is retracted — the receiver can never see it — and the
/// retraction is visible in the `cancelled_sends`/`retracted_rts`
/// counters; the request completes with `Status::cancelled` set.
#[test]
fn cancel_retracts_unmatched_send() {
    for mode in [ClockMode::Real, virtual_mode()] {
        let out = run_world_with(2, mode, |comm| {
            if comm.rank() == 0 {
                let big = payload(0, 256 << 10); // rendezvous in both modes
                let mut req = comm.isend(&big, 1, 5).unwrap();
                req.cancel();
                let st = req.wait().unwrap();
                assert!(st.cancelled, "unmatched send must cancel");
                drop(req);
                // Tell the receiver it may now look for (the absence of)
                // the cancelled message.
                comm.send(&[], 1, 10).unwrap();
            } else {
                let mut sync = [0u8; 0];
                comm.recv(&mut sync, Source::Rank(0), Tag::Value(10)).unwrap();
                // The retracted message is gone without a trace.
                assert!(comm.iprobe(Source::Rank(0), Tag::Value(5)).unwrap().is_none());
            }
            comm.protocol_stats()
        });
        let stats = out[0];
        assert_eq!(stats.cancelled_sends, 1, "{stats:?}");
        assert_eq!(stats.retracted_rts, 1, "{stats:?}");
    }
}

/// A credit-deferred *eager* send (the other retractable shape) cancels
/// the same way: its sender-owned RTS is retracted and counted.
#[test]
fn cancel_retracts_credit_deferred_eager_send() {
    let protocol = ProtocolConfig { eager_threshold: 1 << 20, eager_capacity: 64 };
    let out = run_world_with_protocol(2, ClockMode::Real, protocol, |comm| {
        if comm.rank() == 0 {
            // First send exhausts the 64-byte budget; the second defers.
            let a = payload(0, 60);
            let b = payload(1, 60);
            let mut ra = comm.isend(&a, 1, 1).unwrap();
            let mut rb = comm.isend(&b, 1, 1).unwrap();
            rb.cancel();
            let st = rb.wait().unwrap();
            assert!(st.cancelled, "deferred send must cancel");
            drop(rb);
            comm.send(&[], 1, 10).unwrap();
            ra.wait().unwrap();
        } else {
            let mut sync = [0u8; 0];
            comm.recv(&mut sync, Source::Rank(0), Tag::Value(10)).unwrap();
            // Only the first (uncancelled) message remains.
            let mut buf = vec![0u8; 60];
            comm.recv(&mut buf, Source::Rank(0), Tag::Value(1)).unwrap();
            assert_eq!(buf, payload(0, 60));
            assert!(comm.iprobe(Source::Rank(0), Tag::Value(1)).unwrap().is_none());
        }
        comm.protocol_stats()
    });
    let stats = out[0];
    assert_eq!(stats.deferred_eager_messages, 1, "{stats:?}");
    assert_eq!(stats.cancelled_sends, 1, "{stats:?}");
    assert_eq!(stats.retracted_rts, 1, "{stats:?}");
}

/// A send whose message already matched (pre-posted receive) or buffered
/// eagerly is past cancellation: `cancel` is a no-op, the transfer
/// completes normally, and no counter moves.
#[test]
fn cancel_after_match_completes_normally() {
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            // Wait until the peer's receive is posted, so the RTS matches
            // at deposit and cancellation must lose.
            let mut sync = [0u8; 0];
            comm.recv(&mut sync, Source::Rank(1), Tag::Value(99)).unwrap();
            let big = payload(2, 256 << 10);
            let mut req = comm.isend(&big, 1, 5).unwrap();
            req.cancel();
            let st = req.wait().unwrap();
            assert!(!st.cancelled, "matched send completes normally");
            drop(req);
        } else {
            let mut buf = vec![0u8; 256 << 10];
            let mut req = comm.irecv(&mut buf, Source::Rank(0), Tag::Value(5)).unwrap();
            comm.send(&[], 0, 99).unwrap();
            let st = req.wait().unwrap();
            assert_eq!(st.bytes, 256 << 10);
            drop(req);
            assert_eq!(buf, payload(2, 256 << 10));
        }
        comm.protocol_stats()
    });
    assert_eq!(out[0].cancelled_sends, 0, "{:?}", out[0]);
    assert_eq!(out[0].retracted_rts, 0, "{:?}", out[0]);
}

/// Receive-side cancel: an unmatched posted receive unposts (cancelled
/// status), and the message it would have matched stays available to a
/// later receive; a matched receive delivers normally.
#[test]
fn cancel_unmatched_receive_releases_its_slot() {
    run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 1 {
            let mut buf = vec![0u8; 64];
            let mut req = comm.irecv(&mut buf, Source::Rank(0), Tag::Value(3)).unwrap();
            req.cancel();
            let st = req.wait().unwrap();
            assert!(st.cancelled, "unmatched receive must cancel");
            drop(req);
            comm.check_mailbox_invariants();
            // The sender's message (sent after our sync) queues for the
            // next receive instead of vanishing into the dead entry.
            comm.send(&[], 0, 99).unwrap();
            let st = comm.recv(&mut buf, Source::Rank(0), Tag::Value(3)).unwrap();
            assert_eq!((st.bytes, &buf), (64, &payload(9, 64)));
        } else {
            let mut sync = [0u8; 0];
            comm.recv(&mut sync, Source::Rank(1), Tag::Value(99)).unwrap();
            comm.send(&payload(9, 64), 1, 3).unwrap();
        }
    });
}

// --- completion sets ----------------------------------------------------

#[test]
fn waitany_returns_indices_in_matching_order() {
    run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            for i in 0..3u8 {
                comm.send(&[i; 8], 1, i as i32).unwrap();
            }
        } else {
            let mut b0 = [0u8; 8];
            let mut b1 = [0u8; 8];
            let mut b2 = [0u8; 8];
            let mut seen = Vec::new();
            {
                // Post in tag order 2, 1, 0 — completion follows arrival.
                let mut reqs = vec![
                    comm.irecv(&mut b2, Source::Rank(0), Tag::Value(2)).unwrap(),
                    comm.irecv(&mut b1, Source::Rank(0), Tag::Value(1)).unwrap(),
                    comm.irecv(&mut b0, Source::Rank(0), Tag::Value(0)).unwrap(),
                ];
                while let Some((idx, st)) = Request::wait_any(&mut reqs).unwrap() {
                    seen.push((idx, st.tag));
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![(0, 2), (1, 1), (2, 0)]);
            assert_eq!(b0, [0u8; 8]);
            assert_eq!(b1, [1u8; 8]);
            assert_eq!(b2, [2u8; 8]);
        }
    });
}

#[test]
fn waitsome_and_testall_cover_mixed_sets() {
    run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            let data = payload(7, 64);
            let mut reqs = vec![comm.isend(&data, 1, 3).unwrap()];
            // Testall until the send drains.
            loop {
                match Request::test_all(&mut reqs).unwrap() {
                    Some(sts) => {
                        assert_eq!(sts.len(), 1);
                        break;
                    }
                    None => std::thread::yield_now(),
                }
            }
        } else {
            let mut buf = vec![0u8; 64];
            {
                let mut reqs = vec![comm.irecv(&mut buf, Source::Any, Tag::Any).unwrap()];
                let done = Request::wait_some(&mut reqs).unwrap();
                assert_eq!(done.len(), 1);
                assert_eq!(done[0].0, 0);
                assert_eq!(done[0].1.bytes, 64);
                // The set is now all-null: wait_some reports MPI_UNDEFINED.
                assert!(Request::wait_some(&mut reqs).unwrap().is_empty());
                assert!(matches!(Request::test_any(&mut reqs).unwrap(), TestAny::NoneActive));
            }
            assert_eq!(buf, payload(7, 64));
        }
    });
}

// --- persistent requests ------------------------------------------------

#[test]
fn persistent_requests_cycle_through_start() {
    // Uses the raw (embedder) API: rewriting the buffer between Start
    // cycles is the whole point of persistent requests, which the safe
    // borrow-based API intentionally forbids.
    run_world_with(2, ClockMode::Real, |comm| {
        const ROUNDS: usize = 5;
        if comm.rank() == 0 {
            let mut buf = vec![0u8; 128];
            let mut req =
                unsafe { comm.send_init_raw(buf.as_ptr(), 128, 1, 9) }.unwrap();
            assert!(req.is_persistent());
            for round in 0..ROUNDS {
                buf.copy_from_slice(&payload(round, 128));
                req.start().unwrap();
                req.wait().unwrap();
            }
        } else {
            let mut buf = vec![0u8; 128];
            let mut req = unsafe {
                comm.recv_init_raw(buf.as_mut_ptr(), 128, Source::Rank(0), Tag::Value(9))
            }
            .unwrap();
            for round in 0..ROUNDS {
                req.start().unwrap();
                let st = req.wait().unwrap();
                assert_eq!(st.bytes, 128);
                assert_eq!(buf, payload(round, 128), "round {round}");
            }
        }
    });
}

#[test]
fn wait_on_inactive_persistent_returns_empty_status() {
    run_world_with(1, ClockMode::Real, |comm| {
        let buf = [0u8; 4];
        let mut req = comm.send_init(&buf, 0, 0).unwrap();
        let st = req.wait().unwrap();
        assert_eq!(st, Status::empty());
        // Double Start without completion is an error.
        req.start().unwrap();
        assert!(req.start().is_err());
        let mut slice = [req];
        Request::wait_all(&mut slice).unwrap();
    });
}

// --- nonblocking collectives --------------------------------------------

#[test]
fn ibarrier_completes_at_various_sizes() {
    for p in [1u32, 2, 3, 4, 7] {
        run_world_with(p, ClockMode::Real, |comm| {
            let mut req = comm.ibarrier().unwrap();
            req.wait().unwrap();
        });
    }
}

#[test]
fn ibcast_matches_blocking_bcast() {
    for p in [1u32, 2, 3, 5, 8] {
        for root in [0, p - 1] {
            run_world_with(p, ClockMode::Real, move |comm| {
                let mut buf = if comm.rank() == root {
                    payload(42, 1000)
                } else {
                    vec![0u8; 1000]
                };
                {
                    let mut req = comm.ibcast(&mut buf, root).unwrap();
                    req.wait().unwrap();
                }
                assert_eq!(buf, payload(42, 1000), "rank {}", comm.rank());
            });
        }
    }
}

#[test]
fn iallreduce_matches_blocking_oracle() {
    for p in [1u32, 2, 3, 5, 6, 8] {
        for mode in [ClockMode::Real, virtual_mode()] {
            let out = run_world_with(p, mode, |comm| {
                let mine: Vec<u8> = (0..4)
                    .flat_map(|k| ((comm.rank() as f64 + 1.0) * (k as f64 + 0.5)).to_le_bytes())
                    .collect();
                // Oracle: blocking allreduce.
                let mut expect = vec![0u8; 32];
                comm.allreduce(&mine, &mut expect, Datatype::Double, ReduceOp::Sum).unwrap();
                // Subject: nonblocking.
                let mut got = vec![0u8; 32];
                {
                    let mut req = comm
                        .iallreduce(&mine, &mut got, Datatype::Double, ReduceOp::Sum)
                        .unwrap();
                    req.wait().unwrap();
                }
                (got, expect)
            });
            for (rank, (got, expect)) in out.iter().enumerate() {
                assert_eq!(got, expect, "rank {rank} p {p}");
            }
        }
    }
}

#[test]
fn iallreduce_overlaps_with_virtual_compute() {
    // Charging local compute between initiation and completion must not
    // add to the communication time: the wire delay and the compute
    // overlap via max().
    let times = run_world_with(4, virtual_mode(), |comm| {
        let v = [1u8; 4096];
        let mut r = [0u8; 4096];
        let t0 = comm.virtual_time_us();
        let mut req = comm.iallreduce(&v, &mut r, Datatype::Byte, ReduceOp::Max).unwrap();
        comm.charge_overhead_us(2.0); // overlapped compute
        req.wait().unwrap();
        comm.virtual_time_us() - t0
    });
    let blocking = run_world_with(4, virtual_mode(), |comm| {
        let v = [1u8; 4096];
        let mut r = [0u8; 4096];
        let t0 = comm.virtual_time_us();
        comm.allreduce(&v, &mut r, Datatype::Byte, ReduceOp::Max).unwrap();
        comm.charge_overhead_us(2.0); // serialized compute
        comm.virtual_time_us() - t0
    });
    let t_nb = times.into_iter().fold(0.0f64, f64::max);
    let t_b = blocking.into_iter().fold(0.0f64, f64::max);
    assert!(
        t_nb <= t_b + 1e-9,
        "overlap must not be slower than serialize: {t_nb} vs {t_b}"
    );
}

/// Wildcard receives must never match internal collective traffic: a
/// `(ANY_SOURCE, ANY_TAG)` receive progressed concurrently with an
/// `Ibarrier` has to skip the barrier tokens and take the app message.
#[test]
fn wildcard_receive_skips_collective_traffic() {
    let out = run_world_with(2, ClockMode::Real, |comm| {
        if comm.rank() == 0 {
            let mut app = [0u8; 8];
            let mut reqs = vec![
                comm.irecv(&mut app, Source::Any, Tag::Any).unwrap(),
                comm.ibarrier().unwrap(),
            ];
            // wait_any progresses in index order: the wildcard receive is
            // polled first, with the peer's barrier token likely queued.
            while Request::wait_any(&mut reqs).unwrap().is_some() {}
            drop(reqs);
            u64::from_le_bytes(app)
        } else {
            let mut req = comm.ibarrier().unwrap();
            req.wait().unwrap();
            comm.send(&0xDEAD_BEEFu64.to_le_bytes(), 0, 3).unwrap();
            0
        }
    });
    assert_eq!(out[0], 0xDEAD_BEEF);
}

/// Two outstanding nonblocking collectives of the same type on one
/// communicator must not cross-match each other's round messages, even
/// when the second is completed first.
#[test]
fn outstanding_iallreduces_do_not_cross_match() {
    for p in [2u32, 3, 4, 5] {
        let out = run_world_with(p, ClockMode::Real, |comm| {
            let a_in = (comm.rank() as i32 + 1).to_le_bytes();
            let b_in = ((comm.rank() as i32 + 1) * 100).to_le_bytes();
            let mut a_out = [0u8; 4];
            let mut b_out = [0u8; 4];
            let mut req_a =
                comm.iallreduce(&a_in, &mut a_out, Datatype::Int, ReduceOp::Sum).unwrap();
            // Progress A so its first-round messages are actually in
            // flight while B runs.
            let _ = req_a.test().unwrap();
            let mut req_b =
                comm.iallreduce(&b_in, &mut b_out, Datatype::Int, ReduceOp::Sum).unwrap();
            // Complete B first: its rounds must skip A's queued messages.
            req_b.wait().unwrap();
            req_a.wait().unwrap();
            drop((req_a, req_b));
            (i32::from_le_bytes(a_out), i32::from_le_bytes(b_out))
        });
        let expect: i32 = (1..=p as i32).sum();
        for (rank, &(a, b)) in out.iter().enumerate() {
            assert_eq!(a, expect, "collective A at rank {rank} p {p}");
            assert_eq!(b, expect * 100, "collective B at rank {rank} p {p}");
        }
    }
}

/// Dropping an unfinished nonblocking collective must cancel its queued
/// rendezvous announcements (the payload pointers live in the dropped
/// state), leaving no dangling RTS for a peer to read and no hang.
#[test]
fn dropping_unfinished_collective_is_safe() {
    let out = run_world_with(2, ClockMode::Real, |comm| {
        let send = payload(3, 128 << 10); // above every rendezvous threshold
        let mut recv = vec![0u8; 128 << 10];
        let mut req =
            comm.iallreduce(&send, &mut recv, Datatype::Byte, ReduceOp::Max).unwrap();
        // One progress step posts the first round's rendezvous RTS (the
        // payload pointer targets the request's own accumulator). It may
        // legitimately error if it consumes the RTS of a peer that has
        // already cancelled (dropped) its own collective.
        let _ = req.test();
        // The drop must fail our announcement so a peer that matches it
        // errors out instead of reading freed state or hanging.
        drop(req);
        comm.rank()
    });
    assert_eq!(out, vec![0, 1]);
}

// --- the differential property test -------------------------------------

/// How the sender issues message `i`.
#[derive(Debug, Clone, Copy)]
enum SendMode {
    Blocking,
    Isend,
    Persistent,
}

/// How the receiver takes message `i`.
#[derive(Debug, Clone, Copy)]
enum RecvMode {
    Blocking,
    Irecv,
    Persistent,
    /// Blocking `Probe` (racing a wildcard `Iprobe`) then blocking recv.
    ProbeRecv,
    /// Spin on `Iprobe` until the message is visible, then blocking recv.
    IprobeRecv,
    /// Spin on `Improbe` until extracted, then `Mrecv`.
    ImprobeMrecv,
}

#[derive(Debug, Clone)]
struct Script {
    /// Per message: (large?, tag 0..3, send mode, recv mode, test-poll?).
    msgs: Vec<(bool, i32, SendMode, RecvMode, bool)>,
}

fn script_strategy() -> BoxedStrategy<Script> {
    proptest::collection::vec(
        (any::<bool>(), 0i32..3, 0u8..3, 0u8..6, any::<bool>()),
        1..6,
    )
    .prop_map(|raw| Script {
        msgs: raw
            .into_iter()
            .map(|(large, tag, s, r, t)| {
                let sm = match s {
                    0 => SendMode::Blocking,
                    1 => SendMode::Isend,
                    _ => SendMode::Persistent,
                };
                let rm = match r {
                    0 => RecvMode::Blocking,
                    1 => RecvMode::Irecv,
                    2 => RecvMode::Persistent,
                    3 => RecvMode::ProbeRecv,
                    4 => RecvMode::IprobeRecv,
                    _ => RecvMode::ImprobeMrecv,
                };
                (large, tag, sm, rm, t)
            })
            .collect(),
    })
}

/// 96 KiB clears the real-mode default (64 KiB) and the container
/// profile's virtual threshold (32 KiB); 1 KiB stays eager everywhere.
fn msg_len(large: bool) -> usize {
    if large {
        96 << 10
    } else {
        1 << 10
    }
}

/// Oracle: plain blocking send/recv in posting order.
fn run_blocking(script: &Script, mode: ClockMode) -> Vec<(Vec<u8>, Status)> {
    let script = script.clone();
    let mut out = run_world_with(2, mode, move |comm| {
        if comm.rank() == 0 {
            for (i, &(large, tag, _, _, _)) in script.msgs.iter().enumerate() {
                comm.send(&payload(i, msg_len(large)), 1, tag).unwrap();
            }
            Vec::new()
        } else {
            script
                .msgs
                .iter()
                .enumerate()
                .map(|(_, &(large, tag, _, _, _))| {
                    let mut buf = vec![0u8; msg_len(large)];
                    let st =
                        comm.recv(&mut buf, Source::Rank(0), Tag::Value(tag)).unwrap();
                    (buf, st)
                })
                .collect()
        }
    });
    out.pop().unwrap()
}

/// Subject: the scripted mix of nonblocking / persistent operations.
/// Receives are posted in message order and completed via `wait_any`,
/// which progresses in index order — so same-tag streams match FIFO.
fn run_scripted(script: &Script, mode: ClockMode) -> Vec<(Vec<u8>, Status)> {
    let script = script.clone();
    let mut out = run_world_with(2, mode, move |comm| {
        if comm.rank() == 0 {
            sender_side(&comm, &script);
            Vec::new()
        } else {
            receiver_side(&comm, &script)
        }
    });
    out.pop().unwrap()
}

fn sender_side(comm: &Comm, script: &Script) {
    let bufs: Vec<Vec<u8>> = script
        .msgs
        .iter()
        .enumerate()
        .map(|(i, &(large, ..))| payload(i, msg_len(large)))
        .collect();
    let mut pending: Vec<Request> = Vec::new();
    for (i, &(_, tag, mode, _, poll)) in script.msgs.iter().enumerate() {
        match mode {
            SendMode::Blocking => {
                // A blocking send may rendezvous; the receiver drains in
                // posted order, so it cannot deadlock behind our own
                // earlier nonblocking sends.
                comm.send(&bufs[i], 1, tag).unwrap();
            }
            SendMode::Isend => {
                let mut req = comm.isend(&bufs[i], 1, tag).unwrap();
                if poll {
                    let _ = req.test().unwrap(); // may or may not finish
                }
                if !req.is_null() {
                    pending.push(req);
                } else {
                    drop(req);
                }
            }
            SendMode::Persistent => {
                let mut req = comm.send_init(&bufs[i], 1, tag).unwrap();
                req.start().unwrap();
                pending.push(req);
            }
        }
    }
    Request::wait_all(&mut pending).unwrap();
}

fn receiver_side(comm: &Comm, script: &Script) -> Vec<(Vec<u8>, Status)> {
    let n = script.msgs.len();
    let mut bufs: Vec<Vec<u8>> = script
        .msgs
        .iter()
        .map(|&(large, ..)| vec![0u8; msg_len(large)])
        .collect();
    let mut statuses: Vec<Option<Status>> = vec![None; n];
    {
        let mut reqs: Vec<(usize, i32, Request)> = Vec::new();
        // Split buffers so each request borrows its own element.
        let mut rest: &mut [Vec<u8>] = &mut bufs;
        for (i, &(_, tag, _, mode, poll)) in script.msgs.iter().enumerate() {
            let (buf, tail) = rest.split_first_mut().unwrap();
            rest = tail;
            // The engine's contract: receives with the same matcher must
            // be progressed in posting order (progress-at-completion
            // matching; see crate::request docs). Testing a *new* request
            // while an older same-tag request is unprogressed would
            // legally steal the older message.
            let same_tag_pending = reqs.iter().any(|&(_, t, _)| t == tag);
            match mode {
                RecvMode::Blocking => {
                    // Complete everything posted so far first: a blocking
                    // recv on the same tag would otherwise race the
                    // posted irecvs.
                    for (j, _, req) in reqs.iter_mut() {
                        statuses[*j] = Some(req.wait().unwrap());
                    }
                    reqs.clear();
                    statuses[i] =
                        Some(comm.recv(buf, Source::Rank(0), Tag::Value(tag)).unwrap());
                }
                RecvMode::ProbeRecv | RecvMode::IprobeRecv | RecvMode::ImprobeMrecv => {
                    // Probe modes also drain posted requests first: with
                    // every earlier message consumed, the per-sender FIFO
                    // makes message `i` the earliest queue-visible one,
                    // so wildcard and specific probes must agree on it.
                    for (j, _, req) in reqs.iter_mut() {
                        statuses[*j] = Some(req.wait().unwrap());
                    }
                    reqs.clear();
                    let st = match mode {
                        RecvMode::ProbeRecv => {
                            // An ANY_SOURCE/ANY_TAG blocking probe races
                            // the specific path: both must describe the
                            // same (earliest) message.
                            let wild = comm.probe(Source::Any, Tag::Any).unwrap();
                            let specific =
                                comm.probe(Source::Rank(0), Tag::Value(tag)).unwrap();
                            assert_eq!(wild, specific, "probe disagreement at {i}");
                            let st =
                                comm.recv(buf, Source::Rank(0), Tag::Value(tag)).unwrap();
                            assert_eq!(specific, st, "probe vs recv status at {i}");
                            st
                        }
                        RecvMode::IprobeRecv => {
                            let probed = loop {
                                if let Some(st) = comm
                                    .iprobe(Source::Rank(0), Tag::Value(tag))
                                    .unwrap()
                                {
                                    break st;
                                }
                                std::thread::yield_now();
                            };
                            let st =
                                comm.recv(buf, Source::Rank(0), Tag::Value(tag)).unwrap();
                            assert_eq!(probed, st, "iprobe vs recv status at {i}");
                            st
                        }
                        _ => {
                            let (msg, probed) = loop {
                                if let Some(hit) = comm
                                    .improbe(Source::Rank(0), Tag::Value(tag))
                                    .unwrap()
                                {
                                    break hit;
                                }
                                std::thread::yield_now();
                            };
                            let st = msg.recv(buf).unwrap();
                            assert_eq!(probed, st, "improbe vs mrecv status at {i}");
                            st
                        }
                    };
                    statuses[i] = Some(st);
                }
                RecvMode::Irecv => {
                    let mut req =
                        comm.irecv(buf, Source::Rank(0), Tag::Value(tag)).unwrap();
                    if poll && !same_tag_pending {
                        if let Some(st) = req.test().unwrap() {
                            statuses[i] = Some(st);
                        }
                    }
                    if statuses[i].is_none() {
                        reqs.push((i, tag, req));
                    }
                }
                RecvMode::Persistent => {
                    let mut req = comm
                        .recv_init(buf, Source::Rank(0), Tag::Value(tag))
                        .unwrap();
                    req.start().unwrap();
                    reqs.push((i, tag, req));
                }
            }
        }
        // Drain the remainder with wait_any (index order = posting order).
        let mut handles: Vec<Request> = Vec::new();
        let mut idx: Vec<usize> = Vec::new();
        for (j, _, req) in reqs {
            idx.push(j);
            handles.push(req);
        }
        while let Some((k, st)) = Request::wait_any(&mut handles).unwrap() {
            statuses[idx[k]] = Some(st);
        }
    }
    bufs.into_iter()
        .zip(statuses)
        .map(|(b, st)| (b, st.expect("all messages received")))
        .collect()
}

// --- synchronous-mode sends (ISSUE acceptance criterion) -----------------

/// Completion ordering of `MPI_Ssend` semantics, pinned differentially
/// against the two protocol regimes in both clock modes:
///
/// * a plain eager send of the same small payload completes *locally*,
///   with no receiver involvement;
/// * a synchronous-mode send of that payload must stay pending until the
///   receiver matches it — exactly the ordering a rendezvous-sized plain
///   send exhibits.
///
/// The receiver provably has not posted anything when the pending checks
/// run: it is blocked on a marker message the sender only emits afterwards.
#[test]
fn ssend_completion_orders_like_rendezvous_not_eager() {
    const SMALL: usize = 512; // far below every profile's threshold
    const BIG: usize = 256 << 10; // far above
    for mode in [ClockMode::Real, virtual_mode()] {
        let out = run_world_with(2, mode, |comm| {
            if comm.rank() == 0 {
                // Control 1: eager send completes with the receiver idle.
                let small = payload(0, SMALL);
                let mut eager = comm.isend(&small, 1, 1).unwrap();
                let mut spins = 0u64;
                while eager.test().unwrap().is_none() {
                    spins += 1;
                    assert!(spins < 10_000_000, "eager send never completed locally");
                }

                // Subject: sync-mode send of the same payload stays pending.
                let mut sync =
                    comm.issend_owned(payload(1, SMALL).into_boxed_slice(), 1, 2).unwrap();
                assert!(
                    sync.test().unwrap().is_none(),
                    "sync-mode send completed before the receiver matched"
                );

                // Control 2: rendezvous-sized plain send, same ordering.
                let big = payload(2, BIG);
                let mut rdv = comm.isend(&big, 1, 3).unwrap();
                assert!(
                    rdv.test().unwrap().is_none(),
                    "rendezvous send completed before the receiver matched"
                );

                // Only now release the receiver.
                comm.send(&payload(3, 8), 1, 4).unwrap();
                sync.wait().unwrap();
                rdv.wait().unwrap();

                // Blocking Ssend against an already-posted receive for
                // the return trip.
                comm.ssend(&payload(4, SMALL), 1, 5).unwrap();
                comm.protocol_stats()
            } else {
                let mut marker = [0u8; 8];
                comm.recv(&mut marker, Source::Rank(0), Tag::Value(4)).unwrap();
                let mut small = vec![0u8; SMALL];
                comm.recv(&mut small, Source::Rank(0), Tag::Value(1)).unwrap();
                assert_eq!(small, payload(0, SMALL));
                comm.recv(&mut small, Source::Rank(0), Tag::Value(2)).unwrap();
                assert_eq!(small, payload(1, SMALL), "sync-mode payload corrupted");
                let mut big = vec![0u8; BIG];
                comm.recv(&mut big, Source::Rank(0), Tag::Value(3)).unwrap();
                assert_eq!(big, payload(2, BIG));
                comm.recv(&mut small, Source::Rank(0), Tag::Value(5)).unwrap();
                assert_eq!(small, payload(4, SMALL));
                comm.protocol_stats()
            }
        });
        // The rendezvous control really took the rendezvous path.
        assert!(out[0].rendezvous_messages >= 1, "{:?}", out[0]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn nonblocking_matches_blocking_differentially(script in script_strategy()) {
        for mode in [ClockMode::Real, virtual_mode()] {
            let oracle = run_blocking(&script, mode.clone());
            let subject = run_scripted(&script, mode);
            prop_assert_eq!(oracle.len(), subject.len());
            for (i, ((od, os), (sd, ss))) in oracle.iter().zip(&subject).enumerate() {
                prop_assert_eq!(os, ss, "status mismatch at message {} ({:?})", i, script);
                prop_assert!(od == sd, "data mismatch at message {} ({:?})", i, script);
            }
        }
    }
}

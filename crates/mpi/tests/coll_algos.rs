//! The collective-algorithm conformance matrix (ISSUE 9 satellite): every
//! (collective, algorithm) pair, forced through the tuning-table
//! override, must be **byte-identical** to a naive in-test oracle at rank
//! counts {2, 3, 4, 7, 8, 16, 33, 64} under both clock modes. The
//! non-power-of-two counts are what exercise the recursive-doubling and
//! Rabenseifner fold-in/unfold paths and Bruck's ragged final round —
//! they are mandatory cells, not nice-to-haves.
//!
//! A differential proptest rides along: random payload shapes, rank
//! counts, and segment sizes, with a randomly forced algorithm run
//! against the default selection — outputs must be byte-identical and
//! the Status fields of surrounding point-to-point traffic must be
//! unchanged by the schedule choice. (Reductions use exact integer
//! arithmetic so associativity differences between schedules cannot leak
//! into the comparison.)

use mpi_substrate::{
    run_world_configured, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, ClockMode,
    CollTuning, Datatype, ReduceOp, Source, Tag, WorldConfig,
};
use netsim::{CostModel, SystemProfile};
use proptest::prelude::*;

/// Mandatory rank counts: powers of two plus the fold-in shapes.
const SIZES: [u32; 8] = [2, 3, 4, 7, 8, 16, 33, 64];

fn both_modes() -> Vec<ClockMode> {
    vec![
        ClockMode::Real,
        ClockMode::Virtual(CostModel::native(SystemProfile::scale_cluster())),
    ]
}

/// Deterministic byte `j` of rank `r`'s contribution.
fn cell(r: u32, j: usize) -> u8 {
    (r as usize * 131 + j * 29 + 17) as u8
}

#[test]
fn bcast_matrix_is_byte_identical_to_oracle() {
    // 4097 bytes over a 512-byte segment: 9 segments, ragged tail.
    const LEN: usize = 4097;
    for algo in BcastAlgo::ALL {
        for p in SIZES {
            for mode in both_modes() {
                let cfg = WorldConfig::new(mode).with_coll_tuning(
                    CollTuning::new().force_bcast(algo).with_segment_bytes(512),
                );
                run_world_configured(p, cfg, move |comm| {
                    let root = p / 2;
                    let mut buf = if comm.rank() == root {
                        (0..LEN).map(|j| cell(root, j)).collect()
                    } else {
                        vec![0u8; LEN]
                    };
                    comm.bcast(&mut buf, root).unwrap();
                    let oracle: Vec<u8> = (0..LEN).map(|j| cell(root, j)).collect();
                    assert_eq!(buf, oracle, "{algo:?} p={p} rank={}", comm.rank());
                });
            }
        }
    }
}

#[test]
fn allgather_matrix_is_byte_identical_to_oracle() {
    const BLOCK: usize = 33;
    for algo in AllgatherAlgo::ALL {
        for p in SIZES {
            for mode in both_modes() {
                let cfg = WorldConfig::new(mode)
                    .with_coll_tuning(CollTuning::new().force_allgather(algo));
                run_world_configured(p, cfg, move |comm| {
                    let mine: Vec<u8> = (0..BLOCK).map(|j| cell(comm.rank(), j)).collect();
                    let mut out = vec![0u8; BLOCK * p as usize];
                    comm.allgather(&mine, &mut out).unwrap();
                    let oracle: Vec<u8> = (0..p)
                        .flat_map(|r| (0..BLOCK).map(move |j| cell(r, j)))
                        .collect();
                    assert_eq!(out, oracle, "{algo:?} p={p} rank={}", comm.rank());
                });
            }
        }
    }
}

#[test]
fn allreduce_matrix_is_byte_identical_to_oracle() {
    // 13 ints: at p2 = 64 Rabenseifner chunks this leaves most chunks
    // empty, the hardest uneven split. Sum over small ints is exact, so
    // every schedule must agree to the byte.
    for algo in AllreduceAlgo::ALL {
        for p in SIZES {
            for mode in both_modes() {
                for op in [ReduceOp::Sum, ReduceOp::Max] {
                    let cfg = WorldConfig::new(mode.clone())
                        .with_coll_tuning(CollTuning::new().force_allreduce(algo));
                    run_world_configured(p, cfg, move |comm| {
                        let vals: Vec<i32> = (0..13)
                            .map(|i| (comm.rank() as i32 * 31 + i * 7) % 101 - 50)
                            .collect();
                        let send: Vec<u8> =
                            vals.iter().flat_map(|v| v.to_le_bytes()).collect();
                        let mut recv = vec![0u8; send.len()];
                        comm.allreduce(&send, &mut recv, Datatype::Int, op).unwrap();
                        let oracle: Vec<u8> = (0..13)
                            .map(|i| {
                                let per_rank =
                                    (0..p).map(|r| (r as i32 * 31 + i * 7) % 101 - 50);
                                match op {
                                    ReduceOp::Sum => per_rank.sum::<i32>(),
                                    _ => per_rank.max().unwrap(),
                                }
                            })
                            .flat_map(|v| v.to_le_bytes())
                            .collect();
                        assert_eq!(
                            recv,
                            oracle,
                            "{algo:?} {op:?} p={p} rank={}",
                            comm.rank()
                        );
                    });
                }
            }
        }
    }
}

#[test]
fn alltoall_matrix_is_byte_identical_to_oracle() {
    const BLOCK: usize = 9;
    for algo in AlltoallAlgo::ALL {
        for p in SIZES {
            for mode in both_modes() {
                let cfg = WorldConfig::new(mode)
                    .with_coll_tuning(CollTuning::new().force_alltoall(algo));
                run_world_configured(p, cfg, move |comm| {
                    let me = comm.rank();
                    // Byte j of the block from src to dst is
                    // cell(src * p + dst, j): unique per direction.
                    let send: Vec<u8> = (0..p)
                        .flat_map(|dst| (0..BLOCK).map(move |j| cell(me * p + dst, j)))
                        .collect();
                    let mut recv = vec![0u8; BLOCK * p as usize];
                    comm.alltoall(&send, &mut recv).unwrap();
                    let oracle: Vec<u8> = (0..p)
                        .flat_map(|src| (0..BLOCK).map(move |j| cell(src * p + me, j)))
                        .collect();
                    assert_eq!(recv, oracle, "{algo:?} p={p} rank={me}");
                });
            }
        }
    }
}

// --- differential proptest: forced algorithm vs default selection -------

#[derive(Debug, Clone, Copy)]
enum CollKind {
    Bcast,
    Allgather,
    Allreduce,
    Alltoall,
}

/// Run one collective at `p` ranks and return each rank's (output bytes,
/// surrounding-sendrecv Status fields). `forced` pins the schedule;
/// `None` uses the default selection.
fn run_case(
    kind: CollKind,
    forced: Option<usize>,
    p: u32,
    len: usize,
    seg: usize,
    virt: bool,
) -> Vec<(Vec<u8>, (u32, i32, usize))> {
    let mut t = CollTuning::new().with_segment_bytes(seg);
    if let Some(i) = forced {
        t = match kind {
            CollKind::Bcast => t.force_bcast(BcastAlgo::ALL[i % BcastAlgo::ALL.len()]),
            CollKind::Allgather => {
                t.force_allgather(AllgatherAlgo::ALL[i % AllgatherAlgo::ALL.len()])
            }
            CollKind::Allreduce => {
                t.force_allreduce(AllreduceAlgo::ALL[i % AllreduceAlgo::ALL.len()])
            }
            CollKind::Alltoall => {
                t.force_alltoall(AlltoallAlgo::ALL[i % AlltoallAlgo::ALL.len()])
            }
        };
    }
    let mode = if virt {
        ClockMode::Virtual(CostModel::native(SystemProfile::scale_cluster()))
    } else {
        ClockMode::Real
    };
    let cfg = WorldConfig::new(mode).with_coll_tuning(t);
    run_world_configured(p, cfg, move |comm| {
        let me = comm.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        // User-tagged traffic around the collective: its Status fields
        // must not depend on which schedule the collective ran.
        let mut ring = [0u8; 4];
        let st = comm
            .sendrecv(&me.to_le_bytes(), right, 5, &mut ring, Source::Rank(left), Tag::Value(5))
            .unwrap();
        let out = match kind {
            CollKind::Bcast => {
                let root = p - 1;
                let mut buf = if me == root {
                    (0..len).map(|j| cell(root, j)).collect()
                } else {
                    vec![0u8; len]
                };
                comm.bcast(&mut buf, root).unwrap();
                buf
            }
            CollKind::Allgather => {
                let mine: Vec<u8> = (0..len).map(|j| cell(me, j)).collect();
                let mut out = vec![0u8; len * p as usize];
                comm.allgather(&mine, &mut out).unwrap();
                out
            }
            CollKind::Allreduce => {
                let send: Vec<u8> = (0..len as i32)
                    .flat_map(|i| ((me as i32 * 13 + i * 3) % 51 - 25).to_le_bytes())
                    .collect();
                let mut out = vec![0u8; send.len()];
                comm.allreduce(&send, &mut out, Datatype::Int, ReduceOp::Sum).unwrap();
                out
            }
            CollKind::Alltoall => {
                let send: Vec<u8> = (0..p)
                    .flat_map(|dst| (0..len).map(move |j| cell(me * p + dst, j)))
                    .collect();
                let mut out = vec![0u8; len * p as usize];
                comm.alltoall(&send, &mut out).unwrap();
                out
            }
        };
        (out, (st.source, st.tag, st.bytes))
    })
}

fn kind_strategy() -> impl Strategy<Value = CollKind> {
    prop_oneof![
        Just(CollKind::Bcast),
        Just(CollKind::Allgather),
        Just(CollKind::Allreduce),
        Just(CollKind::Alltoall),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
    ))]

    /// A randomly forced schedule must be observationally identical to
    /// whatever the default table would have picked: same bytes at every
    /// rank, same Status fields on neighbouring user traffic.
    #[test]
    fn forced_schedule_matches_default_selection(
        kind in kind_strategy(),
        forced in 0usize..6,
        p in prop_oneof![Just(2u32), Just(3), Just(4), Just(5), Just(7), Just(8), Just(16)],
        len in 0usize..300,
        seg in 1usize..200,
        virt in any::<bool>(),
    ) {
        let forced_out = run_case(kind, Some(forced), p, len, seg, virt);
        let default_out = run_case(kind, None, p, len, seg, virt);
        prop_assert_eq!(forced_out, default_out);
    }
}

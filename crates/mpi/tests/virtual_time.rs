//! Integration tests for LogP-style virtual time: executed collective
//! schedules must exhibit the scaling the closed-form models predict.

use mpi_substrate::{run_world_with, ClockMode, Datatype, ReduceOp, Source, Tag};
use netsim::{CostModel, SystemProfile};

fn virtual_mode() -> ClockMode {
    ClockMode::Virtual(CostModel::native(SystemProfile::container()))
}

#[test]
fn pingpong_virtual_time_matches_wire_model() {
    let model = CostModel::native(SystemProfile::container());
    let times = run_world_with(2, virtual_mode(), move |comm| {
        let iters = 10;
        if comm.rank() == 0 {
            let buf = vec![0u8; 1024];
            let mut back = vec![0u8; 1024];
            for _ in 0..iters {
                comm.send(&buf, 1, 0).unwrap();
                comm.recv(&mut back, Source::Rank(1), Tag::Value(0)).unwrap();
            }
        } else {
            let mut buf = vec![0u8; 1024];
            for _ in 0..iters {
                comm.recv(&mut buf, Source::Rank(0), Tag::Value(0)).unwrap();
                comm.send(&buf, 0, 0).unwrap();
            }
        }
        comm.virtual_time_us()
    });
    // 20 one-way transfers of 1 KiB on the container profile.
    let wire = model.profile.p2p_time(0, 1, 1024).as_micros();
    let per_call = model.call_overhead_us;
    let expected = 20.0 * (wire + 2.0 * per_call);
    for t in times {
        assert!(
            (t - expected).abs() / expected < 0.25,
            "virtual time {t} vs expected {expected}"
        );
    }
}

#[test]
fn allreduce_virtual_time_grows_logarithmically() {
    let mut times = Vec::new();
    for p in [2u32, 4, 8, 16] {
        let out = run_world_with(p, virtual_mode(), |comm| {
            let v = 1.0f64.to_le_bytes();
            let mut r = [0u8; 8];
            comm.allreduce(&v, &mut r, Datatype::Double, ReduceOp::Sum).unwrap();
            comm.virtual_time_us()
        });
        let max = out.into_iter().fold(0.0f64, f64::max);
        times.push(max);
    }
    // Doubling p adds ~one recursive-doubling round: roughly constant
    // increments, nowhere near linear growth.
    let d1 = times[1] - times[0];
    let d3 = times[3] - times[2];
    assert!(times.windows(2).all(|w| w[1] > w[0]), "{times:?}");
    assert!(d3 < d1 * 3.0 + 1.0, "increments should stay ~constant: {times:?}");
    // Linear growth would make times[3] ≈ 8× times[0].
    assert!(times[3] < times[0] * 5.0, "{times:?}");
}

#[test]
fn ring_allgather_virtual_time_grows_linearly() {
    let mut times = Vec::new();
    for p in [2u32, 4, 8] {
        let out = run_world_with(p, virtual_mode(), move |comm| {
            let mine = vec![0u8; 4096];
            let mut all = vec![0u8; 4096 * p as usize];
            comm.allgather(&mine, &mut all).unwrap();
            comm.virtual_time_us()
        });
        times.push(out.into_iter().fold(0.0f64, f64::max));
    }
    // p-1 rounds: 8 ranks ≈ 7 rounds vs 1 round at p=2.
    let ratio = times[2] / times[0];
    assert!(ratio > 3.0, "ring should scale ~linearly: {times:?}");
}

#[test]
fn wasm_overhead_increases_virtual_time_but_shrinks_with_message_size() {
    let profile = SystemProfile::container();
    let run = |overhead_us: f64, bytes: usize| -> f64 {
        let mode = ClockMode::Virtual(CostModel::wasm(profile.clone(), overhead_us));
        let times = run_world_with(2, mode, move |comm| {
            if comm.rank() == 0 {
                let buf = vec![0u8; bytes];
                let mut back = vec![0u8; bytes];
                for _ in 0..5 {
                    comm.send(&buf, 1, 0).unwrap();
                    comm.recv(&mut back, Source::Rank(1), Tag::Value(0)).unwrap();
                }
            } else {
                let mut buf = vec![0u8; bytes];
                for _ in 0..5 {
                    comm.recv(&mut buf, Source::Rank(0), Tag::Value(0)).unwrap();
                    comm.send(&buf, 0, 0).unwrap();
                }
            }
            comm.virtual_time_us()
        });
        times.into_iter().fold(0.0f64, f64::max)
    };
    for bytes in [8usize, 1 << 20] {
        let native = run(0.0, bytes);
        let wasm = run(0.15, bytes);
        assert!(wasm > native, "wasm path must be slower at {bytes} bytes");
    }
    let small_slowdown = run(0.15, 8) / run(0.0, 8);
    let big_slowdown = run(0.15, 1 << 20) / run(0.0, 1 << 20);
    assert!(
        small_slowdown > big_slowdown,
        "relative overhead must shrink with message size: {small_slowdown} vs {big_slowdown}"
    );
}

#[test]
fn charge_overhead_is_ignored_in_real_mode() {
    let out = run_world_with(1, ClockMode::Real, |comm| {
        comm.charge_overhead_us(1e9);
        comm.virtual_time_us()
    });
    assert_eq!(out, vec![0.0]);
}

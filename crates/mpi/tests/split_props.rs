//! Property tests for `MPI_Comm_split` semantics: arbitrary color/key
//! assignments must partition the world correctly and order the derived
//! ranks by `(key, old rank)`, and the derived communicators must be
//! usable for collectives.

use proptest::prelude::*;

use mpi_substrate::{run_world, Datatype, ReduceOp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn split_partitions_and_orders(
        p in 2u32..6,
        colors in proptest::collection::vec(0i32..3, 6),
        keys in proptest::collection::vec(-5i32..5, 6),
    ) {
        let colors2 = colors.clone();
        let keys2 = keys.clone();
        let out = run_world(p, move |comm| {
            let me = comm.rank() as usize;
            let color = colors2[me];
            let key = keys2[me];
            let sub = comm.split(color, key).unwrap().unwrap();
            // Derived comms are live: sum ranks within the color group.
            let one = 1i32.to_le_bytes();
            let mut total = [0u8; 4];
            sub.allreduce(&one, &mut total, Datatype::Int, ReduceOp::Sum).unwrap();
            (color, key, sub.rank(), sub.size(), i32::from_le_bytes(total))
        });

        for (me, &(color, key, sub_rank, sub_size, counted)) in out.iter().enumerate() {
            // Group size matches the number of ranks sharing the color.
            let group: Vec<usize> = (0..p as usize)
                .filter(|&r| colors[r] == color)
                .collect();
            prop_assert_eq!(sub_size as usize, group.len());
            prop_assert_eq!(counted as usize, group.len());
            // Rank within the sub-communicator = position under
            // (key, old rank) ordering.
            let mut ordered: Vec<usize> = group.clone();
            ordered.sort_by_key(|&r| (keys[r], r));
            let expected_rank = ordered.iter().position(|&r| r == me).unwrap();
            prop_assert_eq!(sub_rank as usize, expected_rank, "rank {} key {}", me, key);
        }
    }

    #[test]
    fn nested_splits_compose(p in 2u32..6) {
        let out = run_world(p, move |comm| {
            // Split into parity groups, then split each by halves of the
            // sub-rank: every leaf communicator must still function.
            let parity = comm.split((comm.rank() % 2) as i32, 0).unwrap().unwrap();
            let leaf = parity
                .split((parity.rank() / 2) as i32, 0)
                .unwrap()
                .unwrap();
            let v = (comm.rank() + 1).to_le_bytes();
            let mut sum = [0u8; 4];
            leaf.allreduce(&v, &mut sum, Datatype::Unsigned, ReduceOp::Sum).unwrap();
            (leaf.size(), u32::from_le_bytes(sum))
        });
        for (me, &(leaf_size, sum)) in out.iter().enumerate() {
            prop_assert!(leaf_size >= 1 && leaf_size <= 2);
            // The sum includes our own contribution.
            prop_assert!(sum >= me as u32 + 1);
        }
    }
}

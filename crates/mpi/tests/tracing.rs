//! Flight-recorder integration tests at the substrate level: virtual-clock
//! monotonicity of emitted events, and a differential property showing the
//! recorder never perturbs results or simulated time.

use std::sync::Arc;

use mpi_substrate::{
    run_world_recorded, run_world_with, ClockMode, Datatype, ReduceOp, Source, Tag,
};
use netsim::{CostModel, SystemProfile};
use obs::{EventKind, Recorder, TraceClock};
use proptest::prelude::*;

fn virtual_mode() -> ClockMode {
    ClockMode::Virtual(CostModel::native(SystemProfile::container()))
}

/// A small mixed workload: p2p ring traffic, a collective, and a
/// nonblocking pair, parameterized by payload size so eager, deferred,
/// and rendezvous protocols are all reachable.
fn workload(comm: &mpi_substrate::Comm, bytes: usize) -> (Vec<u8>, f64) {
    let p = comm.size();
    let me = comm.rank();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;

    let out = vec![me as u8; bytes];
    let mut inbox = vec![0u8; bytes];
    let mut sreq = comm.isend(&out, right, 7).unwrap();
    comm.recv(&mut inbox, Source::Rank(left), Tag::Value(7)).unwrap();
    sreq.wait().unwrap();

    let mine = [me as i32; 4];
    let mut sum = [0i32; 4];
    comm.allreduce(
        bytemuck_cast(&mine),
        bytemuck_cast_mut(&mut sum),
        Datatype::Int,
        ReduceOp::Sum,
    )
    .unwrap();
    comm.barrier().unwrap();

    let mut fused = inbox;
    fused.extend_from_slice(bytemuck_cast(&sum));
    (fused, comm.virtual_time_us())
}

fn bytemuck_cast(v: &[i32]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 4) }
}

fn bytemuck_cast_mut(v: &mut [i32]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut u8, v.len() * 4) }
}

/// Satellite: under the virtual clock, every rank's emitted event stream
/// is monotone in trace time — the traces replay the simulated timeline,
/// not the host's.
#[test]
fn virtual_clock_events_are_monotone_per_rank() {
    let np = 4;
    let rec = Recorder::new(np, obs::DEFAULT_CAPACITY, TraceClock::Virtual);
    run_world_recorded(np as u32, virtual_mode(), None, Arc::clone(&rec), |comm| {
        workload(&comm, 64 * 1024); // rendezvous-sized ring traffic
    });
    let mut saw_events = 0usize;
    for r in 0..np {
        let events = rec.rank_events(r);
        saw_events += events.len();
        let mut last = f64::NEG_INFINITY;
        for e in &events {
            assert!(
                e.ts_us >= last,
                "rank {r}: event at {} µs after one at {} µs ({:?})",
                e.ts_us,
                last,
                e.kind
            );
            last = e.ts_us;
        }
        assert_eq!(rec.dropped(r), 0, "rank {r} dropped events");
    }
    assert!(saw_events > 0, "the workload emitted no events");
}

/// The trace carries the expected shapes: sends matched to receives by
/// flow id, rendezvous protocol tags on large transfers, and collective
/// begin/end pairs sharing an id.
#[test]
fn trace_links_sends_to_recvs_and_brackets_collectives() {
    let np = 3;
    let rec = Recorder::new(np, obs::DEFAULT_CAPACITY, TraceClock::Virtual);
    run_world_recorded(np as u32, virtual_mode(), None, Arc::clone(&rec), |comm| {
        workload(&comm, 256 * 1024);
    });
    let all: Vec<_> = (0..np).flat_map(|r| rec.rank_events(r)).collect();

    let send_flows: Vec<u64> = all
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::SendStart { flow, .. } => Some(flow),
            _ => None,
        })
        .collect();
    let recv_flows: Vec<u64> = all
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RecvDone { flow, .. } => Some(flow),
            _ => None,
        })
        .collect();
    assert!(!send_flows.is_empty());
    for f in &recv_flows {
        assert!(*f != 0, "delivered message without a flow id");
        assert!(send_flows.contains(f), "recv flow {f} has no matching send");
    }

    let rendezvous = all.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::SendStart { protocol: obs::Protocol::Rendezvous, .. }
        )
    });
    assert!(rendezvous, "256 KiB ring traffic should use rendezvous");

    let begins: Vec<(obs::CollKind, u64)> = all
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::CollBegin { kind, id, .. } => Some((kind, id)),
            _ => None,
        })
        .collect();
    let ends: Vec<(obs::CollKind, u64)> = all
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::CollEnd { kind, id } => Some((kind, id)),
            _ => None,
        })
        .collect();
    assert!(begins.iter().any(|(k, _)| *k == obs::CollKind::Allreduce));
    assert!(begins.iter().any(|(k, _)| *k == obs::CollKind::Barrier));
    for b in &begins {
        assert!(ends.contains(b), "collective {b:?} never ended");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential property: attaching the recorder (or detaching it, or
    /// attaching it disabled) never changes the bytes any rank computes or
    /// its final virtual-clock reading.
    #[test]
    fn tracing_does_not_perturb_results_or_virtual_time(
        np in 2u32..5,
        bytes in prop_oneof![Just(16usize), Just(4096), Just(96 * 1024)],
    ) {
        let plain = run_world_with(np, virtual_mode(), move |comm| workload(&comm, bytes));

        let rec = Recorder::new(np as usize, obs::DEFAULT_CAPACITY, TraceClock::Virtual);
        let traced =
            run_world_recorded(np, virtual_mode(), None, Arc::clone(&rec), move |comm| {
                workload(&comm, bytes)
            });

        let rec_off = Recorder::new(np as usize, obs::DEFAULT_CAPACITY, TraceClock::Virtual);
        rec_off.set_enabled(false);
        let disabled =
            run_world_recorded(np, virtual_mode(), None, Arc::clone(&rec_off), move |comm| {
                workload(&comm, bytes)
            });

        for r in 0..np as usize {
            prop_assert_eq!(&plain[r].0, &traced[r].0, "rank {} bytes (traced)", r);
            prop_assert_eq!(&plain[r].0, &disabled[r].0, "rank {} bytes (disabled)", r);
            prop_assert_eq!(plain[r].1, traced[r].1, "rank {} virtual time (traced)", r);
            prop_assert_eq!(plain[r].1, disabled[r].1, "rank {} virtual time (disabled)", r);
            prop_assert!(rec_off.rank_events(r).is_empty(),
                "disabled recorder logged events on rank {}", r);
        }
    }
}

//! Simulated-scale smoke: a 4096-rank virtual-clock world must be
//! runnable in a default test run (ISSUE 9 acceptance criterion).
//!
//! What makes this feasible is the small-stack option plus lazily
//! materialized per-rank state: 4096 ranks at the old fixed 32 MiB
//! stack would reserve 128 GiB of address space, while
//! [`mpi_substrate::SMALL_STACK_BYTES`] keeps the whole world under a
//! gigabyte. The ranks run real collective schedules, so the virtual
//! clock observes genuine log₂(4096) = 12-round critical paths.

use mpi_substrate::{
    run_world_configured, AllgatherAlgo, ClockMode, CollTuning, Datatype, ReduceOp,
    WorldConfig, SMALL_STACK_BYTES,
};
use netsim::{CostModel, SystemProfile};

const P: u32 = 4096;

fn scale_config() -> WorldConfig {
    let mode = ClockMode::Virtual(CostModel::native(SystemProfile::scale_cluster()));
    WorldConfig::new(mode).with_stack_size(SMALL_STACK_BYTES)
}

#[test]
fn collectives_complete_at_4096_ranks() {
    let times = run_world_configured(P, scale_config(), |comm| {
        comm.barrier().unwrap();

        // Allreduce: every rank contributes its rank id.
        let v = (comm.rank() as i32).to_le_bytes();
        let mut out = [0u8; 4];
        comm.allreduce(&v, &mut out, Datatype::Int, ReduceOp::Sum).unwrap();
        let expected: i32 = (0..P as i32).sum();
        assert_eq!(i32::from_le_bytes(out), expected, "rank {}", comm.rank());

        // Bcast from a non-zero root.
        let root = P - 1;
        let mut buf = if comm.rank() == root { [0x5Au8; 8] } else { [0u8; 8] };
        comm.bcast(&mut buf, root).unwrap();
        assert!(buf.iter().all(|&b| b == 0x5A));

        comm.wtime()
    });
    assert_eq!(times.len(), P as usize);
    // The virtual clock must have advanced on every rank.
    assert!(times.iter().all(|&t| t > 0.0));
}

#[test]
fn bruck_allgather_completes_at_4096_ranks() {
    // One byte per rank keeps the log₂(p)-round Bruck schedule
    // latency-bound — the regime it exists for.
    let cfg = scale_config()
        .with_coll_tuning(CollTuning::new().force_allgather(AllgatherAlgo::Bruck));
    run_world_configured(P, cfg, |comm| {
        let mine = [comm.rank() as u8];
        let mut out = vec![0u8; P as usize];
        comm.allgather(&mine, &mut out).unwrap();
        for r in 0..P as usize {
            assert_eq!(out[r], r as u8, "block {r} at rank {}", comm.rank());
        }
    });
}

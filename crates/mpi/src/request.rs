//! Nonblocking requests: the `MPI_Request` state machines.
//!
//! A [`Request`] is a detached operation bound to a communicator context.
//! Its lifecycle mirrors MPI-2.2:
//!
//! ```text
//!              Isend/Irecv/I<coll>            progress()
//!   (created) ───────────────────► Active ───────────────► Done(Status)
//!                                     ▲                        │
//!                        Start ───────┘          take_status() │
//!                                                              ▼
//!   Send_init/Recv_init ─► Inactive ◄──────(persistent)── Null/Inactive
//! ```
//!
//! * `progress()` drives the operation as far as it can without blocking
//!   (the *progress loop*); completed operations park in `Done` with
//!   their status — failures latch in `Failed` — until `take_result()`
//!   retires them: to `Null` for one-shot requests, back to `Inactive`
//!   for persistent ones (also after failures, so `Start` stays legal).
//!   Because outcomes latch, `progress()` is safe to call on requests the
//!   caller does not own — which is how an embedder can drive a whole
//!   request table while one operation waits.
//! * `test()` = `progress` + conditional `take_result`; `wait()` blocks
//!   (receives park on their posted entry's condvar, sends on the
//!   rendezvous slot, collectives poll with backoff).
//! * The completion set operations ([`Request::wait_all`],
//!   [`Request::wait_any`], [`Request::wait_some`], [`Request::test_all`],
//!   [`Request::test_any`]) progress requests in index order.
//!
//! **Matching model.** Receives match at *posting* time: `Irecv`
//! registers a [`crate::message::RecvEntry`] with the rank's mailbox, and
//! arrivals match posted entries in posting order with full
//! `ANY_SOURCE`/`ANY_TAG` wildcard semantics (see `crate::message` for
//! the queue invariants). Matching transfers only the message into the
//! entry; *delivery* — the payload copy and the virtual-clock charge —
//! happens on the receiving rank when the request is progressed, so
//! testing requests in any order is safe: a newer same-matcher request
//! can never steal an older one's message.
//!
//! Nonblocking collectives (`Ibarrier`/`Ibcast`/`Ireduce`/`Iallreduce`/
//! `Igather`/`Iscatter`/`Iallgather`/`Ialltoall`/`Ialltoallv`) are
//! expressed as schedules of the same eager/rendezvous point-to-point
//! steps, advanced by the shared progress loop; their rounds interleave
//! freely with unrelated traffic (each initiation draws its own tag from
//! the per-communicator sequence space).

use std::marker::PhantomData;
use std::sync::Arc;

use crate::comm::{Source, Status, Tag, COLLECTIVE_TAG_BASE};
use crate::datatype::{reduce_in_place, Datatype, ReduceOp};
use crate::error::MpiError;
use crate::message::{Message, RecvEntry};
use crate::progress::{CommCtx, SendOp};

/// Base of the nonblocking-collective tag space, below every blocking
/// collective tag. Each initiated nonblocking collective draws a unique
/// tag from here (see [`crate::Comm`]'s per-communicator sequence
/// counter) so the rounds of two outstanding collectives of the same type
/// can never cross-match.
pub(crate) const NBC_TAG_BASE: i32 = COLLECTIVE_TAG_BASE - 64;

/// Per-operation offset within one sequence slot.
pub(crate) const NBC_KIND_BARRIER: i32 = 0;
pub(crate) const NBC_KIND_BCAST: i32 = 1;
pub(crate) const NBC_KIND_ALLREDUCE: i32 = 2;
pub(crate) const NBC_KIND_REDUCE: i32 = 3;
pub(crate) const NBC_KIND_GATHER: i32 = 4;
pub(crate) const NBC_KIND_SCATTER: i32 = 5;
pub(crate) const NBC_KIND_ALLGATHER: i32 = 6;
pub(crate) const NBC_KIND_ALLTOALL: i32 = 7;
pub(crate) const NBC_KIND_ALLTOALLV: i32 = 8;

/// Tag for nonblocking collective number `seq` of kind `kind` on a
/// communicator. MPI requires every rank to issue collectives on a
/// communicator in the same order, so per-rank counters agree. The
/// sequence wraps far before the i32 tag space runs out; a wrap-distance
/// collision would need ~2^20 simultaneously outstanding collectives.
pub(crate) fn nbc_tag(seq: u64, kind: i32) -> i32 {
    NBC_TAG_BASE - ((seq & 0xF_FFFF) as i32 * 16 + kind)
}

/// Outcome of [`Request::test_any`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestAny {
    /// `index`, `status` of a completed request.
    Completed(usize, Status),
    /// Active requests exist but none has completed yet.
    NoneReady,
    /// No active request in the set (`MPI_UNDEFINED`).
    NoneActive,
}

/// A nonblocking operation handle (`MPI_Request`).
///
/// The lifetime ties the request to the buffers it references; the
/// `*_raw` constructors on [`crate::Comm`] produce `Request<'static>` for
/// embedders whose buffers (guest linear memory) outlive the request
/// table.
pub struct Request<'buf> {
    ctx: CommCtx,
    kind: Kind,
    persistent: Option<PersistentOp>,
    /// Flight-recorder id for state-transition events (0 = tracing off).
    trace_id: u64,
    /// Collective schedule rounds observed so far (trace-only).
    coll_rounds: u32,
    _buf: PhantomData<&'buf mut [u8]>,
}

// Safety: the raw buffer pointers inside `kind` are only dereferenced by
// the owning rank's thread (requests never migrate mid-operation; the
// embedder keeps each rank's request table on its own thread).
unsafe impl Send for Request<'_> {}

#[derive(Clone, Copy)]
enum PersistentOp {
    Send { ptr: *const u8, len: usize, dest: u32, tag: i32 },
    Recv { ptr: *mut u8, len: usize, src: Source, tag: Tag },
}

enum Kind {
    /// `MPI_REQUEST_NULL` (or a retired one-shot request).
    Null,
    /// Persistent request between `Start` calls.
    Inactive,
    /// Completed, status not yet retrieved.
    Done(Status),
    /// Failed during progress; the error is latched until retrieved by
    /// `wait`/`test`/a completion set (so errors discovered while another
    /// operation drives the progress loop are not lost, and a failed
    /// persistent request returns to a restartable `Inactive`).
    Failed(MpiError),
    Send { op: SendOp, dest: u32, tag: i32, len: usize },
    /// A posted receive: the entry is registered with the rank's mailbox
    /// (arrival-matched in posted order); `ptr`/`len` is the destination
    /// buffer the owning rank delivers into once the entry is matched.
    Recv { ptr: *mut u8, len: usize, entry: Arc<RecvEntry> },
    Coll(Box<CollState>),
}

impl Status {
    /// The "empty" status MPI returns for null/inactive requests.
    pub fn empty() -> Status {
        Status::msg(u32::MAX, -1, 0)
    }

    /// The status of a successfully cancelled operation: empty fields with
    /// the `MPI_Test_cancelled` flag set.
    pub fn cancelled() -> Status {
        Status { cancelled: true, ..Status::empty() }
    }
}

impl<'buf> Request<'buf> {
    // --- constructors (crate-internal; the public surface is on Comm) ---

    fn build(ctx: CommCtx, kind: Kind, persistent: Option<PersistentOp>) -> Request<'buf> {
        let req = Request {
            trace_id: ctx.world.next_trace_id(),
            ctx,
            kind,
            persistent,
            coll_rounds: 0,
            _buf: PhantomData,
        };
        req.note_state(match req.kind {
            Kind::Inactive => obs::ReqState::Inactive,
            _ => obs::ReqState::Active,
        });
        req
    }

    /// Emit the request's current state-machine position to the flight
    /// recorder (no-op when tracing is off).
    #[inline]
    fn note_state(&self, state: obs::ReqState) {
        if self.trace_id != 0 {
            let req = self.trace_id;
            self.ctx.trace(|| obs::EventKind::ReqTransition { req, state });
        }
    }

    pub(crate) fn send(
        ctx: CommCtx,
        ptr: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'buf>, MpiError> {
        let op = ctx.start_send(ptr, len, dest, tag)?;
        Ok(Self::build(ctx, Kind::Send { op, dest, tag, len }, None))
    }

    /// Synchronous-mode send (`MPI_Issend`): completion of the request
    /// implies the receiver matched the message. Same `Kind::Send` state
    /// machine — only the initiation differs (see
    /// [`CommCtx::start_send_sync`]).
    pub(crate) fn send_sync(
        ctx: CommCtx,
        ptr: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'buf>, MpiError> {
        let op = ctx.start_send_sync(ptr, len, dest, tag)?;
        Ok(Self::build(ctx, Kind::Send { op, dest, tag, len }, None))
    }

    /// Send of a protocol-owned payload (buffered-mode and host-packed
    /// derived-datatype sends): the caller's buffer is already decoupled,
    /// so the request never pins guest memory.
    pub(crate) fn send_owned(
        ctx: CommCtx,
        data: Box<[u8]>,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'buf>, MpiError> {
        let len = data.len();
        let op = ctx.start_send_owned(data, dest, tag, false)?;
        Ok(Self::build(ctx, Kind::Send { op, dest, tag, len }, None))
    }

    /// Synchronous-mode owned-payload send: completion implies the
    /// receiver matched the message (`MPI_Issend` over packed data).
    pub(crate) fn send_owned_sync(
        ctx: CommCtx,
        data: Box<[u8]>,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'buf>, MpiError> {
        let len = data.len();
        let op = ctx.start_send_owned(data, dest, tag, true)?;
        Ok(Self::build(ctx, Kind::Send { op, dest, tag, len }, None))
    }

    pub(crate) fn recv(
        ctx: CommCtx,
        ptr: *mut u8,
        len: usize,
        src: Source,
        tag: Tag,
    ) -> Result<Request<'buf>, MpiError> {
        if let Source::Rank(r) = src {
            ctx.check_rank(r)?;
        }
        let entry = ctx.post_recv(src, tag);
        Ok(Self::build(ctx, Kind::Recv { ptr, len, entry }, None))
    }

    pub(crate) fn send_init(
        ctx: CommCtx,
        ptr: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'buf>, MpiError> {
        ctx.check_rank(dest)?;
        Ok(Self::build(
            ctx,
            Kind::Inactive,
            Some(PersistentOp::Send { ptr, len, dest, tag }),
        ))
    }

    pub(crate) fn recv_init(
        ctx: CommCtx,
        ptr: *mut u8,
        len: usize,
        src: Source,
        tag: Tag,
    ) -> Result<Request<'buf>, MpiError> {
        if let Source::Rank(r) = src {
            ctx.check_rank(r)?;
        }
        Ok(Self::build(
            ctx,
            Kind::Inactive,
            Some(PersistentOp::Recv { ptr, len, src, tag }),
        ))
    }

    pub(crate) fn coll(ctx: CommCtx, state: CollState) -> Request<'buf> {
        let req = Self::build(ctx, Kind::Coll(Box::new(state)), None);
        if req.trace_id != 0 {
            if let Kind::Coll(state) = &req.kind {
                let (kind, algo, id) = (state.obs_kind(), state.algo(), req.trace_id);
                req.ctx.trace(|| obs::EventKind::CollBegin { kind, algo, id });
            }
        }
        req
    }

    /// A receive whose message was already extracted by a matched probe
    /// (`MPI_Imrecv`): the entry is born matched, so the first progress
    /// step delivers. Dropping the request undelivered requeues the
    /// message (the usual matched-receive cancellation path).
    pub(crate) fn recv_matched(
        ctx: CommCtx,
        ptr: *mut u8,
        len: usize,
        msg: Message,
    ) -> Request<'buf> {
        let entry = RecvEntry::prematched(msg);
        Self::build(ctx, Kind::Recv { ptr, len, entry }, None)
    }

    // --- introspection --------------------------------------------------

    /// True for `MPI_REQUEST_NULL` / retired requests.
    pub fn is_null(&self) -> bool {
        matches!(self.kind, Kind::Null)
    }

    /// True for persistent requests (created by `send_init`/`recv_init`).
    pub fn is_persistent(&self) -> bool {
        self.persistent.is_some()
    }

    /// True when the operation has finished (or there is nothing to wait
    /// for): `Done`, `Failed`, `Null`, or an inactive persistent request.
    pub fn is_complete(&self) -> bool {
        matches!(self.kind, Kind::Done(_) | Kind::Failed(_) | Kind::Null | Kind::Inactive)
    }

    /// An operation is still running.
    fn is_pending(&self) -> bool {
        matches!(self.kind, Kind::Send { .. } | Kind::Recv { .. } | Kind::Coll(_))
    }

    /// The request participates in `*any`/`*some` completion-set
    /// operations: pending, or completed (or failed) with an unretrieved
    /// outcome. Null and inactive persistent requests do not participate
    /// (MPI's `MPI_UNDEFINED` cases).
    pub fn participates(&self) -> bool {
        self.is_pending() || matches!(self.kind, Kind::Done(_) | Kind::Failed(_))
    }

    /// Completed with an unretrieved outcome (success or failure).
    fn is_retirable(&self) -> bool {
        matches!(self.kind, Kind::Done(_) | Kind::Failed(_))
    }

    /// True when dropping this request without completing it is harmless
    /// to peers: receives leave their (unmatched) message queued for
    /// other receives, and finished/null/inactive requests hold nothing.
    /// Active sends and collectives must run to completion first or the
    /// peer would lose data (`MPI_Request_free` semantics).
    pub fn safe_to_detach(&self) -> bool {
        !matches!(self.kind, Kind::Send { .. } | Kind::Coll(_))
    }

    /// True when the operation finishes without any further action from
    /// this rank: an initiated send's payload is drained by the
    /// *receiver* (eager from the mailbox, rendezvous straight from the
    /// pinned buffer), so the request only needs to stay alive — parked,
    /// not driven — until the peer gets to it.
    pub fn completes_passively(&self) -> bool {
        matches!(self.kind, Kind::Send { .. })
    }

    /// True when this request requires active driving from the owning
    /// rank's progress loop: pending receives and collectives. Sends
    /// complete passively and retired/inactive requests hold nothing, so
    /// a rank whose table contains none of these can park on a condvar
    /// instead of polling.
    pub fn needs_progress(&self) -> bool {
        matches!(self.kind, Kind::Recv { .. } | Kind::Coll(_))
    }

    // --- lifecycle ------------------------------------------------------

    /// Activate a persistent request (`MPI_Start`). Errors on non-persistent
    /// or still-active requests.
    pub fn start(&mut self) -> Result<(), MpiError> {
        let Some(op) = self.persistent else {
            return Err(MpiError::CollectiveMismatch(
                "MPI_Start on a non-persistent request".into(),
            ));
        };
        if self.participates() {
            return Err(MpiError::CollectiveMismatch(
                "MPI_Start on an active request".into(),
            ));
        }
        self.ctx.charge_call();
        self.kind = match op {
            PersistentOp::Send { ptr, len, dest, tag } => {
                let op = self.ctx.start_send(ptr, len, dest, tag)?;
                Kind::Send { op, dest, tag, len }
            }
            PersistentOp::Recv { ptr, len, src, tag } => {
                let entry = self.ctx.post_recv(src, tag);
                Kind::Recv { ptr, len, entry }
            }
        };
        self.note_state(obs::ReqState::Active);
        Ok(())
    }

    /// `MPI_Startall`.
    pub fn start_all(reqs: &mut [Request<'_>]) -> Result<(), MpiError> {
        for r in reqs {
            r.start()?;
        }
        Ok(())
    }

    /// `MPI_Cancel`: mark the operation for cancellation. Cancellation is
    /// a *race against matching*, decided under the destination mailbox
    /// lock:
    ///
    /// * a pending **send** whose message is still queued unmatched (a
    ///   credit-deferred eager send or an unanswered rendezvous RTS) is
    ///   retracted — the message is removed before any receive can see it
    ///   (counted by `ProtocolStats::cancelled_sends`/`retracted_rts`);
    ///   an eager send that already buffered at the destination, or a
    ///   send whose RTS already matched, completes normally;
    /// * a posted **receive** that no arrival has matched is unposted;
    ///   a matched one delivers normally;
    /// * null, inactive, completed, and collective requests are left
    ///   untouched (MPI forbids cancelling collectives).
    ///
    /// Either way the request must still be completed by
    /// `wait`/`test`/a completion set, whose `Status` reports the outcome
    /// through [`Status::cancelled`] (`MPI_Test_cancelled`).
    pub fn cancel(&mut self) {
        let cancelled = match &mut self.kind {
            Kind::Send { op, dest, .. } => {
                let dest = *dest;
                op.try_cancel(&self.ctx, dest)
            }
            Kind::Recv { entry, .. } => {
                let mailbox = self.ctx.world.mailbox(self.ctx.my_world());
                mailbox.try_unpost(entry)
            }
            _ => false,
        };
        if cancelled {
            self.kind = Kind::Done(Status::cancelled());
            self.note_state(obs::ReqState::Cancelled);
        }
    }

    /// Drive the operation as far as possible without blocking. Completed
    /// operations transition to `Done`; failures latch in `Failed` (after
    /// cancelling any in-flight rendezvous so no dangling buffer pointer
    /// survives). Both park until retrieved by [`Request::take_result`] /
    /// `wait` / `test` / a completion set — so this is safe to call on
    /// requests someone else owns (the whole-table progress loop).
    pub fn progress(&mut self) {
        // Tracing: remember the collective's schedule position so a poll
        // that advances it (or finishes it) can be logged as a round/end
        // event after the mutable borrow ends.
        let coll_before = match (&self.kind, self.trace_id) {
            (Kind::Coll(state), id) if id != 0 => Some((state.obs_kind(), state.round_key())),
            _ => None,
        };
        let outcome: Result<Option<Status>, MpiError> = match &mut self.kind {
            Kind::Null | Kind::Inactive | Kind::Done(_) | Kind::Failed(_) => return,
            Kind::Send { op, dest, tag, len } => op.poll(&self.ctx).map(|done| {
                done.then(|| Status::msg(*dest, *tag, *len))
            }),
            Kind::Recv { ptr, len, entry } => {
                match entry.poll() {
                    Ok(Some(msg)) => {
                        let dst = unsafe { std::slice::from_raw_parts_mut(*ptr, *len) };
                        self.ctx.deliver(msg, Some(dst)).map(|(st, _)| Some(st))
                    }
                    Ok(None) => Ok(None),
                    Err(e) => Err(e),
                }
            }
            Kind::Coll(state) => state.poll(&self.ctx),
        };
        match outcome {
            Ok(Some(st)) => {
                self.kind = Kind::Done(st);
                if let Some((kind, _)) = coll_before {
                    let id = self.trace_id;
                    self.ctx.trace(|| obs::EventKind::CollEnd { kind, id });
                }
                self.note_state(obs::ReqState::Done);
            }
            Ok(None) => {
                if let (Some((kind, key0)), Kind::Coll(state)) = (coll_before, &self.kind) {
                    if state.round_key() != key0 {
                        self.coll_rounds += 1;
                        let (round, id) = (self.coll_rounds, self.trace_id);
                        self.ctx.trace(|| obs::EventKind::CollRound { kind, round, id });
                    }
                }
            }
            Err(e) => {
                self.kind.cancel_in_flight(&self.ctx);
                self.kind = Kind::Failed(e);
                self.note_state(obs::ReqState::Failed);
            }
        }
    }

    /// Retire a completed request: returns its status — or the latched
    /// error — and resets the request to `Null` (one-shot) or `Inactive`
    /// (persistent, which stays restartable even after a failure). Null
    /// and inactive requests yield the empty status.
    ///
    /// # Panics
    /// On a still-pending request; check [`Request::is_complete`] first.
    pub fn take_result(&mut self) -> Result<Status, MpiError> {
        let retired = if self.persistent.is_some() { Kind::Inactive } else { Kind::Null };
        let retired_state = if self.persistent.is_some() {
            obs::ReqState::Inactive
        } else {
            obs::ReqState::Null
        };
        match std::mem::replace(&mut self.kind, retired) {
            Kind::Done(st) => {
                self.note_state(retired_state);
                Ok(st)
            }
            Kind::Failed(e) => {
                self.note_state(retired_state);
                Err(e)
            }
            Kind::Inactive => {
                self.kind = Kind::Inactive;
                Ok(Status::empty())
            }
            Kind::Null => {
                self.kind = Kind::Null;
                Ok(Status::empty())
            }
            active => {
                self.kind = active;
                panic!("take_result on an incomplete request");
            }
        }
    }

    fn latch_error(&mut self, e: MpiError) {
        // Discarding the operation state must not leave queued rendezvous
        // RTS messages pointing into buffers we are about to free.
        self.kind.cancel_in_flight(&self.ctx);
        self.kind = Kind::Failed(e);
        self.note_state(obs::ReqState::Failed);
    }

    /// `MPI_Test`: progress, and if complete return the status (retiring
    /// the request; a latched failure surfaces as the `Err`).
    pub fn test(&mut self) -> Result<Option<Status>, MpiError> {
        self.progress();
        if self.is_complete() {
            self.take_result().map(Some)
        } else {
            Ok(None)
        }
    }

    /// `MPI_Wait`: block until complete, return the status.
    pub fn wait(&mut self) -> Result<Status, MpiError> {
        // Receives park on their posted entry's condvar instead of
        // polling: the matching arrival wakes them directly.
        let recv_parts = match &self.kind {
            Kind::Recv { ptr, len, entry } => Some((*ptr, *len, Arc::clone(entry))),
            _ => None,
        };
        if let Some((ptr, len, entry)) = recv_parts {
            match entry.wait() {
                Ok(msg) => {
                    let dst = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
                    let delivered = self.ctx.deliver(msg, Some(dst));
                    match delivered {
                        Ok((st, _)) => {
                            self.kind = Kind::Done(st);
                            self.note_state(obs::ReqState::Done);
                        }
                        Err(e) => self.latch_error(e),
                    }
                }
                Err(e) => self.latch_error(e),
            }
            return self.take_result();
        }
        // Sends park on the rendezvous slot.
        let send_outcome = match &mut self.kind {
            Kind::Send { op, dest, tag, len } => {
                Some((op.wait(&self.ctx), Status::msg(*dest, *tag, *len)))
            }
            _ => None,
        };
        if let Some((result, st)) = send_outcome {
            match result {
                Ok(()) => {
                    self.kind = Kind::Done(st);
                    self.note_state(obs::ReqState::Done);
                }
                Err(e) => self.latch_error(e),
            }
            return self.take_result();
        }
        // Collectives (and null/inactive/done/failed): poll with backoff.
        let mut spins = 0u32;
        loop {
            self.progress();
            if self.is_complete() {
                return self.take_result();
            }
            backoff(&mut spins);
        }
    }

    // --- completion sets ------------------------------------------------

    /// `MPI_Waitall`: wait for every request; statuses in request order.
    /// On failure the first error is returned after every request has
    /// been driven to completion and retired.
    pub fn wait_all(reqs: &mut [Request<'_>]) -> Result<Vec<Status>, MpiError> {
        // Progress in index order until all complete, then retire. Driving
        // them jointly (rather than waiting one by one) lets later
        // requests run their protocols while earlier ones are stuck.
        let mut spins = 0u32;
        loop {
            let mut all = true;
            for r in reqs.iter_mut() {
                r.progress();
                all &= r.is_complete();
            }
            if all {
                let mut statuses = Vec::with_capacity(reqs.len());
                let mut first_err = None;
                for r in reqs.iter_mut() {
                    match r.take_result() {
                        Ok(st) => statuses.push(st),
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                return match first_err {
                    None => Ok(statuses),
                    Some(e) => Err(e),
                };
            }
            backoff(&mut spins);
        }
    }

    /// `MPI_Waitany`: block until one active request completes; `None`
    /// when the set has no active request (`MPI_UNDEFINED`).
    pub fn wait_any(reqs: &mut [Request<'_>]) -> Result<Option<(usize, Status)>, MpiError> {
        let mut spins = 0u32;
        loop {
            match Self::test_any(reqs)? {
                TestAny::Completed(i, st) => return Ok(Some((i, st))),
                TestAny::NoneActive => return Ok(None),
                TestAny::NoneReady => backoff(&mut spins),
            }
        }
    }

    /// `MPI_Waitsome`: block until at least one active request completes;
    /// returns every request completed in that pass. Empty result means no
    /// active request existed (`MPI_UNDEFINED`).
    pub fn wait_some(reqs: &mut [Request<'_>]) -> Result<Vec<(usize, Status)>, MpiError> {
        if !reqs.iter().any(|r| r.participates()) {
            return Ok(Vec::new());
        }
        let mut spins = 0u32;
        loop {
            let mut done = Vec::new();
            let mut failed: Option<usize> = None;
            for (i, r) in reqs.iter_mut().enumerate() {
                if !r.participates() {
                    continue;
                }
                r.progress();
                match &r.kind {
                    Kind::Done(_) => {
                        done.push((i, r.take_result().expect("done retires cleanly")));
                    }
                    // Leave failures latched: successful completions from
                    // this pass must be reported first, never discarded.
                    Kind::Failed(_) => failed = failed.or(Some(i)),
                    _ => {}
                }
            }
            if !done.is_empty() {
                return Ok(done);
            }
            if let Some(i) = failed {
                return Err(reqs[i].take_result().expect_err("failed retires to error"));
            }
            backoff(&mut spins);
        }
    }

    /// `MPI_Testall`: `Some(statuses)` iff every request is complete
    /// (retiring them all); `None` otherwise (none retired). On failure
    /// the first error is returned, with every request retired.
    pub fn test_all(reqs: &mut [Request<'_>]) -> Result<Option<Vec<Status>>, MpiError> {
        let mut all = true;
        for r in reqs.iter_mut() {
            r.progress();
            all &= r.is_complete();
        }
        if !all {
            return Ok(None);
        }
        let mut statuses = Vec::with_capacity(reqs.len());
        let mut first_err = None;
        for r in reqs.iter_mut() {
            match r.take_result() {
                Ok(st) => statuses.push(st),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            None => Ok(Some(statuses)),
            Some(e) => Err(e),
        }
    }

    /// `MPI_Testany`: progress in index order, retiring and returning the
    /// first request found complete.
    pub fn test_any(reqs: &mut [Request<'_>]) -> Result<TestAny, MpiError> {
        let mut any_active = false;
        for (i, r) in reqs.iter_mut().enumerate() {
            if !r.participates() {
                continue;
            }
            any_active = true;
            r.progress();
            if r.is_retirable() {
                return Ok(TestAny::Completed(i, r.take_result()?));
            }
        }
        Ok(if any_active { TestAny::NoneReady } else { TestAny::NoneActive })
    }
}

impl Kind {
    /// Cancel (or ride out) any protocol state still referencing buffers
    /// owned by this request — called before the state is dropped so no
    /// dangling RTS pointer survives in a destination mailbox and no dead
    /// posted entry keeps claiming arrivals. A receive's already-matched
    /// message is requeued at its arrival position for other receives.
    fn cancel_in_flight(&mut self, ctx: &CommCtx) {
        match self {
            Kind::Send { op, .. } => op.cancel(ctx),
            Kind::Coll(state) => state.cancel(ctx),
            Kind::Recv { entry, .. } => ctx.cancel_recv(entry),
            _ => {}
        }
    }
}

impl Drop for Request<'_> {
    fn drop(&mut self) {
        // A dropped in-flight operation must not leave a dangling buffer
        // pointer in a destination mailbox (user buffers for sends,
        // state-owned accumulators for collectives).
        self.kind.cancel_in_flight(&self.ctx);
    }
}

/// Escalating wait-loop backoff: spin, then yield, then sleep — shared by
/// every polling wait in the substrate and by embedder-level completion
/// loops, so parked ranks don't burn a core while their peers compute.
/// Callers keep a counter starting at 0 and pass it on every idle pass.
pub fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else if *spins < 256 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(20));
    }
}

// --- nonblocking collective state machines ------------------------------

/// One in-progress nonblocking collective.
pub(crate) enum CollState {
    Barrier(IbarrierState),
    Bcast(IbcastState),
    Allreduce(IallreduceState),
    Reduce(IreduceState),
    Gather(IgatherState),
    Scatter(IscatterState),
    Allgather(IallgatherState),
    Alltoall(IalltoallState),
    Alltoallv(IalltoallvState),
}

impl CollState {
    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        // ULFM: any failed member fails the whole collective at every
        // poll step. Schedules only touch O(log p) partners, so without
        // this a survivor can park waiting on a live partner that already
        // aborted its own schedule against the dead rank.
        if let Some(err) = ctx.member_failure() {
            return Err(err);
        }
        match self {
            CollState::Barrier(s) => s.poll(ctx),
            CollState::Bcast(s) => s.poll(ctx),
            CollState::Allreduce(s) => s.poll(ctx),
            CollState::Reduce(s) => s.poll(ctx),
            CollState::Gather(s) => s.poll(ctx),
            CollState::Scatter(s) => s.poll(ctx),
            CollState::Allgather(s) => s.poll(ctx),
            CollState::Alltoall(s) => s.poll(ctx),
            CollState::Alltoallv(s) => s.poll(ctx),
        }
    }

    /// The trace vocabulary for this collective.
    fn obs_kind(&self) -> obs::CollKind {
        match self {
            CollState::Barrier(_) => obs::CollKind::Barrier,
            CollState::Bcast(_) => obs::CollKind::Bcast,
            CollState::Allreduce(_) => obs::CollKind::Allreduce,
            CollState::Reduce(_) => obs::CollKind::Reduce,
            CollState::Gather(_) => obs::CollKind::Gather,
            CollState::Scatter(_) => obs::CollKind::Scatter,
            CollState::Allgather(_) => obs::CollKind::Allgather,
            CollState::Alltoall(_) => obs::CollKind::Alltoall,
            CollState::Alltoallv(_) => obs::CollKind::Alltoallv,
        }
    }

    /// The schedule each state machine implements (the algorithm tag the
    /// exported trace carries on every collective span).
    fn algo(&self) -> obs::Algorithm {
        match self {
            CollState::Barrier(_) => obs::Algorithm::Dissemination,
            CollState::Bcast(_) | CollState::Reduce(_) => obs::Algorithm::Binomial,
            CollState::Allreduce(_) => obs::Algorithm::RecursiveDoubling,
            CollState::Gather(_) | CollState::Scatter(_) => obs::Algorithm::LinearRoot,
            CollState::Allgather(_) => obs::Algorithm::Ring,
            CollState::Alltoall(_) | CollState::Alltoallv(_) => obs::Algorithm::Pairwise,
        }
    }

    /// A value that changes exactly when the schedule advances a round —
    /// derived from each machine's existing position fields so progress
    /// polls can detect (and trace) round boundaries without the machines
    /// having to emit anything themselves.
    fn round_key(&self) -> u64 {
        match self {
            CollState::Barrier(s) => s.k as u64,
            CollState::Bcast(s) => (s.mask as u64) << 1 | s.receiving as u64,
            CollState::Allreduce(s) => (s.phase as u64) << 32 | s.mask as u64,
            CollState::Reduce(s) => s.mask as u64,
            CollState::Gather(s) => s.remaining as u64,
            CollState::Scatter(s) => s.started as u64,
            CollState::Allgather(s) => s.step as u64,
            CollState::Alltoall(s) => (s.started as u64) << 32 | s.remaining as u64,
            CollState::Alltoallv(s) => (s.started as u64) << 32 | s.remaining as u64,
        }
    }

    fn cancel(&mut self, ctx: &CommCtx) {
        match self {
            CollState::Barrier(s) => s.send.cancel(ctx),
            CollState::Bcast(s) => s.send.cancel(ctx),
            CollState::Allreduce(s) => s.send.cancel(ctx),
            CollState::Reduce(s) => s.send.cancel(ctx),
            CollState::Gather(s) => s.send.cancel(ctx),
            CollState::Scatter(s) => cancel_sends(ctx, &mut s.sends),
            CollState::Allgather(s) => s.send.cancel(ctx),
            CollState::Alltoall(s) => cancel_sends(ctx, &mut s.sends),
            CollState::Alltoallv(s) => cancel_sends(ctx, &mut s.sends),
        }
    }
}

/// Deliver a matched collective block into `dst`, requiring an exact
/// size. On a size mismatch the message is consumed (completing any
/// rendezvous handshake so the sender proceeds) and the mismatch is
/// reported, as the blocking schedules do.
fn deliver_block(
    ctx: &CommCtx,
    msg: crate::message::Message,
    dst: &mut [u8],
    coll: &str,
) -> Result<(), MpiError> {
    let got = msg.payload.len();
    let src = msg.src_in_comm;
    if got != dst.len() {
        let keep = dst.len().min(got);
        let _ = ctx.deliver(msg, Some(&mut dst[..keep]));
        return Err(MpiError::CollectiveMismatch(format!(
            "{coll} block from rank {src} is {got} bytes, expected {}",
            dst.len()
        )));
    }
    ctx.deliver(msg, Some(dst))?;
    Ok(())
}

/// Poll one tagged block from communicator rank `src` into `buf`,
/// requiring an exact size (see [`deliver_block`]).
fn poll_exact(
    ctx: &CommCtx,
    src: u32,
    tag: i32,
    buf: &mut [u8],
    coll: &str,
) -> Result<bool, MpiError> {
    match ctx.try_take(Source::Rank(src), Tag::Value(tag))? {
        Some(msg) => {
            deliver_block(ctx, msg, buf, coll)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Drive a fan-out of already-initiated sends one poll step.
fn poll_sends(ctx: &CommCtx, ops: &mut [SendOp]) -> Result<bool, MpiError> {
    let mut all = true;
    for op in ops.iter_mut() {
        all &= op.poll(ctx)?;
    }
    Ok(all)
}

fn cancel_sends(ctx: &CommCtx, ops: &mut Vec<SendOp>) {
    for op in ops.iter_mut() {
        op.cancel(ctx);
    }
    ops.clear();
}

/// A point-to-point sub-step of a collective schedule: a send that may be
/// in flight plus a receive that may not have arrived yet.
struct StepSend(Option<SendOp>);

impl StepSend {
    fn new() -> StepSend {
        StepSend(None)
    }

    /// Ensure the send is started, then poll it.
    fn drive(
        &mut self,
        ctx: &CommCtx,
        ptr: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<bool, MpiError> {
        if self.0.is_none() {
            self.0 = Some(ctx.start_send(ptr, len, dest, tag)?);
        }
        self.0.as_mut().unwrap().poll(ctx)
    }

    fn reset(&mut self) {
        self.0 = None;
    }

    fn cancel(&mut self, ctx: &CommCtx) {
        if let Some(op) = &mut self.0 {
            op.cancel(ctx);
        }
        self.0 = None;
    }
}

/// `MPI_Ibarrier`: dissemination, ⌈log₂ p⌉ rounds driven incrementally.
pub(crate) struct IbarrierState {
    tag: i32,
    k: u32,
    token_out: Box<[u8; 1]>,
    token_in: Box<[u8; 1]>,
    send: StepSend,
    sent: bool,
    received: bool,
}

impl IbarrierState {
    pub fn new(tag: i32) -> IbarrierState {
        IbarrierState {
            tag,
            k: 1,
            token_out: Box::new([1]),
            token_in: Box::new([0]),
            send: StepSend::new(),
            sent: false,
            received: false,
        }
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let p = ctx.size();
        let me = ctx.rank;
        loop {
            if p == 1 || self.k >= p {
                return Ok(Some(Status::msg(me, 0, 0)));
            }
            let to = (me + self.k) % p;
            let from = (me + p - self.k) % p;
            if !self.sent {
                self.sent = self.send.drive(
                    ctx,
                    self.token_out.as_ptr(),
                    1,
                    to,
                    self.tag,
                )?;
            }
            if !self.received {
                match ctx.try_take(Source::Rank(from), Tag::Value(self.tag))? {
                    Some(msg) => {
                        ctx.deliver(msg, Some(&mut self.token_in[..]))?;
                        self.received = true;
                    }
                    None => return Ok(None),
                }
            }
            if self.sent && self.received {
                self.k <<= 1;
                self.send.reset();
                self.sent = false;
                self.received = false;
            } else {
                return Ok(None);
            }
        }
    }
}

/// `MPI_Ibcast`: the binomial tree of [`crate::Comm::bcast`] as a state
/// machine. Non-roots first await the block from their parent (written
/// straight into the user buffer — rendezvous payloads land zero-copy),
/// then relay it to their subtree.
pub(crate) struct IbcastState {
    buf: *mut u8,
    len: usize,
    root: u32,
    tag: i32,
    /// Current tree mask: the receive mask while `receiving`, then the
    /// send mask walking down.
    mask: u32,
    receiving: bool,
    send: StepSend,
}

impl IbcastState {
    pub fn new(
        ctx: &CommCtx,
        buf: *mut u8,
        len: usize,
        root: u32,
        tag: i32,
    ) -> Result<IbcastState, MpiError> {
        ctx.check_rank(root)?;
        let p = ctx.size();
        let vr = (ctx.rank + p - root) % p;
        let (mask, receiving) = if p == 1 {
            (0, false)
        } else if vr == 0 {
            // Root: highest tree level, send-only.
            let mut m = 1u32;
            while m < p {
                m <<= 1;
            }
            (m >> 1, false)
        } else {
            // Parent hangs off our lowest set bit.
            (vr & vr.wrapping_neg(), true)
        };
        Ok(IbcastState { buf, len, root, tag, mask, receiving, send: StepSend::new() })
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let p = ctx.size();
        let vr = (ctx.rank + p - self.root) % p;
        if self.receiving {
            let src = (vr - self.mask + self.root) % p;
            match ctx.try_take(Source::Rank(src), Tag::Value(self.tag))? {
                Some(msg) => {
                    let got = msg.payload.len();
                    if got != self.len {
                        // Consume (completing any handshake) then report.
                        let dst = unsafe {
                            std::slice::from_raw_parts_mut(self.buf, self.len)
                        };
                        let _ = ctx.deliver(msg, Some(&mut dst[..self.len.min(got)]));
                        return Err(MpiError::CollectiveMismatch(format!(
                            "ibcast buffers differ: got {got} bytes, expected {}",
                            self.len
                        )));
                    }
                    let dst =
                        unsafe { std::slice::from_raw_parts_mut(self.buf, self.len) };
                    ctx.deliver(msg, Some(dst))?;
                    self.receiving = false;
                    self.mask >>= 1;
                }
                None => return Ok(None),
            }
        }
        while self.mask > 0 {
            if vr + self.mask < p {
                let dst = (vr + self.mask + self.root) % p;
                if !self.send.drive(ctx, self.buf, self.len, dst, self.tag)? {
                    return Ok(None);
                }
                self.send.reset();
            }
            self.mask >>= 1;
        }
        Ok(Some(Status::msg(ctx.rank, 0, self.len)))
    }
}

/// `MPI_Iallreduce`: recursive doubling with the non-power-of-two fold of
/// [`crate::Comm::allreduce`], advanced round by round. The accumulator
/// and round buffers are owned by the state; the result lands in the
/// caller's receive buffer at completion.
pub(crate) struct IallreduceState {
    out: *mut u8,
    dt: Datatype,
    op: ReduceOp,
    tag: i32,
    acc: Vec<u8>,
    incoming: Vec<u8>,
    p2: u32,
    rem: u32,
    new_rank: i64,
    mask: u32,
    phase: ArPhase,
    send: StepSend,
    sent: bool,
    received: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArPhase {
    FoldSend,
    FoldRecv,
    Round,
    UnfoldSend,
    UnfoldRecv,
    Finish,
}

impl IallreduceState {
    pub fn new(
        ctx: &CommCtx,
        send_buf: &[u8],
        out: *mut u8,
        out_len: usize,
        dt: Datatype,
        op: ReduceOp,
        tag: i32,
    ) -> Result<IallreduceState, MpiError> {
        if out_len != send_buf.len() {
            return Err(MpiError::CollectiveMismatch(format!(
                "iallreduce buffers differ: send {}, recv {out_len}",
                send_buf.len()
            )));
        }
        let p = ctx.size();
        let me = ctx.rank;
        let (p2, rem) = if p == 1 {
            (1, 0)
        } else {
            let p2 = 1u32 << (31 - p.leading_zeros());
            (p2, p - p2)
        };
        let (phase, new_rank) = if p == 1 {
            (ArPhase::Finish, 0)
        } else if me < 2 * rem {
            if me % 2 == 0 {
                (ArPhase::FoldSend, -1)
            } else {
                (ArPhase::FoldRecv, (me / 2) as i64)
            }
        } else {
            (ArPhase::Round, (me - rem) as i64)
        };
        Ok(IallreduceState {
            out,
            dt,
            op,
            tag,
            acc: send_buf.to_vec(),
            incoming: vec![0u8; send_buf.len()],
            p2,
            rem,
            new_rank,
            mask: 1,
            phase,
            send: StepSend::new(),
            sent: false,
            received: false,
        })
    }

    fn recv_exact(
        &mut self,
        ctx: &CommCtx,
        src: u32,
    ) -> Result<bool, MpiError> {
        poll_exact(ctx, src, self.tag, &mut self.incoming, "iallreduce")
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let me = ctx.rank;
        loop {
            match self.phase {
                ArPhase::FoldSend => {
                    if !self.send.drive(
                        ctx,
                        self.acc.as_ptr(),
                        self.acc.len(),
                        me + 1,
                        self.tag,
                    )? {
                        return Ok(None);
                    }
                    self.send.reset();
                    self.phase = ArPhase::UnfoldRecv;
                }
                ArPhase::FoldRecv => {
                    if !self.recv_exact(ctx, me - 1)? {
                        return Ok(None);
                    }
                    reduce_in_place(self.dt, self.op, &mut self.acc, &self.incoming)?;
                    self.phase = ArPhase::Round;
                }
                ArPhase::Round => {
                    if self.mask >= self.p2 {
                        self.phase = if me < 2 * self.rem {
                            // Odd folded ranks return the result.
                            ArPhase::UnfoldSend
                        } else {
                            ArPhase::Finish
                        };
                        continue;
                    }
                    let nr = self.new_rank as u32;
                    let partner_nr = nr ^ self.mask;
                    let partner = if partner_nr < self.rem {
                        partner_nr * 2 + 1
                    } else {
                        partner_nr + self.rem
                    };
                    if !self.sent {
                        self.sent = self.send.drive(
                            ctx,
                            self.acc.as_ptr(),
                            self.acc.len(),
                            partner,
                            self.tag,
                        )?;
                    }
                    if !self.received {
                        self.received = self.recv_exact(ctx, partner)?;
                    }
                    if self.sent && self.received {
                        reduce_in_place(self.dt, self.op, &mut self.acc, &self.incoming)?;
                        self.mask <<= 1;
                        self.send.reset();
                        self.sent = false;
                        self.received = false;
                    } else {
                        return Ok(None);
                    }
                }
                ArPhase::UnfoldSend => {
                    if !self.send.drive(
                        ctx,
                        self.acc.as_ptr(),
                        self.acc.len(),
                        me - 1,
                        self.tag,
                    )? {
                        return Ok(None);
                    }
                    self.send.reset();
                    self.phase = ArPhase::Finish;
                }
                ArPhase::UnfoldRecv => {
                    if !self.recv_exact(ctx, me + 1)? {
                        return Ok(None);
                    }
                    self.acc.copy_from_slice(&self.incoming);
                    self.phase = ArPhase::Finish;
                }
                ArPhase::Finish => {
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(self.out, self.acc.len())
                    };
                    out.copy_from_slice(&self.acc);
                    return Ok(Some(Status::msg(me, 0, self.acc.len())));
                }
            }
        }
    }
}

/// `MPI_Ireduce`: the binomial tree of [`crate::Comm::reduce`] advanced
/// round by round. The accumulator is state-owned; the root's result
/// lands in `out` at completion.
pub(crate) struct IreduceState {
    /// Root's output buffer (null on non-root ranks).
    out: *mut u8,
    root: u32,
    dt: Datatype,
    op: ReduceOp,
    tag: i32,
    acc: Vec<u8>,
    incoming: Vec<u8>,
    mask: u32,
    send: StepSend,
}

impl IreduceState {
    pub fn new(
        ctx: &CommCtx,
        send_buf: &[u8],
        out: *mut u8,
        out_len: usize,
        dt: Datatype,
        op: ReduceOp,
        root: u32,
        tag: i32,
    ) -> Result<IreduceState, MpiError> {
        ctx.check_rank(root)?;
        if ctx.rank == root && out_len != send_buf.len() {
            return Err(MpiError::CollectiveMismatch(format!(
                "ireduce output buffer {out_len} bytes, data {} bytes",
                send_buf.len()
            )));
        }
        Ok(IreduceState {
            out,
            root,
            dt,
            op,
            tag,
            acc: send_buf.to_vec(),
            incoming: vec![0u8; send_buf.len()],
            mask: 1,
            send: StepSend::new(),
        })
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let p = ctx.size();
        let me = ctx.rank;
        let vr = (me + p - self.root) % p;
        loop {
            if self.mask >= p {
                // All subtrees folded in: only the root gets here (every
                // other rank exits through the send branch below).
                let out =
                    unsafe { std::slice::from_raw_parts_mut(self.out, self.acc.len()) };
                out.copy_from_slice(&self.acc);
                return Ok(Some(Status::msg(me, 0, self.acc.len())));
            }
            if vr & self.mask == 0 {
                let partner = vr | self.mask;
                if partner < p {
                    let src = (partner + self.root) % p;
                    if !poll_exact(ctx, src, self.tag, &mut self.incoming, "ireduce")? {
                        return Ok(None);
                    }
                    reduce_in_place(self.dt, self.op, &mut self.acc, &self.incoming)?;
                }
                self.mask <<= 1;
            } else {
                let dst = (vr - self.mask + self.root) % p;
                if !self.send.drive(ctx, self.acc.as_ptr(), self.acc.len(), dst, self.tag)? {
                    return Ok(None);
                }
                self.send.reset();
                return Ok(Some(Status::msg(me, 0, self.acc.len())));
            }
        }
    }
}

/// `MPI_Igather`: linear rooted. The root drains one block per peer —
/// matched by the collective's unique tag, placed by source rank, so
/// arrival order is free — while non-roots drive a single send.
pub(crate) struct IgatherState {
    /// Root's output buffer (`p * n` bytes; null on non-root ranks).
    out: *mut u8,
    /// Non-root's send buffer (null on the root: its block is copied at
    /// initiation).
    sbuf: *const u8,
    n: usize,
    root: u32,
    tag: i32,
    send: StepSend,
    /// Root: peers still to be received.
    remaining: u32,
}

impl IgatherState {
    pub fn new(
        ctx: &CommCtx,
        send_buf: &[u8],
        out: *mut u8,
        out_len: usize,
        root: u32,
        tag: i32,
    ) -> Result<IgatherState, MpiError> {
        ctx.check_rank(root)?;
        let p = ctx.size();
        let n = send_buf.len();
        let (sbuf, remaining) = if ctx.rank == root {
            if out_len != n * p as usize {
                return Err(MpiError::CollectiveMismatch(format!(
                    "igather output is {out_len} bytes, expected {}",
                    n * p as usize
                )));
            }
            // The root's own contribution lands at initiation.
            let own = unsafe {
                std::slice::from_raw_parts_mut(out.wrapping_add(root as usize * n), n)
            };
            own.copy_from_slice(send_buf);
            (std::ptr::null(), p - 1)
        } else {
            (send_buf.as_ptr(), 0)
        };
        Ok(IgatherState { out, sbuf, n, root, tag, send: StepSend::new(), remaining })
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let me = ctx.rank;
        if me == self.root {
            while self.remaining > 0 {
                match ctx.try_take(Source::Any, Tag::Value(self.tag))? {
                    Some(msg) => {
                        let src = msg.src_in_comm as usize;
                        let dst = unsafe {
                            std::slice::from_raw_parts_mut(
                                self.out.wrapping_add(src * self.n),
                                self.n,
                            )
                        };
                        deliver_block(ctx, msg, dst, "igather")?;
                        self.remaining -= 1;
                    }
                    None => return Ok(None),
                }
            }
            let total = self.n * ctx.size() as usize;
            Ok(Some(Status::msg(me, 0, total)))
        } else {
            if !self.send.drive(ctx, self.sbuf, self.n, self.root, self.tag)? {
                return Ok(None);
            }
            self.send.reset();
            Ok(Some(Status::msg(me, 0, self.n)))
        }
    }
}

/// `MPI_Iscatter`: linear rooted fan-out. The root initiates every
/// peer's send on the first poll and then drives them jointly; non-roots
/// await their block.
pub(crate) struct IscatterState {
    /// Root's input buffer (`p * n` bytes; null on non-root ranks).
    sbuf: *const u8,
    out: *mut u8,
    n: usize,
    root: u32,
    tag: i32,
    sends: Vec<SendOp>,
    started: bool,
}

impl IscatterState {
    pub fn new(
        ctx: &CommCtx,
        sbuf: *const u8,
        sbuf_len: usize,
        out: *mut u8,
        out_len: usize,
        root: u32,
        tag: i32,
    ) -> Result<IscatterState, MpiError> {
        ctx.check_rank(root)?;
        let p = ctx.size();
        if ctx.rank == root && sbuf_len != out_len * p as usize {
            return Err(MpiError::CollectiveMismatch(format!(
                "iscatter input is {sbuf_len} bytes, expected {}",
                out_len * p as usize
            )));
        }
        Ok(IscatterState {
            sbuf,
            out,
            n: out_len,
            root,
            tag,
            sends: Vec::new(),
            started: false,
        })
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let p = ctx.size();
        let me = ctx.rank;
        let st = Status::msg(me, 0, self.n);
        if me == self.root {
            if !self.started {
                // Post every block so slow children drain the root's
                // rendezvous handshakes concurrently, then copy our own.
                for r in 0..p {
                    if r == self.root {
                        continue;
                    }
                    self.sends.push(ctx.start_send(
                        self.sbuf.wrapping_add(r as usize * self.n),
                        self.n,
                        r,
                        self.tag,
                    )?);
                }
                let own = unsafe {
                    std::slice::from_raw_parts(
                        self.sbuf.wrapping_add(self.root as usize * self.n),
                        self.n,
                    )
                };
                unsafe { std::slice::from_raw_parts_mut(self.out, self.n) }
                    .copy_from_slice(own);
                self.started = true;
            }
            if !poll_sends(ctx, &mut self.sends)? {
                return Ok(None);
            }
            Ok(Some(st))
        } else {
            let dst = unsafe { std::slice::from_raw_parts_mut(self.out, self.n) };
            if !poll_exact(ctx, self.root, self.tag, dst, "iscatter")? {
                return Ok(None);
            }
            Ok(Some(st))
        }
    }
}

/// `MPI_Iallgather`: the ring of [`crate::Comm::allgather`] as a state
/// machine, p−1 rounds. Each round's outgoing block is copied into a
/// state-owned buffer (so the pending send never aliases the block being
/// written), sent right, and the left neighbour's block lands straight in
/// the caller's output buffer.
pub(crate) struct IallgatherState {
    out: *mut u8,
    n: usize,
    tag: i32,
    step: u32,
    outgoing: Vec<u8>,
    outgoing_valid: bool,
    send: StepSend,
    sent: bool,
    received: bool,
}

impl IallgatherState {
    pub fn new(
        ctx: &CommCtx,
        send_buf: &[u8],
        out: *mut u8,
        out_len: usize,
        tag: i32,
    ) -> Result<IallgatherState, MpiError> {
        let p = ctx.size() as usize;
        let n = send_buf.len();
        if out_len != n * p {
            return Err(MpiError::CollectiveMismatch(format!(
                "iallgather output is {out_len} bytes, expected {}",
                n * p
            )));
        }
        let me = ctx.rank as usize;
        unsafe { std::slice::from_raw_parts_mut(out.wrapping_add(me * n), n) }
            .copy_from_slice(send_buf);
        Ok(IallgatherState {
            out,
            n,
            tag,
            step: 0,
            outgoing: Vec::with_capacity(n),
            outgoing_valid: false,
            send: StepSend::new(),
            sent: false,
            received: false,
        })
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let p = ctx.size() as usize;
        let me = ctx.rank as usize;
        let n = self.n;
        loop {
            if p == 1 || self.step as usize >= p - 1 {
                return Ok(Some(Status::msg(ctx.rank, 0, n * p)));
            }
            let right = ((me + 1) % p) as u32;
            let left = ((me + p - 1) % p) as u32;
            let step = self.step as usize;
            let send_block = (me + p - step) % p;
            let recv_block = (me + p - step - 1) % p;
            if !self.outgoing_valid {
                self.outgoing.clear();
                self.outgoing.extend_from_slice(unsafe {
                    std::slice::from_raw_parts(self.out.wrapping_add(send_block * n), n)
                });
                self.outgoing_valid = true;
            }
            if !self.sent {
                self.sent =
                    self.send.drive(ctx, self.outgoing.as_ptr(), n, right, self.tag)?;
            }
            if !self.received {
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(self.out.wrapping_add(recv_block * n), n)
                };
                self.received = poll_exact(ctx, left, self.tag, dst, "iallgather")?;
            }
            if self.sent && self.received {
                self.step += 1;
                self.send.reset();
                self.sent = false;
                self.received = false;
                self.outgoing_valid = false;
            } else {
                return Ok(None);
            }
        }
    }
}

/// `MPI_Ialltoall`: pairwise exchange. Every peer send is initiated on
/// the first poll (so rendezvous announcements are matchable while this
/// rank drains its own arrivals); incoming blocks are matched by the
/// collective's unique tag and placed by source rank.
pub(crate) struct IalltoallState {
    sbuf: *const u8,
    out: *mut u8,
    n: usize,
    tag: i32,
    sends: Vec<SendOp>,
    started: bool,
    remaining: u32,
}

impl IalltoallState {
    pub fn new(
        ctx: &CommCtx,
        sbuf: *const u8,
        sbuf_len: usize,
        out: *mut u8,
        out_len: usize,
        tag: i32,
    ) -> Result<IalltoallState, MpiError> {
        let p = ctx.size() as usize;
        if sbuf_len != out_len || sbuf_len % p != 0 {
            return Err(MpiError::CollectiveMismatch(format!(
                "ialltoall buffers must be equal and divisible by p: {sbuf_len} vs {out_len}"
            )));
        }
        Ok(IalltoallState {
            sbuf,
            out,
            n: sbuf_len / p,
            tag,
            sends: Vec::new(),
            started: false,
            remaining: ctx.size() - 1,
        })
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let p = ctx.size() as usize;
        let me = ctx.rank as usize;
        let n = self.n;
        if !self.started {
            for i in 1..p {
                let dst = (me + i) % p;
                self.sends.push(ctx.start_send(
                    self.sbuf.wrapping_add(dst * n),
                    n,
                    dst as u32,
                    self.tag,
                )?);
            }
            unsafe { std::slice::from_raw_parts_mut(self.out.wrapping_add(me * n), n) }
                .copy_from_slice(unsafe {
                    std::slice::from_raw_parts(self.sbuf.wrapping_add(me * n), n)
                });
            self.started = true;
        }
        let sends_done = poll_sends(ctx, &mut self.sends)?;
        while self.remaining > 0 {
            match ctx.try_take(Source::Any, Tag::Value(self.tag))? {
                Some(msg) => {
                    let src = msg.src_in_comm as usize;
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(self.out.wrapping_add(src * n), n)
                    };
                    deliver_block(ctx, msg, dst, "ialltoall")?;
                    self.remaining -= 1;
                }
                None => return Ok(None),
            }
        }
        if !sends_done {
            return Ok(None);
        }
        Ok(Some(Status::msg(ctx.rank, 0, n * p)))
    }
}

/// `MPI_Ialltoallv`: the vector pairwise exchange. Counts and
/// displacements are in **bytes** at this layer (the embedder translates
/// element counts); zero-length blocks still travel so every rank sees
/// exactly `p − 1` arrivals per collective.
pub(crate) struct IalltoallvState {
    sbuf: *const u8,
    out: *mut u8,
    tag: i32,
    scounts: Vec<usize>,
    sdispls: Vec<usize>,
    rcounts: Vec<usize>,
    rdispls: Vec<usize>,
    sends: Vec<SendOp>,
    started: bool,
    /// Per-source arrival flag (a peer must contribute exactly once).
    received: Vec<bool>,
    remaining: u32,
}

impl IalltoallvState {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctx: &CommCtx,
        sbuf: *const u8,
        sbuf_len: usize,
        scounts: Vec<usize>,
        sdispls: Vec<usize>,
        out: *mut u8,
        out_len: usize,
        rcounts: Vec<usize>,
        rdispls: Vec<usize>,
        tag: i32,
    ) -> Result<IalltoallvState, MpiError> {
        let p = ctx.size() as usize;
        if scounts.len() != p || sdispls.len() != p || rcounts.len() != p || rdispls.len() != p
        {
            return Err(MpiError::CollectiveMismatch(format!(
                "ialltoallv takes {p} counts/displacements per array"
            )));
        }
        for r in 0..p {
            if sdispls[r] + scounts[r] > sbuf_len {
                return Err(MpiError::CollectiveMismatch(format!(
                    "ialltoallv send block {r} ({} + {}) exceeds buffer of {sbuf_len}",
                    sdispls[r], scounts[r]
                )));
            }
            if rdispls[r] + rcounts[r] > out_len {
                return Err(MpiError::CollectiveMismatch(format!(
                    "ialltoallv recv block {r} ({} + {}) exceeds buffer of {out_len}",
                    rdispls[r], rcounts[r]
                )));
            }
        }
        let me = ctx.rank as usize;
        if scounts[me] != rcounts[me] {
            return Err(MpiError::CollectiveMismatch(format!(
                "ialltoallv self block differs: send {} recv {}",
                scounts[me], rcounts[me]
            )));
        }
        Ok(IalltoallvState {
            sbuf,
            out,
            tag,
            scounts,
            sdispls,
            rcounts,
            rdispls,
            sends: Vec::new(),
            started: false,
            received: vec![false; p],
            remaining: ctx.size() - 1,
        })
    }

    fn poll(&mut self, ctx: &CommCtx) -> Result<Option<Status>, MpiError> {
        let p = ctx.size() as usize;
        let me = ctx.rank as usize;
        if !self.started {
            for i in 1..p {
                let dst = (me + i) % p;
                self.sends.push(ctx.start_send(
                    self.sbuf.wrapping_add(self.sdispls[dst]),
                    self.scounts[dst],
                    dst as u32,
                    self.tag,
                )?);
            }
            let own = unsafe {
                std::slice::from_raw_parts(
                    self.sbuf.wrapping_add(self.sdispls[me]),
                    self.scounts[me],
                )
            };
            unsafe {
                std::slice::from_raw_parts_mut(
                    self.out.wrapping_add(self.rdispls[me]),
                    self.rcounts[me],
                )
            }
            .copy_from_slice(own);
            self.started = true;
        }
        let sends_done = poll_sends(ctx, &mut self.sends)?;
        while self.remaining > 0 {
            match ctx.try_take(Source::Any, Tag::Value(self.tag))? {
                Some(msg) => {
                    let src = msg.src_in_comm as usize;
                    let want = self.rcounts[src];
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            self.out.wrapping_add(self.rdispls[src]),
                            want,
                        )
                    };
                    if self.received[src] {
                        // Consume (completing any handshake) then report.
                        let keep = want.min(msg.payload.len());
                        let _ = ctx.deliver(msg, Some(&mut dst[..keep]));
                        return Err(MpiError::CollectiveMismatch(format!(
                            "ialltoallv got a second block from rank {src}"
                        )));
                    }
                    deliver_block(ctx, msg, dst, "ialltoallv")?;
                    self.received[src] = true;
                    self.remaining -= 1;
                }
                None => return Ok(None),
            }
        }
        if !sends_done {
            return Ok(None);
        }
        let total: usize = self.rcounts.iter().sum();
        Ok(Some(Status::msg(ctx.rank, 0, total)))
    }
}

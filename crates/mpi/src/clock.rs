//! Per-rank clocks: real (monotonic host time) or virtual (LogP-style
//! simulated time driven by a [`netsim::CostModel`]).

use netsim::CostModel;
use std::time::Instant;

/// How a world measures time.
#[derive(Clone)]
pub enum ClockMode {
    /// `wtime` reads the host monotonic clock; no time is charged.
    Real,
    /// Each rank advances a virtual clock using the cost model: wire time
    /// on the receive path, per-call software overhead on every MPI call.
    Virtual(CostModel),
}

impl std::fmt::Debug for ClockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockMode::Real => write!(f, "ClockMode::Real"),
            ClockMode::Virtual(m) => {
                write!(f, "ClockMode::Virtual({})", m.profile.name)
            }
        }
    }
}

/// One rank's clock state.
#[derive(Debug)]
pub struct Clock {
    /// Virtual time in µs (meaningful in `Virtual` mode).
    pub virtual_us: f64,
    start: Instant,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    pub fn new() -> Self {
        Self { virtual_us: 0.0, start: Instant::now() }
    }

    /// Advance virtual time by `us`.
    pub fn charge(&mut self, us: f64) {
        self.virtual_us += us;
    }

    /// Pull the clock forward to at least `us` (message arrival).
    pub fn advance_to(&mut self, us: f64) {
        if us > self.virtual_us {
            self.virtual_us = us;
        }
    }

    /// `MPI_Wtime` in seconds.
    pub fn wtime(&self, mode: &ClockMode) -> f64 {
        match mode {
            ClockMode::Real => self.start.elapsed().as_secs_f64(),
            ClockMode::Virtual(_) => self.virtual_us / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SystemProfile;

    #[test]
    fn virtual_clock_accumulates_and_advances() {
        let mut c = Clock::new();
        c.charge(5.0);
        assert_eq!(c.virtual_us, 5.0);
        c.advance_to(3.0); // in the past: no-op
        assert_eq!(c.virtual_us, 5.0);
        c.advance_to(9.0);
        assert_eq!(c.virtual_us, 9.0);
    }

    #[test]
    fn wtime_mode_selection() {
        let c = {
            let mut c = Clock::new();
            c.charge(2_000_000.0); // 2 virtual seconds
            c
        };
        let virt = ClockMode::Virtual(CostModel::native(SystemProfile::container()));
        assert!((c.wtime(&virt) - 2.0).abs() < 1e-9);
        // Real mode: elapsed host time is tiny, nowhere near 2 s.
        assert!(c.wtime(&ClockMode::Real) < 1.0);
    }
}

//! MPI datatypes and reduction operators.
//!
//! The embedder translates guest-side 32-bit handles to these enums
//! (paper §3.6); reductions operate on raw little-endian byte buffers,
//! matching the zero-copy design (the buffers *are* guest linear memory).

use crate::error::MpiError;

/// The standard MPI datatypes exercised by the paper's benchmarks
/// (Figure 6 iterates over exactly these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datatype {
    Byte,
    Char,
    Int,
    Unsigned,
    Long,
    UnsignedLong,
    Float,
    Double,
}

impl Datatype {
    /// Size of one element in bytes.
    pub fn size(&self) -> usize {
        match self {
            Datatype::Byte | Datatype::Char => 1,
            Datatype::Int | Datatype::Unsigned | Datatype::Float => 4,
            Datatype::Long | Datatype::UnsignedLong | Datatype::Double => 8,
        }
    }

    pub const ALL: [Datatype; 8] = [
        Datatype::Byte,
        Datatype::Char,
        Datatype::Int,
        Datatype::Unsigned,
        Datatype::Long,
        Datatype::UnsignedLong,
        Datatype::Float,
        Datatype::Double,
    ];

    /// Name as it appears in MPI programs.
    pub fn mpi_name(&self) -> &'static str {
        match self {
            Datatype::Byte => "MPI_BYTE",
            Datatype::Char => "MPI_CHAR",
            Datatype::Int => "MPI_INT",
            Datatype::Unsigned => "MPI_UNSIGNED",
            Datatype::Long => "MPI_LONG",
            Datatype::UnsignedLong => "MPI_UNSIGNED_LONG",
            Datatype::Float => "MPI_FLOAT",
            Datatype::Double => "MPI_DOUBLE",
        }
    }
}

/// Reduction operators (`MPI_Op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Prod,
    Max,
    Min,
    Band,
    Bor,
    Bxor,
    Land,
    Lor,
}

macro_rules! reduce_typed {
    ($ty:ty, $acc:expr, $input:expr, $op:expr) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for (a, b) in $acc.chunks_exact_mut(W).zip($input.chunks_exact(W)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(b.try_into().unwrap());
            let r: $ty = apply_scalar(x, y, $op)?;
            a.copy_from_slice(&r.to_le_bytes());
        }
        Ok(())
    }};
}

trait Scalar: Copy + PartialOrd {
    fn add(self, other: Self) -> Self;
    fn mul(self, other: Self) -> Self;
    fn bitand(self, other: Self) -> Option<Self>;
    fn bitor(self, other: Self) -> Option<Self>;
    fn bitxor(self, other: Self) -> Option<Self>;
    fn is_true(self) -> bool;
    fn from_bool(b: bool) -> Self;
}

macro_rules! int_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            fn add(self, o: Self) -> Self { self.wrapping_add(o) }
            fn mul(self, o: Self) -> Self { self.wrapping_mul(o) }
            fn bitand(self, o: Self) -> Option<Self> { Some(self & o) }
            fn bitor(self, o: Self) -> Option<Self> { Some(self | o) }
            fn bitxor(self, o: Self) -> Option<Self> { Some(self ^ o) }
            fn is_true(self) -> bool { self != 0 }
            fn from_bool(b: bool) -> Self { b as Self }
        }
    )*};
}

int_scalar!(i8, u8, i32, u32, i64, u64);

macro_rules! float_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            fn add(self, o: Self) -> Self { self + o }
            fn mul(self, o: Self) -> Self { self * o }
            fn bitand(self, _: Self) -> Option<Self> { None }
            fn bitor(self, _: Self) -> Option<Self> { None }
            fn bitxor(self, _: Self) -> Option<Self> { None }
            fn is_true(self) -> bool { self != 0.0 }
            fn from_bool(b: bool) -> Self { if b { 1.0 } else { 0.0 } }
        }
    )*};
}

float_scalar!(f32, f64);

fn apply_scalar<T: Scalar>(a: T, b: T, op: ReduceOp) -> Result<T, MpiError> {
    let bad_op = || MpiError::InvalidOp(u32::MAX);
    Ok(match op {
        ReduceOp::Sum => a.add(b),
        ReduceOp::Prod => a.mul(b),
        ReduceOp::Max => {
            if a < b {
                b
            } else {
                a
            }
        }
        ReduceOp::Min => {
            if b < a {
                b
            } else {
                a
            }
        }
        ReduceOp::Band => a.bitand(b).ok_or_else(bad_op)?,
        ReduceOp::Bor => a.bitor(b).ok_or_else(bad_op)?,
        ReduceOp::Bxor => a.bitxor(b).ok_or_else(bad_op)?,
        ReduceOp::Land => T::from_bool(a.is_true() && b.is_true()),
        ReduceOp::Lor => T::from_bool(a.is_true() || b.is_true()),
    })
}

/// Elementwise `acc = op(acc, input)` over raw little-endian buffers.
/// Both buffers must be the same length and a multiple of the type size.
pub fn reduce_in_place(
    dt: Datatype,
    op: ReduceOp,
    acc: &mut [u8],
    input: &[u8],
) -> Result<(), MpiError> {
    if acc.len() != input.len() {
        return Err(MpiError::CollectiveMismatch(format!(
            "reduce buffers differ: {} vs {} bytes",
            acc.len(),
            input.len()
        )));
    }
    if acc.len() % dt.size() != 0 {
        return Err(MpiError::BadCount { bytes: acc.len(), type_size: dt.size() });
    }
    match dt {
        Datatype::Byte => reduce_typed!(u8, acc, input, op),
        Datatype::Char => reduce_typed!(i8, acc, input, op),
        Datatype::Int => reduce_typed!(i32, acc, input, op),
        Datatype::Unsigned => reduce_typed!(u32, acc, input, op),
        Datatype::Long => reduce_typed!(i64, acc, input, op),
        Datatype::UnsignedLong => reduce_typed!(u64, acc, input, op),
        Datatype::Float => reduce_typed!(f32, acc, input, op),
        Datatype::Double => reduce_typed!(f64, acc, input, op),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_abi() {
        assert_eq!(Datatype::Byte.size(), 1);
        assert_eq!(Datatype::Int.size(), 4);
        assert_eq!(Datatype::Double.size(), 8);
        assert_eq!(Datatype::Long.size(), 8);
    }

    #[test]
    fn sum_doubles() {
        let mut acc = Vec::new();
        for v in [1.0f64, 2.0] {
            acc.extend_from_slice(&v.to_le_bytes());
        }
        let mut input = Vec::new();
        for v in [10.0f64, 20.0] {
            input.extend_from_slice(&v.to_le_bytes());
        }
        reduce_in_place(Datatype::Double, ReduceOp::Sum, &mut acc, &input).unwrap();
        assert_eq!(f64::from_le_bytes(acc[0..8].try_into().unwrap()), 11.0);
        assert_eq!(f64::from_le_bytes(acc[8..16].try_into().unwrap()), 22.0);
    }

    #[test]
    fn max_and_min_ints() {
        let mut acc = 5i32.to_le_bytes().to_vec();
        reduce_in_place(Datatype::Int, ReduceOp::Max, &mut acc, &9i32.to_le_bytes()).unwrap();
        assert_eq!(i32::from_le_bytes(acc.clone().try_into().unwrap()), 9);
        reduce_in_place(Datatype::Int, ReduceOp::Min, &mut acc, &(-3i32).to_le_bytes()).unwrap();
        assert_eq!(i32::from_le_bytes(acc.try_into().unwrap()), -3);
    }

    #[test]
    fn bitwise_on_floats_is_rejected() {
        let mut acc = 1.0f32.to_le_bytes().to_vec();
        let input = 2.0f32.to_le_bytes();
        let err = reduce_in_place(Datatype::Float, ReduceOp::Band, &mut acc, &input);
        assert!(err.is_err());
    }

    #[test]
    fn logical_ops() {
        let mut acc = 2i32.to_le_bytes().to_vec();
        reduce_in_place(Datatype::Int, ReduceOp::Land, &mut acc, &0i32.to_le_bytes()).unwrap();
        assert_eq!(i32::from_le_bytes(acc.clone().try_into().unwrap()), 0);
        reduce_in_place(Datatype::Int, ReduceOp::Lor, &mut acc, &7i32.to_le_bytes()).unwrap();
        assert_eq!(i32::from_le_bytes(acc.try_into().unwrap()), 1);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut acc = vec![0u8; 8];
        let input = vec![0u8; 4];
        assert!(reduce_in_place(Datatype::Int, ReduceOp::Sum, &mut acc, &input).is_err());
    }

    #[test]
    fn wrapping_integer_sum() {
        let mut acc = i32::MAX.to_le_bytes().to_vec();
        reduce_in_place(Datatype::Int, ReduceOp::Sum, &mut acc, &1i32.to_le_bytes()).unwrap();
        assert_eq!(i32::from_le_bytes(acc.try_into().unwrap()), i32::MIN);
    }

    #[test]
    fn bxor_unsigned() {
        let mut acc = 0b1100u32.to_le_bytes().to_vec();
        reduce_in_place(Datatype::Unsigned, ReduceOp::Bxor, &mut acc, &0b1010u32.to_le_bytes())
            .unwrap();
        assert_eq!(u32::from_le_bytes(acc.try_into().unwrap()), 0b0110);
    }
}

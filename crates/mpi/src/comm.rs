//! Communicators and point-to-point operations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::{Clock, ClockMode};
use crate::error::MpiError;
use crate::message::{Mailbox, Message, ProbeInfo};
use crate::progress::{CommCtx, ProtocolSnapshot};
use crate::request::{
    nbc_tag, CollState, IallgatherState, IallreduceState, IalltoallState, IalltoallvState,
    IbarrierState, IbcastState, IgatherState, IreduceState, IscatterState, Request,
    NBC_KIND_ALLGATHER, NBC_KIND_ALLREDUCE, NBC_KIND_ALLTOALL, NBC_KIND_ALLTOALLV,
    NBC_KIND_BARRIER, NBC_KIND_BCAST, NBC_KIND_GATHER, NBC_KIND_REDUCE, NBC_KIND_SCATTER,
};
use crate::world::World;
use crate::{Datatype, ReduceOp};

/// Receive-source selector (`MPI_ANY_SOURCE` or a specific rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    Any,
    Rank(u32),
}

/// Receive-tag selector (`MPI_ANY_TAG` or a specific tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    Any,
    Value(i32),
}

/// Completed-receive metadata (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank of the sender within the communicator.
    pub source: u32,
    pub tag: i32,
    /// Received payload size in bytes (`MPI_Get_count * type size`).
    pub bytes: usize,
    /// The operation was successfully cancelled before matching
    /// (`MPI_Test_cancelled`). Always `false` for operations that ran to
    /// completion.
    pub cancelled: bool,
}

impl Status {
    /// Status of a completed (uncancelled) operation.
    pub fn msg(source: u32, tag: i32, bytes: usize) -> Status {
        Status { source, tag, bytes, cancelled: false }
    }
}

/// Tag base for internal collective traffic; user tags are expected to be
/// non-negative, as in MPI.
pub(crate) const COLLECTIVE_TAG_BASE: i32 = -0x4000_0000;

/// A communicator handle. Holds the world, the group mapping communicator
/// ranks to world ranks, this rank's position, and the rank's clock.
///
/// `Comm` is `Send` **and** `Sync`: under `MPI_THREAD_MULTIPLE` several
/// threads of one rank may issue point-to-point calls, probes, and
/// request operations on a shared `&Comm` concurrently (the sequence
/// counters are atomic and the mailbox paths take the mailbox lock). Like
/// an `MPI_Comm` it still logically belongs to one *rank* — derived
/// communicators share the rank's clock — and MPI's own ordering rules
/// remain the caller's burden: collectives (including the nonblocking
/// initiations, which draw from the shared sequence counter) must be
/// issued in one well-defined order per communicator, which means from
/// one thread at a time.
pub struct Comm {
    world: Arc<World>,
    id: u64,
    /// `group[comm_rank] = world_rank`.
    group: Arc<Vec<u32>>,
    rank: u32,
    clock: Arc<Mutex<Clock>>,
    /// Per-communicator sequence number for deterministic derived-comm ids.
    derive_seq: AtomicU64,
    /// Nonblocking-collective sequence number: every rank issues
    /// collectives on a communicator in the same order (an MPI rule), so
    /// per-rank counters agree and give each outstanding collective its
    /// own tag.
    nbc_seq: AtomicU64,
    /// Failure-acknowledgement epoch (ULFM `MPI_Comm_failure_ack`): how
    /// many world failures this *rank* has acknowledged. Wildcard
    /// receives posted afterwards ignore those failures. Shared across
    /// derived communicators, like the clock — acknowledgement is a
    /// rank-level act.
    acked: Arc<AtomicU64>,
    /// Agreement sequence number (same symmetric-usage contract as
    /// `nbc_seq`: every rank calls `agree`/`shrink` on a communicator in
    /// the same order, so per-rank counters line up).
    agree_seq: AtomicU64,
}

impl Comm {
    /// The world communicator for `rank` (`MPI_COMM_WORLD`).
    pub(crate) fn world(world: Arc<World>, rank: u32) -> Comm {
        let group = Arc::new((0..world.size).collect());
        let clock = Arc::new(Mutex::new(Clock::new()));
        world.register_clock(rank, Arc::clone(&clock));
        Comm {
            world,
            id: 0,
            group,
            rank,
            clock,
            derive_seq: AtomicU64::new(0),
            nbc_seq: AtomicU64::new(0),
            acked: Arc::new(AtomicU64::new(0)),
            agree_seq: AtomicU64::new(0),
        }
    }

    /// Rank within this communicator (`MPI_Comm_rank`).
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in this communicator (`MPI_Comm_size`).
    pub fn size(&self) -> u32 {
        self.group.len() as u32
    }

    /// World rank backing a communicator rank.
    pub fn world_rank(&self, comm_rank: u32) -> u32 {
        self.group[comm_rank as usize]
    }

    /// Elapsed time in seconds (`MPI_Wtime`): virtual seconds in
    /// simulated-time mode, host monotonic time otherwise.
    pub fn wtime(&self) -> f64 {
        self.clock.lock().wtime(&self.world.mode)
    }

    /// Current virtual clock in µs (0 in real mode). Used by harnesses to
    /// read per-rank completion times.
    pub fn virtual_time_us(&self) -> f64 {
        self.clock.lock().virtual_us
    }

    /// Charge extra per-call software overhead to this rank's virtual
    /// clock. The embedder charges its measured translation cost here so
    /// simulated timings include the Wasm path's software cost.
    pub fn charge_overhead_us(&self, us: f64) {
        if matches!(self.world.mode, ClockMode::Virtual(_)) {
            self.clock.lock().charge(us);
        }
    }

    fn check_rank(&self, rank: u32) -> Result<(), MpiError> {
        if rank >= self.size() {
            return Err(MpiError::InvalidRank { rank, size: self.size() });
        }
        Ok(())
    }

    fn charge_call(&self) {
        if let ClockMode::Virtual(model) = &self.world.mode {
            self.clock.lock().charge(model.call_overhead_us);
        }
    }

    /// Per-call fault hook: records the op label + call count for the
    /// watchdog report and evaluates the world's fault plan. A rank the
    /// plan kills here (or that already died) gets `RankFailed` with its
    /// *own* world rank — once dead, every further MPI call fails.
    #[inline]
    pub(crate) fn fault_step(&self, op: &'static str) -> Result<(), MpiError> {
        let me = self.group[self.rank as usize];
        let now_us = match &self.world.mode {
            ClockMode::Virtual(_) => self.clock.lock().virtual_us,
            ClockMode::Real => self.clock.lock().wtime(&ClockMode::Real) * 1e6,
        };
        self.world.fault_step(me, op, now_us)
    }

    /// Failure predicate for blocking probes: a probe of a dead peer (or a
    /// wildcard probe while an unacknowledged failure is outstanding) can
    /// never be satisfied, so it returns `RankFailed` instead of parking
    /// forever. Reported ranks follow the receive-path convention: the
    /// comm rank for a specific source, the world rank for wildcards.
    fn probe_peer_failure(&self, src: Source) -> Option<MpiError> {
        match src {
            Source::Rank(r) => {
                let w = *self.group.get(r as usize)?;
                self.world.is_failed(w).then_some(MpiError::RankFailed { rank: r })
            }
            Source::Any => self
                .world
                .failed_since(self.acked.load(Ordering::SeqCst))
                .map(|rank| MpiError::RankFailed { rank }),
        }
    }

    /// Emit a flight-recorder event on this rank's track (one pointer
    /// test when tracing is off).
    #[inline]
    pub(crate) fn trace(&self, kind: impl FnOnce() -> obs::EventKind) {
        self.world.emit(self.group[self.rank as usize], &self.clock, kind);
    }

    /// Open a collective span for a *blocking* schedule; the guard emits
    /// the matching end event when dropped (success or error path alike).
    /// The nonblocking machines trace through `Request` instead.
    pub(crate) fn coll_span(
        &self,
        kind: obs::CollKind,
        algo: obs::Algorithm,
    ) -> CollSpan<'_> {
        let id = self.world.next_trace_id();
        if id != 0 {
            self.trace(|| obs::EventKind::CollBegin { kind, algo, id });
        }
        CollSpan { comm: self, kind, id }
    }

    /// The world's collective algorithm selection table.
    pub(crate) fn tuning(&self) -> &crate::coll_algo::CollTuning {
        &self.world.tuning
    }

    /// The detached operation context handed to requests (cheap Arc
    /// clones of this communicator's internals).
    pub(crate) fn ctx(&self) -> CommCtx {
        CommCtx {
            world: Arc::clone(&self.world),
            group: Arc::clone(&self.group),
            rank: self.rank,
            comm_id: self.id,
            clock: Arc::clone(&self.clock),
            acked: Arc::clone(&self.acked),
        }
    }

    /// Allocate the tag for the next nonblocking collective of `kind`.
    fn next_nbc_tag(&self, kind: i32) -> i32 {
        nbc_tag(self.nbc_seq.fetch_add(1, Ordering::Relaxed), kind)
    }

    /// World-wide protocol counters (eager vs rendezvous traffic).
    pub fn protocol_stats(&self) -> ProtocolSnapshot {
        self.world.stats.snapshot()
    }

    /// Blocking standard-mode send (`MPI_Send`). Payloads at or below the
    /// protocol's eager threshold are buffered (waiting for mailbox credit
    /// when the destination's eager budget is full); larger payloads use
    /// the rendezvous protocol and return once the receiver has drained
    /// the bytes straight out of `buf` — standard-mode semantics: the call
    /// may block until the matching receive.
    ///
    /// Note the progress-at-completion matching model: a blocking send
    /// does not drive this rank's *own* posted [`Comm::irecv`] requests
    /// while parked. Ranks that post receives and then block in symmetric
    /// sends should use [`Comm::sendrecv`] or `isend` + `Request::wait_all`
    /// (the Wasm embedder's host functions progress the whole per-rank
    /// request table instead, restoring the MPI progress guarantee).
    pub fn send(&self, buf: &[u8], dest: u32, tag: i32) -> Result<(), MpiError> {
        self.charge_call();
        self.fault_step("send")?;
        self.ctx().send_blocking(buf, dest, tag)
    }

    /// Blocking synchronous-mode send (`MPI_Ssend`): returns only once
    /// the receiver has matched (and drained) the message. Above the
    /// rendezvous threshold this is exactly [`Comm::send`] — the
    /// handshake already parks the sender — and below it the payload
    /// travels a receipt-acknowledged owned slot instead of completing
    /// eagerly at initiation.
    pub fn ssend(&self, buf: &[u8], dest: u32, tag: i32) -> Result<(), MpiError> {
        self.charge_call();
        self.fault_step("ssend")?;
        let ctx = self.ctx();
        let mut op = ctx.start_send_sync(buf.as_ptr(), buf.len(), dest, tag)?;
        op.wait(&ctx)
    }

    /// Blocking receive into `buf` (`MPI_Recv`). Posts a receive with the
    /// rank's mailbox (claiming the earliest queued match, or parking on
    /// the posted queue where arrivals match it in posted order) and
    /// delivers the matched message. The message must fit
    /// (`MPI_ERR_TRUNCATE` otherwise, with the message consumed, as real
    /// MPI does). Rendezvous payloads are copied directly from the
    /// sender's buffer into `buf`.
    pub fn recv(&self, buf: &mut [u8], src: Source, tag: Tag) -> Result<Status, MpiError> {
        self.fault_step("recv")?;
        if let Source::Rank(r) = src {
            self.check_rank(r)?;
        }
        let ctx = self.ctx();
        let entry = ctx.post_recv(src, tag);
        let msg = entry.wait()?;
        let (status, _) = ctx.deliver(msg, Some(buf))?;
        Ok(status)
    }

    /// Blocking receive returning an owned buffer (no size known upfront).
    pub fn recv_vec(&self, src: Source, tag: Tag) -> Result<(Vec<u8>, Status), MpiError> {
        self.fault_step("recv")?;
        if let Source::Rank(r) = src {
            self.check_rank(r)?;
        }
        let ctx = self.ctx();
        let entry = ctx.post_recv(src, tag);
        let msg = entry.wait()?;
        let (status, data) = ctx.deliver(msg, None)?;
        Ok((data.expect("owned delivery"), status))
    }

    /// Combined send + receive (`MPI_Sendrecv`). The send is initiated
    /// nonblockingly before the receive so paired exchanges cannot
    /// deadlock even when both payloads use the rendezvous protocol. The
    /// send is always driven to completion — even when the receive errors
    /// — because cancelling it would un-send a message the peer may
    /// already be blocked waiting for.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        send_buf: &[u8],
        dest: u32,
        send_tag: i32,
        recv_buf: &mut [u8],
        src: Source,
        recv_tag: Tag,
    ) -> Result<Status, MpiError> {
        let mut sreq = self.isend(send_buf, dest, send_tag)?;
        let recv_result = self.recv(recv_buf, src, recv_tag);
        let send_result = sreq.wait();
        let st = recv_result?;
        send_result?;
        Ok(st)
    }

    /// This rank's mailbox.
    fn mailbox(&self) -> &Mailbox {
        self.world.mailbox(self.group[self.rank as usize])
    }

    /// Charge a *successful* probe to the rank's virtual clock: observing
    /// a message synchronizes the receiver with its arrival (`advance_to`
    /// departure + wire time, exactly what delivery will charge — `max`,
    /// so probe-then-receive never double-bills the wire) plus one call
    /// overhead. Probe *misses* are free in virtual time in both the
    /// blocking and the polling form: an `Iprobe` poll loop must not spin
    /// simulated time forward while waiting for a peer, so the two clock
    /// modes stay consistent (real mode charges nothing either way).
    fn charge_probe(&self, info: &ProbeInfo) {
        if let ClockMode::Virtual(model) = &self.world.mode {
            let me = self.group[self.rank as usize];
            let wire = model.profile.p2p_time(info.src_world, me, info.bytes);
            let mut clock = self.clock.lock();
            clock.advance_to(info.sent_at_us + wire.as_micros());
            clock.charge(model.call_overhead_us);
        }
    }

    fn probe_status(&self, info: &ProbeInfo) -> Status {
        self.charge_probe(info);
        Status::msg(info.src_in_comm, info.tag, info.bytes)
    }

    /// Non-blocking probe (`MPI_Iprobe`): returns the status of the
    /// earliest matching pending message — the one a receive posted now
    /// would claim — without receiving it. Wildcards skip internal
    /// collective traffic, like receives do, and messages already matched
    /// to a posted receive are not probe-visible (real MPI semantics).
    pub fn iprobe(&self, src: Source, tag: Tag) -> Result<Option<Status>, MpiError> {
        self.fault_step("iprobe")?;
        if let Source::Rank(r) = src {
            self.check_rank(r)?;
        }
        Ok(self
            .mailbox()
            .peek_matching(CommCtx::matcher(self.id, src, tag))
            .map(|info| self.probe_status(&info)))
    }

    /// Blocking probe (`MPI_Probe`): park until a matching message is
    /// pending, returning its status without receiving it. The message
    /// stays queued — but under `MPI_THREAD_MULTIPLE` another thread may
    /// receive it first; use [`Comm::mprobe`] for the race-free form.
    pub fn probe(&self, src: Source, tag: Tag) -> Result<Status, MpiError> {
        self.fault_step("probe")?;
        if let Source::Rank(r) = src {
            self.check_rank(r)?;
        }
        let info = self
            .mailbox()
            .wait_probe(CommCtx::matcher(self.id, src, tag), || self.probe_peer_failure(src))?;
        Ok(self.probe_status(&info))
    }

    /// Non-blocking matched probe (`MPI_Improbe`): atomically *extract*
    /// the earliest matching pending message as an [`MpiMessage`] handle.
    /// Once extracted, no concurrent receive or probe can see the message
    /// — only [`MpiMessage::recv`]/[`MpiMessage::imrecv`] on the returned
    /// handle — which is what makes probe-then-receive sound under
    /// `MPI_THREAD_MULTIPLE`. Dropping the handle unreceived requeues the
    /// message at its original arrival position.
    pub fn improbe(
        &self,
        src: Source,
        tag: Tag,
    ) -> Result<Option<(MpiMessage, Status)>, MpiError> {
        self.fault_step("improbe")?;
        if let Source::Rank(r) = src {
            self.check_rank(r)?;
        }
        match self.mailbox().try_take_matching(CommCtx::matcher(self.id, src, tag))? {
            Some(msg) => {
                let st = self.probe_status(&msg.probe_info());
                Ok(Some((MpiMessage { msg: Some(msg), ctx: self.ctx() }, st)))
            }
            None => Ok(None),
        }
    }

    /// Diagnostics/stress-test hook: panic unless this rank's mailbox
    /// upholds the two-queue invariants (message queue in seq order, no
    /// queued message matching any posted receive). Takes the mailbox
    /// lock, so every snapshot it checks is one the matching paths could
    /// have observed — safe to call concurrently with any traffic.
    pub fn check_mailbox_invariants(&self) {
        self.mailbox().check_invariants();
    }

    /// Blocking matched probe (`MPI_Mprobe`): park until a matching
    /// message is pending and extract it (see [`Comm::improbe`]).
    pub fn mprobe(&self, src: Source, tag: Tag) -> Result<(MpiMessage, Status), MpiError> {
        self.fault_step("mprobe")?;
        if let Source::Rank(r) = src {
            self.check_rank(r)?;
        }
        let matcher = || CommCtx::matcher(self.id, src, tag);
        loop {
            // Park until something matching is queued, then race to take
            // it: a concurrent thread's receive or probe may win, in which
            // case we park again for the next arrival.
            self.mailbox().wait_probe(matcher(), || self.probe_peer_failure(src))?;
            if let Some(msg) = self.mailbox().try_take_matching(matcher())? {
                let st = self.probe_status(&msg.probe_info());
                return Ok((MpiMessage { msg: Some(msg), ctx: self.ctx() }, st));
            }
        }
    }

    // --- nonblocking operations (see crate::request) --------------------

    /// Nonblocking send (`MPI_Isend`). `buf` must stay untouched until the
    /// request completes — enforced by the borrow for the request's
    /// lifetime. Above the eager threshold no copy of `buf` is ever made:
    /// the receiver drains it directly at its matching receive.
    pub fn isend<'a>(&self, buf: &'a [u8], dest: u32, tag: i32) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("isend")?;
        Request::send(self.ctx(), buf.as_ptr(), buf.len(), dest, tag)
    }

    /// Nonblocking receive (`MPI_Irecv`): matching and delivery happen as
    /// the request is progressed (`wait`/`test`/completion sets).
    pub fn irecv<'a>(
        &self,
        buf: &'a mut [u8],
        src: Source,
        tag: Tag,
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("irecv")?;
        Request::recv(self.ctx(), buf.as_mut_ptr(), buf.len(), src, tag)
    }

    /// Persistent send (`MPI_Send_init`): inactive until started.
    pub fn send_init<'a>(
        &self,
        buf: &'a [u8],
        dest: u32,
        tag: i32,
    ) -> Result<Request<'a>, MpiError> {
        Request::send_init(self.ctx(), buf.as_ptr(), buf.len(), dest, tag)
    }

    /// Persistent receive (`MPI_Recv_init`).
    pub fn recv_init<'a>(
        &self,
        buf: &'a mut [u8],
        src: Source,
        tag: Tag,
    ) -> Result<Request<'a>, MpiError> {
        Request::recv_init(self.ctx(), buf.as_mut_ptr(), buf.len(), src, tag)
    }

    /// Nonblocking barrier (`MPI_Ibarrier`): a dissemination schedule
    /// advanced by the progress loop.
    pub fn ibarrier(&self) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("ibarrier")?;
        let tag = self.next_nbc_tag(NBC_KIND_BARRIER);
        Ok(Request::coll(self.ctx(), CollState::Barrier(IbarrierState::new(tag))))
    }

    /// Nonblocking broadcast (`MPI_Ibcast`).
    pub fn ibcast<'a>(&self, buf: &'a mut [u8], root: u32) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("ibcast")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_BCAST);
        let state = IbcastState::new(&ctx, buf.as_mut_ptr(), buf.len(), root, tag)?;
        Ok(Request::coll(ctx, CollState::Bcast(state)))
    }

    /// Nonblocking allreduce (`MPI_Iallreduce`): recursive doubling as a
    /// request state machine; the result lands in `recv_buf` when the
    /// request completes.
    pub fn iallreduce<'a>(
        &self,
        send_buf: &[u8],
        recv_buf: &'a mut [u8],
        dt: Datatype,
        op: ReduceOp,
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("iallreduce")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLREDUCE);
        let state = IallreduceState::new(
            &ctx,
            send_buf,
            recv_buf.as_mut_ptr(),
            recv_buf.len(),
            dt,
            op,
            tag,
        )?;
        Ok(Request::coll(ctx, CollState::Allreduce(state)))
    }

    /// Nonblocking reduce (`MPI_Ireduce`): the binomial tree as a request
    /// state machine. The send buffer is copied into the state-owned
    /// accumulator at initiation; only the root's `recv_buf` must stay
    /// pinned.
    pub fn ireduce<'a>(
        &self,
        send_buf: &[u8],
        recv_buf: Option<&'a mut [u8]>,
        dt: Datatype,
        op: ReduceOp,
        root: u32,
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("ireduce")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_REDUCE);
        let (out, out_len) = match recv_buf {
            Some(b) => (b.as_mut_ptr(), b.len()),
            None => (std::ptr::null_mut(), 0),
        };
        if self.rank == root && out.is_null() {
            return Err(MpiError::CollectiveMismatch(
                "root ireduce requires a receive buffer".into(),
            ));
        }
        let state = IreduceState::new(&ctx, send_buf, out, out_len, dt, op, root, tag)?;
        Ok(Request::coll(ctx, CollState::Reduce(state)))
    }

    /// Nonblocking gather (`MPI_Igather`): non-roots send `send_buf` (which
    /// must stay pinned); the root's `recv_buf` collects the blocks in
    /// rank order as they arrive.
    pub fn igather<'a>(
        &self,
        send_buf: &'a [u8],
        recv_buf: Option<&'a mut [u8]>,
        root: u32,
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("igather")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_GATHER);
        let (out, out_len) = match recv_buf {
            Some(b) => (b.as_mut_ptr(), b.len()),
            None => (std::ptr::null_mut(), 0),
        };
        if self.rank == root && out.is_null() {
            return Err(MpiError::CollectiveMismatch(
                "root igather requires a receive buffer".into(),
            ));
        }
        let state = IgatherState::new(&ctx, send_buf, out, out_len, root, tag)?;
        Ok(Request::coll(ctx, CollState::Gather(state)))
    }

    /// Nonblocking scatter (`MPI_Iscatter`): the root's `send_buf` (which
    /// must stay pinned) holds `p` equal blocks; each rank's block lands
    /// in `recv_buf` at completion.
    pub fn iscatter<'a>(
        &self,
        send_buf: Option<&'a [u8]>,
        recv_buf: &'a mut [u8],
        root: u32,
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("iscatter")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_SCATTER);
        let (sbuf, sbuf_len) = match send_buf {
            Some(b) => (b.as_ptr(), b.len()),
            None => (std::ptr::null(), 0),
        };
        if self.rank == root && sbuf.is_null() {
            return Err(MpiError::CollectiveMismatch(
                "root iscatter requires a send buffer".into(),
            ));
        }
        let state = IscatterState::new(
            &ctx,
            sbuf,
            sbuf_len,
            recv_buf.as_mut_ptr(),
            recv_buf.len(),
            root,
            tag,
        )?;
        Ok(Request::coll(ctx, CollState::Scatter(state)))
    }

    /// Nonblocking allgather (`MPI_Iallgather`): the ring as a request
    /// state machine. `send_buf` is consumed at initiation (copied into
    /// this rank's output block); only `recv_buf` must stay pinned.
    pub fn iallgather<'a>(
        &self,
        send_buf: &[u8],
        recv_buf: &'a mut [u8],
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("iallgather")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLGATHER);
        let state =
            IallgatherState::new(&ctx, send_buf, recv_buf.as_mut_ptr(), recv_buf.len(), tag)?;
        Ok(Request::coll(ctx, CollState::Allgather(state)))
    }

    /// Nonblocking all-to-all (`MPI_Ialltoall`): pairwise exchange as a
    /// request state machine; both buffers must stay pinned until
    /// completion (peer blocks are drained straight out of `send_buf`).
    pub fn ialltoall<'a>(
        &self,
        send_buf: &'a [u8],
        recv_buf: &'a mut [u8],
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("ialltoall")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLTOALL);
        let state = IalltoallState::new(
            &ctx,
            send_buf.as_ptr(),
            send_buf.len(),
            recv_buf.as_mut_ptr(),
            recv_buf.len(),
            tag,
        )?;
        Ok(Request::coll(ctx, CollState::Alltoall(state)))
    }

    /// Nonblocking vector all-to-all (`MPI_Ialltoallv`). Counts and
    /// displacements are in bytes; both buffers must stay pinned until
    /// completion.
    #[allow(clippy::too_many_arguments)]
    pub fn ialltoallv<'a>(
        &self,
        send_buf: &'a [u8],
        send_counts: &[usize],
        send_displs: &[usize],
        recv_buf: &'a mut [u8],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<Request<'a>, MpiError> {
        self.charge_call();
        self.fault_step("ialltoallv")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLTOALLV);
        let state = IalltoallvState::new(
            &ctx,
            send_buf.as_ptr(),
            send_buf.len(),
            send_counts.to_vec(),
            send_displs.to_vec(),
            recv_buf.as_mut_ptr(),
            recv_buf.len(),
            recv_counts.to_vec(),
            recv_displs.to_vec(),
            tag,
        )?;
        Ok(Request::coll(ctx, CollState::Alltoallv(state)))
    }

    // --- raw (embedder) variants ----------------------------------------
    //
    // The Wasm embedder stores requests in a per-rank table that outlives
    // any borrow of the instance's linear memory, so it passes raw
    // pointers. Callers must uphold MPI's own rule: the buffer stays valid
    // and (for sends) unmodified until the request completes, and the
    // backing allocation must not move (the embedder pins linear memory
    // while requests are pending).

    /// Raw-pointer `MPI_Isend` for embedders.
    ///
    /// # Safety
    /// `buf..buf+len` must remain valid and unmodified until the request
    /// completes or is dropped.
    pub unsafe fn isend_raw(
        &self,
        buf: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("isend")?;
        Request::send(self.ctx(), buf, len, dest, tag)
    }

    /// Raw-pointer `MPI_Issend` for embedders: like [`Comm::isend_raw`]
    /// but the request completes only once the receiver has matched the
    /// message (synchronous mode).
    ///
    /// # Safety
    /// As [`Comm::isend_raw`].
    pub unsafe fn issend_raw(
        &self,
        buf: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("issend")?;
        Request::send_sync(self.ctx(), buf, len, dest, tag)
    }

    /// Nonblocking send of an owned payload (buffered-mode sends and
    /// host-packed derived-datatype sends): the protocol layer takes the
    /// bytes, so no caller buffer needs pinning. The request still must
    /// run to completion (dropping it would retract an undelivered
    /// message, as with any send).
    pub fn isend_owned(
        &self,
        data: Box<[u8]>,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("isend")?;
        Request::send_owned(self.ctx(), data, dest, tag)
    }

    /// Synchronous-mode variant of [`Comm::isend_owned`]
    /// (host-packed derived-datatype `MPI_Issend`): completion additionally
    /// implies the receiver has matched the message.
    pub fn issend_owned(
        &self,
        data: Box<[u8]>,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("issend")?;
        Request::send_owned_sync(self.ctx(), data, dest, tag)
    }

    /// Raw-pointer `MPI_Irecv` for embedders.
    ///
    /// # Safety
    /// `buf..buf+len` must remain valid and unaliased until the request
    /// completes or is dropped.
    pub unsafe fn irecv_raw(
        &self,
        buf: *mut u8,
        len: usize,
        src: Source,
        tag: Tag,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("irecv")?;
        Request::recv(self.ctx(), buf, len, src, tag)
    }

    /// Raw-pointer receive post *without* the per-call clock charge: for
    /// embedders composing a blocking receive out of request primitives
    /// (post + progress loop). The delivery path charges the one receive
    /// call; charging here too would double-bill `MPI_Recv`. It is still
    /// a fault guard point — only the clock charge is skipped, never the
    /// failure check, or a dead rank could park in a blocking receive.
    ///
    /// # Safety
    /// As [`Comm::irecv_raw`].
    pub unsafe fn irecv_raw_uncharged(
        &self,
        buf: *mut u8,
        len: usize,
        src: Source,
        tag: Tag,
    ) -> Result<Request<'static>, MpiError> {
        self.fault_step("recv")?;
        Request::recv(self.ctx(), buf, len, src, tag)
    }

    /// Raw-pointer `MPI_Send_init`.
    ///
    /// # Safety
    /// As [`Comm::isend_raw`], for every `Start`/completion cycle.
    pub unsafe fn send_init_raw(
        &self,
        buf: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<Request<'static>, MpiError> {
        Request::send_init(self.ctx(), buf, len, dest, tag)
    }

    /// Raw-pointer `MPI_Recv_init`.
    ///
    /// # Safety
    /// As [`Comm::irecv_raw`], for every `Start`/completion cycle.
    pub unsafe fn recv_init_raw(
        &self,
        buf: *mut u8,
        len: usize,
        src: Source,
        tag: Tag,
    ) -> Result<Request<'static>, MpiError> {
        Request::recv_init(self.ctx(), buf, len, src, tag)
    }

    /// Raw-pointer `MPI_Ibcast`.
    ///
    /// # Safety
    /// As [`Comm::irecv_raw`] (the root's buffer is only read).
    pub unsafe fn ibcast_raw(
        &self,
        buf: *mut u8,
        len: usize,
        root: u32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("ibcast")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_BCAST);
        let state = IbcastState::new(&ctx, buf, len, root, tag)?;
        Ok(Request::coll(ctx, CollState::Bcast(state)))
    }

    /// Raw-pointer `MPI_Iallreduce`. The send buffer is consumed
    /// immediately (copied into the accumulator); only `recv_buf` must
    /// stay pinned.
    ///
    /// # Safety
    /// `recv_buf..recv_buf+len` must remain valid until completion.
    pub unsafe fn iallreduce_raw(
        &self,
        send_buf: &[u8],
        recv_buf: *mut u8,
        len: usize,
        dt: Datatype,
        op: ReduceOp,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("iallreduce")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLREDUCE);
        let state = IallreduceState::new(&ctx, send_buf, recv_buf, len, dt, op, tag)?;
        Ok(Request::coll(ctx, CollState::Allreduce(state)))
    }

    /// Raw-pointer `MPI_Ireduce`. The send buffer is consumed immediately;
    /// only the root's `recv_buf` must stay pinned.
    ///
    /// # Safety
    /// On the root, `recv_buf..recv_buf+len` must remain valid until
    /// completion (`recv_buf` is ignored elsewhere).
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn ireduce_raw(
        &self,
        send_buf: &[u8],
        recv_buf: *mut u8,
        len: usize,
        dt: Datatype,
        op: ReduceOp,
        root: u32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("ireduce")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_REDUCE);
        let state = IreduceState::new(&ctx, send_buf, recv_buf, len, dt, op, root, tag)?;
        Ok(Request::coll(ctx, CollState::Reduce(state)))
    }

    /// Raw-pointer `MPI_Igather`.
    ///
    /// # Safety
    /// Non-roots: `sbuf..sbuf+n` stays valid and unmodified until
    /// completion. Root: `rbuf..rbuf+n*p` stays valid until completion.
    pub unsafe fn igather_raw(
        &self,
        sbuf: *const u8,
        n: usize,
        rbuf: *mut u8,
        rbuf_len: usize,
        root: u32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("igather")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_GATHER);
        let send_buf = std::slice::from_raw_parts(sbuf, n);
        let state = IgatherState::new(&ctx, send_buf, rbuf, rbuf_len, root, tag)?;
        Ok(Request::coll(ctx, CollState::Gather(state)))
    }

    /// Raw-pointer `MPI_Iscatter`.
    ///
    /// # Safety
    /// Root: `sbuf..sbuf+n*p` stays valid and unmodified until completion.
    /// All ranks: `rbuf..rbuf+n` stays valid until completion.
    pub unsafe fn iscatter_raw(
        &self,
        sbuf: *const u8,
        sbuf_len: usize,
        rbuf: *mut u8,
        n: usize,
        root: u32,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("iscatter")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_SCATTER);
        let state = IscatterState::new(&ctx, sbuf, sbuf_len, rbuf, n, root, tag)?;
        Ok(Request::coll(ctx, CollState::Scatter(state)))
    }

    /// Raw-pointer `MPI_Iallgather`. The send buffer is consumed
    /// immediately; only `rbuf` must stay pinned.
    ///
    /// # Safety
    /// `rbuf..rbuf+rbuf_len` must remain valid until completion.
    pub unsafe fn iallgather_raw(
        &self,
        send_buf: &[u8],
        rbuf: *mut u8,
        rbuf_len: usize,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("iallgather")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLGATHER);
        let state = IallgatherState::new(&ctx, send_buf, rbuf, rbuf_len, tag)?;
        Ok(Request::coll(ctx, CollState::Allgather(state)))
    }

    /// Raw-pointer `MPI_Ialltoall`.
    ///
    /// # Safety
    /// Both buffers must remain valid (and `sbuf` unmodified) until
    /// completion; peers drain their blocks straight out of `sbuf`.
    pub unsafe fn ialltoall_raw(
        &self,
        sbuf: *const u8,
        sbuf_len: usize,
        rbuf: *mut u8,
        rbuf_len: usize,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("ialltoall")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLTOALL);
        let state = IalltoallState::new(&ctx, sbuf, sbuf_len, rbuf, rbuf_len, tag)?;
        Ok(Request::coll(ctx, CollState::Alltoall(state)))
    }

    /// Raw-pointer `MPI_Ialltoallv` (counts/displacements in bytes).
    ///
    /// # Safety
    /// As [`Comm::ialltoall_raw`], over the count/displacement extents.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn ialltoallv_raw(
        &self,
        sbuf: *const u8,
        sbuf_len: usize,
        send_counts: Vec<usize>,
        send_displs: Vec<usize>,
        rbuf: *mut u8,
        rbuf_len: usize,
        recv_counts: Vec<usize>,
        recv_displs: Vec<usize>,
    ) -> Result<Request<'static>, MpiError> {
        self.charge_call();
        self.fault_step("ialltoallv")?;
        let ctx = self.ctx();
        let tag = self.next_nbc_tag(NBC_KIND_ALLTOALLV);
        let state = IalltoallvState::new(
            &ctx,
            sbuf,
            sbuf_len,
            send_counts,
            send_displs,
            rbuf,
            rbuf_len,
            recv_counts,
            recv_displs,
            tag,
        )?;
        Ok(Request::coll(ctx, CollState::Alltoallv(state)))
    }

    /// Split into sub-communicators by color, ordered by `(key, rank)`
    /// (`MPI_Comm_split`). All ranks of the communicator must call this.
    /// Returns `None` for `color < 0` (`MPI_UNDEFINED`).
    pub fn split(&self, color: i32, key: i32) -> Result<Option<Comm>, MpiError> {
        // Allgather (color, key) over this communicator.
        let mut mine = [0u8; 8];
        mine[0..4].copy_from_slice(&color.to_le_bytes());
        mine[4..8].copy_from_slice(&key.to_le_bytes());
        let all = self.allgather_bytes(&mine)?;

        let seq = self.derive_seq.fetch_add(1, Ordering::Relaxed);
        if color < 0 {
            return Ok(None);
        }

        // Members of my color, sorted by (key, old rank).
        let mut members: Vec<(i32, u32)> = Vec::new();
        for r in 0..self.size() {
            let off = r as usize * 8;
            let c = i32::from_le_bytes(all[off..off + 4].try_into().unwrap());
            let k = i32::from_le_bytes(all[off + 4..off + 8].try_into().unwrap());
            if c == color {
                members.push((k, r));
            }
        }
        members.sort_unstable();
        let group: Vec<u32> =
            members.iter().map(|&(_, r)| self.group[r as usize]).collect();
        let new_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("calling rank must be in its own color") as u32;

        // Deterministic id every member computes identically.
        let id = self
            .id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seq)
            .wrapping_mul(31)
            .wrapping_add(color as u64 + 1);

        Ok(Some(Comm {
            world: Arc::clone(&self.world),
            id,
            group: Arc::new(group),
            rank: new_rank,
            clock: Arc::clone(&self.clock),
            derive_seq: AtomicU64::new(0),
            nbc_seq: AtomicU64::new(0),
            acked: Arc::clone(&self.acked),
            agree_seq: AtomicU64::new(0),
        }))
    }

    /// The communicator's group as world ranks, indexed by communicator
    /// rank (`MPI_Comm_group` — the embedder's group objects are plain
    /// rank lists over this).
    pub fn group_world_ranks(&self) -> Vec<u32> {
        self.group.as_ref().clone()
    }

    /// Create a sub-communicator from an explicit member list
    /// (`MPI_Comm_create`). `world_ranks` lists the members as *world*
    /// ranks in new-communicator rank order; every member of `self` must
    /// call collectively with an equal list (verified with an allgathered
    /// group hash over the `split` plumbing — a mismatch is
    /// `CollectiveMismatch`). Returns `None` for callers outside the
    /// group (`MPI_COMM_NULL`).
    pub fn create_from_group(
        &self,
        world_ranks: &[u32],
    ) -> Result<Option<Comm>, MpiError> {
        self.charge_call();
        self.fault_step("comm_create")?;
        for w in world_ranks {
            if !self.group.contains(w) {
                return Err(MpiError::InvalidRank {
                    rank: *w,
                    size: self.size(),
                });
            }
        }
        // Collective verification: allgather an order-sensitive group
        // hash so divergent member lists fail loudly instead of producing
        // communicators whose traffic silently cross-matches.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for w in world_ranks {
            hash ^= *w as u64 + 1;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let all = self.allgather_bytes(&hash.to_le_bytes())?;
        let seq = self.derive_seq.fetch_add(1, Ordering::Relaxed);
        for r in 0..self.size() as usize {
            let h = u64::from_le_bytes(all[r * 8..r * 8 + 8].try_into().unwrap());
            if h != hash {
                return Err(MpiError::CollectiveMismatch(format!(
                    "comm_create group differs between rank {r} and rank {}",
                    self.rank
                )));
            }
        }

        let me = self.group[self.rank as usize];
        let Some(new_rank) = world_ranks.iter().position(|&w| w == me) else {
            return Ok(None);
        };
        // Deterministic id every member computes identically (the same
        // construction discipline as `split`).
        let id = self
            .id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seq)
            .wrapping_mul(61)
            .wrapping_add(hash | 1);
        Ok(Some(Comm {
            world: Arc::clone(&self.world),
            id,
            group: Arc::new(world_ranks.to_vec()),
            rank: new_rank as u32,
            clock: Arc::clone(&self.clock),
            derive_seq: AtomicU64::new(0),
            nbc_seq: AtomicU64::new(0),
            acked: Arc::clone(&self.acked),
            agree_seq: AtomicU64::new(0),
        }))
    }

    /// Duplicate the communicator (`MPI_Comm_dup`): same group, fresh
    /// message-matching space.
    pub fn dup(&self) -> Result<Comm, MpiError> {
        let seq = self.derive_seq.fetch_add(1, Ordering::Relaxed);
        let id = self
            .id
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(seq)
            .wrapping_add(1);
        Ok(Comm {
            world: Arc::clone(&self.world),
            id,
            group: Arc::clone(&self.group),
            rank: self.rank,
            clock: Arc::clone(&self.clock),
            derive_seq: AtomicU64::new(0),
            nbc_seq: AtomicU64::new(0),
            acked: Arc::clone(&self.acked),
            agree_seq: AtomicU64::new(0),
        })
    }

    /// Internal: fixed-size allgather used by `split` (and the public
    /// allgather). Returns `size * bytes.len()` bytes ordered by rank.
    pub(crate) fn allgather_bytes(&self, bytes: &[u8]) -> Result<Vec<u8>, MpiError> {
        let mut out = vec![0u8; bytes.len() * self.size() as usize];
        self.allgather(bytes, &mut out)?;
        Ok(out)
    }

    // --- fault tolerance (ULFM-style) -----------------------------------

    /// Has communicator rank `comm_rank` failed?
    pub fn rank_failed(&self, comm_rank: u32) -> bool {
        self.check_rank(comm_rank).is_ok() && self.world.is_failed(self.group[comm_rank as usize])
    }

    /// Failed members of this communicator, as communicator ranks in
    /// ascending order (`MPI_Comm_failure_get_acked` without the ack).
    pub fn failed_ranks(&self) -> Vec<u32> {
        let failed = self.world.failed_ranks();
        self.group
            .iter()
            .enumerate()
            .filter(|(_, w)| failed.contains(w))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Acknowledge every failure known so far (ULFM
    /// `MPI_Comm_failure_ack`): wildcard (`Source::Any`) receives posted
    /// *after* this call ignore the acknowledged failures and wait for the
    /// surviving senders. Returns the acknowledged comm ranks.
    pub fn ack_failed(&self) -> Vec<u32> {
        let ranks = self.failed_ranks();
        self.acked.store(self.world.failure_epoch(), Ordering::SeqCst);
        ranks
    }

    /// Declare *this* rank failed (the embedder's hook for turning a guest
    /// trap or resource-limit kill into a rank failure peers can observe).
    /// Idempotent; every later MPI call on this rank returns `RankFailed`.
    pub fn fail_self(&self) {
        self.world.fail_rank(self.group[self.rank as usize]);
    }

    /// ULFM-style agreement (`MPI_Comm_agree`): bitwise-AND `flag` across
    /// the communicator's *surviving* members. Blocks until every member
    /// has contributed or failed; every survivor then returns the same
    /// value, even if ranks fail mid-agreement. Like the collectives, all
    /// survivors must call `agree`/`shrink` on a communicator in the same
    /// order.
    pub fn agree(&self, flag: u32) -> Result<u32, MpiError> {
        self.charge_call();
        self.fault_step("agree")?;
        let seq = self.agree_seq.fetch_add(1, Ordering::Relaxed);
        let (value, _failed) =
            self.world.agree(self.id, seq, &self.group, self.rank as usize, flag)?;
        Ok(value)
    }

    /// ULFM-style shrink (`MPI_Comm_shrink`): agree on the failed set and
    /// return a new communicator containing only survivors (rank order
    /// preserved). Every survivor computes the same group and the same
    /// derived id; a failed caller gets `RankFailed`.
    pub fn shrink(&self) -> Result<Comm, MpiError> {
        self.charge_call();
        self.fault_step("shrink")?;
        let seq = self.agree_seq.fetch_add(1, Ordering::Relaxed);
        let (_, failed) =
            self.world.agree(self.id, seq, &self.group, self.rank as usize, u32::MAX)?;
        let group: Vec<u32> =
            self.group.iter().copied().filter(|w| !failed.contains(w)).collect();
        let me = self.group[self.rank as usize];
        let new_rank = group
            .iter()
            .position(|&w| w == me)
            .ok_or(MpiError::RankFailed { rank: me })? as u32;
        // Deterministic id every survivor computes identically (the same
        // construction discipline as `split`).
        let id = self
            .id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seq)
            .wrapping_mul(131)
            .wrapping_add(7);
        Ok(Comm {
            world: Arc::clone(&self.world),
            id,
            group: Arc::new(group),
            rank: new_rank,
            clock: Arc::clone(&self.clock),
            derive_seq: AtomicU64::new(0),
            nbc_seq: AtomicU64::new(0),
            acked: Arc::clone(&self.acked),
            agree_seq: AtomicU64::new(0),
        })
    }
}

/// RAII guard for a blocking collective's trace span (see
/// [`Comm::coll_span`]): the end event fires on drop, so early returns
/// and error paths still close the span.
pub(crate) struct CollSpan<'a> {
    comm: &'a Comm,
    kind: obs::CollKind,
    id: u64,
}

impl Drop for CollSpan<'_> {
    fn drop(&mut self) {
        if self.id != 0 {
            let (kind, id) = (self.kind, self.id);
            self.comm.trace(|| obs::EventKind::CollEnd { kind, id });
        }
    }
}

/// A message extracted from the pending queue by a matched probe
/// (`MPI_Message`, from [`Comm::mprobe`]/[`Comm::improbe`]).
///
/// The handle *owns* the message: no receive, probe, or wildcard on the
/// communicator can see it anymore, so the eventual
/// [`MpiMessage::recv`]/[`MpiMessage::imrecv`] is immune to being raced —
/// the property `MPI_Mprobe` exists for. Dropping the handle without
/// receiving requeues the message at its original arrival position
/// (re-offering it to posted receives first), so an abandoned probe never
/// loses or reorders anyone's data.
pub struct MpiMessage {
    msg: Option<Message>,
    ctx: CommCtx,
}

impl MpiMessage {
    /// The extracted message's status (source, tag, payload size).
    pub fn status(&self) -> Status {
        let m = self.msg.as_ref().expect("message already received");
        Status::msg(m.src_in_comm, m.tag, m.payload.len())
    }

    /// Blocking matched receive (`MPI_Mrecv`): deliver the payload into
    /// `buf`. Never actually blocks — the message is already here; only
    /// the delivery (payload copy, virtual-clock charge, rendezvous
    /// completion) runs. Truncation consumes the message and completes
    /// any handshake, as `MPI_Recv` does.
    pub fn recv(mut self, buf: &mut [u8]) -> Result<Status, MpiError> {
        let msg = self.msg.take().expect("message already received");
        let (st, _) = self.ctx.deliver(msg, Some(buf))?;
        Ok(st)
    }

    /// Matched receive into an owned buffer (size from the message).
    pub fn recv_vec(mut self) -> Result<(Vec<u8>, Status), MpiError> {
        let msg = self.msg.take().expect("message already received");
        let (st, data) = self.ctx.deliver(msg, None)?;
        Ok((data.expect("owned delivery"), st))
    }

    /// Nonblocking matched receive (`MPI_Imrecv`): a request that delivers
    /// this message into `buf` when progressed. The request is complete on
    /// its first progress step (the match already happened); dropping it
    /// undelivered requeues the message.
    pub fn imrecv(mut self, buf: &mut [u8]) -> Request<'_> {
        let msg = self.msg.take().expect("message already received");
        Request::recv_matched(self.ctx.clone(), buf.as_mut_ptr(), buf.len(), msg)
    }

    /// Raw-pointer `MPI_Imrecv` for embedders.
    ///
    /// # Safety
    /// As [`Comm::irecv_raw`]: `buf..buf+len` must remain valid and
    /// unaliased until the request completes or is dropped.
    pub unsafe fn imrecv_raw(mut self, buf: *mut u8, len: usize) -> Request<'static> {
        let msg = self.msg.take().expect("message already received");
        Request::recv_matched(self.ctx.clone(), buf, len, msg)
    }
}

impl Drop for MpiMessage {
    fn drop(&mut self) {
        if let Some(msg) = self.msg.take() {
            self.ctx.world.mailbox(self.ctx.my_world()).requeue(msg);
        }
    }
}

impl std::fmt::Debug for MpiMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiMessage")
            .field("received", &self.msg.is_none())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_world;

    #[test]
    fn send_recv_roundtrip() {
        run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(b"hello", 1, 7).unwrap();
            } else {
                let mut buf = [0u8; 5];
                let st = comm.recv(&mut buf, Source::Rank(0), Tag::Value(7)).unwrap();
                assert_eq!(&buf, b"hello");
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 7);
                assert_eq!(st.bytes, 5);
            }
        });
    }

    #[test]
    fn any_source_and_any_tag() {
        run_world(3, |comm| {
            if comm.rank() != 0 {
                comm.send(&comm.rank().to_le_bytes(), 0, comm.rank() as i32).unwrap();
            } else {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..2 {
                    let (data, st) = comm.recv_vec(Source::Any, Tag::Any).unwrap();
                    let v = u32::from_le_bytes(data.try_into().unwrap());
                    assert_eq!(v, st.source);
                    assert_eq!(st.tag as u32, st.source);
                    seen.insert(v);
                }
                assert_eq!(seen.len(), 2);
            }
        });
    }

    #[test]
    fn messages_do_not_overtake_per_sender() {
        run_world(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(&i.to_le_bytes(), 1, 0).unwrap();
                }
            } else {
                for i in 0..100u32 {
                    let mut buf = [0u8; 4];
                    comm.recv(&mut buf, Source::Rank(0), Tag::Value(0)).unwrap();
                    assert_eq!(u32::from_le_bytes(buf), i);
                }
            }
        });
    }

    #[test]
    fn truncation_is_reported() {
        run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[0u8; 64], 1, 0).unwrap();
            } else {
                let mut small = [0u8; 8];
                let err = comm.recv(&mut small, Source::Rank(0), Tag::Any).unwrap_err();
                assert!(matches!(err, MpiError::Truncated { message_len: 64, buffer_len: 8 }));
            }
        });
    }

    #[test]
    fn invalid_rank_is_rejected() {
        run_world(2, |comm| {
            let err = comm.send(b"x", 5, 0).unwrap_err();
            assert!(matches!(err, MpiError::InvalidRank { rank: 5, size: 2 }));
        });
    }

    #[test]
    fn sendrecv_exchanges_between_pairs() {
        run_world(2, |comm| {
            let me = comm.rank();
            let other = 1 - me;
            let mut buf = [0u8; 4];
            comm.sendrecv(
                &me.to_le_bytes(),
                other,
                3,
                &mut buf,
                Source::Rank(other),
                Tag::Value(3),
            )
            .unwrap();
            assert_eq!(u32::from_le_bytes(buf), other);
        });
    }

    #[test]
    fn iprobe_sees_pending_message() {
        run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3], 1, 9).unwrap();
                // Signal completion via a second message on another tag.
                comm.send(&[], 1, 10).unwrap();
            } else {
                let mut sync = [0u8; 0];
                comm.recv(&mut sync, Source::Rank(0), Tag::Value(10)).unwrap();
                let st = comm.iprobe(Source::Any, Tag::Value(9)).unwrap().unwrap();
                assert_eq!(st.bytes, 3);
                assert!(comm.iprobe(Source::Any, Tag::Value(99)).unwrap().is_none());
                assert!(comm.iprobe(Source::Rank(7), Tag::Any).is_err(), "rank checked");
                let mut buf = [0u8; 3];
                comm.recv(&mut buf, Source::Rank(0), Tag::Value(9)).unwrap();
            }
        });
    }

    #[test]
    fn split_creates_disjoint_comms() {
        run_world(4, |comm| {
            let color = (comm.rank() % 2) as i32;
            let sub = comm.split(color, comm.rank() as i32).unwrap().unwrap();
            assert_eq!(sub.size(), 2);
            // Even ranks: {0,2} -> sub ranks {0,1}; odd: {1,3}.
            assert_eq!(sub.rank(), comm.rank() / 2);
            // Messages in sub don't leak into world: exchange inside sub.
            let partner = 1 - sub.rank();
            let mut buf = [0u8; 4];
            sub.sendrecv(
                &comm.rank().to_le_bytes(),
                partner,
                0,
                &mut buf,
                Source::Rank(partner),
                Tag::Value(0),
            )
            .unwrap();
            let got = u32::from_le_bytes(buf);
            assert_eq!(got % 2, comm.rank() % 2);
            assert_ne!(got, comm.rank());
        });
    }

    #[test]
    fn split_undefined_color_returns_none() {
        run_world(2, |comm| {
            let sub = comm.split(if comm.rank() == 0 { -1 } else { 0 }, 0).unwrap();
            assert_eq!(sub.is_some(), comm.rank() != 0);
        });
    }

    #[test]
    fn dup_isolates_message_space() {
        run_world(2, |comm| {
            let dup = comm.dup().unwrap();
            if comm.rank() == 0 {
                comm.send(b"world", 1, 5).unwrap();
                dup.send(b"dup__", 1, 5).unwrap();
            } else {
                // Receive from the dup first: the world message must not
                // match even though it was sent earlier with the same tag.
                let mut buf = [0u8; 5];
                dup.recv(&mut buf, Source::Rank(0), Tag::Value(5)).unwrap();
                assert_eq!(&buf, b"dup__");
                comm.recv(&mut buf, Source::Rank(0), Tag::Value(5)).unwrap();
                assert_eq!(&buf, b"world");
            }
        });
    }

    #[test]
    fn wtime_is_monotonic() {
        run_world(1, |comm| {
            let a = comm.wtime();
            let b = comm.wtime();
            assert!(b >= a);
        });
    }
}

//! Internal message representation, per-rank mailboxes, and the
//! **posted-receive queue**.
//!
//! A mailbox holds two queues under one lock:
//!
//! * the **message queue** — arrived-but-unmatched messages in arrival
//!   order (preserving MPI's non-overtaking guarantee per sender), with
//!   **bounded eager buffering**: eager payloads consume credit from a
//!   per-mailbox byte budget that is returned when the message leaves the
//!   queue. Senders that cannot obtain credit fall back to the rendezvous
//!   protocol (see [`crate::progress`]), which keeps the payload on the
//!   sender's side — announced by a matchable RTS in the queue — until the
//!   receiver is ready.
//! * the **posted queue** — receives posted before their message arrived
//!   ([`RecvEntry`]), in posting order.
//!
//! # Matching invariant
//!
//! Both queues are updated atomically under the mailbox lock, maintaining
//! the invariant that **no queued message matches any posted receive**:
//!
//! * an arriving message first scans the posted queue *in posting order*
//!   and, on a match, parks in that entry (never touching the message
//!   queue — matched eager arrivals consume no buffer credit, and a
//!   matched RTS is answerable the moment the receiver drains it);
//! * a receive being posted first scans the message queue *in arrival
//!   order* and claims the first match; only if none matches does it
//!   enter the posted queue.
//!
//! Together these give MPI's matching rules by construction: same-matcher
//! receives match in posted order, wildcard (`ANY_SOURCE`/`ANY_TAG`)
//! entries race specific entries purely by posting position, and per-pair
//! FIFO survives because a message can only bypass the message queue when
//! nothing queued could have matched its receiver.
//!
//! Matching transfers only the *message* into the entry. Delivery — the
//! payload copy and the virtual-clock charge — stays with the receiving
//! rank (see [`crate::progress::CommCtx::deliver`]), so arrival-time
//! matching never runs receiver-side accounting on the sender's thread.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::comm::{Source, Tag, COLLECTIVE_TAG_BASE};
use crate::error::MpiError;
use crate::progress::RendezvousSlot;

/// Payload of an in-flight message: either an eagerly copied buffer or a
/// rendezvous RTS carrying a handle to the sender-side payload.
#[derive(Debug)]
pub(crate) enum Payload {
    /// Eager protocol: the bytes were copied into the mailbox.
    Eager(Box<[u8]>),
    /// Rendezvous protocol: ready-to-send announcement. The payload stays
    /// with the sender; the receiver copies it straight into the posted
    /// buffer and completes the slot (the CTS + transfer in one step).
    Rendezvous(RtsPayload),
}

impl Payload {
    pub fn len(&self) -> usize {
        match self {
            Payload::Eager(data) => data.len(),
            Payload::Rendezvous(rts) => rts.0.len(),
        }
    }
}

/// RTS handle wrapper: if the message is destroyed without the receiver
/// completing the transfer (shutdown, teardown with queued messages, a
/// cancelled posted receive dropping its matched message), the sender
/// blocked on the slot must still be woken.
#[derive(Debug)]
pub(crate) struct RtsPayload(pub Arc<RendezvousSlot>);

impl Drop for RtsPayload {
    fn drop(&mut self) {
        self.0.fail_if_posted();
    }
}

/// One in-flight message.
#[derive(Debug)]
pub(crate) struct Message {
    /// Sender's rank within the communicator `comm_id`.
    pub src_in_comm: u32,
    pub tag: i32,
    pub comm_id: u64,
    pub payload: Payload,
    /// Sender's virtual clock at departure, µs (0 in real-clock mode).
    pub sent_at_us: f64,
    /// Sender's world rank (for wire-time computation).
    pub src_world: u32,
    /// Arrival sequence number within the destination mailbox, assigned
    /// at deposit. The message queue is kept in `seq` order so a message
    /// reclaimed from a cancelled posted receive can be reinserted at its
    /// original arrival position (no overtaking through cancellation).
    pub seq: u64,
    /// Flight-recorder flow id tying the send event to the delivery event
    /// (0 when tracing is off; see `obs`).
    pub flow: u64,
}

impl Message {
    /// The posted-receive matching predicate. `Tag::Any` never matches
    /// the internal collective tag space (all at or below
    /// [`COLLECTIVE_TAG_BASE`]): collective traffic must stay invisible
    /// to wildcard point-to-point receives, as MPI requires.
    pub fn matches(&self, comm_id: u64, src: Source, tag: Tag) -> bool {
        self.comm_id == comm_id
            && match src {
                Source::Any => true,
                Source::Rank(r) => self.src_in_comm == r,
            }
            && match tag {
                Tag::Any => self.tag > COLLECTIVE_TAG_BASE,
                Tag::Value(t) => self.tag == t,
            }
    }

    pub(crate) fn probe_info(&self) -> ProbeInfo {
        ProbeInfo {
            src_in_comm: self.src_in_comm,
            tag: self.tag,
            bytes: self.payload.len(),
            sent_at_us: self.sent_at_us,
            src_world: self.src_world,
        }
    }
}

/// Everything a probe learns about a queued message without dequeuing it:
/// the `Status` fields plus the timing identity the virtual clock needs to
/// charge the observation consistently with a later delivery.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbeInfo {
    pub src_in_comm: u32,
    pub tag: i32,
    pub bytes: usize,
    /// Sender's virtual clock at departure, µs (0 in real-clock mode).
    pub sent_at_us: f64,
    pub src_world: u32,
}

// --- posted receives -----------------------------------------------------

/// State of one posted receive.
#[derive(Debug)]
enum EntryState {
    /// Waiting in the mailbox's posted queue for an arrival.
    Posted,
    /// An arrival matched this entry; the message parks here until the
    /// receiving rank delivers it (copy + clock charge).
    Matched(Message),
    /// The receiver took the message (terminal).
    Taken,
    /// Failed before a match: world shutdown or a dependent rank failure
    /// (terminal; carries the error the receiver observes).
    Failed(MpiError),
    /// Unposted by the receiver before a match (terminal).
    Cancelled,
}

/// A pre-posted receive: the matchbox a receive registers with its rank's
/// mailbox. Holds no buffer pointers — the receiving rank keeps those and
/// performs delivery itself — so the sender-side matching path never
/// touches receiver memory.
pub(crate) struct RecvEntry {
    comm_id: u64,
    src: Source,
    tag: Tag,
    /// World rank of the awaited sender when `src` is specific (resolved
    /// at posting time), so the mailbox can fail dependent entries on a
    /// peer failure without knowing communicator groups. `None` for
    /// wildcard receives — those depend on *every* peer.
    src_world: Option<u32>,
    state: Mutex<EntryState>,
    ready: Condvar,
}

impl RecvEntry {
    /// Test convenience: an entry with no known source world rank.
    #[cfg(test)]
    pub fn new(comm_id: u64, src: Source, tag: Tag) -> Arc<RecvEntry> {
        RecvEntry::with_src_world(comm_id, src, tag, None)
    }

    pub fn with_src_world(
        comm_id: u64,
        src: Source,
        tag: Tag,
        src_world: Option<u32>,
    ) -> Arc<RecvEntry> {
        Arc::new(RecvEntry {
            comm_id,
            src,
            tag,
            src_world,
            state: Mutex::new(EntryState::Posted),
            ready: Condvar::new(),
        })
    }

    /// An entry born already holding its message: the receive half of a
    /// matched probe (`MPI_Imrecv`). Never registered with a mailbox —
    /// matching happened at the probe — but cancelling it requeues the
    /// message exactly like a matched posted receive.
    pub fn prematched(msg: Message) -> Arc<RecvEntry> {
        Arc::new(RecvEntry {
            comm_id: msg.comm_id,
            src: Source::Rank(msg.src_in_comm),
            tag: Tag::Value(msg.tag),
            src_world: Some(msg.src_world),
            state: Mutex::new(EntryState::Matched(msg)),
            ready: Condvar::new(),
        })
    }

    fn matches(&self, m: &Message) -> bool {
        m.matches(self.comm_id, self.src, self.tag)
    }

    /// Latch a matched message and wake the receiver. Called under the
    /// mailbox lock on an entry just claimed from the posted queue. The
    /// entry is usually still `Posted`, but rank-failure propagation
    /// (`CommCtx::post_recv`'s post-registration checks) fails entries
    /// *without* holding the mailbox lock, so a concurrent sender can
    /// claim an entry that is already `Failed`. Such an entry hands the
    /// message back: the receiver must observe the failure, and the
    /// message stays deliverable to other receives.
    fn try_fulfill(&self, msg: Message) -> Result<(), Message> {
        let mut st = self.state.lock();
        if !matches!(*st, EntryState::Posted) {
            return Err(msg);
        }
        *st = EntryState::Matched(msg);
        drop(st);
        self.ready.notify_all();
        Ok(())
    }

    fn fail(&self) {
        self.fail_with(MpiError::WorldShutdown);
    }

    /// Fail a still-posted entry with a specific error (rank-failure
    /// propagation); entries already holding a matched message keep it —
    /// data that arrived before the failure is still deliverable.
    pub(crate) fn fail_with(&self, err: MpiError) {
        let mut st = self.state.lock();
        if matches!(*st, EntryState::Posted) {
            *st = EntryState::Failed(err);
        }
        drop(st);
        self.ready.notify_all();
    }

    /// Receiver: non-blocking poll. `None` while unmatched; the matched
    /// message exactly once; `WorldShutdown` after a pre-match teardown.
    pub fn poll(&self) -> Result<Option<Message>, MpiError> {
        let mut st = self.state.lock();
        match &*st {
            EntryState::Posted => Ok(None),
            EntryState::Matched(_) => {
                let EntryState::Matched(msg) = std::mem::replace(&mut *st, EntryState::Taken)
                else {
                    unreachable!()
                };
                Ok(Some(msg))
            }
            EntryState::Failed(err) => Err(err.clone()),
            EntryState::Taken | EntryState::Cancelled => {
                panic!("polling a retired posted receive")
            }
        }
    }

    /// Receiver: park until matched (or failed) and take the message.
    pub fn wait(&self) -> Result<Message, MpiError> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                EntryState::Matched(_) => {
                    let EntryState::Matched(msg) =
                        std::mem::replace(&mut *st, EntryState::Taken)
                    else {
                        unreachable!()
                    };
                    return Ok(msg);
                }
                EntryState::Failed(err) => return Err(err.clone()),
                EntryState::Posted => self.ready.wait(&mut st),
                EntryState::Taken | EntryState::Cancelled => {
                    panic!("waiting on a retired posted receive")
                }
            }
        }
    }
}

// --- mailbox -------------------------------------------------------------

/// Outcome of depositing a message into a mailbox.
#[derive(Debug)]
pub(crate) enum Deposit {
    /// The message matched a posted receive and parks in its entry — it
    /// never entered the message queue and consumed no eager credit.
    Matched,
    /// The message joined the message queue.
    Queued,
    /// Eager credit exhausted (or the world shut down): the message is
    /// handed back for the sender-owned rendezvous deferral.
    NoCredit(Message),
}

/// A rank's mailbox: the two matched queues plus a condvar for receivers
/// blocked in [`Mailbox::take_matching`]. Eager senders never wait for
/// credit — a credit miss is converted into a sender-owned rendezvous by
/// the progress engine, so backpressure is always visible to matching (no
/// invisible parking).
pub(crate) struct Mailbox {
    pub queue: Mutex<MailboxState>,
    pub available: Condvar,
    /// Eager-buffer byte budget for this mailbox.
    capacity: usize,
}

#[derive(Default)]
pub(crate) struct MailboxState {
    pub messages: VecDeque<Message>,
    /// Receives posted before their message arrived, in posting order.
    pub posted: VecDeque<Arc<RecvEntry>>,
    /// Bytes of eager payload currently buffered (credit in use).
    pub eager_bytes: usize,
    /// Arrival counter: assigns [`Message::seq`].
    pub next_seq: u64,
    /// Set when the world is tearing down; receivers must stop blocking.
    pub shutdown: bool,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::new(usize::MAX)
    }
}

impl Mailbox {
    pub fn new(capacity: usize) -> Mailbox {
        Mailbox {
            queue: Mutex::new(MailboxState::default()),
            available: Condvar::new(),
            capacity,
        }
    }

    /// First posted entry (in posting order) matching `msg`, removed from
    /// the posted queue. Must run under the state lock.
    fn claim_posted(q: &mut MailboxState, msg: &Message) -> Option<Arc<RecvEntry>> {
        let pos = q.posted.iter().position(|e| e.matches(msg))?;
        q.posted.remove(pos)
    }

    /// Deposit a message: match it against the posted queue (posting
    /// order) or append it to the message queue. With `enforce_credit`,
    /// an unmatched message must claim eager credit and is handed back in
    /// [`Deposit::NoCredit`] when the budget is exhausted (a message is
    /// always admitted into an empty buffer so payloads larger than the
    /// whole budget still make progress). Without it the message is
    /// queued unconditionally (rendezvous RTS control messages,
    /// self-sends, credit-deferred rendezvous).
    ///
    /// After shutdown the message is discarded (credit-free path) or
    /// bounced (`NoCredit`), which ultimately fails its rendezvous slot
    /// (via `RtsPayload::drop`) so the sender wakes with `WorldShutdown`
    /// rather than parking forever on a handshake nobody will answer.
    pub fn deposit(&self, mut msg: Message, enforce_credit: bool) -> Deposit {
        let mut q = self.queue.lock();
        if q.shutdown {
            if enforce_credit {
                return Deposit::NoCredit(msg);
            }
            drop(q);
            drop(msg);
            return Deposit::Queued;
        }
        msg.seq = q.next_seq;
        q.next_seq += 1;
        while let Some(entry) = Self::claim_posted(&mut q, &msg) {
            // Fulfill while still holding the mailbox lock: a concurrent
            // cancel (which also takes the mailbox lock first) must see
            // either the entry still posted or the message latched —
            // never a removed-but-unmatched entry, whose message would
            // be lost. An entry already failed by rank-failure
            // propagation refuses the message (it stays removed —
            // terminal either way) and the scan continues.
            match entry.try_fulfill(msg) {
                Ok(()) => return Deposit::Matched,
                Err(m) => msg = m,
            }
        }
        if enforce_credit {
            let len = msg.payload.len();
            if q.eager_bytes > 0 && q.eager_bytes + len > self.capacity {
                return Deposit::NoCredit(msg);
            }
            q.eager_bytes += len;
        } else if let Payload::Eager(data) = &msg.payload {
            q.eager_bytes += data.len();
        }
        q.messages.push_back(msg);
        drop(q);
        self.available.notify_all();
        Deposit::Queued
    }

    /// Register a posted receive: claim the first queued match (arrival
    /// order) or append the entry to the posted queue. Returns `true`
    /// when an already-queued message was claimed.
    pub fn post_recv(&self, entry: &Arc<RecvEntry>) -> bool {
        let mut q = self.queue.lock();
        if q.shutdown {
            drop(q);
            entry.fail();
            return false;
        }
        if let Some(pos) = q.messages.iter().position(|m| entry.matches(m)) {
            let msg = self.remove_at(&mut q, pos);
            // Under the mailbox lock, as in `deposit`. The entry is
            // unshared until this registration, so it is still `Posted`.
            entry.try_fulfill(msg).unwrap_or_else(|_| {
                unreachable!("entry retired before registration")
            });
            return true;
        }
        q.posted.push_back(Arc::clone(entry));
        false
    }

    /// Unpost a receive (request drop / `MPI_Request_free` on a pending
    /// receive / persistent teardown). If an arrival already matched the
    /// entry, the unclaimed message is re-offered to the remaining
    /// posted entries (upholding the no-queued-match invariant) and only
    /// then reinserted into the message queue at its original arrival
    /// position (`seq` order), so it stays available to other receives
    /// with no overtaking.
    pub fn cancel_posted(&self, entry: &Arc<RecvEntry>) {
        let mut q = self.queue.lock();
        if let Some(pos) = q.posted.iter().position(|e| Arc::ptr_eq(e, entry)) {
            q.posted.remove(pos);
            drop(q);
            let mut st = entry.state.lock();
            if matches!(*st, EntryState::Posted) {
                *st = EntryState::Cancelled;
            }
            return;
        }
        // Not in the queue: either retired, or holding a matched message.
        let msg = {
            let mut st = entry.state.lock();
            match &*st {
                EntryState::Matched(_) => {
                    let EntryState::Matched(msg) =
                        std::mem::replace(&mut *st, EntryState::Cancelled)
                    else {
                        unreachable!()
                    };
                    Some(msg)
                }
                _ => None,
            }
        };
        if let Some(msg) = msg {
            if q.shutdown {
                return; // dropping the message fails any rendezvous slot
            }
            // Another posted entry may match the reclaimed message —
            // queueing it past a waiting receiver would both break the
            // invariant and strand that receiver on its condvar. Entries
            // already failed by rank-failure propagation refuse it.
            let mut leftover = Some(msg);
            while let Some(m) = leftover.take() {
                match Self::claim_posted(&mut q, &m) {
                    Some(next) => match next.try_fulfill(m) {
                        Ok(()) => return,
                        Err(m) => leftover = Some(m),
                    },
                    None => {
                        leftover = Some(m);
                        break;
                    }
                }
            }
            let Some(msg) = leftover else { return };
            if let Payload::Eager(data) = &msg.payload {
                q.eager_bytes += data.len();
            }
            let at = q.messages.partition_point(|m| m.seq < msg.seq);
            q.messages.insert(at, msg);
            drop(q);
            self.available.notify_all();
        }
    }

    fn remove_at(&self, q: &mut MailboxState, pos: usize) -> Message {
        let msg = q.messages.remove(pos).expect("position just found");
        if let Payload::Eager(data) = &msg.payload {
            q.eager_bytes -= data.len();
        }
        msg
    }

    /// Find and remove the first *queued* message matching the predicate,
    /// blocking until one arrives. Returns `None` on shutdown. Removing
    /// an eager message returns its credit.
    ///
    /// Production receives go through [`Mailbox::post_recv`] (blocking
    /// ones park on the entry condvar); this queue-scanning variant
    /// survives for the mailbox unit tests.
    #[cfg(test)]
    pub fn take_matching(
        &self,
        mut matches: impl FnMut(&Message) -> bool,
    ) -> Option<Message> {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.messages.iter().position(&mut matches) {
                return Some(self.remove_at(&mut q, pos));
            }
            if q.shutdown {
                return None;
            }
            self.available.wait(&mut q);
        }
    }

    /// Non-blocking take: remove the first matching queued message if one
    /// is present. `Err(WorldShutdown)` after teardown.
    pub fn try_take_matching(
        &self,
        mut matches: impl FnMut(&Message) -> bool,
    ) -> Result<Option<Message>, MpiError> {
        let mut q = self.queue.lock();
        if let Some(pos) = q.messages.iter().position(&mut matches) {
            return Ok(Some(self.remove_at(&mut q, pos)));
        }
        if q.shutdown {
            return Err(MpiError::WorldShutdown);
        }
        Ok(None)
    }

    /// Non-blocking variant: check without waiting (used by `Iprobe`).
    /// Messages already matched to a posted receive are consumed and thus
    /// no longer probe-visible, as in real MPI. The earliest (lowest-seq)
    /// matching queued message is reported, the same one a receive posted
    /// at this instant would claim.
    pub fn peek_matching(
        &self,
        mut matches: impl FnMut(&Message) -> bool,
    ) -> Option<ProbeInfo> {
        let q = self.queue.lock();
        q.messages.iter().find(|m| matches(m)).map(Message::probe_info)
    }

    /// Blocking probe: park until a matching message is *queued* (a
    /// message claimed by a posted receive is never probe-visible), the
    /// world shuts down, or `failed` reports that a rank the probe
    /// depends on has died (the probe would otherwise wait forever for a
    /// message the dead rank can no longer send). The message stays in
    /// the queue. `failed` is re-evaluated after every wake-up —
    /// rank-failure propagation notifies this mailbox's condvar.
    pub fn wait_probe(
        &self,
        mut matches: impl FnMut(&Message) -> bool,
        mut failed: impl FnMut() -> Option<MpiError>,
    ) -> Result<ProbeInfo, MpiError> {
        let mut q = self.queue.lock();
        loop {
            if let Some(m) = q.messages.iter().find(|m| matches(m)) {
                return Ok(m.probe_info());
            }
            if q.shutdown {
                return Err(MpiError::WorldShutdown);
            }
            if let Some(err) = failed() {
                return Err(err);
            }
            self.available.wait(&mut q);
        }
    }

    /// Retract a queued-but-unmatched rendezvous/deferred send whose RTS
    /// carries `slot` (send-side `MPI_Cancel`). Atomic with matching: the
    /// message is either still in the queue here — removed, so no receive
    /// can ever see it — or it already matched a posted entry / was taken,
    /// in which case the send is past the point of cancellation and `false`
    /// is returned. Dropping the removed message fails the slot via
    /// [`RtsPayload::drop`], which is harmless: the canceller owns the
    /// request and never waits on a retracted slot.
    pub fn retract_rendezvous(&self, slot: &Arc<RendezvousSlot>) -> bool {
        let mut q = self.queue.lock();
        let pos = q.messages.iter().position(|m| {
            matches!(&m.payload, Payload::Rendezvous(rts) if Arc::ptr_eq(&rts.0, slot))
        });
        match pos {
            Some(pos) => {
                let msg = self.remove_at(&mut q, pos);
                drop(q);
                drop(msg);
                true
            }
            None => false,
        }
    }

    /// Unpost a still-unmatched receive (receive-side `MPI_Cancel`):
    /// removes the entry from the posted queue iff no arrival has matched
    /// it yet. Returns `false` when the entry already holds (or delivered)
    /// a message — the receive is past cancellation and completes
    /// normally, per MPI.
    pub fn try_unpost(&self, entry: &Arc<RecvEntry>) -> bool {
        let mut q = self.queue.lock();
        if let Some(pos) = q.posted.iter().position(|e| Arc::ptr_eq(e, entry)) {
            q.posted.remove(pos);
            drop(q);
            let mut st = entry.state.lock();
            if matches!(*st, EntryState::Posted) {
                *st = EntryState::Cancelled;
                true
            } else {
                // Failed by rank-failure propagation while still queued:
                // past cancellation, the receive completes with the error.
                false
            }
        } else {
            false
        }
    }

    /// Return a message removed by a matched probe (`Improbe`) that was
    /// never received (the `MpiMessage` was dropped): re-offer it to the
    /// posted entries — upholding the no-queued-match invariant — and
    /// otherwise reinsert it at its original arrival position, exactly
    /// like cancelling a matched posted receive.
    pub fn requeue(&self, mut msg: Message) {
        let mut q = self.queue.lock();
        if q.shutdown {
            return; // dropping the message fails any rendezvous slot
        }
        while let Some(next) = Self::claim_posted(&mut q, &msg) {
            match next.try_fulfill(msg) {
                Ok(()) => return,
                Err(m) => msg = m,
            }
        }
        if let Payload::Eager(data) = &msg.payload {
            q.eager_bytes += data.len();
        }
        let at = q.messages.partition_point(|m| m.seq < msg.seq);
        q.messages.insert(at, msg);
        drop(q);
        self.available.notify_all();
    }

    /// Panic unless the two-queue invariants hold: the message queue is in
    /// strictly increasing `seq` order (no overtaking through cancel or
    /// matched-probe requeues) and no queued message matches any posted
    /// entry. A diagnostics hook for the thread-multiple stress tests; it
    /// takes the mailbox lock, so every snapshot it sees is one the
    /// matching paths could have observed.
    pub fn check_invariants(&self) {
        let q = self.queue.lock();
        for pair in 0..q.messages.len().saturating_sub(1) {
            assert!(
                q.messages[pair].seq < q.messages[pair + 1].seq,
                "message queue out of seq order at {pair}"
            );
        }
        for (i, m) in q.messages.iter().enumerate() {
            for (j, e) in q.posted.iter().enumerate() {
                assert!(
                    !e.matches(m),
                    "queued message {i} (src {}, tag {}) matches posted entry {j}",
                    m.src_in_comm,
                    m.tag
                );
            }
        }
    }

    /// Rank-failure propagation, receiver side: a peer (`failed`, world
    /// rank) died. Posted entries that depend on it — specific receives
    /// awaiting that rank, and every wildcard receive (the dead rank
    /// *might* have been the sender; ULFM's `PROC_FAILED_PENDING`) — fail
    /// with `err`. Queued rendezvous announcements from the dead rank are
    /// discarded (their payload lives in the dead rank's frames and is no
    /// longer safely readable) and their slots failed; queued *eager*
    /// messages keep their bytes and stay deliverable. Blocked probes are
    /// woken so they can re-evaluate their failure predicate.
    pub fn on_peer_failed(&self, failed: u32, err: &MpiError) {
        let mut q = self.queue.lock();
        if q.shutdown {
            return;
        }
        let mut doomed = Vec::new();
        let mut i = 0;
        while i < q.messages.len() {
            let from_dead = q.messages[i].src_world == failed
                && matches!(q.messages[i].payload, Payload::Rendezvous(_));
            if from_dead {
                doomed.push(self.remove_at(&mut q, i));
            } else {
                i += 1;
            }
        }
        let dependent: Vec<Arc<RecvEntry>> = {
            let mut keep = VecDeque::with_capacity(q.posted.len());
            let mut out = Vec::new();
            for e in q.posted.drain(..) {
                // Collective sub-receives (reserved negative tags) depend
                // on every member of their communicator, not just the
                // awaited sender: ULFM aborts the whole collective when
                // any member dies. The mailbox does not know communicator
                // groups, so this is conservative — a concurrent
                // collective on a comm excluding the dead rank is also
                // aborted (spurious `RankFailed`, recoverable by
                // agree/retry), which errs on the side of never parking.
                let depends = match e.src {
                    Source::Any => true,
                    Source::Rank(_) => {
                        e.src_world == Some(failed)
                            || matches!(e.tag, Tag::Value(t) if t < 0)
                    }
                };
                if depends {
                    out.push(e);
                } else {
                    keep.push_back(e);
                }
            }
            q.posted = keep;
            out
        };
        drop(q);
        for msg in doomed {
            if let Payload::Rendezvous(rts) = &msg.payload {
                rts.0.fail_if_posted_with(err.clone());
            }
        }
        for entry in dependent {
            entry.fail_with(err.clone());
        }
        self.available.notify_all();
    }

    /// Rank-failure propagation, dead-rank side: this mailbox's owner
    /// died. Senders parked on rendezvous handshakes queued here are woken
    /// with `err` (nobody will ever answer), and the dead rank's own
    /// still-posted receives are failed so any of its threads parked in a
    /// receive unblock during teardown.
    pub fn fail_own(&self, err: &MpiError) {
        let mut q = self.queue.lock();
        if q.shutdown {
            return;
        }
        for msg in &q.messages {
            if let Payload::Rendezvous(rts) = &msg.payload {
                rts.0.fail_if_posted_with(err.clone());
            }
        }
        let posted = std::mem::take(&mut q.posted);
        drop(q);
        for entry in posted {
            entry.fail_with(err.clone());
        }
        self.available.notify_all();
    }

    pub fn shutdown(&self) {
        let mut q = self.queue.lock();
        q.shutdown = true;
        // Wake senders blocked on queued rendezvous handshakes that will
        // never be matched, and receivers parked on posted entries that
        // will never be fulfilled. Entries holding matched messages are
        // left for their receivers: the matched message is still
        // deliverable.
        for msg in &q.messages {
            if let Payload::Rendezvous(rts) = &msg.payload {
                rts.0.fail_if_posted();
            }
        }
        let posted = std::mem::take(&mut q.posted);
        drop(q);
        for entry in posted {
            entry.fail();
        }
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(src: u32, tag: i32, data: &[u8]) -> Message {
        Message {
            src_in_comm: src,
            tag,
            comm_id: 0,
            payload: Payload::Eager(data.into()),
            sent_at_us: 0.0,
            src_world: src,
            seq: 0,
            flow: 0,
        }
    }

    fn data(m: &Message) -> &[u8] {
        match &m.payload {
            Payload::Eager(d) => d,
            Payload::Rendezvous(_) => panic!("expected eager payload"),
        }
    }

    fn push(mb: &Mailbox, m: Message) -> Deposit {
        mb.deposit(m, false)
    }

    #[test]
    fn fifo_per_matching_predicate() {
        let mb = Mailbox::default();
        push(&mb, msg(0, 1, b"first"));
        push(&mb, msg(0, 1, b"second"));
        let a = mb.take_matching(|m| m.tag == 1).unwrap();
        assert_eq!(data(&a), b"first");
        let b = mb.take_matching(|m| m.tag == 1).unwrap();
        assert_eq!(data(&b), b"second");
    }

    #[test]
    fn selective_receive_skips_nonmatching() {
        let mb = Mailbox::default();
        push(&mb, msg(3, 7, b"three"));
        push(&mb, msg(5, 9, b"five"));
        let m = mb.take_matching(|m| m.src_in_comm == 5).unwrap();
        assert_eq!(data(&m), b"five");
        // The earlier message is still there.
        let m = mb.take_matching(|_| true).unwrap();
        assert_eq!(data(&m), b"three");
    }

    #[test]
    fn blocking_receive_wakes_on_push() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.take_matching(|m| m.tag == 42));
        std::thread::sleep(std::time::Duration::from_millis(20));
        push(&mb, msg(1, 42, b"late"));
        let got = t.join().unwrap().unwrap();
        assert_eq!(data(&got), b"late");
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.take_matching(|_| false));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.shutdown();
        assert!(t.join().unwrap().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mb = Mailbox::default();
        push(&mb, msg(2, 5, b"abc"));
        let peeked = mb.peek_matching(|m| m.tag == 5).unwrap();
        assert_eq!((peeked.src_in_comm, peeked.tag, peeked.bytes), (2, 5, 3));
        assert!(mb.take_matching(|m| m.tag == 5).is_some());
    }

    #[test]
    fn peek_reports_earliest_matching_seq() {
        let mb = Mailbox::default();
        push(&mb, msg(0, 9, b"zero"));
        push(&mb, msg(1, 5, b"one"));
        push(&mb, msg(2, 5, b"two"));
        // Probe skips the non-matching head and reports the earliest
        // tag-5 arrival — the message a receive posted now would claim.
        let peeked = mb.peek_matching(|m| m.tag == 5).unwrap();
        assert_eq!(peeked.src_in_comm, 1);
        assert_eq!(peeked.bytes, 3);
    }

    #[test]
    fn wait_probe_blocks_until_arrival_and_leaves_message() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.wait_probe(|m| m.tag == 3, || None));
        std::thread::sleep(std::time::Duration::from_millis(20));
        push(&mb, msg(4, 3, b"late"));
        let info = t.join().unwrap().unwrap();
        assert_eq!((info.src_in_comm, info.tag, info.bytes), (4, 3, 4));
        // The probed message is still receivable.
        assert_eq!(data(&mb.take_matching(|m| m.tag == 3).unwrap()), b"late");
    }

    #[test]
    fn wait_probe_unblocks_on_shutdown() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.wait_probe(|_| false, || None));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.shutdown();
        assert!(matches!(t.join().unwrap(), Err(MpiError::WorldShutdown)));
    }

    #[test]
    fn try_unpost_only_wins_before_a_match() {
        let mb = Mailbox::default();
        let entry = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.post_recv(&entry);
        assert!(mb.try_unpost(&entry), "unmatched entry unposts");
        // A second attempt finds nothing.
        assert!(!mb.try_unpost(&entry));

        let matched = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.post_recv(&matched);
        push(&mb, msg(0, 1, b"taken"));
        // The arrival already parked in the entry: cancellation loses.
        assert!(!mb.try_unpost(&matched));
        assert_eq!(data(&matched.poll().unwrap().unwrap()), b"taken");
    }

    #[test]
    fn requeue_restores_arrival_position_and_rematches() {
        let mb = Mailbox::default();
        push(&mb, msg(0, 1, b"first"));
        push(&mb, msg(0, 1, b"second"));
        let early = mb.take_matching(|m| m.tag == 1).unwrap();
        assert_eq!(data(&early), b"first");
        mb.requeue(early);
        mb.check_invariants();
        // Arrival order is restored: "first" is taken again first.
        assert_eq!(data(&mb.take_matching(|m| m.tag == 1).unwrap()), b"first");

        // A requeue against a posted entry must fulfill it, not queue past
        // its condvar.
        let entry = RecvEntry::new(0, Source::Rank(0), Tag::Value(1));
        let taken = mb.take_matching(|m| m.tag == 1).unwrap();
        mb.post_recv(&entry);
        mb.requeue(taken);
        mb.check_invariants();
        assert_eq!(data(&entry.poll().unwrap().expect("rematched")), b"second");
    }

    #[test]
    fn retract_removes_only_queued_unmatched_rts() {
        let mb = Mailbox::default();
        let slot = RendezvousSlot::for_owned(b"payload".to_vec().into());
        push(
            &mb,
            Message {
                src_in_comm: 0,
                tag: 2,
                comm_id: 0,
                payload: Payload::Rendezvous(RtsPayload(Arc::clone(&slot))),
                sent_at_us: 0.0,
                src_world: 0,
                seq: 0,
                flow: 0,
            },
        );
        assert!(mb.retract_rendezvous(&slot), "queued RTS is retractable");
        assert!(mb.peek_matching(|_| true).is_none(), "message is gone");
        assert!(!mb.retract_rendezvous(&slot), "second retract finds nothing");
        // The dropped message failed the slot; a (non-cancelling) waiter
        // would observe the failure rather than hanging.
        assert!(slot.wait_done().is_err());
    }

    #[test]
    #[should_panic(expected = "matches posted entry")]
    fn invariant_checker_detects_queued_match() {
        let mb = Mailbox::default();
        push(&mb, msg(0, 1, b"x"));
        // Force a violation: a posted entry added behind the checker's
        // back (bypassing post_recv's claim step).
        let entry = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.queue.lock().posted.push_back(entry);
        mb.check_invariants();
    }

    #[test]
    fn eager_credit_is_claimed_and_returned() {
        let mb = Mailbox::new(8);
        assert!(matches!(mb.deposit(msg(0, 0, b"123456"), true), Deposit::Queued));
        // Budget exhausted: a second 6-byte message bounces.
        let Deposit::NoCredit(back) = mb.deposit(msg(0, 0, b"abcdef"), true) else {
            panic!("expected NoCredit");
        };
        assert_eq!(data(&back), b"abcdef");
        // Draining the first returns the credit.
        mb.take_matching(|_| true).unwrap();
        assert!(matches!(mb.deposit(msg(0, 0, b"abcdef"), true), Deposit::Queued));
    }

    #[test]
    fn oversized_message_admitted_into_empty_buffer() {
        let mb = Mailbox::new(4);
        // Larger than the whole budget, but the buffer is empty.
        assert!(matches!(mb.deposit(msg(0, 0, b"12345678"), true), Deposit::Queued));
        assert!(matches!(mb.deposit(msg(0, 0, b"x"), true), Deposit::NoCredit(_)));
    }

    // --- posted-receive matching ----------------------------------------

    #[test]
    fn arrival_matches_posted_entry_and_skips_queue() {
        let mb = Mailbox::new(8);
        let entry = RecvEntry::new(0, Source::Rank(1), Tag::Value(5));
        assert!(!mb.post_recv(&entry));
        // Even with zero remaining credit the matched arrival goes
        // through: it parks in the entry, not the buffer.
        assert!(matches!(mb.deposit(msg(9, 9, b"12345678"), true), Deposit::Queued));
        assert!(matches!(mb.deposit(msg(1, 5, b"matched!"), true), Deposit::Matched));
        let got = entry.poll().unwrap().expect("matched");
        assert_eq!(data(&got), b"matched!");
    }

    #[test]
    fn same_matcher_entries_match_in_posted_order() {
        let mb = Mailbox::default();
        let first = RecvEntry::new(0, Source::Rank(0), Tag::Value(1));
        let second = RecvEntry::new(0, Source::Rank(0), Tag::Value(1));
        mb.post_recv(&first);
        mb.post_recv(&second);
        push(&mb, msg(0, 1, b"one"));
        push(&mb, msg(0, 1, b"two"));
        // Polling the *newest* entry cannot steal the oldest message.
        assert_eq!(data(&second.poll().unwrap().unwrap()), b"two");
        assert_eq!(data(&first.poll().unwrap().unwrap()), b"one");
    }

    #[test]
    fn wildcard_race_respects_posting_position() {
        let mb = Mailbox::default();
        let specific = RecvEntry::new(0, Source::Rank(1), Tag::Value(5));
        let wildcard = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.post_recv(&specific);
        mb.post_recv(&wildcard);
        // Matches both; the earlier-posted specific entry wins.
        push(&mb, msg(1, 5, b"exact"));
        // Matches only the wildcard.
        push(&mb, msg(2, 7, b"other"));
        assert_eq!(data(&specific.poll().unwrap().unwrap()), b"exact");
        assert_eq!(data(&wildcard.poll().unwrap().unwrap()), b"other");
    }

    #[test]
    fn wildcard_posted_first_beats_later_specific_entry() {
        let mb = Mailbox::default();
        let wildcard = RecvEntry::new(0, Source::Any, Tag::Any);
        let specific = RecvEntry::new(0, Source::Rank(1), Tag::Value(5));
        mb.post_recv(&wildcard);
        mb.post_recv(&specific);
        push(&mb, msg(1, 5, b"taken-by-wildcard"));
        assert_eq!(data(&wildcard.poll().unwrap().unwrap()), b"taken-by-wildcard");
        assert!(specific.poll().unwrap().is_none());
    }

    #[test]
    fn post_claims_earliest_queued_match() {
        let mb = Mailbox::default();
        push(&mb, msg(0, 3, b"early"));
        push(&mb, msg(0, 3, b"late"));
        let entry = RecvEntry::new(0, Source::Rank(0), Tag::Value(3));
        assert!(mb.post_recv(&entry));
        assert_eq!(data(&entry.poll().unwrap().unwrap()), b"early");
        assert_eq!(data(&mb.take_matching(|_| true).unwrap()), b"late");
    }

    #[test]
    fn cancel_requeues_matched_message_at_arrival_position() {
        let mb = Mailbox::default();
        push(&mb, msg(0, 7, b"first-arrival"));
        // Posted after the tag-7 message is queued, so it matches the
        // *next* tag-5 arrival directly.
        let entry = RecvEntry::new(0, Source::Rank(0), Tag::Value(5));
        mb.post_recv(&entry);
        push(&mb, msg(0, 5, b"second-arrival"));
        push(&mb, msg(0, 5, b"third-arrival"));
        mb.cancel_posted(&entry);
        // The reclaimed message sits between the tag-7 and the later
        // tag-5 arrival: same-tag FIFO survives the cancellation.
        assert_eq!(data(&mb.take_matching(|m| m.tag == 5).unwrap()), b"second-arrival");
        assert_eq!(data(&mb.take_matching(|m| m.tag == 5).unwrap()), b"third-arrival");
        assert_eq!(data(&mb.take_matching(|_| true).unwrap()), b"first-arrival");
    }

    #[test]
    fn cancel_rematches_message_to_other_posted_entries() {
        let mb = Mailbox::default();
        let first = RecvEntry::new(0, Source::Any, Tag::Any);
        let second = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.post_recv(&first);
        mb.post_recv(&second);
        push(&mb, msg(1, 2, b"payload")); // parks in `first`
        mb.cancel_posted(&first);
        // The reclaimed message must fulfill the still-posted entry, not
        // sit in the queue past its condvar.
        assert_eq!(data(&second.poll().unwrap().expect("rematched")), b"payload");
    }

    #[test]
    fn cancel_unmatched_entry_stops_future_matching() {
        let mb = Mailbox::default();
        let entry = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.post_recv(&entry);
        mb.cancel_posted(&entry);
        push(&mb, msg(0, 1, b"nobody-home"));
        // The message queued instead of vanishing into the dead entry.
        assert!(mb.peek_matching(|_| true).is_some());
    }

    #[test]
    fn shutdown_fails_posted_entries() {
        let mb = Arc::new(Mailbox::default());
        let entry = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.post_recv(&entry);
        let (mb2, e2) = (Arc::clone(&mb), Arc::clone(&entry));
        let t = std::thread::spawn(move || e2.wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb2.shutdown();
        assert!(matches!(t.join().unwrap(), Err(MpiError::WorldShutdown)));
    }

    #[test]
    fn peer_failure_fails_dependent_entries_only() {
        let mb = Mailbox::default();
        let from_dead = RecvEntry::with_src_world(0, Source::Rank(3), Tag::Any, Some(3));
        let from_live = RecvEntry::with_src_world(0, Source::Rank(5), Tag::Any, Some(5));
        let wildcard = RecvEntry::new(0, Source::Any, Tag::Any);
        mb.post_recv(&from_dead);
        mb.post_recv(&from_live);
        mb.post_recv(&wildcard);
        mb.on_peer_failed(3, &MpiError::RankFailed { rank: 3 });
        assert!(matches!(from_dead.poll(), Err(MpiError::RankFailed { rank: 3 })));
        assert!(
            matches!(wildcard.poll(), Err(MpiError::RankFailed { rank: 3 })),
            "wildcard receives depend on every peer"
        );
        assert!(from_live.poll().unwrap().is_none(), "unrelated entry survives");
        mb.check_invariants();
    }

    #[test]
    fn peer_failure_keeps_eager_but_drops_rendezvous_messages() {
        let mb = Mailbox::default();
        push(&mb, msg(3, 1, b"eager-from-dead"));
        let slot = RendezvousSlot::for_owned(b"rdv".to_vec().into());
        push(
            &mb,
            Message {
                src_in_comm: 3,
                tag: 2,
                comm_id: 0,
                payload: Payload::Rendezvous(RtsPayload(Arc::clone(&slot))),
                sent_at_us: 0.0,
                src_world: 3,
                seq: 0,
                flow: 0,
            },
        );
        mb.on_peer_failed(3, &MpiError::RankFailed { rank: 3 });
        assert!(matches!(slot.wait_done(), Err(MpiError::RankFailed { rank: 3 })));
        let left = mb.take_matching(|_| true).unwrap();
        assert_eq!(data(&left), b"eager-from-dead", "eager bytes already arrived");
        assert!(mb.peek_matching(|_| true).is_none());
    }

    #[test]
    fn wait_probe_unblocks_on_failure_predicate() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            let mut polls = 0u32;
            mb2.wait_probe(
                |_| false,
                move || {
                    polls += 1;
                    (polls > 1).then_some(MpiError::RankFailed { rank: 1 })
                },
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Propagation notifies the condvar; the parked probe re-evaluates.
        mb.available.notify_all();
        assert!(matches!(t.join().unwrap(), Err(MpiError::RankFailed { rank: 1 })));
    }
}

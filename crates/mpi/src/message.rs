//! Internal message representation and per-rank mailboxes.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

/// One in-flight message.
#[derive(Debug)]
pub(crate) struct Message {
    /// Sender's rank within the communicator `comm_id`.
    pub src_in_comm: u32,
    pub tag: i32,
    pub comm_id: u64,
    pub data: Box<[u8]>,
    /// Sender's virtual clock at departure, µs (0 in real-clock mode).
    pub sent_at_us: f64,
    /// Sender's world rank (for wire-time computation).
    pub src_world: u32,
}

/// A rank's mailbox: an ordered queue (preserves MPI's non-overtaking
/// guarantee per sender) plus a condvar for blocking receives.
#[derive(Default)]
pub(crate) struct Mailbox {
    pub queue: Mutex<MailboxState>,
    pub available: Condvar,
}

#[derive(Default)]
pub(crate) struct MailboxState {
    pub messages: VecDeque<Message>,
    /// Set when the world is tearing down; receivers must stop blocking.
    pub shutdown: bool,
}

impl Mailbox {
    /// Deposit a message and wake any blocked receiver.
    pub fn push(&self, msg: Message) {
        let mut q = self.queue.lock();
        q.messages.push_back(msg);
        drop(q);
        self.available.notify_all();
    }

    /// Find and remove the first message matching the predicate, blocking
    /// until one arrives. Returns `None` on shutdown.
    pub fn take_matching(
        &self,
        mut matches: impl FnMut(&Message) -> bool,
    ) -> Option<Message> {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.messages.iter().position(&mut matches) {
                return q.messages.remove(pos);
            }
            if q.shutdown {
                return None;
            }
            self.available.wait(&mut q);
        }
    }

    /// Non-blocking variant: check without waiting (used by `Iprobe`).
    pub fn peek_matching(&self, mut matches: impl FnMut(&Message) -> bool) -> Option<(u32, i32, usize)> {
        let q = self.queue.lock();
        q.messages
            .iter()
            .find(|m| matches(m))
            .map(|m| (m.src_in_comm, m.tag, m.data.len()))
    }

    pub fn shutdown(&self) {
        let mut q = self.queue.lock();
        q.shutdown = true;
        drop(q);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(src: u32, tag: i32, data: &[u8]) -> Message {
        Message {
            src_in_comm: src,
            tag,
            comm_id: 0,
            data: data.into(),
            sent_at_us: 0.0,
            src_world: src,
        }
    }

    #[test]
    fn fifo_per_matching_predicate() {
        let mb = Mailbox::default();
        mb.push(msg(0, 1, b"first"));
        mb.push(msg(0, 1, b"second"));
        let a = mb.take_matching(|m| m.tag == 1).unwrap();
        assert_eq!(&*a.data, b"first");
        let b = mb.take_matching(|m| m.tag == 1).unwrap();
        assert_eq!(&*b.data, b"second");
    }

    #[test]
    fn selective_receive_skips_nonmatching() {
        let mb = Mailbox::default();
        mb.push(msg(3, 7, b"three"));
        mb.push(msg(5, 9, b"five"));
        let m = mb.take_matching(|m| m.src_in_comm == 5).unwrap();
        assert_eq!(&*m.data, b"five");
        // The earlier message is still there.
        let m = mb.take_matching(|_| true).unwrap();
        assert_eq!(&*m.data, b"three");
    }

    #[test]
    fn blocking_receive_wakes_on_push() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.take_matching(|m| m.tag == 42));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(msg(1, 42, b"late"));
        let got = t.join().unwrap().unwrap();
        assert_eq!(&*got.data, b"late");
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.take_matching(|_| false));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.shutdown();
        assert!(t.join().unwrap().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mb = Mailbox::default();
        mb.push(msg(2, 5, b"abc"));
        let peeked = mb.peek_matching(|m| m.tag == 5).unwrap();
        assert_eq!(peeked, (2, 5, 3));
        assert!(mb.take_matching(|m| m.tag == 5).is_some());
    }
}

//! Internal message representation and per-rank mailboxes.
//!
//! A mailbox is an ordered queue (preserving MPI's non-overtaking
//! guarantee per sender) with **bounded eager buffering**: eager payloads
//! consume credit from a per-mailbox byte budget that is returned when the
//! receiver drains the message. Senders that cannot obtain credit fall
//! back to the rendezvous protocol (see [`crate::progress`]), which keeps
//! the payload on the sender's side — announced by a matchable RTS in the
//! queue — until the receiver is ready. Rendezvous RTS control messages
//! travel through the same queue so the per-sender FIFO order is
//! preserved across protocol switches.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::MpiError;
use crate::progress::RendezvousSlot;

/// Payload of an in-flight message: either an eagerly copied buffer or a
/// rendezvous RTS carrying a handle to the sender-side payload.
#[derive(Debug)]
pub(crate) enum Payload {
    /// Eager protocol: the bytes were copied into the mailbox.
    Eager(Box<[u8]>),
    /// Rendezvous protocol: ready-to-send announcement. The payload stays
    /// with the sender; the receiver copies it straight into the posted
    /// buffer and completes the slot (the CTS + transfer in one step).
    Rendezvous(RtsPayload),
}

impl Payload {
    pub fn len(&self) -> usize {
        match self {
            Payload::Eager(data) => data.len(),
            Payload::Rendezvous(rts) => rts.0.len(),
        }
    }
}

/// RTS handle wrapper: if the message is destroyed without the receiver
/// completing the transfer (shutdown, teardown with queued messages), the
/// sender blocked on the slot must still be woken.
#[derive(Debug)]
pub(crate) struct RtsPayload(pub Arc<RendezvousSlot>);

impl Drop for RtsPayload {
    fn drop(&mut self) {
        self.0.fail_if_posted();
    }
}

/// One in-flight message.
#[derive(Debug)]
pub(crate) struct Message {
    /// Sender's rank within the communicator `comm_id`.
    pub src_in_comm: u32,
    pub tag: i32,
    pub comm_id: u64,
    pub payload: Payload,
    /// Sender's virtual clock at departure, µs (0 in real-clock mode).
    pub sent_at_us: f64,
    /// Sender's world rank (for wire-time computation).
    pub src_world: u32,
}

/// A rank's mailbox: the message queue plus a condvar for blocking
/// receivers. Eager senders never wait for credit — a credit miss is
/// converted into a sender-owned rendezvous by the progress engine, so
/// backpressure is always visible to matching (no invisible parking).
pub(crate) struct Mailbox {
    pub queue: Mutex<MailboxState>,
    pub available: Condvar,
    /// Eager-buffer byte budget for this mailbox.
    capacity: usize,
}

#[derive(Default)]
pub(crate) struct MailboxState {
    pub messages: VecDeque<Message>,
    /// Bytes of eager payload currently buffered (credit in use).
    pub eager_bytes: usize,
    /// Set when the world is tearing down; receivers must stop blocking.
    pub shutdown: bool,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::new(usize::MAX)
    }
}

impl Mailbox {
    pub fn new(capacity: usize) -> Mailbox {
        Mailbox {
            queue: Mutex::new(MailboxState::default()),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Deposit a message unconditionally and wake any blocked receiver.
    /// Used for rendezvous RTS control messages (which carry no payload
    /// bytes) — eager payloads go through the credit-checked variants.
    /// After shutdown the message is discarded instead of queued, which
    /// fails its rendezvous slot (via `RtsPayload::drop`) so the sender
    /// wakes with `WorldShutdown` rather than parking forever on a
    /// handshake nobody will answer.
    pub fn push(&self, msg: Message) {
        let mut q = self.queue.lock();
        if q.shutdown {
            drop(q);
            drop(msg);
            return;
        }
        if let Payload::Eager(data) = &msg.payload {
            q.eager_bytes += data.len();
        }
        q.messages.push_back(msg);
        drop(q);
        self.available.notify_all();
    }

    /// Try to claim eager credit and deposit the message; hands the
    /// message back when the buffer budget is exhausted or the world has
    /// shut down (the caller's deferral path then reports the shutdown).
    /// A message is always admitted into an empty buffer so payloads
    /// larger than the whole budget still make progress.
    pub fn try_push_eager(&self, msg: Message) -> Result<(), Message> {
        let len = msg.payload.len();
        let mut q = self.queue.lock();
        if q.shutdown || (q.eager_bytes > 0 && q.eager_bytes + len > self.capacity) {
            return Err(msg);
        }
        q.eager_bytes += len;
        q.messages.push_back(msg);
        drop(q);
        self.available.notify_all();
        Ok(())
    }

    fn remove_at(&self, q: &mut MailboxState, pos: usize) -> Message {
        let msg = q.messages.remove(pos).expect("position just found");
        if let Payload::Eager(data) = &msg.payload {
            q.eager_bytes -= data.len();
        }
        msg
    }

    /// Find and remove the first message matching the predicate, blocking
    /// until one arrives. Returns `None` on shutdown. Removing an eager
    /// message returns its credit.
    pub fn take_matching(
        &self,
        mut matches: impl FnMut(&Message) -> bool,
    ) -> Option<Message> {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.messages.iter().position(&mut matches) {
                return Some(self.remove_at(&mut q, pos));
            }
            if q.shutdown {
                return None;
            }
            self.available.wait(&mut q);
        }
    }

    /// Non-blocking take: remove the first matching message if one is
    /// already queued. `Err(WorldShutdown)` after teardown.
    pub fn try_take_matching(
        &self,
        mut matches: impl FnMut(&Message) -> bool,
    ) -> Result<Option<Message>, MpiError> {
        let mut q = self.queue.lock();
        if let Some(pos) = q.messages.iter().position(&mut matches) {
            return Ok(Some(self.remove_at(&mut q, pos)));
        }
        if q.shutdown {
            return Err(MpiError::WorldShutdown);
        }
        Ok(None)
    }

    /// Non-blocking variant: check without waiting (used by `Iprobe`).
    pub fn peek_matching(&self, mut matches: impl FnMut(&Message) -> bool) -> Option<(u32, i32, usize)> {
        let q = self.queue.lock();
        q.messages
            .iter()
            .find(|m| matches(m))
            .map(|m| (m.src_in_comm, m.tag, m.payload.len()))
    }

    pub fn shutdown(&self) {
        let mut q = self.queue.lock();
        q.shutdown = true;
        // Wake senders blocked on queued rendezvous handshakes that will
        // never be matched.
        for msg in &q.messages {
            if let Payload::Rendezvous(rts) = &msg.payload {
                rts.0.fail_if_posted();
            }
        }
        drop(q);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(src: u32, tag: i32, data: &[u8]) -> Message {
        Message {
            src_in_comm: src,
            tag,
            comm_id: 0,
            payload: Payload::Eager(data.into()),
            sent_at_us: 0.0,
            src_world: src,
        }
    }

    fn data(m: &Message) -> &[u8] {
        match &m.payload {
            Payload::Eager(d) => d,
            Payload::Rendezvous(_) => panic!("expected eager payload"),
        }
    }

    #[test]
    fn fifo_per_matching_predicate() {
        let mb = Mailbox::default();
        mb.push(msg(0, 1, b"first"));
        mb.push(msg(0, 1, b"second"));
        let a = mb.take_matching(|m| m.tag == 1).unwrap();
        assert_eq!(data(&a), b"first");
        let b = mb.take_matching(|m| m.tag == 1).unwrap();
        assert_eq!(data(&b), b"second");
    }

    #[test]
    fn selective_receive_skips_nonmatching() {
        let mb = Mailbox::default();
        mb.push(msg(3, 7, b"three"));
        mb.push(msg(5, 9, b"five"));
        let m = mb.take_matching(|m| m.src_in_comm == 5).unwrap();
        assert_eq!(data(&m), b"five");
        // The earlier message is still there.
        let m = mb.take_matching(|_| true).unwrap();
        assert_eq!(data(&m), b"three");
    }

    #[test]
    fn blocking_receive_wakes_on_push() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.take_matching(|m| m.tag == 42));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(msg(1, 42, b"late"));
        let got = t.join().unwrap().unwrap();
        assert_eq!(data(&got), b"late");
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.take_matching(|_| false));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.shutdown();
        assert!(t.join().unwrap().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mb = Mailbox::default();
        mb.push(msg(2, 5, b"abc"));
        let peeked = mb.peek_matching(|m| m.tag == 5).unwrap();
        assert_eq!(peeked, (2, 5, 3));
        assert!(mb.take_matching(|m| m.tag == 5).is_some());
    }

    #[test]
    fn eager_credit_is_claimed_and_returned() {
        let mb = Mailbox::new(8);
        mb.try_push_eager(msg(0, 0, b"123456")).unwrap();
        // Budget exhausted: a second 6-byte message bounces.
        let back = mb.try_push_eager(msg(0, 0, b"abcdef")).unwrap_err();
        assert_eq!(data(&back), b"abcdef");
        // Draining the first returns the credit.
        mb.take_matching(|_| true).unwrap();
        mb.try_push_eager(msg(0, 0, b"abcdef")).unwrap();
    }

    #[test]
    fn oversized_message_admitted_into_empty_buffer() {
        let mb = Mailbox::new(4);
        // Larger than the whole budget, but the buffer is empty.
        mb.try_push_eager(msg(0, 0, b"12345678")).unwrap();
        assert!(mb.try_push_eager(msg(0, 0, b"x")).is_err());
    }
}

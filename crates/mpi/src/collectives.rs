//! Collective operations, implemented with the textbook schedules on top
//! of the point-to-point layer:
//!
//! * `barrier` — dissemination
//! * `bcast` — binomial tree
//! * `reduce` — binomial tree with operator application
//! * `allreduce` — recursive doubling with non-power-of-two folding
//! * `gather` / `scatter` — linear rooted
//! * `allgather` — ring
//! * `alltoall` — eager exchange
//!
//! Because the schedules really execute (real messages between rank
//! threads), the virtual-time mode observes their true critical paths —
//! log₂(p) rounds for trees and recursive doubling, p−1 rounds for the
//! ring — which is what produces the paper-shaped scaling curves.

use crate::comm::{Comm, Source, Tag, COLLECTIVE_TAG_BASE};
use crate::datatype::{reduce_in_place, Datatype, ReduceOp};
use crate::error::MpiError;

const TAG_BARRIER: i32 = COLLECTIVE_TAG_BASE;
const TAG_BCAST: i32 = COLLECTIVE_TAG_BASE - 1;
const TAG_REDUCE: i32 = COLLECTIVE_TAG_BASE - 2;
const TAG_ALLREDUCE: i32 = COLLECTIVE_TAG_BASE - 3;
const TAG_GATHER: i32 = COLLECTIVE_TAG_BASE - 4;
const TAG_SCATTER: i32 = COLLECTIVE_TAG_BASE - 5;
const TAG_ALLGATHER: i32 = COLLECTIVE_TAG_BASE - 6;
const TAG_ALLTOALL: i32 = COLLECTIVE_TAG_BASE - 7;
const TAG_ALLTOALLV: i32 = COLLECTIVE_TAG_BASE - 8;

impl Comm {
    /// `MPI_Barrier`: dissemination algorithm, ⌈log₂ p⌉ rounds. Each
    /// round's token goes out nonblockingly: the schedule is a cycle
    /// (every rank sends before it receives), so a blocking send that
    /// parked — e.g. a token deferred to rendezvous under eager-credit
    /// exhaustion — would deadlock the whole ring.
    pub fn barrier(&self) -> Result<(), MpiError> {
        self.fault_step("barrier")?;
        let _span = self.coll_span(obs::CollKind::Barrier, obs::Algorithm::Dissemination);
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let me = self.rank();
        let token = [1u8];
        let mut byte = [0u8; 1];
        let mut k = 1u32;
        while k < p {
            let to = (me + k) % p;
            // k < p here, so no inner reduction of k is needed.
            let from = (me + p - k) % p;
            let mut sreq = self.isend(&token, to, TAG_BARRIER)?;
            self.recv(&mut byte, Source::Rank(from), Tag::Value(TAG_BARRIER))?;
            sreq.wait()?;
            k <<= 1;
        }
        Ok(())
    }

    /// `MPI_Bcast`: binomial tree from `root`; `buf` is the full payload on
    /// the root and is overwritten everywhere else.
    pub fn bcast(&self, buf: &mut [u8], root: u32) -> Result<(), MpiError> {
        self.fault_step("bcast")?;
        let _span = self.coll_span(obs::CollKind::Bcast, obs::Algorithm::Binomial);
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        if p == 1 {
            return Ok(());
        }
        let vr = (self.rank() + p - root) % p;

        // Receive phase: find the bit where our subtree hangs.
        let mut mask = 1u32;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                let st = self.recv(buf, Source::Rank(src), Tag::Value(TAG_BCAST))?;
                if st.bytes != buf.len() {
                    return Err(MpiError::CollectiveMismatch(format!(
                        "bcast buffers differ: got {} bytes, expected {}",
                        st.bytes,
                        buf.len()
                    )));
                }
                break;
            }
            mask <<= 1;
        }
        // Send phase: relay to children.
        mask >>= 1;
        while mask > 0 {
            if vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send(buf, dst, TAG_BCAST)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// `MPI_Reduce`: binomial tree; the root's `recv_buf` receives the
    /// elementwise reduction of every rank's `send_buf`.
    pub fn reduce(
        &self,
        send_buf: &[u8],
        recv_buf: Option<&mut [u8]>,
        dt: Datatype,
        op: ReduceOp,
        root: u32,
    ) -> Result<(), MpiError> {
        self.fault_step("reduce")?;
        let _span = self.coll_span(obs::CollKind::Reduce, obs::Algorithm::Binomial);
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        let vr = (self.rank() + p - root) % p;
        let mut acc = send_buf.to_vec();

        let mut mask = 1u32;
        while mask < p {
            if vr & mask == 0 {
                let partner = vr | mask;
                if partner < p {
                    let src = (partner + root) % p;
                    let (data, _) =
                        self.recv_vec(Source::Rank(src), Tag::Value(TAG_REDUCE))?;
                    reduce_in_place(dt, op, &mut acc, &data)?;
                }
            } else {
                let dst = (vr - mask + root) % p;
                self.send(&acc, dst, TAG_REDUCE)?;
                break;
            }
            mask <<= 1;
        }

        if self.rank() == root {
            let out = recv_buf.ok_or_else(|| {
                MpiError::CollectiveMismatch("root reduce requires a receive buffer".into())
            })?;
            if out.len() != acc.len() {
                return Err(MpiError::CollectiveMismatch(format!(
                    "reduce output buffer {} bytes, data {} bytes",
                    out.len(),
                    acc.len()
                )));
            }
            out.copy_from_slice(&acc);
        }
        Ok(())
    }

    /// `MPI_Allreduce`: recursive doubling with the standard fold-in step
    /// for non-power-of-two rank counts.
    pub fn allreduce(
        &self,
        send_buf: &[u8],
        recv_buf: &mut [u8],
        dt: Datatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        self.fault_step("allreduce")?;
        let _span = self.coll_span(obs::CollKind::Allreduce, obs::Algorithm::RecursiveDoubling);
        if recv_buf.len() != send_buf.len() {
            return Err(MpiError::CollectiveMismatch(format!(
                "allreduce buffers differ: send {}, recv {}",
                send_buf.len(),
                recv_buf.len()
            )));
        }
        let p = self.size();
        let me = self.rank();
        let mut acc = send_buf.to_vec();
        if p == 1 {
            recv_buf.copy_from_slice(&acc);
            return Ok(());
        }

        // Largest power of two ≤ p and the remainder ranks.
        let p2 = 1u32 << (31 - p.leading_zeros());
        let rem = p - p2;

        // Fold the first 2·rem ranks pairwise so p2 ranks remain.
        let new_rank: i64 = if me < 2 * rem {
            if me % 2 == 0 {
                self.send(&acc, me + 1, TAG_ALLREDUCE)?;
                -1
            } else {
                let (data, _) = self.recv_vec(Source::Rank(me - 1), Tag::Value(TAG_ALLREDUCE))?;
                reduce_in_place(dt, op, &mut acc, &data)?;
                (me / 2) as i64
            }
        } else {
            (me - rem) as i64
        };

        if new_rank >= 0 {
            let nr = new_rank as u32;
            let mut mask = 1u32;
            while mask < p2 {
                let partner_nr = nr ^ mask;
                let partner = if partner_nr < rem { partner_nr * 2 + 1 } else { partner_nr + rem };
                let mut incoming = vec![0u8; acc.len()];
                self.sendrecv(
                    &acc,
                    partner,
                    TAG_ALLREDUCE,
                    &mut incoming,
                    Source::Rank(partner),
                    Tag::Value(TAG_ALLREDUCE),
                )?;
                reduce_in_place(dt, op, &mut acc, &incoming)?;
                mask <<= 1;
            }
        }

        // Unfold: odd folded ranks return the result to their even partner.
        if me < 2 * rem {
            if me % 2 == 1 {
                self.send(&acc, me - 1, TAG_ALLREDUCE)?;
            } else {
                let (data, _) = self.recv_vec(Source::Rank(me + 1), Tag::Value(TAG_ALLREDUCE))?;
                acc = data;
            }
        }
        recv_buf.copy_from_slice(&acc);
        Ok(())
    }

    /// `MPI_Gather`: every rank contributes `send_buf`; the root's
    /// `recv_buf` receives all contributions concatenated in rank order.
    pub fn gather(
        &self,
        send_buf: &[u8],
        recv_buf: Option<&mut [u8]>,
        root: u32,
    ) -> Result<(), MpiError> {
        self.fault_step("gather")?;
        let _span = self.coll_span(obs::CollKind::Gather, obs::Algorithm::LinearRoot);
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        if self.rank() == root {
            let out = recv_buf.ok_or_else(|| {
                MpiError::CollectiveMismatch("root gather requires a receive buffer".into())
            })?;
            let n = send_buf.len();
            if out.len() != n * p as usize {
                return Err(MpiError::CollectiveMismatch(format!(
                    "gather output is {} bytes, expected {}",
                    out.len(),
                    n * p as usize
                )));
            }
            out[root as usize * n..root as usize * n + n].copy_from_slice(send_buf);
            // Receive from each specific source (wildcard receives could
            // match a later gather's message from a fast rank while this
            // gather is still collecting from slow ranks), straight into
            // the rank's slot of the output buffer — rendezvous blocks
            // land with a single copy.
            for r in 0..p {
                if r == root {
                    continue;
                }
                let off = r as usize * n;
                let st =
                    self.recv(&mut out[off..off + n], Source::Rank(r), Tag::Value(TAG_GATHER))?;
                if st.bytes != n {
                    return Err(MpiError::CollectiveMismatch(format!(
                        "gather block from {r} is {} bytes, expected {n}",
                        st.bytes
                    )));
                }
            }
        } else {
            self.send(send_buf, root, TAG_GATHER)?;
        }
        Ok(())
    }

    /// `MPI_Scatter`: the root's `send_buf` holds `p` equal blocks; each
    /// rank receives its block in `recv_buf`.
    pub fn scatter(
        &self,
        send_buf: Option<&[u8]>,
        recv_buf: &mut [u8],
        root: u32,
    ) -> Result<(), MpiError> {
        self.fault_step("scatter")?;
        let _span = self.coll_span(obs::CollKind::Scatter, obs::Algorithm::LinearRoot);
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        let n = recv_buf.len();
        if self.rank() == root {
            let src = send_buf.ok_or_else(|| {
                MpiError::CollectiveMismatch("root scatter requires a send buffer".into())
            })?;
            if src.len() != n * p as usize {
                return Err(MpiError::CollectiveMismatch(format!(
                    "scatter input is {} bytes, expected {}",
                    src.len(),
                    n * p as usize
                )));
            }
            // Post every block nonblockingly so slow children drain the
            // root's rendezvous handshakes concurrently.
            let mut pending = Vec::with_capacity(p as usize - 1);
            for r in 0..p {
                if r == root {
                    continue;
                }
                let off = r as usize * n;
                pending.push(self.isend(&src[off..off + n], r, TAG_SCATTER)?);
            }
            recv_buf.copy_from_slice(&src[root as usize * n..root as usize * n + n]);
            crate::request::Request::wait_all(&mut pending)?;
        } else {
            self.recv(recv_buf, Source::Rank(root), Tag::Value(TAG_SCATTER))?;
        }
        Ok(())
    }

    /// `MPI_Allgather`: ring algorithm, p−1 rounds.
    pub fn allgather(&self, send_buf: &[u8], recv_buf: &mut [u8]) -> Result<(), MpiError> {
        self.fault_step("allgather")?;
        let _span = self.coll_span(obs::CollKind::Allgather, obs::Algorithm::Ring);
        let p = self.size() as usize;
        let n = send_buf.len();
        if recv_buf.len() != n * p {
            return Err(MpiError::CollectiveMismatch(format!(
                "allgather output is {} bytes, expected {}",
                recv_buf.len(),
                n * p
            )));
        }
        let me = self.rank() as usize;
        recv_buf[me * n..me * n + n].copy_from_slice(send_buf);
        if p == 1 {
            return Ok(());
        }
        let right = ((me + 1) % p) as u32;
        let left = Source::Rank(((me + p - 1) % p) as u32);
        for step in 0..p - 1 {
            // Forward the block that arrived `step` hops ago.
            let send_block = (me + p - step) % p;
            let recv_block = (me + p - step - 1) % p;
            let outgoing = recv_buf[send_block * n..send_block * n + n].to_vec();
            let mut incoming = vec![0u8; n];
            self.sendrecv(
                &outgoing,
                right,
                TAG_ALLGATHER,
                &mut incoming,
                left,
                Tag::Value(TAG_ALLGATHER),
            )?;
            recv_buf[recv_block * n..recv_block * n + n].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// `MPI_Alltoall`: each rank sends block `r` of `send_buf` to rank `r`
    /// and receives block `s` of `recv_buf` from rank `s`.
    pub fn alltoall(&self, send_buf: &[u8], recv_buf: &mut [u8]) -> Result<(), MpiError> {
        self.fault_step("alltoall")?;
        let _span = self.coll_span(obs::CollKind::Alltoall, obs::Algorithm::Pairwise);
        let p = self.size() as usize;
        if send_buf.len() != recv_buf.len() || send_buf.len() % p != 0 {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoall buffers must be equal and divisible by p: {} vs {}",
                send_buf.len(),
                recv_buf.len()
            )));
        }
        let n = send_buf.len() / p;
        let me = self.rank() as usize;
        recv_buf[me * n..me * n + n].copy_from_slice(&send_buf[me * n..me * n + n]);
        // Post all sends nonblockingly (every rank is about to sit in its
        // receive loop, so blocking rendezvous sends here would deadlock),
        // then collect from each specific source (wildcards could
        // cross-match a subsequent alltoall).
        let mut pending = Vec::with_capacity(p - 1);
        for i in 1..p {
            let dst = (me + i) % p;
            pending.push(self.isend(&send_buf[dst * n..dst * n + n], dst as u32, TAG_ALLTOALL)?);
        }
        for i in 1..p {
            let src = (me + p - i) % p;
            let off = src * n;
            // Receive straight into place: rendezvous blocks land with a
            // single sender-buffer → recv_buf copy.
            let st = self.recv(
                &mut recv_buf[off..off + n],
                Source::Rank(src as u32),
                Tag::Value(TAG_ALLTOALL),
            )?;
            if st.bytes != n {
                return Err(MpiError::CollectiveMismatch(format!(
                    "alltoall block from {src} is {} bytes, expected {n}",
                    st.bytes
                )));
            }
        }
        crate::request::Request::wait_all(&mut pending)?;
        Ok(())
    }

    /// `MPI_Alltoallv`: the vector all-to-all. Counts and displacements
    /// are in bytes; every pair exchanges exactly one (possibly empty)
    /// block, like [`Comm::alltoall`].
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv(
        &self,
        send_buf: &[u8],
        send_counts: &[usize],
        send_displs: &[usize],
        recv_buf: &mut [u8],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<(), MpiError> {
        self.fault_step("alltoallv")?;
        let _span = self.coll_span(obs::CollKind::Alltoallv, obs::Algorithm::Pairwise);
        let p = self.size() as usize;
        if send_counts.len() != p
            || send_displs.len() != p
            || recv_counts.len() != p
            || recv_displs.len() != p
        {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoallv takes {p} counts/displacements per array"
            )));
        }
        for r in 0..p {
            if send_displs[r] + send_counts[r] > send_buf.len()
                || recv_displs[r] + recv_counts[r] > recv_buf.len()
            {
                return Err(MpiError::CollectiveMismatch(format!(
                    "alltoallv block {r} exceeds its buffer"
                )));
            }
        }
        let me = self.rank() as usize;
        if send_counts[me] != recv_counts[me] {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoallv self block differs: send {} recv {}",
                send_counts[me], recv_counts[me]
            )));
        }
        recv_buf[recv_displs[me]..recv_displs[me] + recv_counts[me]]
            .copy_from_slice(&send_buf[send_displs[me]..send_displs[me] + send_counts[me]]);
        // Post all sends nonblockingly (as alltoall does), then collect
        // from each specific source.
        let mut pending = Vec::with_capacity(p - 1);
        for i in 1..p {
            let dst = (me + i) % p;
            pending.push(self.isend(
                &send_buf[send_displs[dst]..send_displs[dst] + send_counts[dst]],
                dst as u32,
                TAG_ALLTOALLV,
            )?);
        }
        for i in 1..p {
            let src = (me + p - i) % p;
            let st = self.recv(
                &mut recv_buf[recv_displs[src]..recv_displs[src] + recv_counts[src]],
                Source::Rank(src as u32),
                Tag::Value(TAG_ALLTOALLV),
            )?;
            if st.bytes != recv_counts[src] {
                return Err(MpiError::CollectiveMismatch(format!(
                    "alltoallv block from {src} is {} bytes, expected {}",
                    st.bytes, recv_counts[src]
                )));
            }
        }
        crate::request::Request::wait_all(&mut pending)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_world;

    #[test]
    fn barrier_completes_at_various_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            run_world(p, |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn bcast_delivers_to_all_from_every_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                run_world(p, move |comm| {
                    let mut buf = if comm.rank() == root {
                        vec![0xAB; 33]
                    } else {
                        vec![0; 33]
                    };
                    comm.bcast(&mut buf, root).unwrap();
                    assert!(buf.iter().all(|&b| b == 0xAB), "rank {}", comm.rank());
                });
            }
        }
    }

    #[test]
    fn reduce_sums_ints_at_root() {
        for p in [2, 3, 4, 6] {
            run_world(p, move |comm| {
                let v = (comm.rank() as i32 + 1).to_le_bytes();
                let mut out = [0u8; 4];
                let root = p - 1;
                comm.reduce(
                    &v,
                    if comm.rank() == root { Some(&mut out) } else { None },
                    Datatype::Int,
                    ReduceOp::Sum,
                    root,
                )
                .unwrap();
                if comm.rank() == root {
                    let expected: i32 = (1..=p as i32).sum();
                    assert_eq!(i32::from_le_bytes(out), expected);
                }
            });
        }
    }

    #[test]
    fn allreduce_matches_oracle_at_odd_sizes() {
        // Exercises the non-power-of-two folding path.
        for p in [1, 2, 3, 5, 6, 7, 8] {
            run_world(p, move |comm| {
                let mine = [comm.rank() as f64 + 0.5, -(comm.rank() as f64)];
                let mut send = Vec::new();
                for v in mine {
                    send.extend_from_slice(&v.to_le_bytes());
                }
                let mut recv = vec![0u8; 16];
                comm.allreduce(&send, &mut recv, Datatype::Double, ReduceOp::Sum).unwrap();
                let got0 = f64::from_le_bytes(recv[0..8].try_into().unwrap());
                let got1 = f64::from_le_bytes(recv[8..16].try_into().unwrap());
                let exp0: f64 = (0..p).map(|r| r as f64 + 0.5).sum();
                let exp1: f64 = (0..p).map(|r| -(r as f64)).sum();
                assert!((got0 - exp0).abs() < 1e-12, "rank {} p {}", comm.rank(), p);
                assert!((got1 - exp1).abs() < 1e-12);
            });
        }
    }

    #[test]
    fn allreduce_max() {
        run_world(5, |comm| {
            let v = ((comm.rank() as i32 * 7) % 5).to_le_bytes();
            let mut out = [0u8; 4];
            comm.allreduce(&v, &mut out, Datatype::Int, ReduceOp::Max).unwrap();
            assert_eq!(i32::from_le_bytes(out), 4);
        });
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        run_world(4, |comm| {
            let mine = [comm.rank() as u8; 3];
            let mut out = vec![0u8; 12];
            comm.gather(&mine, if comm.rank() == 2 { Some(&mut out) } else { None }, 2)
                .unwrap();
            if comm.rank() == 2 {
                assert_eq!(out, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
            }
        });
    }

    #[test]
    fn scatter_distributes_blocks() {
        run_world(4, |comm| {
            let src: Vec<u8> = (0..8).collect();
            let mut mine = [0u8; 2];
            comm.scatter(
                if comm.rank() == 0 { Some(&src[..]) } else { None },
                &mut mine,
                0,
            )
            .unwrap();
            assert_eq!(mine, [comm.rank() as u8 * 2, comm.rank() as u8 * 2 + 1]);
        });
    }

    #[test]
    fn allgather_ring_matches_oracle() {
        for p in [1, 2, 3, 4, 7] {
            run_world(p, move |comm| {
                let mine = [comm.rank() as u8 + 10, comm.rank() as u8 + 100];
                let mut out = vec![0u8; 2 * p as usize];
                comm.allgather(&mine, &mut out).unwrap();
                for r in 0..p as usize {
                    assert_eq!(out[2 * r], r as u8 + 10);
                    assert_eq!(out[2 * r + 1], r as u8 + 100);
                }
            });
        }
    }

    #[test]
    fn alltoall_transposes() {
        for p in [2, 3, 5] {
            run_world(p, move |comm| {
                let me = comm.rank() as u8;
                // Block sent to rank r encodes (me, r).
                let mut send = Vec::new();
                for r in 0..p as u8 {
                    send.extend_from_slice(&[me, r]);
                }
                let mut recv = vec![0u8; 2 * p as usize];
                comm.alltoall(&send, &mut recv).unwrap();
                for r in 0..p as usize {
                    assert_eq!(recv[2 * r], r as u8, "block from rank {r}");
                    assert_eq!(recv[2 * r + 1], me);
                }
            });
        }
    }

    #[test]
    fn bcast_mismatched_sizes_detected() {
        run_world(2, |comm| {
            let mut buf = if comm.rank() == 0 { vec![1u8; 8] } else { vec![0u8; 4] };
            let r = comm.bcast(&mut buf, 0);
            if comm.rank() == 1 {
                assert!(r.is_err());
            }
        });
    }

    #[test]
    fn collectives_on_split_subcommunicators() {
        run_world(6, |comm| {
            let sub = comm.split((comm.rank() % 2) as i32, 0).unwrap().unwrap();
            let v = 1i32.to_le_bytes();
            let mut out = [0u8; 4];
            sub.allreduce(&v, &mut out, Datatype::Int, ReduceOp::Sum).unwrap();
            assert_eq!(i32::from_le_bytes(out), 3);
        });
    }
}

//! Collective operations, implemented with the textbook schedules on top
//! of the point-to-point layer:
//!
//! * `barrier` — dissemination
//! * `bcast` — binomial tree, pipelined binomial, or pipelined ring
//! * `reduce` — binomial tree with operator application
//! * `allreduce` — recursive doubling (with non-power-of-two folding)
//!   or Rabenseifner's reduce-scatter + allgather
//! * `gather` / `scatter` — linear rooted
//! * `allgather` — ring, Bruck, or recursive doubling
//! * `alltoall` — pairwise exchange or Bruck
//!
//! Multi-algorithm collectives pick their schedule through the world's
//! [`crate::coll_algo::CollTuning`] table — per (collective, communicator
//! size, payload bytes), with any cell forcible for conformance testing.
//! The selection inputs are identical at every rank (the buffer-length
//! checks guarantee matching sizes), so all ranks of one call always run
//! the same schedule. The chosen algorithm is recorded on the
//! `CollBegin` observability span.
//!
//! Because the schedules really execute (real messages between rank
//! threads), the virtual-time mode observes their true critical paths —
//! log₂(p) rounds for trees and recursive doubling, p−1 rounds for the
//! ring — which is what produces the paper-shaped scaling curves.

use crate::coll_algo::{AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo};
use crate::comm::{Comm, Source, Tag, COLLECTIVE_TAG_BASE};
use crate::datatype::{reduce_in_place, Datatype, ReduceOp};
use crate::error::MpiError;
use crate::request::Request;

const TAG_BARRIER: i32 = COLLECTIVE_TAG_BASE;
const TAG_BCAST: i32 = COLLECTIVE_TAG_BASE - 1;
const TAG_REDUCE: i32 = COLLECTIVE_TAG_BASE - 2;
const TAG_ALLREDUCE: i32 = COLLECTIVE_TAG_BASE - 3;
const TAG_GATHER: i32 = COLLECTIVE_TAG_BASE - 4;
const TAG_SCATTER: i32 = COLLECTIVE_TAG_BASE - 5;
const TAG_ALLGATHER: i32 = COLLECTIVE_TAG_BASE - 6;
const TAG_ALLTOALL: i32 = COLLECTIVE_TAG_BASE - 7;
const TAG_ALLTOALLV: i32 = COLLECTIVE_TAG_BASE - 8;
// Sub-receive tags of the selectable schedules. These stay above the
// nonblocking-collective tag region (which starts at
// `COLLECTIVE_TAG_BASE - 64`, see `crate::request`), and like every tag
// ≤ `COLLECTIVE_TAG_BASE` they are invisible to wildcard probes and
// receives.
const TAG_BCAST_SEG: i32 = COLLECTIVE_TAG_BASE - 9;
const TAG_ALLGATHER_BRUCK: i32 = COLLECTIVE_TAG_BASE - 10;
const TAG_ALLGATHER_RD: i32 = COLLECTIVE_TAG_BASE - 11;
const TAG_ALLREDUCE_RS: i32 = COLLECTIVE_TAG_BASE - 12;
const TAG_ALLREDUCE_AG: i32 = COLLECTIVE_TAG_BASE - 13;
const TAG_ALLTOALL_BRUCK: i32 = COLLECTIVE_TAG_BASE - 14;

/// Largest power of two ≤ `p`, and the remainder ranks beyond it.
fn pow2_split(p: u32) -> (u32, u32) {
    let p2 = 1u32 << (31 - p.leading_zeros());
    (p2, p - p2)
}

impl Comm {
    /// `MPI_Barrier`: dissemination algorithm, ⌈log₂ p⌉ rounds. Each
    /// round's token goes out nonblockingly: the schedule is a cycle
    /// (every rank sends before it receives), so a blocking send that
    /// parked — e.g. a token deferred to rendezvous under eager-credit
    /// exhaustion — would deadlock the whole ring.
    pub fn barrier(&self) -> Result<(), MpiError> {
        self.fault_step("barrier")?;
        let _span = self.coll_span(obs::CollKind::Barrier, obs::Algorithm::Dissemination);
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let me = self.rank();
        let token = [1u8];
        let mut byte = [0u8; 1];
        let mut k = 1u32;
        while k < p {
            let to = (me + k) % p;
            // k < p here, so no inner reduction of k is needed.
            let from = (me + p - k) % p;
            let mut sreq = self.isend(&token, to, TAG_BARRIER)?;
            self.recv(&mut byte, Source::Rank(from), Tag::Value(TAG_BARRIER))?;
            sreq.wait()?;
            k <<= 1;
        }
        Ok(())
    }

    /// `MPI_Bcast` from `root`; `buf` is the full payload on the root and
    /// is overwritten everywhere else. The schedule — binomial tree,
    /// pipelined binomial, or pipelined ring — comes from the world's
    /// [`crate::coll_algo::CollTuning`] table.
    pub fn bcast(&self, buf: &mut [u8], root: u32) -> Result<(), MpiError> {
        self.fault_step("bcast")?;
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        let algo = self.tuning().select_bcast(p, buf.len());
        let _span = self.coll_span(obs::CollKind::Bcast, algo.obs());
        if p == 1 {
            return Ok(());
        }
        match algo {
            BcastAlgo::Binomial => self.bcast_binomial(buf, root),
            BcastAlgo::BinomialSegmented => self.bcast_binomial_seg(buf, root),
            BcastAlgo::Ring => self.bcast_ring(buf, root),
        }
    }

    /// Binomial-tree bcast: the whole payload moves in ⌈log₂ p⌉ rounds.
    fn bcast_binomial(&self, buf: &mut [u8], root: u32) -> Result<(), MpiError> {
        let p = self.size();
        let vr = (self.rank() + p - root) % p;

        // Receive phase: find the bit where our subtree hangs.
        let mut mask = 1u32;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                let st = self.recv(buf, Source::Rank(src), Tag::Value(TAG_BCAST))?;
                if st.bytes != buf.len() {
                    return Err(MpiError::CollectiveMismatch(format!(
                        "bcast buffers differ: got {} bytes, expected {}",
                        st.bytes,
                        buf.len()
                    )));
                }
                break;
            }
            mask <<= 1;
        }
        // Send phase: relay to children.
        mask >>= 1;
        while mask > 0 {
            if vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send(buf, dst, TAG_BCAST)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Pipelined binomial bcast: the payload moves in `segment_bytes`
    /// pieces down the same binomial tree, a child relaying segment `s`
    /// to its subtree while segment `s+1` is still in flight to it. All
    /// relays are nonblocking and drained at the end.
    fn bcast_binomial_seg(&self, buf: &mut [u8], root: u32) -> Result<(), MpiError> {
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let seg = self.tuning().segment_bytes.max(1);

        // Parent: the lowest set bit of vr (the root has none).
        let mut parent_mask = 0u32;
        let mut mask = 1u32;
        while mask < p {
            if vr & mask != 0 {
                parent_mask = mask;
                break;
            }
            mask <<= 1;
        }
        let parent = (parent_mask != 0).then(|| (vr - parent_mask + root) % p);
        // Children, in the order the unsegmented send phase visits them.
        let mut children = Vec::new();
        let mut m = if parent_mask == 0 { p.next_power_of_two() >> 1 } else { parent_mask >> 1 };
        while m > 0 {
            if vr + m < p {
                children.push((vr + m + root) % p);
            }
            m >>= 1;
        }

        let mut pending = Vec::new();
        let mut tail: &mut [u8] = buf;
        // A zero-length payload still runs one (empty) segment so every
        // rank exchanges the same number of messages.
        loop {
            let k = seg.min(tail.len());
            let (head, rest) = std::mem::take(&mut tail).split_at_mut(k);
            tail = rest;
            if let Some(src) = parent {
                let st = self.recv(&mut *head, Source::Rank(src), Tag::Value(TAG_BCAST_SEG))?;
                if st.bytes != head.len() {
                    return Err(MpiError::CollectiveMismatch(format!(
                        "bcast segment from {src} is {} bytes, expected {}",
                        st.bytes,
                        head.len()
                    )));
                }
            }
            let head: &[u8] = head;
            for &c in &children {
                pending.push(self.isend(head, c, TAG_BCAST_SEG)?);
            }
            if tail.is_empty() {
                break;
            }
        }
        Request::wait_all(&mut pending)?;
        Ok(())
    }

    /// Pipelined ring bcast: the payload streams root → root+1 → … in
    /// `segment_bytes` pieces. p−1+segments rounds deep, but every link
    /// carries each byte exactly once — the bandwidth-optimal regime.
    fn bcast_ring(&self, buf: &mut [u8], root: u32) -> Result<(), MpiError> {
        let p = self.size();
        let me = self.rank();
        let vr = (me + p - root) % p;
        let seg = self.tuning().segment_bytes.max(1);
        let left = (me + p - 1) % p;
        let right = (me + 1) % p;
        let last = vr == p - 1;

        let mut pending = Vec::new();
        let mut tail: &mut [u8] = buf;
        loop {
            let k = seg.min(tail.len());
            let (head, rest) = std::mem::take(&mut tail).split_at_mut(k);
            tail = rest;
            if vr != 0 {
                let st = self.recv(&mut *head, Source::Rank(left), Tag::Value(TAG_BCAST_SEG))?;
                if st.bytes != head.len() {
                    return Err(MpiError::CollectiveMismatch(format!(
                        "bcast segment from {left} is {} bytes, expected {}",
                        st.bytes,
                        head.len()
                    )));
                }
            }
            if !last {
                let head: &[u8] = head;
                pending.push(self.isend(head, right, TAG_BCAST_SEG)?);
            }
            if tail.is_empty() {
                break;
            }
        }
        Request::wait_all(&mut pending)?;
        Ok(())
    }

    /// `MPI_Reduce`: binomial tree; the root's `recv_buf` receives the
    /// elementwise reduction of every rank's `send_buf`.
    pub fn reduce(
        &self,
        send_buf: &[u8],
        recv_buf: Option<&mut [u8]>,
        dt: Datatype,
        op: ReduceOp,
        root: u32,
    ) -> Result<(), MpiError> {
        self.fault_step("reduce")?;
        let _span = self.coll_span(obs::CollKind::Reduce, obs::Algorithm::Binomial);
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        let vr = (self.rank() + p - root) % p;
        let mut acc = send_buf.to_vec();

        let mut mask = 1u32;
        while mask < p {
            if vr & mask == 0 {
                let partner = vr | mask;
                if partner < p {
                    let src = (partner + root) % p;
                    let (data, _) =
                        self.recv_vec(Source::Rank(src), Tag::Value(TAG_REDUCE))?;
                    reduce_in_place(dt, op, &mut acc, &data)?;
                }
            } else {
                let dst = (vr - mask + root) % p;
                self.send(&acc, dst, TAG_REDUCE)?;
                break;
            }
            mask <<= 1;
        }

        if self.rank() == root {
            let out = recv_buf.ok_or_else(|| {
                MpiError::CollectiveMismatch("root reduce requires a receive buffer".into())
            })?;
            if out.len() != acc.len() {
                return Err(MpiError::CollectiveMismatch(format!(
                    "reduce output buffer {} bytes, data {} bytes",
                    out.len(),
                    acc.len()
                )));
            }
            out.copy_from_slice(&acc);
        }
        Ok(())
    }

    /// `MPI_Allreduce`: recursive doubling for latency-bound payloads,
    /// Rabenseifner's reduce-scatter + allgather once bandwidth
    /// dominates — selected per (p, bytes) through the world's tuning
    /// table.
    pub fn allreduce(
        &self,
        send_buf: &[u8],
        recv_buf: &mut [u8],
        dt: Datatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        self.fault_step("allreduce")?;
        if recv_buf.len() != send_buf.len() {
            return Err(MpiError::CollectiveMismatch(format!(
                "allreduce buffers differ: send {}, recv {}",
                send_buf.len(),
                recv_buf.len()
            )));
        }
        let p = self.size();
        let algo = self.tuning().select_allreduce(p, send_buf.len());
        let _span = self.coll_span(obs::CollKind::Allreduce, algo.obs());
        if p == 1 {
            recv_buf.copy_from_slice(send_buf);
            return Ok(());
        }
        match algo {
            AllreduceAlgo::RecursiveDoubling => self.allreduce_rd(send_buf, recv_buf, dt, op),
            AllreduceAlgo::Rabenseifner => {
                self.allreduce_rabenseifner(send_buf, recv_buf, dt, op)
            }
        }
    }

    /// Recursive-doubling allreduce with the standard fold-in step for
    /// non-power-of-two rank counts.
    fn allreduce_rd(
        &self,
        send_buf: &[u8],
        recv_buf: &mut [u8],
        dt: Datatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        let p = self.size();
        let me = self.rank();
        let mut acc = send_buf.to_vec();

        let (p2, rem) = pow2_split(p);

        // Fold the first 2·rem ranks pairwise so p2 ranks remain.
        let new_rank: i64 = if me < 2 * rem {
            if me % 2 == 0 {
                self.send(&acc, me + 1, TAG_ALLREDUCE)?;
                -1
            } else {
                let (data, _) = self.recv_vec(Source::Rank(me - 1), Tag::Value(TAG_ALLREDUCE))?;
                reduce_in_place(dt, op, &mut acc, &data)?;
                (me / 2) as i64
            }
        } else {
            (me - rem) as i64
        };

        if new_rank >= 0 {
            let nr = new_rank as u32;
            let mut mask = 1u32;
            while mask < p2 {
                let partner_nr = nr ^ mask;
                let partner = if partner_nr < rem { partner_nr * 2 + 1 } else { partner_nr + rem };
                let mut incoming = vec![0u8; acc.len()];
                self.sendrecv(
                    &acc,
                    partner,
                    TAG_ALLREDUCE,
                    &mut incoming,
                    Source::Rank(partner),
                    Tag::Value(TAG_ALLREDUCE),
                )?;
                reduce_in_place(dt, op, &mut acc, &incoming)?;
                mask <<= 1;
            }
        }

        // Unfold: odd folded ranks return the result to their even partner.
        if me < 2 * rem {
            if me % 2 == 1 {
                self.send(&acc, me - 1, TAG_ALLREDUCE)?;
            } else {
                let (data, _) = self.recv_vec(Source::Rank(me + 1), Tag::Value(TAG_ALLREDUCE))?;
                acc = data;
            }
        }
        recv_buf.copy_from_slice(&acc);
        Ok(())
    }

    /// Rabenseifner's allreduce: fold to a power of two, reduce-scatter
    /// by recursive halving (each round exchanges and reduces half of the
    /// remaining chunk range), allgather the reduced chunks back by
    /// recursive doubling, then unfold. Every byte crosses each rank's
    /// link ~2·(p−1)/p times instead of log₂ p times, which is why this
    /// wins for large payloads.
    fn allreduce_rabenseifner(
        &self,
        send_buf: &[u8],
        recv_buf: &mut [u8],
        dt: Datatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        let elem = dt.size();
        if send_buf.len() % elem != 0 {
            return Err(MpiError::BadCount { bytes: send_buf.len(), type_size: elem });
        }
        let p = self.size();
        let me = self.rank();
        let (p2, rem) = pow2_split(p);
        let mut acc = send_buf.to_vec();

        // Byte offsets of the p2 chunks (balanced element split; offs has
        // p2+1 entries so chunk i spans offs[i]..offs[i+1]).
        let n_elems = send_buf.len() / elem;
        let base = n_elems / p2 as usize;
        let extra = n_elems % p2 as usize;
        let mut offs = Vec::with_capacity(p2 as usize + 1);
        let mut cum = 0usize;
        offs.push(0usize);
        for i in 0..p2 as usize {
            cum += base + usize::from(i < extra);
            offs.push(cum * elem);
        }

        // Fold the first 2·rem ranks pairwise (same mapping as recursive
        // doubling) so p2 ranks remain.
        let new_rank: i64 = if me < 2 * rem {
            if me % 2 == 0 {
                self.send(&acc, me + 1, TAG_ALLREDUCE_RS)?;
                -1
            } else {
                let (data, _) =
                    self.recv_vec(Source::Rank(me - 1), Tag::Value(TAG_ALLREDUCE_RS))?;
                reduce_in_place(dt, op, &mut acc, &data)?;
                (me / 2) as i64
            }
        } else {
            (me - rem) as i64
        };

        if new_rank < 0 {
            // Folded-out even rank: wait for the finished vector.
            let (data, _) = self.recv_vec(Source::Rank(me + 1), Tag::Value(TAG_ALLREDUCE_AG))?;
            if data.len() != recv_buf.len() {
                return Err(MpiError::CollectiveMismatch(format!(
                    "allreduce result is {} bytes, expected {}",
                    data.len(),
                    recv_buf.len()
                )));
            }
            recv_buf.copy_from_slice(&data);
            return Ok(());
        }
        let nr = new_rank as usize;
        let comm_rank =
            |q: usize| if (q as u32) < rem { q as u32 * 2 + 1 } else { q as u32 + rem };

        // Reduce-scatter by recursive halving: each round keeps (and
        // reduces) the half of the chunk range containing our own chunk,
        // sending the other half to the partner across the range.
        let mut lo = 0usize;
        let mut hi = p2 as usize;
        while hi - lo > 1 {
            let half = (hi - lo) / 2;
            let mid = lo + half;
            let partner = comm_rank(nr ^ half);
            let (keep_lo, keep_hi, send_lo, send_hi) =
                if nr < mid { (lo, mid, mid, hi) } else { (mid, hi, lo, mid) };
            let out = acc[offs[send_lo]..offs[send_hi]].to_vec();
            let mut inc = vec![0u8; offs[keep_hi] - offs[keep_lo]];
            self.sendrecv(
                &out,
                partner,
                TAG_ALLREDUCE_RS,
                &mut inc,
                Source::Rank(partner),
                Tag::Value(TAG_ALLREDUCE_RS),
            )?;
            reduce_in_place(dt, op, &mut acc[offs[keep_lo]..offs[keep_hi]], &inc)?;
            if nr < mid {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        debug_assert_eq!(lo, nr);

        // Allgather the chunks back by recursive doubling: the owned
        // aligned chunk range doubles each round.
        let mut width = 1usize;
        while width < p2 as usize {
            let partner_nr = nr ^ width;
            let partner = comm_rank(partner_nr);
            let my_lo = nr & !(width - 1);
            let pa_lo = partner_nr & !(width - 1);
            let out = acc[offs[my_lo]..offs[my_lo + width]].to_vec();
            let mut inc = vec![0u8; offs[pa_lo + width] - offs[pa_lo]];
            self.sendrecv(
                &out,
                partner,
                TAG_ALLREDUCE_AG,
                &mut inc,
                Source::Rank(partner),
                Tag::Value(TAG_ALLREDUCE_AG),
            )?;
            acc[offs[pa_lo]..offs[pa_lo + width]].copy_from_slice(&inc);
            width <<= 1;
        }

        // Unfold: odd folded ranks return the result to their even partner.
        if me < 2 * rem && me % 2 == 1 {
            self.send(&acc, me - 1, TAG_ALLREDUCE_AG)?;
        }
        recv_buf.copy_from_slice(&acc);
        Ok(())
    }

    /// `MPI_Gather`: every rank contributes `send_buf`; the root's
    /// `recv_buf` receives all contributions concatenated in rank order.
    pub fn gather(
        &self,
        send_buf: &[u8],
        recv_buf: Option<&mut [u8]>,
        root: u32,
    ) -> Result<(), MpiError> {
        self.fault_step("gather")?;
        let _span = self.coll_span(obs::CollKind::Gather, obs::Algorithm::LinearRoot);
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        if self.rank() == root {
            let out = recv_buf.ok_or_else(|| {
                MpiError::CollectiveMismatch("root gather requires a receive buffer".into())
            })?;
            let n = send_buf.len();
            if out.len() != n * p as usize {
                return Err(MpiError::CollectiveMismatch(format!(
                    "gather output is {} bytes, expected {}",
                    out.len(),
                    n * p as usize
                )));
            }
            out[root as usize * n..root as usize * n + n].copy_from_slice(send_buf);
            // Receive from each specific source (wildcard receives could
            // match a later gather's message from a fast rank while this
            // gather is still collecting from slow ranks), straight into
            // the rank's slot of the output buffer — rendezvous blocks
            // land with a single copy.
            for r in 0..p {
                if r == root {
                    continue;
                }
                let off = r as usize * n;
                let st =
                    self.recv(&mut out[off..off + n], Source::Rank(r), Tag::Value(TAG_GATHER))?;
                if st.bytes != n {
                    return Err(MpiError::CollectiveMismatch(format!(
                        "gather block from {r} is {} bytes, expected {n}",
                        st.bytes
                    )));
                }
            }
        } else {
            self.send(send_buf, root, TAG_GATHER)?;
        }
        Ok(())
    }

    /// `MPI_Scatter`: the root's `send_buf` holds `p` equal blocks; each
    /// rank receives its block in `recv_buf`.
    pub fn scatter(
        &self,
        send_buf: Option<&[u8]>,
        recv_buf: &mut [u8],
        root: u32,
    ) -> Result<(), MpiError> {
        self.fault_step("scatter")?;
        let _span = self.coll_span(obs::CollKind::Scatter, obs::Algorithm::LinearRoot);
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank { rank: root, size: p });
        }
        let n = recv_buf.len();
        if self.rank() == root {
            let src = send_buf.ok_or_else(|| {
                MpiError::CollectiveMismatch("root scatter requires a send buffer".into())
            })?;
            if src.len() != n * p as usize {
                return Err(MpiError::CollectiveMismatch(format!(
                    "scatter input is {} bytes, expected {}",
                    src.len(),
                    n * p as usize
                )));
            }
            // Post every block nonblockingly so slow children drain the
            // root's rendezvous handshakes concurrently.
            let mut pending = Vec::with_capacity(p as usize - 1);
            for r in 0..p {
                if r == root {
                    continue;
                }
                let off = r as usize * n;
                pending.push(self.isend(&src[off..off + n], r, TAG_SCATTER)?);
            }
            recv_buf.copy_from_slice(&src[root as usize * n..root as usize * n + n]);
            crate::request::Request::wait_all(&mut pending)?;
        } else {
            self.recv(recv_buf, Source::Rank(root), Tag::Value(TAG_SCATTER))?;
        }
        Ok(())
    }

    /// `MPI_Allgather`: ring, Bruck, or recursive doubling, selected per
    /// (p, block bytes) through the world's tuning table. Every schedule
    /// leaves rank `r`'s contribution in block `r` of `recv_buf`.
    pub fn allgather(&self, send_buf: &[u8], recv_buf: &mut [u8]) -> Result<(), MpiError> {
        self.fault_step("allgather")?;
        let p = self.size() as usize;
        let n = send_buf.len();
        if recv_buf.len() != n * p {
            return Err(MpiError::CollectiveMismatch(format!(
                "allgather output is {} bytes, expected {}",
                recv_buf.len(),
                n * p
            )));
        }
        let algo = self.tuning().select_allgather(self.size(), n);
        let _span = self.coll_span(obs::CollKind::Allgather, algo.obs());
        let me = self.rank() as usize;
        recv_buf[me * n..me * n + n].copy_from_slice(send_buf);
        if p == 1 {
            return Ok(());
        }
        match algo {
            AllgatherAlgo::Ring => self.allgather_ring(recv_buf, n),
            AllgatherAlgo::Bruck => self.allgather_bruck(recv_buf, n),
            AllgatherAlgo::RecursiveDoubling => self.allgather_rd(recv_buf, n),
        }
    }

    /// Ring allgather, p−1 rounds of one block. `recv_buf` already holds
    /// our own block.
    fn allgather_ring(&self, recv_buf: &mut [u8], n: usize) -> Result<(), MpiError> {
        let p = self.size() as usize;
        let me = self.rank() as usize;
        let right = ((me + 1) % p) as u32;
        let left = Source::Rank(((me + p - 1) % p) as u32);
        for step in 0..p - 1 {
            // Forward the block that arrived `step` hops ago.
            let send_block = (me + p - step) % p;
            let recv_block = (me + p - step - 1) % p;
            let outgoing = recv_buf[send_block * n..send_block * n + n].to_vec();
            let mut incoming = vec![0u8; n];
            self.sendrecv(
                &outgoing,
                right,
                TAG_ALLGATHER,
                &mut incoming,
                left,
                Tag::Value(TAG_ALLGATHER),
            )?;
            recv_buf[recv_block * n..recv_block * n + n].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// Bruck allgather: ⌈log₂ p⌉ rounds in a rotated staging buffer where
    /// slot `i` holds rank `(me+i) mod p`'s block; each round sends the
    /// first `min(k, p−k)` slots k ranks backward and doubles the carried
    /// set, then the buffer is unrotated into place. Works for any p.
    fn allgather_bruck(&self, recv_buf: &mut [u8], n: usize) -> Result<(), MpiError> {
        let p = self.size() as usize;
        let me = self.rank() as usize;
        let mut tmp = vec![0u8; n * p];
        tmp[..n].copy_from_slice(&recv_buf[me * n..me * n + n]);
        let mut k = 1usize;
        while k < p {
            let cnt = k.min(p - k);
            let dst = ((me + p - k) % p) as u32;
            let src = ((me + k) % p) as u32;
            let (head, rest) = tmp.split_at_mut(k * n);
            self.sendrecv(
                &head[..cnt * n],
                dst,
                TAG_ALLGATHER_BRUCK,
                &mut rest[..cnt * n],
                Source::Rank(src),
                Tag::Value(TAG_ALLGATHER_BRUCK),
            )?;
            k <<= 1;
        }
        for i in 0..p {
            let j = (me + i) % p;
            recv_buf[j * n..j * n + n].copy_from_slice(&tmp[i * n..i * n + n]);
        }
        Ok(())
    }

    /// Recursive-doubling allgather. For non-power-of-two p the last
    /// `rem = p − p2` ranks fold their block into rank `me − p2` up
    /// front and receive the finished buffer at the end; the low `p2`
    /// ranks run recursive doubling where new-rank `q` carries block `q`
    /// plus block `q + p2` when `q < rem`, so each round exchanges the
    /// structurally-known held set of the aligned window.
    fn allgather_rd(&self, recv_buf: &mut [u8], n: usize) -> Result<(), MpiError> {
        let p = self.size() as usize;
        let me = self.rank() as usize;
        let (p2, rem) = pow2_split(p as u32);
        let (p2, rem) = (p2 as usize, rem as usize);

        // The blocks held by the aligned window [start, start+width) of
        // low ranks, in canonical order.
        let blocks = |start: usize, width: usize| -> Vec<usize> {
            let mut v = Vec::with_capacity(2 * width);
            for b in start..start + width {
                v.push(b);
                if b < rem {
                    v.push(b + p2);
                }
            }
            v
        };

        if me >= p2 {
            // Folded-out rank: hand our block down, then take the result.
            let low = (me - p2) as u32;
            self.send(&recv_buf[me * n..me * n + n], low, TAG_ALLGATHER_RD)?;
            let st = self.recv(recv_buf, Source::Rank(low), Tag::Value(TAG_ALLGATHER_RD))?;
            if st.bytes != n * p {
                return Err(MpiError::CollectiveMismatch(format!(
                    "allgather result is {} bytes, expected {}",
                    st.bytes,
                    n * p
                )));
            }
            return Ok(());
        }
        if me < rem {
            let high = (me + p2) as u32;
            let off = (me + p2) * n;
            let st = self.recv(
                &mut recv_buf[off..off + n],
                Source::Rank(high),
                Tag::Value(TAG_ALLGATHER_RD),
            )?;
            if st.bytes != n {
                return Err(MpiError::CollectiveMismatch(format!(
                    "allgather block from {high} is {} bytes, expected {n}",
                    st.bytes
                )));
            }
        }

        let mut width = 1usize;
        while width < p2 {
            let partner = me ^ width;
            let mine = blocks(me & !(width - 1), width);
            let theirs = blocks(partner & !(width - 1), width);
            let mut out = Vec::with_capacity(mine.len() * n);
            for &b in &mine {
                out.extend_from_slice(&recv_buf[b * n..b * n + n]);
            }
            let mut inc = vec![0u8; theirs.len() * n];
            self.sendrecv(
                &out,
                partner as u32,
                TAG_ALLGATHER_RD,
                &mut inc,
                Source::Rank(partner as u32),
                Tag::Value(TAG_ALLGATHER_RD),
            )?;
            for (i, &b) in theirs.iter().enumerate() {
                recv_buf[b * n..b * n + n].copy_from_slice(&inc[i * n..i * n + n]);
            }
            width <<= 1;
        }

        // Unfold: ship the finished buffer up to the folded partner.
        if me < rem {
            self.send(recv_buf, (me + p2) as u32, TAG_ALLGATHER_RD)?;
        }
        Ok(())
    }

    /// `MPI_Alltoall`: each rank sends block `r` of `send_buf` to rank `r`
    /// and receives block `s` of `recv_buf` from rank `s`. Pairwise
    /// exchange or Bruck, selected per (p, block bytes) through the
    /// world's tuning table.
    pub fn alltoall(&self, send_buf: &[u8], recv_buf: &mut [u8]) -> Result<(), MpiError> {
        self.fault_step("alltoall")?;
        let p = self.size() as usize;
        if send_buf.len() != recv_buf.len() || send_buf.len() % p != 0 {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoall buffers must be equal and divisible by p: {} vs {}",
                send_buf.len(),
                recv_buf.len()
            )));
        }
        let n = send_buf.len() / p;
        let algo = self.tuning().select_alltoall(self.size(), n);
        let _span = self.coll_span(obs::CollKind::Alltoall, algo.obs());
        if p == 1 {
            recv_buf.copy_from_slice(send_buf);
            return Ok(());
        }
        match algo {
            AlltoallAlgo::Pairwise => self.alltoall_pairwise(send_buf, recv_buf, n),
            AlltoallAlgo::Bruck => self.alltoall_bruck(send_buf, recv_buf, n),
        }
    }

    /// Pairwise alltoall: p−1 nonblocking sends plus p−1 specific-source
    /// receives straight into place.
    fn alltoall_pairwise(
        &self,
        send_buf: &[u8],
        recv_buf: &mut [u8],
        n: usize,
    ) -> Result<(), MpiError> {
        let p = self.size() as usize;
        let me = self.rank() as usize;
        recv_buf[me * n..me * n + n].copy_from_slice(&send_buf[me * n..me * n + n]);
        // Post all sends nonblockingly (every rank is about to sit in its
        // receive loop, so blocking rendezvous sends here would deadlock),
        // then collect from each specific source (wildcards could
        // cross-match a subsequent alltoall).
        let mut pending = Vec::with_capacity(p - 1);
        for i in 1..p {
            let dst = (me + i) % p;
            pending.push(self.isend(&send_buf[dst * n..dst * n + n], dst as u32, TAG_ALLTOALL)?);
        }
        for i in 1..p {
            let src = (me + p - i) % p;
            let off = src * n;
            // Receive straight into place: rendezvous blocks land with a
            // single sender-buffer → recv_buf copy.
            let st = self.recv(
                &mut recv_buf[off..off + n],
                Source::Rank(src as u32),
                Tag::Value(TAG_ALLTOALL),
            )?;
            if st.bytes != n {
                return Err(MpiError::CollectiveMismatch(format!(
                    "alltoall block from {src} is {} bytes, expected {n}",
                    st.bytes
                )));
            }
        }
        crate::request::Request::wait_all(&mut pending)?;
        Ok(())
    }

    /// Bruck alltoall: rotate block `j` of `send_buf` so slot `j` holds
    /// the block for rank `(me+j) mod p`, then ⌈log₂ p⌉ store-and-forward
    /// rounds — round k ships every slot whose index has bit k set to
    /// rank `me+k`, so a block bound `j` ranks forward travels exactly
    /// the hops in `j`'s binary expansion — then unrotate into source
    /// order. Each byte moves up to log₂ p times, but only log₂ p
    /// messages go out instead of p−1.
    fn alltoall_bruck(
        &self,
        send_buf: &[u8],
        recv_buf: &mut [u8],
        n: usize,
    ) -> Result<(), MpiError> {
        let p = self.size() as usize;
        let me = self.rank() as usize;
        let mut tmp = vec![0u8; n * p];
        for j in 0..p {
            let b = (me + j) % p;
            tmp[j * n..j * n + n].copy_from_slice(&send_buf[b * n..b * n + n]);
        }
        let mut k = 1usize;
        while k < p {
            let dst = ((me + k) % p) as u32;
            let src = ((me + p - k) % p) as u32;
            let idx: Vec<usize> = (0..p).filter(|j| j & k != 0).collect();
            let mut out = Vec::with_capacity(idx.len() * n);
            for &j in &idx {
                out.extend_from_slice(&tmp[j * n..j * n + n]);
            }
            let mut inc = vec![0u8; idx.len() * n];
            self.sendrecv(
                &out,
                dst,
                TAG_ALLTOALL_BRUCK,
                &mut inc,
                Source::Rank(src),
                Tag::Value(TAG_ALLTOALL_BRUCK),
            )?;
            for (i, &j) in idx.iter().enumerate() {
                tmp[j * n..j * n + n].copy_from_slice(&inc[i * n..i * n + n]);
            }
            k <<= 1;
        }
        // Slot j now holds the block bound for us from rank me−j; file
        // each one under its source.
        for s in 0..p {
            let j = (me + p - s) % p;
            recv_buf[s * n..s * n + n].copy_from_slice(&tmp[j * n..j * n + n]);
        }
        Ok(())
    }

    /// `MPI_Alltoallv`: the vector all-to-all. Counts and displacements
    /// are in bytes; every pair exchanges exactly one (possibly empty)
    /// block, like [`Comm::alltoall`].
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv(
        &self,
        send_buf: &[u8],
        send_counts: &[usize],
        send_displs: &[usize],
        recv_buf: &mut [u8],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<(), MpiError> {
        self.fault_step("alltoallv")?;
        let _span = self.coll_span(obs::CollKind::Alltoallv, obs::Algorithm::Pairwise);
        let p = self.size() as usize;
        if send_counts.len() != p
            || send_displs.len() != p
            || recv_counts.len() != p
            || recv_displs.len() != p
        {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoallv takes {p} counts/displacements per array"
            )));
        }
        for r in 0..p {
            if send_displs[r] + send_counts[r] > send_buf.len()
                || recv_displs[r] + recv_counts[r] > recv_buf.len()
            {
                return Err(MpiError::CollectiveMismatch(format!(
                    "alltoallv block {r} exceeds its buffer"
                )));
            }
        }
        let me = self.rank() as usize;
        if send_counts[me] != recv_counts[me] {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoallv self block differs: send {} recv {}",
                send_counts[me], recv_counts[me]
            )));
        }
        recv_buf[recv_displs[me]..recv_displs[me] + recv_counts[me]]
            .copy_from_slice(&send_buf[send_displs[me]..send_displs[me] + send_counts[me]]);
        // Post all sends nonblockingly (as alltoall does), then collect
        // from each specific source.
        let mut pending = Vec::with_capacity(p - 1);
        for i in 1..p {
            let dst = (me + i) % p;
            pending.push(self.isend(
                &send_buf[send_displs[dst]..send_displs[dst] + send_counts[dst]],
                dst as u32,
                TAG_ALLTOALLV,
            )?);
        }
        for i in 1..p {
            let src = (me + p - i) % p;
            let st = self.recv(
                &mut recv_buf[recv_displs[src]..recv_displs[src] + recv_counts[src]],
                Source::Rank(src as u32),
                Tag::Value(TAG_ALLTOALLV),
            )?;
            if st.bytes != recv_counts[src] {
                return Err(MpiError::CollectiveMismatch(format!(
                    "alltoallv block from {src} is {} bytes, expected {}",
                    st.bytes, recv_counts[src]
                )));
            }
        }
        crate::request::Request::wait_all(&mut pending)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coll_algo::CollTuning;
    use crate::world::{run_world, run_world_configured, WorldConfig};
    use crate::ClockMode;

    fn forced(t: CollTuning) -> WorldConfig {
        WorldConfig::new(ClockMode::Real).with_coll_tuning(t)
    }

    #[test]
    fn every_bcast_schedule_delivers() {
        for algo in BcastAlgo::ALL {
            for p in [1, 2, 3, 5, 8] {
                // A 7-byte segment over a 33-byte payload exercises the
                // pipelines with a ragged final segment.
                let cfg =
                    forced(CollTuning::new().force_bcast(algo).with_segment_bytes(7));
                run_world_configured(p, cfg, move |comm| {
                    let mut buf =
                        if comm.rank() == 1 % p { vec![0xAB; 33] } else { vec![0; 33] };
                    comm.bcast(&mut buf, 1 % p).unwrap();
                    assert!(
                        buf.iter().all(|&b| b == 0xAB),
                        "{algo:?} rank {} p {p}",
                        comm.rank()
                    );
                });
            }
        }
    }

    #[test]
    fn every_allgather_schedule_matches_oracle() {
        for algo in AllgatherAlgo::ALL {
            for p in [1, 2, 3, 4, 7, 8] {
                let cfg = forced(CollTuning::new().force_allgather(algo));
                run_world_configured(p, cfg, move |comm| {
                    let mine = [comm.rank() as u8 + 10, comm.rank() as u8 + 100];
                    let mut out = vec![0u8; 2 * p as usize];
                    comm.allgather(&mine, &mut out).unwrap();
                    for r in 0..p as usize {
                        assert_eq!(out[2 * r], r as u8 + 10, "{algo:?} p {p}");
                        assert_eq!(out[2 * r + 1], r as u8 + 100, "{algo:?} p {p}");
                    }
                });
            }
        }
    }

    #[test]
    fn every_allreduce_schedule_sums() {
        for algo in AllreduceAlgo::ALL {
            // Odd sizes exercise both fold-in paths; 5 ints exercise the
            // uneven Rabenseifner chunk split (5 elements over 4 chunks).
            for p in [1, 2, 3, 5, 7, 8] {
                let cfg = forced(CollTuning::new().force_allreduce(algo));
                run_world_configured(p, cfg, move |comm| {
                    let mut send = Vec::new();
                    for i in 0..5i32 {
                        send.extend_from_slice(&(comm.rank() as i32 + i).to_le_bytes());
                    }
                    let mut recv = vec![0u8; 20];
                    comm.allreduce(&send, &mut recv, Datatype::Int, ReduceOp::Sum)
                        .unwrap();
                    for i in 0..5i32 {
                        let got = i32::from_le_bytes(
                            recv[4 * i as usize..4 * i as usize + 4].try_into().unwrap(),
                        );
                        let exp: i32 = (0..p as i32).map(|r| r + i).sum();
                        assert_eq!(got, exp, "{algo:?} p {p} elem {i}");
                    }
                });
            }
        }
    }

    #[test]
    fn every_alltoall_schedule_transposes() {
        for algo in AlltoallAlgo::ALL {
            for p in [1, 2, 3, 5, 8] {
                let cfg = forced(CollTuning::new().force_alltoall(algo));
                run_world_configured(p, cfg, move |comm| {
                    let me = comm.rank() as u8;
                    let mut send = Vec::new();
                    for r in 0..p as u8 {
                        send.extend_from_slice(&[me, r]);
                    }
                    let mut recv = vec![0u8; 2 * p as usize];
                    comm.alltoall(&send, &mut recv).unwrap();
                    for r in 0..p as usize {
                        assert_eq!(recv[2 * r], r as u8, "{algo:?} p {p}");
                        assert_eq!(recv[2 * r + 1], me, "{algo:?} p {p}");
                    }
                });
            }
        }
    }

    #[test]
    fn barrier_completes_at_various_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            run_world(p, |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn bcast_delivers_to_all_from_every_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                run_world(p, move |comm| {
                    let mut buf = if comm.rank() == root {
                        vec![0xAB; 33]
                    } else {
                        vec![0; 33]
                    };
                    comm.bcast(&mut buf, root).unwrap();
                    assert!(buf.iter().all(|&b| b == 0xAB), "rank {}", comm.rank());
                });
            }
        }
    }

    #[test]
    fn reduce_sums_ints_at_root() {
        for p in [2, 3, 4, 6] {
            run_world(p, move |comm| {
                let v = (comm.rank() as i32 + 1).to_le_bytes();
                let mut out = [0u8; 4];
                let root = p - 1;
                comm.reduce(
                    &v,
                    if comm.rank() == root { Some(&mut out) } else { None },
                    Datatype::Int,
                    ReduceOp::Sum,
                    root,
                )
                .unwrap();
                if comm.rank() == root {
                    let expected: i32 = (1..=p as i32).sum();
                    assert_eq!(i32::from_le_bytes(out), expected);
                }
            });
        }
    }

    #[test]
    fn allreduce_matches_oracle_at_odd_sizes() {
        // Exercises the non-power-of-two folding path.
        for p in [1, 2, 3, 5, 6, 7, 8] {
            run_world(p, move |comm| {
                let mine = [comm.rank() as f64 + 0.5, -(comm.rank() as f64)];
                let mut send = Vec::new();
                for v in mine {
                    send.extend_from_slice(&v.to_le_bytes());
                }
                let mut recv = vec![0u8; 16];
                comm.allreduce(&send, &mut recv, Datatype::Double, ReduceOp::Sum).unwrap();
                let got0 = f64::from_le_bytes(recv[0..8].try_into().unwrap());
                let got1 = f64::from_le_bytes(recv[8..16].try_into().unwrap());
                let exp0: f64 = (0..p).map(|r| r as f64 + 0.5).sum();
                let exp1: f64 = (0..p).map(|r| -(r as f64)).sum();
                assert!((got0 - exp0).abs() < 1e-12, "rank {} p {}", comm.rank(), p);
                assert!((got1 - exp1).abs() < 1e-12);
            });
        }
    }

    #[test]
    fn allreduce_max() {
        run_world(5, |comm| {
            let v = ((comm.rank() as i32 * 7) % 5).to_le_bytes();
            let mut out = [0u8; 4];
            comm.allreduce(&v, &mut out, Datatype::Int, ReduceOp::Max).unwrap();
            assert_eq!(i32::from_le_bytes(out), 4);
        });
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        run_world(4, |comm| {
            let mine = [comm.rank() as u8; 3];
            let mut out = vec![0u8; 12];
            comm.gather(&mine, if comm.rank() == 2 { Some(&mut out) } else { None }, 2)
                .unwrap();
            if comm.rank() == 2 {
                assert_eq!(out, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
            }
        });
    }

    #[test]
    fn scatter_distributes_blocks() {
        run_world(4, |comm| {
            let src: Vec<u8> = (0..8).collect();
            let mut mine = [0u8; 2];
            comm.scatter(
                if comm.rank() == 0 { Some(&src[..]) } else { None },
                &mut mine,
                0,
            )
            .unwrap();
            assert_eq!(mine, [comm.rank() as u8 * 2, comm.rank() as u8 * 2 + 1]);
        });
    }

    #[test]
    fn allgather_ring_matches_oracle() {
        for p in [1, 2, 3, 4, 7] {
            run_world(p, move |comm| {
                let mine = [comm.rank() as u8 + 10, comm.rank() as u8 + 100];
                let mut out = vec![0u8; 2 * p as usize];
                comm.allgather(&mine, &mut out).unwrap();
                for r in 0..p as usize {
                    assert_eq!(out[2 * r], r as u8 + 10);
                    assert_eq!(out[2 * r + 1], r as u8 + 100);
                }
            });
        }
    }

    #[test]
    fn alltoall_transposes() {
        for p in [2, 3, 5] {
            run_world(p, move |comm| {
                let me = comm.rank() as u8;
                // Block sent to rank r encodes (me, r).
                let mut send = Vec::new();
                for r in 0..p as u8 {
                    send.extend_from_slice(&[me, r]);
                }
                let mut recv = vec![0u8; 2 * p as usize];
                comm.alltoall(&send, &mut recv).unwrap();
                for r in 0..p as usize {
                    assert_eq!(recv[2 * r], r as u8, "block from rank {r}");
                    assert_eq!(recv[2 * r + 1], me);
                }
            });
        }
    }

    #[test]
    fn bcast_mismatched_sizes_detected() {
        run_world(2, |comm| {
            let mut buf = if comm.rank() == 0 { vec![1u8; 8] } else { vec![0u8; 4] };
            let r = comm.bcast(&mut buf, 0);
            if comm.rank() == 1 {
                assert!(r.is_err());
            }
        });
    }

    #[test]
    fn collectives_on_split_subcommunicators() {
        run_world(6, |comm| {
            let sub = comm.split((comm.rank() % 2) as i32, 0).unwrap().unwrap();
            let v = 1i32.to_le_bytes();
            let mut out = [0u8; 4];
            sub.allreduce(&v, &mut out, Datatype::Int, ReduceOp::Sum).unwrap();
            assert_eq!(i32::from_le_bytes(out), 3);
        });
    }
}

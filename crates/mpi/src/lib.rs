//! An MPI-2.2-subset message-passing library over in-process rank threads.
//!
//! This is the reproduction's substitute for OpenMPI + rsmpi (DESIGN.md
//! substitution #3). Each MPI rank is a thread inside one process;
//! point-to-point messages move through per-rank mailboxes, and the
//! collectives are implemented with the textbook schedules (binomial
//! trees, recursive doubling, ring, pairwise exchange) on top of the
//! point-to-point layer.
//!
//! # The progress engine
//!
//! Point-to-point transfers pick a protocol by payload size
//! ([`progress::ProtocolConfig`]):
//!
//! * **Eager** (≤ threshold): the payload is copied into the receiver's
//!   mailbox, consuming credit from a bounded per-mailbox byte budget.
//!   Credit returns when the receiver drains the message; sends that
//!   miss credit — blocking or not — fall back to a sender-owned
//!   rendezvous, so FIFO order holds without unbounded buffering and the
//!   backpressure stays matchable by posted receives. Self-sends are
//!   always eager (a rendezvous with yourself could never be answered).
//! * **Rendezvous** (> threshold): the sender enqueues a tiny RTS control
//!   message and keeps the payload in place; the receiver copies the bytes
//!   *directly* from the sender's buffer into the posted receive buffer —
//!   no intermediate heap copy — and completes the handshake. Blocking
//!   sends are synchronous (they return when the receiver has the data),
//!   matching standard-mode MPI semantics for large messages.
//!
//! Nonblocking operations are [`request::Request`] state machines:
//!
//! * `Isend`/`Irecv` ([`Comm::isend`], [`Comm::irecv`]) — true pending
//!   operations driven by `wait`/`test` and the completion sets
//!   (`wait_all`/`wait_any`/`wait_some`/`test_all`/`test_any`).
//! * Persistent requests ([`Comm::send_init`], [`Comm::recv_init`],
//!   [`request::Request::start`], [`request::Request::start_all`]).
//! * Nonblocking collectives ([`Comm::ibarrier`], [`Comm::ibcast`],
//!   [`Comm::iallreduce`]) — the blocking schedules re-expressed as
//!   incremental state machines advanced by the same progress loop, so
//!   communication overlaps with computation between initiation and
//!   completion.
//!
//! # Timing
//!
//! Timing comes in two modes ([`clock::ClockMode`]):
//!
//! * **Real** — `wtime` reads the host monotonic clock; used for
//!   functional tests and single-core experiments.
//! * **Virtual** — every rank carries a LogP-style virtual clock. Sends
//!   stamp their departure time, receives complete at
//!   `max(local_clock, departure + wire_time)`, and every call charges the
//!   per-call software overhead of its [`netsim::CostModel`]. The wire
//!   model includes the eager→rendezvous handshake latency above the
//!   profile's threshold, and rendezvous senders synchronize to the
//!   receiver's completion time — so simulated runs see the protocol
//!   switch. Collectives then exhibit realistic log-p / linear-p scaling
//!   *by construction*, because they execute their actual communication
//!   schedules. This is how iteration times for systems much larger than
//!   the host machine are produced (the paper's 768- and 6144-rank
//!   figures).
//!
//! The public API mirrors the subset of MPI-2.2 the paper's benchmarks
//! exercise: `Send`/`Recv`/`Sendrecv` with tags, wildcards and `Status`,
//! the nonblocking and persistent point-to-point surface, the collectives
//! `Barrier`/`Bcast`/`Reduce`/`Allreduce`/`Gather`/`Allgather`/`Scatter`/
//! `Alltoall` plus `Ibarrier`/`Ibcast`/`Iallreduce`, reduction ops over
//! the standard datatypes, `Comm_split`/`Comm_dup`, and `Wtime`.

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod error;
pub(crate) mod message;
pub mod progress;
pub mod request;
pub mod world;

pub use clock::ClockMode;
pub use comm::{Comm, Source, Status, Tag};
pub use datatype::{Datatype, ReduceOp};
pub use error::MpiError;
pub use progress::{ProtocolConfig, ProtocolSnapshot};
pub use request::{Request, TestAny};
pub use world::{run_world, run_world_with, run_world_with_protocol, World};

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Source = Source::Any;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Tag = Tag::Any;

//! An MPI-2.2-subset message-passing library over in-process rank threads.
//!
//! This is the reproduction's substitute for OpenMPI + rsmpi (DESIGN.md
//! substitution #3). Each MPI rank is a thread inside one process;
//! point-to-point messages move through per-rank mailboxes, and the
//! collectives are implemented with the textbook schedules (binomial
//! trees, recursive doubling, ring, pairwise exchange) on top of the
//! point-to-point layer.
//!
//! # The progress engine
//!
//! Point-to-point transfers pick a protocol by payload size
//! ([`progress::ProtocolConfig`]):
//!
//! * **Eager** (≤ threshold): the payload is copied into the receiver's
//!   mailbox, consuming credit from a bounded per-mailbox byte budget.
//!   Credit returns when the receiver drains the message; sends that
//!   miss credit — blocking or not — fall back to a sender-owned
//!   rendezvous, so FIFO order holds without unbounded buffering and the
//!   backpressure stays matchable by posted receives. Self-sends are
//!   always eager (a rendezvous with yourself could never be answered).
//! * **Rendezvous** (> threshold): the sender enqueues a tiny RTS control
//!   message and keeps the payload in place; the receiver copies the bytes
//!   *directly* from the sender's buffer into the posted receive buffer —
//!   no intermediate heap copy — and completes the handshake. Blocking
//!   sends are synchronous (they return when the receiver has the data),
//!   matching standard-mode MPI semantics for large messages.
//!
//! # Posted-receive matching
//!
//! Receives match at **posting** time: every receive (blocking or
//! `Irecv`) registers a posted-receive entry with its rank's mailbox,
//! and arrivals match posted entries *in posting order* under the
//! mailbox lock — full `MPI_ANY_SOURCE`/`MPI_ANY_TAG` wildcard
//! semantics, with collective traffic invisible to wildcards. The two
//! mailbox queues (arrived-unmatched messages, posted-unmatched
//! receives) keep the invariant that no queued message matches any
//! posted entry, which is what pins MPI's matching rules: same-matcher
//! receives complete in posted order no matter how they are tested, a
//! wildcard races a specific receive purely by posting position, and a
//! pre-posted receive lets eager arrivals skip mailbox buffering (and
//! its credit) entirely. Matching moves only the message into the
//! entry; delivery — the payload copy and the virtual-clock charge —
//! stays with the receiving rank, so the sender-side matching path
//! never runs receiver accounting (see `crate::message` for the queue
//! invariants and what the arrival path may assume).
//!
//! Nonblocking operations are [`request::Request`] state machines:
//!
//! * `Isend`/`Irecv` ([`Comm::isend`], [`Comm::irecv`]) — true pending
//!   operations driven by `wait`/`test` and the completion sets
//!   (`wait_all`/`wait_any`/`wait_some`/`test_all`/`test_any`).
//! * Persistent requests ([`Comm::send_init`], [`Comm::recv_init`],
//!   [`request::Request::start`], [`request::Request::start_all`]).
//! * Nonblocking collectives ([`Comm::ibarrier`], [`Comm::ibcast`],
//!   [`Comm::ireduce`], [`Comm::iallreduce`], [`Comm::igather`],
//!   [`Comm::iscatter`], [`Comm::iallgather`], [`Comm::ialltoall`],
//!   [`Comm::ialltoallv`]) — the blocking schedules re-expressed as
//!   incremental per-round state machines advanced by the same progress
//!   loop, each initiation drawing a unique per-communicator sequence
//!   tag, so communication overlaps with computation between initiation
//!   and completion and outstanding same-type collectives never
//!   cross-match.
//!
//! # Timing
//!
//! Timing comes in two modes ([`clock::ClockMode`]):
//!
//! * **Real** — `wtime` reads the host monotonic clock; used for
//!   functional tests and single-core experiments.
//! * **Virtual** — every rank carries a LogP-style virtual clock. Sends
//!   stamp their departure time, receives complete at
//!   `max(local_clock, departure + wire_time)`, and every call charges the
//!   per-call software overhead of its [`netsim::CostModel`]. The wire
//!   model includes the eager→rendezvous handshake latency above the
//!   profile's threshold, and rendezvous senders synchronize to the
//!   receiver's completion time — so simulated runs see the protocol
//!   switch. Collectives then exhibit realistic log-p / linear-p scaling
//!   *by construction*, because they execute their actual communication
//!   schedules. This is how iteration times for systems much larger than
//!   the host machine are produced (the paper's 768- and 6144-rank
//!   figures).
//!
//! # Queue introspection, cancellation, threads
//!
//! `Probe`/`Iprobe` report the earliest matching *queued* message
//! (messages claimed by posted receives are not probe-visible, as in
//! real MPI); `Mprobe`/`Improbe` atomically extract the match as an
//! [`MpiMessage`] handle that only `Mrecv`/`Imrecv` on that handle can
//! receive — the race-free form. [`request::Request::cancel`] retracts a
//! still-unmatched send (or unposts an unmatched receive) and surfaces
//! the outcome through [`comm::Status::cancelled`]. The substrate is
//! `MPI_THREAD_MULTIPLE`-clean: [`Comm`] is `Sync`, mailbox matching
//! runs under one lock per mailbox, and [`RequestTable`] gives
//! embedders a lock-protected per-rank request table safe for
//! concurrent posters/probers/progressors.
//!
//! The public API mirrors the subset of MPI-2.2 the paper's benchmarks
//! exercise: `Send`/`Recv`/`Sendrecv` with tags, wildcards and `Status`,
//! probing (`Probe`/`Iprobe`/`Mprobe`/`Improbe`/`Mrecv`/`Imrecv`) and
//! cancellation, the nonblocking and persistent point-to-point surface,
//! the collectives
//! `Barrier`/`Bcast`/`Reduce`/`Allreduce`/`Gather`/`Allgather`/`Scatter`/
//! `Alltoall`/`Alltoallv` plus the full nonblocking family
//! (`Ibarrier`/`Ibcast`/`Ireduce`/`Iallreduce`/`Igather`/`Iscatter`/
//! `Iallgather`/`Ialltoall`/`Ialltoallv`), reduction ops over the
//! standard datatypes, `Comm_split`/`Comm_dup`, and `Wtime`.

pub mod clock;
pub mod coll_algo;
pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod error;
pub(crate) mod message;
pub mod progress;
pub mod request;
pub mod table;
pub mod world;

pub use clock::ClockMode;
pub use coll_algo::{AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, CollTuning};
pub use comm::{Comm, MpiMessage, Source, Status, Tag};
pub use datatype::{Datatype, ReduceOp};
pub use error::MpiError;
pub use progress::{ProtocolConfig, ProtocolSnapshot};
pub use request::{Request, TestAny};
pub use table::{RequestRef, RequestTable};
pub use world::{
    run_world, run_world_configured, run_world_recorded, run_world_with,
    run_world_with_protocol, WatchdogConfig, World, WorldConfig, DEFAULT_STACK_BYTES,
    SMALL_STACK_BYTES,
};

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Source = Source::Any;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Tag = Tag::Any;

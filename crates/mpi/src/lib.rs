//! An MPI-2.2-subset message-passing library over in-process rank threads.
//!
//! This is the reproduction's substitute for OpenMPI + rsmpi (DESIGN.md
//! substitution #3). Each MPI rank is a thread inside one process;
//! point-to-point messages move through per-rank mailboxes, and the
//! collectives are implemented with the textbook schedules (binomial
//! trees, recursive doubling, ring, pairwise exchange) on top of the
//! point-to-point layer.
//!
//! Timing comes in two modes ([`clock::ClockMode`]):
//!
//! * **Real** — `wtime` reads the host monotonic clock; used for
//!   functional tests and single-core experiments.
//! * **Virtual** — every rank carries a LogP-style virtual clock. Sends
//!   stamp their departure time, receives complete at
//!   `max(local_clock, departure + wire_time)`, and every call charges the
//!   per-call software overhead of its [`netsim::CostModel`]. Collectives
//!   then exhibit realistic log-p / linear-p scaling *by construction*,
//!   because they execute their actual communication schedules. This is
//!   how iteration times for systems much larger than the host machine are
//!   produced (the paper's 768- and 6144-rank figures).
//!
//! The public API mirrors the subset of MPI-2.2 the paper's benchmarks
//! exercise: `Send`/`Recv`/`Sendrecv` with tags, wildcards and `Status`,
//! the collectives `Barrier`/`Bcast`/`Reduce`/`Allreduce`/`Gather`/
//! `Allgather`/`Scatter`/`Alltoall`, reduction ops over the standard
//! datatypes, `Comm_split`/`Comm_dup`, and `Wtime`.

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod error;
pub(crate) mod message;
pub mod world;

pub use clock::ClockMode;
pub use comm::{Comm, Source, Status, Tag};
pub use datatype::{Datatype, ReduceOp};
pub use error::MpiError;
pub use world::{run_world, run_world_with, World};

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Source = Source::Any;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Tag = Tag::Any;

//! World setup: spawn one thread per rank, hand each a world communicator,
//! join, and return the per-rank results.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use obs::{EventKind, Recorder};
use parking_lot::Mutex;

use crate::clock::{Clock, ClockMode};
use crate::comm::Comm;
use crate::message::Mailbox;
use crate::progress::{ProtocolConfig, ProtocolStats};

/// The flight-recorder hookup of a world. The clock mode is resolved
/// *once* here (`virt`) so every trace timestamp costs a single branch
/// instead of re-deriving the mode from `ClockMode` per event — the event
/// sink caches what `Clock::wtime` would otherwise re-match in hot loops.
pub(crate) struct WorldTrace {
    pub rec: Arc<Recorder>,
    pub virt: bool,
}

/// Shared world state.
pub struct World {
    pub(crate) size: u32,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) mode: ClockMode,
    /// Eager/rendezvous switch point and eager-buffer budgets.
    pub(crate) protocol: ProtocolConfig,
    /// Protocol traffic counters.
    pub(crate) stats: ProtocolStats,
    /// Optional flight recorder (`None` = tracing off: every emission
    /// site reduces to one pointer test).
    pub(crate) trace: Option<WorldTrace>,
}

impl World {
    pub(crate) fn new(size: u32, mode: ClockMode) -> Arc<World> {
        let protocol = ProtocolConfig::from_mode(&mode);
        Self::new_with_protocol(size, mode, protocol)
    }

    pub(crate) fn new_with_protocol(
        size: u32,
        mode: ClockMode,
        protocol: ProtocolConfig,
    ) -> Arc<World> {
        Self::new_with_opts(size, mode, protocol, None)
    }

    pub(crate) fn new_with_opts(
        size: u32,
        mode: ClockMode,
        protocol: ProtocolConfig,
        recorder: Option<Arc<Recorder>>,
    ) -> Arc<World> {
        assert!(size >= 1, "world must have at least one rank");
        let mailboxes = (0..size).map(|_| Mailbox::new(protocol.eager_capacity)).collect();
        let trace = recorder.map(|rec| WorldTrace {
            virt: matches!(mode, ClockMode::Virtual(_)),
            rec,
        });
        Arc::new(World {
            size,
            mailboxes,
            mode,
            protocol,
            stats: ProtocolStats::default(),
            trace,
        })
    }

    pub fn size(&self) -> u32 {
        self.size
    }

    /// Emit a trace event attributed to world-rank `rank`, timestamped by
    /// `clock` (virtual mode) or the recorder's epoch (real mode). The
    /// event constructor only runs when tracing is on.
    #[inline]
    pub(crate) fn emit(
        &self,
        rank: u32,
        clock: &Mutex<Clock>,
        kind: impl FnOnce() -> EventKind,
    ) {
        if let Some(t) = &self.trace {
            let ts = if t.virt { clock.lock().virtual_us } else { t.rec.elapsed_us() };
            t.rec.emit(rank as usize, ts, kind());
        }
    }

    /// Allocate a send→recv flow id (0 when tracing is off — the exporter
    /// treats 0 as "no flow").
    #[inline]
    pub(crate) fn next_flow(&self) -> u64 {
        match &self.trace {
            Some(t) => t.rec.next_flow(),
            None => 0,
        }
    }

    /// A fresh trace id for request state transitions (shares the flow
    /// counter: the ids only need uniqueness within a trace).
    #[inline]
    pub(crate) fn next_trace_id(&self) -> u64 {
        self.next_flow()
    }

    /// Unblock every rank (used when a rank panics so the others do not
    /// hang forever on a receive that will never be satisfied). Also fails
    /// queued rendezvous handshakes so blocked senders wake up.
    pub(crate) fn shutdown(&self) {
        for mb in &self.mailboxes {
            mb.shutdown();
        }
    }
}

/// Run `size` MPI ranks with real clocks. Each rank executes `body` on its
/// own thread with a world [`Comm`]; results are returned in rank order.
///
/// This is the analog of `mpirun -np <size>`.
pub fn run_world<R, F>(size: u32, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_world_with(size, ClockMode::Real, body)
}

/// [`run_world`] with an explicit clock mode. Passing
/// [`ClockMode::Virtual`] makes every rank track LogP-style simulated time
/// (see crate docs); `Comm::wtime` then reads the virtual clock. The
/// message protocol (eager threshold, buffer budgets) is derived from the
/// mode; use [`run_world_with_protocol`] to override it.
pub fn run_world_with<R, F>(size: u32, mode: ClockMode, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_world_on(World::new(size, mode), body)
}

/// [`run_world_with`] with an explicit [`ProtocolConfig`] — used by the
/// protocol A/B benchmarks (e.g. forcing the seed's eager-only behavior).
pub fn run_world_with_protocol<R, F>(
    size: u32,
    mode: ClockMode,
    protocol: ProtocolConfig,
    body: F,
) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_world_on(World::new_with_protocol(size, mode, protocol), body)
}

/// [`run_world_with`] with a flight recorder attached: every rank's p2p,
/// collective, and request activity is logged into `recorder` (one ring
/// per rank), and at teardown the world's protocol counters are folded
/// into the recorder's metrics registry. Pass the protocol to override
/// the mode-derived default.
pub fn run_world_recorded<R, F>(
    size: u32,
    mode: ClockMode,
    protocol: Option<ProtocolConfig>,
    recorder: Arc<Recorder>,
    body: F,
) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    let protocol = protocol.unwrap_or_else(|| ProtocolConfig::from_mode(&mode));
    run_world_on(World::new_with_opts(size, mode, protocol, Some(recorder)), body)
}

fn run_world_on<R, F>(world: Arc<World>, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    let size = world.size;
    let body = Arc::new(body);

    let handles: Vec<_> = (0..size)
        .map(|rank| {
            let world = Arc::clone(&world);
            let body = Arc::clone(&body);
            std::thread::Builder::new()
                .name(format!("mpi-rank-{rank}"))
                .stack_size(32 << 20) // deep guest recursion in debug builds needs room
                .spawn(move || {
                    let comm = Comm::world(Arc::clone(&world), rank);
                    let result = catch_unwind(AssertUnwindSafe(|| body(comm)));
                    if result.is_err() {
                        world.shutdown();
                    }
                    result
                })
                .expect("failed to spawn rank thread")
        })
        .collect();

    let mut results = Vec::with_capacity(size as usize);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for h in handles {
        match h.join().expect("rank thread panicked outside catch_unwind") {
            Ok(r) => results.push(r),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        resume_unwind(p);
    }
    if let Some(t) = &world.trace {
        // Quiescent now (all ranks joined): fold the protocol counters
        // into the unified metrics registry.
        t.rec.fold_metrics(world.stats.metric_entries());
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let ranks = run_world(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = run_world(1, |comm| comm.rank());
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates_without_hanging_others() {
        run_world(3, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Other ranks block forever on a message that never comes;
            // the shutdown must unblock them.
            let mut buf = [0u8; 4];
            let _ = comm.recv(&mut buf, crate::Source::Any, crate::Tag::Any);
        });
    }
}
